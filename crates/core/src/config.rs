//! Architecture configuration.

use edea_dse::TileConfig;

use crate::CoreError;

/// Complete parameterization of the EDEA accelerator.
///
/// [`EdeaConfig::paper`] is the silicon configuration of the paper
/// (Sec. III/IV); every experiment uses it. The fields are public and
/// validated by [`EdeaConfig::validate`] so that scaling studies (the paper:
/// "PE arrays are friendly to scaling") can explore variants.
///
/// # Example
///
/// ```
/// use edea_core::EdeaConfig;
///
/// let cfg = EdeaConfig::paper();
/// assert_eq!(cfg.dwc_macs(), 288);
/// assert_eq!(cfg.pwc_macs(), 512);
/// assert_eq!(cfg.pe_count(), 800);
/// assert_eq!(cfg.peak_gops(), 1600.0); // 800 MACs × 2 ops × 1 GHz
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdeaConfig {
    /// Tiling (Tn, Tm, Td, Tk, kernel) — Case 6 / La of the DSE.
    pub tile: TileConfig,
    /// Pipeline initiation cycles per portion-pass (Fig. 7: 9).
    pub init_cycles: u64,
    /// Maximum portion edge in *ofmap pixels* (8 → portions of ≤ 8×8
    /// outputs; reverse-engineered from Eq. 2 + Fig. 13, see
    /// ARCHITECTURE.md).
    pub portion_limit: usize,
    /// Clock frequency in MHz (1000 = the paper's 1 GHz TT corner).
    pub clock_mhz: u64,
    /// Supply voltage in volts (0.8 V).
    pub voltage: f64,
    /// Technology node in nanometres (22 nm FDSOI).
    pub tech_nm: f64,
    /// DWC ifmap buffer capacity in bytes.
    pub ifmap_buf_bytes: usize,
    /// DWC weight buffer capacity in bytes.
    pub dwc_weight_buf_bytes: usize,
    /// Offline (Non-Conv parameter) buffer capacity in bytes.
    pub offline_buf_bytes: usize,
    /// Intermediate (DWC→PWC) buffer capacity in bytes.
    pub intermediate_buf_bytes: usize,
    /// PWC weight buffer capacity in bytes.
    pub pwc_weight_buf_bytes: usize,
    /// PWC partial-sum SRAM capacity in bytes.
    pub psum_buf_bytes: usize,
}

impl EdeaConfig {
    /// The paper's silicon configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tile: TileConfig::edea(),
            init_cycles: 9,
            portion_limit: 8,
            clock_mhz: 1000,
            voltage: 0.8,
            tech_nm: 22.0,
            // Largest portion input region: 17×17×8 (stride 2) ≈ 2.3 KiB;
            // double-buffered.
            ifmap_buf_bytes: 8 * 1024,
            // All DWC weights of the deepest layer: 3·3·1024 = 9 KiB.
            dwc_weight_buf_bytes: 10 * 1024,
            // k and b, 24 bit each, for both boundaries of the deepest
            // layer: 6·(1024 + 1024) = 12 KiB.
            offline_buf_bytes: 16 * 1024,
            // One 2×2×8 tile, double-buffered.
            intermediate_buf_bytes: 64,
            // One channel slice × all kernels of the widest layer:
            // 8 × 1024 = 8 KiB, double-buffered.
            pwc_weight_buf_bytes: 16 * 1024,
            // Worst portion psums: 8×8 outputs × 256 kernels × 4 B (layer 3).
            psum_buf_bytes: 64 * 1024,
        }
    }

    /// MACs in the DWC engine (`Td·H·W·Tn·Tm` = 288).
    #[must_use]
    pub fn dwc_macs(&self) -> u64 {
        edea_dse::pe_array::dwc_macs(&self.tile)
    }

    /// MACs in the PWC engine (`Td·Tk·Tn·Tm` = 512).
    #[must_use]
    pub fn pwc_macs(&self) -> u64 {
        edea_dse::pe_array::pwc_macs(&self.tile)
    }

    /// Total PE count (Table III: 800).
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        self.dwc_macs() + self.pwc_macs()
    }

    /// Theoretical peak throughput in GOPS (2 ops per MAC per cycle).
    #[must_use]
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.pe_count() as f64 * self.clock_mhz as f64 / 1000.0
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.tile.tn == 0 || self.tile.tm == 0 || self.tile.td == 0 || self.tile.tk == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "tile dims must be non-zero".into(),
            });
        }
        if self.portion_limit < self.tile.tn || self.portion_limit < self.tile.tm {
            return Err(CoreError::InvalidConfig {
                detail: "portion limit must cover at least one spatial tile".into(),
            });
        }
        if self.portion_limit % self.tile.tn != 0 || self.portion_limit % self.tile.tm != 0 {
            return Err(CoreError::InvalidConfig {
                detail: "portion limit must be a multiple of the spatial tile".into(),
            });
        }
        if self.clock_mhz == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "clock must be non-zero".into(),
            });
        }
        if !(self.voltage > 0.0 && self.tech_nm > 0.0) {
            return Err(CoreError::InvalidConfig {
                detail: "voltage and technology must be positive".into(),
            });
        }
        let min_inter = 2 * self.tile.tn * self.tile.tm * self.tile.td;
        if self.intermediate_buf_bytes < min_inter {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "intermediate buffer must hold a double-buffered tile ({min_inter} bytes)"
                ),
            });
        }
        Ok(())
    }
}

impl Default for EdeaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        EdeaConfig::paper().validate().unwrap();
    }

    #[test]
    fn paper_pe_counts_match_table3() {
        let c = EdeaConfig::paper();
        assert_eq!(c.pe_count(), 800);
        assert_eq!(c.dwc_macs(), 288);
        assert_eq!(c.pwc_macs(), 512);
    }

    #[test]
    fn peak_gops_is_1600() {
        assert_eq!(EdeaConfig::paper().peak_gops(), 1600.0);
        assert_eq!(EdeaConfig::paper().period_ns(), 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = EdeaConfig::paper();
        c.portion_limit = 3; // not a multiple of Tn=2
        assert!(c.validate().is_err());
        let mut c = EdeaConfig::paper();
        c.clock_mhz = 0;
        assert!(c.validate().is_err());
        let mut c = EdeaConfig::paper();
        c.intermediate_buf_bytes = 16; // less than double-buffered tile
        assert!(c.validate().is_err());
        let mut c = EdeaConfig::paper();
        c.voltage = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(EdeaConfig::default(), EdeaConfig::paper());
    }

    #[test]
    fn scaled_config_validates() {
        // "In DWC, the number of channels can be scaled, while in PWC, both
        // the number of channels and kernels can be scaled."
        let mut c = EdeaConfig::paper();
        c.tile = edea_dse::TileConfig::new(2, 2, 16, 32, 3);
        c.intermediate_buf_bytes = 256; // 2× the doubled 2×2×16 tile
        c.validate().unwrap();
        assert_eq!(c.dwc_macs(), 576);
        assert_eq!(c.pwc_macs(), 2048);
    }
}
