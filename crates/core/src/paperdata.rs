//! Published reference values from the EDEA paper (SOCC 2024), used for
//! paper-vs-measured comparisons in tests, benches and EXPERIMENTS.md.
//!
//! Everything in this module is *data transcribed from the paper*, never
//! computed — the reproduction's own numbers come from the models and are
//! compared against these.

/// Number of DSC layers evaluated.
pub const NUM_LAYERS: usize = 13;

/// Fig. 12: per-layer energy efficiency in TOPS/W.
pub const ENERGY_EFFICIENCY_TOPS_W: [f64; NUM_LAYERS] = [
    10.89, 8.70, 9.07, 9.36, 9.69, 9.81, 9.74, 11.99, 12.51, 12.50, 13.43, 10.77, 13.38,
];

/// Fig. 13: per-layer throughput in GOPS.
pub const THROUGHPUT_GOPS: [f64; NUM_LAYERS] = [
    1024.0, 1024.0, 1024.0, 1024.0, 1024.0, 973.5, 973.5, 973.5, 973.5, 973.5, 973.5, 905.6, 905.6,
];

/// Per-layer power in mW, implied by Figs. 12 & 13 (`P = TP / EE`); the
/// paper quotes the endpoints explicitly: layer 1 = 117.7 mW (highest),
/// layer 12 = 67.7 mW (lowest).
#[must_use]
pub fn power_mw() -> [f64; NUM_LAYERS] {
    let mut out = [0.0; NUM_LAYERS];
    for i in 0..NUM_LAYERS {
        out[i] = THROUGHPUT_GOPS[i] / ENERGY_EFFICIENCY_TOPS_W[i];
    }
    out
}

/// Fig. 11 anchors: layer-12 zero percentages (DWC, PWC).
pub const LAYER12_ZERO_PCT: (f64, f64) = (97.4, 95.3);

/// Sec. IV headline numbers.
pub mod headline {
    /// Peak energy efficiency (TOPS/W), at layer 10.
    pub const PEAK_TOPS_W: f64 = 13.43;
    /// Throughput at the peak-efficiency point (GOPS).
    pub const PEAK_EE_GOPS: f64 = 973.55;
    /// Peak throughput (GOPS), layers 0–4.
    pub const PEAK_GOPS: f64 = 1024.0;
    /// Average energy efficiency over all DSC layers (TOPS/W).
    pub const AVG_TOPS_W: f64 = 11.13;
    /// Average throughput (GOPS).
    pub const AVG_GOPS: f64 = 981.42;
    /// Die area (mm²).
    pub const AREA_MM2: f64 = 0.58;
    /// Area efficiency (GOPS/mm²).
    pub const AREA_EFF_GOPS_MM2: f64 = 1678.53;
    /// Power at the peak-efficiency point (mW), Table III.
    pub const POWER_MW: f64 = 72.5;
    /// Clock (MHz), supply (V), technology (nm).
    pub const CLOCK_MHZ: f64 = 1000.0;
    /// Supply voltage (V).
    pub const VOLTAGE: f64 = 0.8;
    /// Technology node (nm).
    pub const TECH_NM: f64 = 22.0;
}

/// Fig. 8: layout dimensions in micrometres.
pub const DIE_WIDTH_UM: f64 = 825.032;
/// Fig. 8: layout height in micrometres.
pub const DIE_HEIGHT_UM: f64 = 699.52;

/// Fig. 9 (left): area breakdown percentages.
pub mod area_pct {
    /// PWC engine.
    pub const PWC: f64 = 47.90;
    /// DWC engine.
    pub const DWC: f64 = 28.37;
    /// Non-Conv units.
    pub const NONCONV: f64 = 14.87;
    /// On-chip buffers (ifmap/weight/offline/psum).
    pub const BUFFERS: f64 = 5.38;
    /// Intermediate buffer.
    pub const INTERMEDIATE: f64 = 2.48;
    /// Control / others.
    pub const CONTROL: f64 = 1.00;
}

/// Fig. 9 (right): power breakdown percentages at the peak workload.
pub mod power_pct {
    /// PWC engine.
    pub const PWC: f64 = 66.23;
    /// DWC engine.
    pub const DWC: f64 = 15.70;
    /// Clock tree ("others" in the paper's description).
    pub const CLOCK: f64 = 6.14;
    /// Non-Conv units.
    pub const NONCONV: f64 = 4.20;
    /// Buffers.
    pub const BUFFERS: f64 = 3.48;
    /// External interface / IO.
    pub const IO: f64 = 3.49;
    /// Control.
    pub const CONTROL: f64 = 0.75;
}

/// Fig. 3: intermediate-elimination reduction band (min %, max %, total %).
pub const FIG3_REDUCTION: (f64, f64, f64) = (15.4, 46.9, 34.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_endpoints_match_paper_quotes() {
        let p = power_mw();
        // "Layer1 exhibits the highest power consumption of 117.7 mW. …
        // layer12 demonstrates the lowest power consumption of 67.7 mW."
        assert!((p[1] - 117.7).abs() < 0.05, "{}", p[1]);
        assert!((p[12] - 67.7).abs() < 0.05, "{}", p[12]);
        let max = p.iter().cloned().fold(f64::MIN, f64::max);
        let min = p.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(max, p[1]);
        assert_eq!(min, p[12]);
    }

    #[test]
    fn peak_ee_point_is_layer10() {
        let best = ENERGY_EFFICIENCY_TOPS_W
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 10);
        assert_eq!(*best.1, headline::PEAK_TOPS_W);
        // Table III: 973.55 GOPS / 72.5 mW = 13.43 TOPS/W.
        assert!((headline::PEAK_EE_GOPS / headline::POWER_MW - headline::PEAK_TOPS_W).abs() < 0.01);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let area = area_pct::PWC
            + area_pct::DWC
            + area_pct::NONCONV
            + area_pct::BUFFERS
            + area_pct::INTERMEDIATE
            + area_pct::CONTROL;
        assert!((area - 100.0).abs() < 0.01, "{area}");
        let power = power_pct::PWC
            + power_pct::DWC
            + power_pct::CLOCK
            + power_pct::NONCONV
            + power_pct::BUFFERS
            + power_pct::IO
            + power_pct::CONTROL;
        assert!((power - 100.0).abs() < 0.01, "{power}");
    }

    #[test]
    fn die_dimensions_match_area() {
        let area_mm2 = DIE_WIDTH_UM * DIE_HEIGHT_UM / 1e6;
        assert!((area_mm2 - headline::AREA_MM2).abs() < 0.01, "{area_mm2}");
    }

    #[test]
    fn average_ee_matches_headline_roughly() {
        // The arithmetic mean of Fig. 12 is 10.9; the paper's stated average
        // (11.13) is slightly above it (weighting unstated) — both ways the
        // headline is consistent with the series.
        let mean: f64 =
            ENERGY_EFFICIENCY_TOPS_W.iter().sum::<f64>() / ENERGY_EFFICIENCY_TOPS_W.len() as f64;
        assert!((mean - headline::AVG_TOPS_W).abs() < 0.3, "{mean}");
    }
}
