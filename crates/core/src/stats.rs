//! Execution statistics collected by the functional simulator.
//!
//! [`LayerStats`] describes one image's layer execution; [`BatchLayerStats`]
//! / [`BatchNetworkStats`] describe a whole batch run under a
//! [`WeightResidency`] policy, where external weight traffic may be paid
//! once per batch instead of once per image. External traffic is carried
//! split by stream ([`crate::buffer::ExternalMemory`]) precisely so the
//! amortizable part (weights + offline parameters) is visible separately
//! from the inherently per-image part (ifmap reads, ofmap writes).

use edea_nn::workload::{LayerShape, StageOp};

use crate::buffer::ExternalMemory;
use crate::config::EdeaConfig;
use crate::engine::EngineActivity;
use crate::schedule::WeightResidency;
use crate::timing::CycleBreakdown;

/// Per-buffer byte counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferTraffic {
    /// Bytes read.
    pub reads: u64,
    /// Bytes written.
    pub writes: u64,
}

impl BufferTraffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Complete statistics of one layer executed on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// The layer executed.
    pub shape: LayerShape,
    /// Cycle breakdown from the timing model (the functional schedule is
    /// cross-checked against it).
    pub breakdown: CycleBreakdown,
    /// Total cycles.
    pub cycles: u64,
    /// DWC engine activity (all invocations merged).
    pub dwc_activity: EngineActivity,
    /// PWC engine activity.
    pub pwc_activity: EngineActivity,
    /// Non-Conv operations (both boundaries).
    pub nonconv_ops: u64,
    /// Zero fraction of the layer input codes.
    pub input_zero: f64,
    /// Zero fraction of the intermediate (PWC input) codes — Fig. 11's
    /// "DWC zero percentage".
    pub mid_zero: f64,
    /// Zero fraction of the output codes — Fig. 11's "PWC zero percentage".
    pub out_zero: f64,
    /// External-memory traffic, split by stream.
    pub external: ExternalMemory,
    /// On-chip SRAM traffic (all buffers).
    pub onchip: BufferTraffic,
    /// Intermediate-buffer traffic alone (the "direct data transfer").
    pub intermediate: BufferTraffic,
    /// Psum register-file traffic alone (accumulation read-modify-write).
    pub psum: BufferTraffic,
}

impl LayerStats {
    /// Useful MAC operations (= workload MACs; the engines never idle
    /// partially within a cycle).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.dwc_activity.mac_slots + self.pwc_activity.mac_slots
    }

    /// Throughput in GOPS at the configured clock.
    #[must_use]
    pub fn throughput_gops(&self, cfg: &EdeaConfig) -> f64 {
        2.0 * self.total_macs() as f64 / (self.cycles as f64 * cfg.period_ns())
    }

    /// Latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, cfg: &EdeaConfig) -> f64 {
        self.cycles as f64 * cfg.period_ns()
    }
}

/// Statistics of a full network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Per-layer statistics, in layer order.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Total cycles over all layers.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerStats::total_macs).sum()
    }

    /// Ops-weighted average throughput in GOPS.
    #[must_use]
    pub fn average_gops(&self, cfg: &EdeaConfig) -> f64 {
        2.0 * self.total_macs() as f64 / (self.total_cycles() as f64 * cfg.period_ns())
    }

    /// Total external traffic in bytes.
    #[must_use]
    pub fn external_total(&self) -> u64 {
        self.layers.iter().map(|l| l.external.total()).sum()
    }

    /// Total external weight + offline-parameter traffic in bytes — the
    /// part a batched schedule amortizes.
    #[must_use]
    pub fn external_weight_total(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.external.weight_reads + l.external.param_reads)
            .sum()
    }
}

/// Statistics of one layer executed over a whole batch.
///
/// All counters are **batch totals**; the cycle [`CycleBreakdown`] is
/// per-image (every image runs the identical schedule). Zero fractions are
/// batch means.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLayerStats {
    /// The layer executed.
    pub shape: LayerShape,
    /// Batch size `N ≥ 1`.
    pub batch: usize,
    /// The residency policy the schedule ran under.
    pub residency: WeightResidency,
    /// Per-image cycle breakdown (identical for every image in the batch).
    pub breakdown: CycleBreakdown,
    /// Whole-batch cycles (`batch × breakdown.total()`; the initiation is
    /// bound by the per-image ifmap-slice fetch, so weight residency saves
    /// traffic, not cycles).
    pub cycles: u64,
    /// DWC engine activity summed over the batch.
    pub dwc_activity: EngineActivity,
    /// PWC engine activity summed over the batch.
    pub pwc_activity: EngineActivity,
    /// Non-Conv operations over the batch.
    pub nonconv_ops: u64,
    /// Mean input zero fraction over the batch.
    pub input_zero: f64,
    /// Mean intermediate zero fraction over the batch.
    pub mid_zero: f64,
    /// Mean output zero fraction over the batch.
    pub out_zero: f64,
    /// External traffic over the whole batch, split by stream. Under
    /// [`WeightResidency::PerBatch`] the weight/param components are the
    /// single-image figures; ifmap/writes always scale with the batch.
    pub external: ExternalMemory,
    /// On-chip SRAM traffic over the batch.
    pub onchip: BufferTraffic,
    /// Intermediate-buffer traffic over the batch.
    pub intermediate: BufferTraffic,
    /// Psum traffic over the batch.
    pub psum: BufferTraffic,
}

impl BatchLayerStats {
    /// Cycles per image (exact: every image runs the same schedule).
    #[must_use]
    pub fn cycles_per_image(&self) -> u64 {
        self.cycles / self.batch as u64
    }

    /// External bytes per image (fractional once weights amortize).
    #[must_use]
    pub fn external_per_image(&self) -> f64 {
        self.external.total() as f64 / self.batch as f64
    }

    /// External weight + offline-parameter bytes per image.
    #[must_use]
    pub fn weight_bytes_per_image(&self) -> f64 {
        (self.external.weight_reads + self.external.param_reads) as f64 / self.batch as f64
    }

    /// Converts a single-image batch back to plain [`LayerStats`].
    ///
    /// # Panics
    ///
    /// Panics if `batch != 1` — a multi-image batch has no per-image
    /// external split.
    #[must_use]
    pub fn into_layer_stats(self) -> LayerStats {
        assert_eq!(self.batch, 1, "into_layer_stats requires a batch of 1");
        LayerStats {
            shape: self.shape,
            breakdown: self.breakdown,
            cycles: self.cycles,
            dwc_activity: self.dwc_activity,
            pwc_activity: self.pwc_activity,
            nonconv_ops: self.nonconv_ops,
            input_zero: self.input_zero,
            mid_zero: self.mid_zero,
            out_zero: self.out_zero,
            external: self.external,
            onchip: self.onchip,
            intermediate: self.intermediate,
            psum: self.psum,
        }
    }
}

/// Statistics of a full network run over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNetworkStats {
    /// Batch size `N ≥ 1`.
    pub batch: usize,
    /// Per-layer batch statistics, in layer order.
    pub layers: Vec<BatchLayerStats>,
}

impl BatchNetworkStats {
    /// Total cycles over all layers and images.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Cycles per image.
    #[must_use]
    pub fn cycles_per_image(&self) -> u64 {
        self.total_cycles() / self.batch as u64
    }

    /// Total external traffic over the batch, in bytes.
    #[must_use]
    pub fn external_total(&self) -> u64 {
        self.layers.iter().map(|l| l.external.total()).sum()
    }

    /// Total external weight + offline-parameter traffic over the batch.
    #[must_use]
    pub fn external_weight_total(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.external.weight_reads + l.external.param_reads)
            .sum()
    }

    /// External bytes per image.
    #[must_use]
    pub fn external_per_image(&self) -> f64 {
        self.external_total() as f64 / self.batch as f64
    }

    /// External weight bytes per image — the figure the batch sweep plots,
    /// strictly decreasing in `N` under [`WeightResidency::PerBatch`].
    #[must_use]
    pub fn weight_bytes_per_image(&self) -> f64 {
        self.external_weight_total() as f64 / self.batch as f64
    }
}

/// Builds a [`LayerStats`] analytically — same accounting as the functional
/// simulator (verified by equality tests), but without executing the layer.
/// Zero *fractions* are taken from the caller (e.g. the sparsity profile or
/// a previous run); engine zero-slot counts are estimated from them.
///
/// Used by the power-model calibration, which needs full-size statistics
/// that would otherwise require a width-1.0 simulation per tweak.
///
/// # Panics
///
/// Panics if the layer does not map onto the configuration (dims must be
/// multiples of the tile sizes).
#[must_use]
pub fn synthetic_layer_stats(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    input_zero: f64,
    mid_zero: f64,
    out_zero: f64,
) -> LayerStats {
    synthetic_batch_layer_stats(
        shape,
        cfg,
        1,
        WeightResidency::PerImage,
        input_zero,
        mid_zero,
        out_zero,
    )
    .into_layer_stats()
}

/// Builds a [`BatchLayerStats`] analytically for a batch of `n` images —
/// the same accounting as [`crate::Edea::run_batch`]'s functional schedule
/// (verified by equality tests) without executing anything.
///
/// Engine streaming traffic (ifmap reads, intermediate transfers, psum
/// accumulation, ofmap writes) scales with `n`; external weight and
/// offline-parameter fetches — and the register loads they fill — are paid
/// once per batch under [`WeightResidency::PerBatch`].
///
/// # Panics
///
/// Panics if `n` is zero or the layer does not map onto the configuration.
#[must_use]
pub fn synthetic_batch_layer_stats(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    n: usize,
    residency: WeightResidency,
    input_zero: f64,
    mid_zero: f64,
    out_zero: f64,
) -> BatchLayerStats {
    assert!(n > 0, "batch must be non-empty");
    let t = cfg.tile;
    assert_eq!(shape.d_in % t.td, 0, "d_in must be a multiple of Td");
    assert_eq!(shape.k_out % t.tk, 0, "k_out must be a multiple of Tk");
    let breakdown = crate::timing::layer_cycles(shape, cfg);
    let out = shape.out_spatial();
    let nb = n as u64;
    // Weight fetches amortize; everything per-image scales with n.
    let fetches = match residency {
        WeightResidency::PerImage => nb,
        WeightResidency::PerBatch => 1,
    };
    let passes = (shape.d_in / t.td) as u64;
    let kernel_tiles = (shape.k_out / t.tk) as u64;
    let tr = (t.tn - 1) * shape.stride + shape.kernel;
    let tc = (t.tm - 1) * shape.stride + shape.kernel;

    // External traffic (mirrors accelerator.rs):
    let weight_reads = fetches * crate::schedule::layer_weight_fetch_bytes(shape, cfg);
    let param_reads = fetches * crate::schedule::layer_param_fetch_bytes(shape);
    let mut ifmap_reads = 0u64;
    let mut ifmap_slice_writes = 0u64;
    for portion in crate::schedule::portions(out, cfg.portion_limit) {
        let (_, _, rows, cols) =
            portion.input_region(shape.stride, shape.kernel, shape.pad(), shape.in_spatial);
        let slice = (rows * cols * t.td) as u64;
        ifmap_reads += nb * passes * slice;
        ifmap_slice_writes += nb * passes * slice;
    }
    // A residual-add stage streams the saved block input (one ofmap-sized
    // map per image) in from external memory at the drain.
    if shape.residual_add {
        ifmap_reads += nb * shape.ofmap_elems();
    }
    let writes = nb * shape.ofmap_elems();

    // On-chip traffic:
    let dwc_inv = nb * breakdown.dwc_busy;
    let pwc_inv = nb * breakdown.pwc_busy;
    // Spatial-tile visits (equals DWC invocations on a Dsc stage; a
    // PwcOnly stage still extracts each tile from the ifmap buffer).
    let st_inv = nb * breakdown.spatial_tiles * passes;
    let tile_bytes = (t.tn * t.tm * t.td) as u64;
    let psum_word = (t.tk * t.tn * t.tm * 4) as u64;
    // Per spatial tile the window is read from the ifmap buffer; a
    // PwcOnly stage additionally re-reads the tile once per kernel tile
    // (the intermediate buffer is bypassed).
    let ifmap_buf_reads = st_inv * (tr * tc * t.td) as u64
        + match shape.op {
            StageOp::Dsc => 0,
            StageOp::PwcOnly => pwc_inv * tile_bytes,
        };
    // Register loads at initiation follow the residency: resident weights
    // skip the per-image reload of the weight/offline registers. PwcOnly
    // stages load neither the DWC weight slice nor the DWC-side
    // Non-Conv parameters.
    let (dwcw_reads, offline_reads) = match shape.op {
        StageOp::Dsc => (
            fetches * breakdown.portions * passes * (shape.kernel * shape.kernel * t.td) as u64,
            fetches * breakdown.portions * passes * 6 * t.td as u64,
        ),
        StageOp::PwcOnly => (0, 0),
    };
    let inter_writes = dwc_inv * tile_bytes;
    let inter_reads = match shape.op {
        StageOp::Dsc => pwc_inv * tile_bytes,
        StageOp::PwcOnly => 0,
    };
    let pwcw_reads = pwc_inv * (t.td * t.tk) as u64;
    // psum: read-modify-write except the first pass; plus the drain read.
    let psum_reads = pwc_inv.saturating_sub(nb * breakdown.spatial_tiles * kernel_tiles)
        * psum_word
        + nb * shape.ofmap_elems() * 4;
    let psum_writes = pwc_inv * psum_word;
    let onchip_fills = fetches
        * (shape.dwc_params() // dwc weight fill (zero for PwcOnly)
            + crate::schedule::layer_param_fetch_bytes(shape) // offline fill
            + breakdown.portions * passes * (t.td * shape.k_out) as u64) // pwc weight fills
        + ifmap_slice_writes;

    let est = |slots: u64, z: f64| (slots as f64 * z).round() as u64;
    BatchLayerStats {
        shape: *shape,
        batch: n,
        residency,
        breakdown,
        cycles: nb * breakdown.total(),
        dwc_activity: EngineActivity {
            mac_slots: nb * shape.dwc_macs(),
            zero_act_slots: est(nb * shape.dwc_macs(), input_zero),
            zero_weight_slots: 0,
        },
        pwc_activity: EngineActivity {
            mac_slots: nb * shape.pwc_macs(),
            zero_act_slots: est(nb * shape.pwc_macs(), mid_zero),
            zero_weight_slots: 0,
        },
        // Every intermediate element passes the Non-Conv once, every output
        // element once at the drain.
        nonconv_ops: nb * (shape.intermediate_elems() + shape.ofmap_elems()),
        input_zero,
        mid_zero,
        out_zero,
        external: ExternalMemory {
            weight_reads,
            param_reads,
            ifmap_reads,
            writes,
        },
        onchip: BufferTraffic {
            reads: ifmap_buf_reads
                + dwcw_reads
                + offline_reads
                + inter_reads
                + pwcw_reads
                + psum_reads,
            writes: onchip_fills + inter_writes + psum_writes,
        },
        intermediate: BufferTraffic {
            reads: inter_reads,
            writes: inter_writes,
        },
        psum: BufferTraffic {
            reads: psum_reads,
            writes: psum_writes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    #[test]
    fn buffer_traffic_totals() {
        let t = BufferTraffic {
            reads: 3,
            writes: 4,
        };
        assert_eq!(t.total(), 7);
    }

    #[test]
    fn batch_of_one_matches_single_image_stats() {
        let cfg = EdeaConfig::paper();
        for l in mobilenet_v1_cifar10() {
            let single = synthetic_layer_stats(&l, &cfg, 0.3, 0.5, 0.6);
            for residency in [WeightResidency::PerImage, WeightResidency::PerBatch] {
                let b = synthetic_batch_layer_stats(&l, &cfg, 1, residency, 0.3, 0.5, 0.6);
                assert_eq!(b.clone().into_layer_stats(), single, "layer {}", l.index);
                assert_eq!(b.cycles_per_image(), single.cycles);
            }
        }
    }

    #[test]
    fn per_image_residency_scales_everything_by_n() {
        let cfg = EdeaConfig::paper();
        let l = mobilenet_v1_cifar10()[3];
        let one =
            synthetic_batch_layer_stats(&l, &cfg, 1, WeightResidency::PerImage, 0.3, 0.5, 0.6);
        let four =
            synthetic_batch_layer_stats(&l, &cfg, 4, WeightResidency::PerImage, 0.3, 0.5, 0.6);
        assert_eq!(four.cycles, 4 * one.cycles);
        assert_eq!(four.external.weight_reads, 4 * one.external.weight_reads);
        assert_eq!(four.external.ifmap_reads, 4 * one.external.ifmap_reads);
        assert_eq!(four.external.writes, 4 * one.external.writes);
        assert_eq!(four.onchip.reads, 4 * one.onchip.reads);
        assert_eq!(four.psum.reads, 4 * one.psum.reads);
    }

    #[test]
    fn resident_weights_amortize_only_weight_streams() {
        let cfg = EdeaConfig::paper();
        let l = mobilenet_v1_cifar10()[6];
        let one =
            synthetic_batch_layer_stats(&l, &cfg, 1, WeightResidency::PerBatch, 0.3, 0.5, 0.6);
        let eight =
            synthetic_batch_layer_stats(&l, &cfg, 8, WeightResidency::PerBatch, 0.3, 0.5, 0.6);
        // Amortized: weight and parameter fetches identical to one image.
        assert_eq!(eight.external.weight_reads, one.external.weight_reads);
        assert_eq!(eight.external.param_reads, one.external.param_reads);
        // Per-image streams still scale.
        assert_eq!(eight.external.ifmap_reads, 8 * one.external.ifmap_reads);
        assert_eq!(eight.external.writes, 8 * one.external.writes);
        assert_eq!(eight.cycles, 8 * one.cycles);
        // Per-image weight bytes strictly decrease.
        assert!(eight.weight_bytes_per_image() < one.weight_bytes_per_image());
    }

    #[test]
    fn network_weight_totals_sum_layers() {
        let cfg = EdeaConfig::paper();
        let layers: Vec<BatchLayerStats> = mobilenet_v1_cifar10()
            .iter()
            .map(|l| {
                synthetic_batch_layer_stats(l, &cfg, 4, WeightResidency::PerBatch, 0.3, 0.5, 0.6)
            })
            .collect();
        let net = BatchNetworkStats {
            batch: 4,
            layers: layers.clone(),
        };
        let want: u64 = layers
            .iter()
            .map(|l| l.external.weight_reads + l.external.param_reads)
            .sum();
        assert_eq!(net.external_weight_total(), want);
        assert!((net.weight_bytes_per_image() - want as f64 / 4.0).abs() < 1e-9);
        assert_eq!(net.cycles_per_image() * 4, net.total_cycles());
    }
}
