//! Execution statistics collected by the functional simulator.

use edea_nn::workload::LayerShape;

use crate::config::EdeaConfig;
use crate::engine::EngineActivity;
use crate::timing::CycleBreakdown;

/// Per-buffer byte counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferTraffic {
    /// Bytes read.
    pub reads: u64,
    /// Bytes written.
    pub writes: u64,
}

impl BufferTraffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Complete statistics of one layer executed on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// The layer executed.
    pub shape: LayerShape,
    /// Cycle breakdown from the timing model (the functional schedule is
    /// cross-checked against it).
    pub breakdown: CycleBreakdown,
    /// Total cycles.
    pub cycles: u64,
    /// DWC engine activity (all invocations merged).
    pub dwc_activity: EngineActivity,
    /// PWC engine activity.
    pub pwc_activity: EngineActivity,
    /// Non-Conv operations (both boundaries).
    pub nonconv_ops: u64,
    /// Zero fraction of the layer input codes.
    pub input_zero: f64,
    /// Zero fraction of the intermediate (PWC input) codes — Fig. 11's
    /// "DWC zero percentage".
    pub mid_zero: f64,
    /// Zero fraction of the output codes — Fig. 11's "PWC zero percentage".
    pub out_zero: f64,
    /// External-memory traffic.
    pub external: BufferTraffic,
    /// On-chip SRAM traffic (all buffers).
    pub onchip: BufferTraffic,
    /// Intermediate-buffer traffic alone (the "direct data transfer").
    pub intermediate: BufferTraffic,
    /// Psum register-file traffic alone (accumulation read-modify-write).
    pub psum: BufferTraffic,
}

impl LayerStats {
    /// Useful MAC operations (= workload MACs; the engines never idle
    /// partially within a cycle).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.dwc_activity.mac_slots + self.pwc_activity.mac_slots
    }

    /// Throughput in GOPS at the configured clock.
    #[must_use]
    pub fn throughput_gops(&self, cfg: &EdeaConfig) -> f64 {
        2.0 * self.total_macs() as f64 / (self.cycles as f64 * cfg.period_ns())
    }

    /// Latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, cfg: &EdeaConfig) -> f64 {
        self.cycles as f64 * cfg.period_ns()
    }
}

/// Statistics of a full network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Per-layer statistics, in layer order.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Total cycles over all layers.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerStats::total_macs).sum()
    }

    /// Ops-weighted average throughput in GOPS.
    #[must_use]
    pub fn average_gops(&self, cfg: &EdeaConfig) -> f64 {
        2.0 * self.total_macs() as f64 / (self.total_cycles() as f64 * cfg.period_ns())
    }

    /// Total external traffic in bytes.
    #[must_use]
    pub fn external_total(&self) -> u64 {
        self.layers.iter().map(|l| l.external.total()).sum()
    }
}

/// Builds a [`LayerStats`] analytically — same accounting as the functional
/// simulator (verified by equality tests), but without executing the layer.
/// Zero *fractions* are taken from the caller (e.g. the sparsity profile or
/// a previous run); engine zero-slot counts are estimated from them.
///
/// Used by the power-model calibration, which needs full-size statistics
/// that would otherwise require a width-1.0 simulation per tweak.
///
/// # Panics
///
/// Panics if the layer does not map onto the configuration (dims must be
/// multiples of the tile sizes).
#[must_use]
pub fn synthetic_layer_stats(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    input_zero: f64,
    mid_zero: f64,
    out_zero: f64,
) -> LayerStats {
    let t = cfg.tile;
    assert_eq!(shape.d_in % t.td, 0, "d_in must be a multiple of Td");
    assert_eq!(shape.k_out % t.tk, 0, "k_out must be a multiple of Tk");
    let breakdown = crate::timing::layer_cycles(shape, cfg);
    let out = shape.out_spatial();
    let passes = (shape.d_in / t.td) as u64;
    let kernel_tiles = (shape.k_out / t.tk) as u64;
    let tr = (t.tn - 1) * shape.stride + shape.kernel;
    let tc = (t.tm - 1) * shape.stride + shape.kernel;

    // External traffic (mirrors accelerator.rs):
    let mut ext_reads = (shape.kernel * shape.kernel * shape.d_in) as u64 // DWC weights
        + 6 * (shape.d_in + shape.k_out) as u64; // offline parameters
    let mut ifmap_slice_writes = 0u64;
    for portion in crate::schedule::portions(out, cfg.portion_limit) {
        let (_, _, rows, cols) =
            portion.input_region(shape.stride, shape.kernel, shape.pad(), shape.in_spatial);
        let slice = (rows * cols * t.td) as u64;
        ext_reads += passes * (slice + (t.td * shape.k_out) as u64);
        ifmap_slice_writes += passes * slice;
    }
    let ext_writes = shape.ofmap_elems();

    // On-chip traffic:
    let dwc_inv = breakdown.dwc_busy;
    let pwc_inv = breakdown.pwc_busy;
    let tile_bytes = (t.tn * t.tm * t.td) as u64;
    let psum_word = (t.tk * t.tn * t.tm * 4) as u64;
    let ifmap_reads = dwc_inv * (tr * tc * t.td) as u64;
    let dwcw_reads = breakdown.portions * passes * (shape.kernel * shape.kernel * t.td) as u64;
    let offline_reads = breakdown.portions * passes * 6 * t.td as u64;
    let inter_writes = dwc_inv * tile_bytes;
    let inter_reads = pwc_inv * tile_bytes;
    let pwcw_reads = pwc_inv * (t.td * t.tk) as u64;
    // psum: read-modify-write except the first pass; plus the drain read.
    let psum_reads = pwc_inv.saturating_sub(breakdown.spatial_tiles * kernel_tiles) * psum_word
        + shape.ofmap_elems() * 4;
    let psum_writes = pwc_inv * psum_word;
    let onchip_fills = (shape.kernel * shape.kernel * shape.d_in) as u64 // dwc weight fill
        + 6 * (shape.d_in + shape.k_out) as u64 // offline fill
        + ifmap_slice_writes
        + breakdown.portions * passes * (t.td * shape.k_out) as u64; // pwc weight fills

    let est = |slots: u64, z: f64| (slots as f64 * z).round() as u64;
    LayerStats {
        shape: *shape,
        breakdown,
        cycles: breakdown.total(),
        dwc_activity: EngineActivity {
            mac_slots: shape.dwc_macs(),
            zero_act_slots: est(shape.dwc_macs(), input_zero),
            zero_weight_slots: 0,
        },
        pwc_activity: EngineActivity {
            mac_slots: shape.pwc_macs(),
            zero_act_slots: est(shape.pwc_macs(), mid_zero),
            zero_weight_slots: 0,
        },
        // Every intermediate element passes the Non-Conv once, every output
        // element once at the drain.
        nonconv_ops: shape.intermediate_elems() + shape.ofmap_elems(),
        input_zero,
        mid_zero,
        out_zero,
        external: BufferTraffic {
            reads: ext_reads,
            writes: ext_writes,
        },
        onchip: BufferTraffic {
            reads: ifmap_reads + dwcw_reads + offline_reads + inter_reads + pwcw_reads + psum_reads,
            writes: onchip_fills + inter_writes + psum_writes,
        },
        intermediate: BufferTraffic {
            reads: inter_reads,
            writes: inter_writes,
        },
        psum: BufferTraffic {
            reads: psum_reads,
            writes: psum_writes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_traffic_totals() {
        let t = BufferTraffic {
            reads: 3,
            writes: 4,
        };
        assert_eq!(t.total(), 7);
    }
}
