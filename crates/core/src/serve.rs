//! The serving layer: long-lived backends and a deterministic batch-forming
//! scheduler over [`Edea::run_batch`].
//!
//! The paper's direct-data-transfer argument pays off when the accelerator
//! is kept busy with a *stream* of images, not one-shot calls. This module
//! provides the session abstraction that turns the one-shot simulator into
//! a serving substrate:
//!
//! * [`Backend`] — anything that can execute a formed batch and report its
//!   service cost: the cycle-accurate [`SimulatorBackend`] over
//!   [`Edea::run_batch`], the bit-exact reference [`GoldenBackend`] over
//!   `edea-nn`'s executor, and the outputs-free [`AnalyticBackend`] for
//!   capacity planning and load sweeps.
//! * [`Request`] / [`Response`] — one image in, one image out, stamped with
//!   arrival / dispatch / completion ticks of the simulated clock.
//! * [`Scheduler`] — drains a request queue into batches under a
//!   [`Policy`] (`max_batch` + `max_wait` ticks) and reports per-request
//!   latency plus aggregate throughput/SLO statistics ([`ServeReport`]).
//!
//! Everything runs on a **simulated clock**: one tick is one accelerator
//! cycle, service times come from the backend's cycle accounting, and no
//! wall time is ever consulted — the whole serving simulation is a pure
//! function of `(requests, policy, backend)`, so batch boundaries and
//! statistics are bit-reproducible (the determinism guard enforces this).
//!
//! Batching changes *when weight tiles cross the external interface*, never
//! what is computed: every [`Response::output`] is bit-identical to running
//! the same input through [`Edea::run_network`], while
//! [`ServeReport::weight_bytes_per_image`] falls as batches form.
//!
//! # Example
//!
//! ```
//! use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy, Request, Scheduler};
//! use edea_core::EdeaConfig;
//! use edea_nn::workload::mobilenet_v1_cifar10;
//! use edea_tensor::Tensor3;
//!
//! let cfg = EdeaConfig::paper();
//! let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &cfg)?;
//! let (d, h, w) = backend.input_shape();
//! let ticks = arrivals::poisson(8, 50_000.0, 7);
//! let inputs = (0..8).map(|_| Tensor3::<i8>::zeros(d, h, w)).collect();
//! let requests = Request::stream(&ticks, inputs)?;
//! let report = Scheduler::new(Policy::new(4, 100_000)?).serve(&backend, requests)?;
//! assert_eq!(report.responses.len(), 8);
//! # Ok::<(), edea_core::CoreError>(())
//! ```

use std::sync::Mutex;

use edea_nn::executor;
use edea_nn::quantize::QuantizedDscNetwork;
use edea_nn::workload::{LayerShape, NetworkId};
use edea_tensor::{Batch, Tensor3};

use crate::accelerator::{BatchRun, Edea, NetworkRun};
use crate::config::EdeaConfig;
use crate::plan::NetworkPlan;
use crate::schedule::WeightResidency;
use crate::scratch::TileScratch;
use crate::stats::synthetic_batch_layer_stats;
use crate::CoreError;

/// Checks that every layer of a network maps onto the engine geometry,
/// that the layers chain (each output feeds the next input), and that
/// inverted-residual skips pair up: every `residual_add` stage consumes a
/// prior `residual_save` whose saved map matches the add stage's ofmap.
fn validate_network(shapes: &[LayerShape], cfg: &EdeaConfig) -> Result<(), CoreError> {
    if shapes.is_empty() {
        return Err(CoreError::UnsupportedShape {
            detail: "network must contain at least one layer".into(),
        });
    }
    for s in shapes {
        crate::schedule::check_layer_geometry(s, cfg)?;
    }
    for pair in shapes.windows(2) {
        if pair[1].d_in != pair[0].k_out || pair[1].in_spatial != pair[0].out_spatial() {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer {} input ({}, {}) does not chain from layer {} output ({}, {})",
                    pair[1].index,
                    pair[1].d_in,
                    pair[1].in_spatial,
                    pair[0].index,
                    pair[0].k_out,
                    pair[0].out_spatial()
                ),
            });
        }
    }
    // Residual pairing: save-then-add, with matching geometry (the saved
    // block input is summed elementwise into the add stage's ofmap).
    let mut saved: Option<(usize, usize, usize)> = None; // (index, channels, spatial)
    for s in shapes {
        if s.residual_save {
            saved = Some((s.index, s.d_in, s.in_spatial));
        }
        if s.residual_add {
            let Some((i, d, sp)) = saved.take() else {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: residual add without a preceding residual save",
                        s.index
                    ),
                });
            };
            if s.k_out != d || s.out_spatial() != sp {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: residual add ofmap ({}, {}) does not match the map \
                         saved at layer {i} ({d}, {sp})",
                        s.index,
                        s.k_out,
                        s.out_spatial()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Analytic service-cost model of a network on a configuration, derived
/// from the same accounting as the functional simulator
/// ([`synthetic_batch_layer_stats`], equality-tested against it).
///
/// Under [`WeightResidency::PerBatch`] a dispatch of `N` images costs
/// `N ×` the per-image cycles (the 9-cycle initiation is bound by the
/// per-image ifmap fetch, so residency saves traffic, not cycles), one
/// batch-wide weight + offline-parameter fetch, and `N ×` the per-image
/// streaming bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    per_image_cycles: u64,
    weight_bytes: u64,
    stream_bytes: u64,
}

impl CostModel {
    /// Builds the cost model for a layer chain on `cfg`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if a layer does not map onto the
    /// engine geometry or the chain is inconsistent.
    pub fn for_network(shapes: &[LayerShape], cfg: &EdeaConfig) -> Result<Self, CoreError> {
        validate_network(shapes, cfg)?;
        let mut per_image_cycles = 0u64;
        let mut weight_bytes = 0u64;
        let mut stream_bytes = 0u64;
        for s in shapes {
            let one =
                synthetic_batch_layer_stats(s, cfg, 1, WeightResidency::PerBatch, 0.0, 0.0, 0.0);
            per_image_cycles += one.cycles;
            weight_bytes += one.external.weight_reads + one.external.param_reads;
            stream_bytes += one.external.ifmap_reads + one.external.writes;
        }
        Ok(Self {
            per_image_cycles,
            weight_bytes,
            stream_bytes,
        })
    }

    /// Cycles to serve one image (= ticks of the simulated clock).
    #[must_use]
    pub fn per_image_cycles(&self) -> u64 {
        self.per_image_cycles
    }

    /// Cycles to serve a batch of `n` images.
    #[must_use]
    pub fn batch_cycles(&self, n: usize) -> u64 {
        n as u64 * self.per_image_cycles
    }

    /// External weight + offline-parameter bytes per dispatch — paid once
    /// per batch regardless of its size (the amortizable part).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// External streaming bytes (ifmap reads + ofmap writes) per image —
    /// the inherently per-image part.
    #[must_use]
    pub fn stream_bytes_per_image(&self) -> u64 {
        self.stream_bytes
    }

    /// Total external bytes for a dispatch of `n` images.
    #[must_use]
    pub fn batch_external_bytes(&self, n: usize) -> u64 {
        self.weight_bytes + n as u64 * self.stream_bytes
    }
}

/// Per-layer execution summary attached to a [`BackendRun`] for telemetry.
///
/// The layer cycles sum to the run's total cycles
/// (`BatchNetworkStats::total_cycles` is exactly that sum), so telemetry
/// layer spans tile the batch span with no gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer index within the network.
    pub index: usize,
    /// Modeled cycles this layer took for the whole batch.
    pub cycles: u64,
    /// MAC slots exercised (DWC + PWC engines).
    pub mac_slots: u64,
    /// Slots gated by zero activations (DWC + PWC engines).
    pub gated_slots: u64,
    /// External bytes this layer moved for the whole batch.
    pub external_bytes: u64,
}

/// Result of a backend executing one formed batch.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Per-request outputs, in batch order.
    pub outputs: Batch<i8>,
    /// Service time of the batch in cycles (= scheduler ticks).
    pub cycles: u64,
    /// External weight + offline-parameter bytes for the whole batch.
    pub weight_bytes: u64,
    /// Total external bytes for the whole batch.
    pub external_bytes: u64,
    /// Per-layer spans for telemetry, in execution order. Empty for
    /// backends that do not model per-layer time (golden, analytic);
    /// the simulator fills it from its batched schedule statistics.
    pub layers: Vec<LayerTrace>,
}

/// An execution engine the [`Scheduler`] can dispatch formed batches to.
///
/// Implementations must be deterministic and must report service cycles
/// consistently with the analytic [`CostModel`] so that batch boundaries
/// are identical across backends (tested in the serving suite).
///
/// Backends are `Sync` so a parallel [`crate::pool::Pool`] can execute
/// different workers' batches on different host threads (every provided
/// backend is immutable-by-`&self`; [`SimulatorBackend`] guards its scratch
/// arena internally).
pub trait Backend: Sync {
    /// Human-readable backend name (appears in reports).
    fn name(&self) -> &'static str;

    /// The accelerator configuration whose clock paces the simulation.
    fn config(&self) -> &EdeaConfig;

    /// The `(channels, height, width)` every request input must have.
    fn input_shape(&self) -> (usize, usize, usize);

    /// Executes one formed batch.
    ///
    /// # Errors
    ///
    /// Backend-specific: shape or capacity errors from the underlying
    /// execution path.
    fn run(&self, inputs: &Batch<i8>) -> Result<BackendRun, CoreError>;

    /// The service cycles a dispatch of `batch` images *will* report, if
    /// this backend can predict them without executing — the hook that
    /// lets a parallel pool keep its dispatch loop serial on the simulated
    /// clock while deferring the actual execution to worker threads.
    ///
    /// The contract is all-or-nothing: return `Some` only if **every**
    /// [`Backend::run`] on a batch of `batch` images reports exactly these
    /// cycles (the pool enforces the equality and fails the run on a
    /// mismatch). The default `None` opts out; the pool then executes
    /// batches inline at dispatch time, serially. All provided backends
    /// are paced by the equality-tested [`CostModel`] and return `Some`.
    fn dispatch_cycles(&self, batch: usize) -> Option<u64> {
        let _ = batch;
        None
    }

    /// The input shape requests for `network` must have, or `None` if this
    /// backend does not serve that network. The default serves exactly
    /// [`NetworkId::PRIMARY`] — a single-model backend needs no override.
    fn input_shape_for(&self, network: NetworkId) -> Option<(usize, usize, usize)> {
        (network == NetworkId::PRIMARY).then(|| self.input_shape())
    }

    /// Executes one formed batch of `network` requests. The default
    /// delegates [`NetworkId::PRIMARY`] to [`Backend::run`] and rejects
    /// every other id — multi-model backends override it with a
    /// per-network execution path.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRequest`] naming an unserved network id, plus
    /// whatever [`Backend::run`] can return.
    fn run_for(&self, network: NetworkId, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
        if network != NetworkId::PRIMARY {
            return Err(CoreError::InvalidRequest {
                detail: format!("unknown network id {network}"),
            });
        }
        self.run(inputs)
    }

    /// [`Backend::dispatch_cycles`], per network. Same all-or-nothing
    /// contract, checked per network actually present in the stream.
    fn dispatch_cycles_for(&self, network: NetworkId, batch: usize) -> Option<u64> {
        if network == NetworkId::PRIMARY {
            self.dispatch_cycles(batch)
        } else {
            None
        }
    }

    /// External bytes to (re)load `network`'s weights and offline
    /// parameters when a worker switches its resident model to it — the
    /// model-switch cost of mixed-model serving, accounted by the pool as
    /// a traffic category of its own (never folded into
    /// [`BackendRun::external_bytes`]). Single-model backends never
    /// switch; the default is 0.
    fn switch_bytes(&self, network: NetworkId) -> u64 {
        let _ = network;
        0
    }
}

/// One network a [`SimulatorBackend`] serves: the quantized model, its
/// pre-sliced weight plan and its analytic cost model, built together.
#[derive(Debug, Clone)]
struct ModelEntry {
    id: NetworkId,
    qnet: QuantizedDscNetwork,
    plan: NetworkPlan,
    cost: CostModel,
}

/// The cycle-accurate backend: dispatches to the accelerator's planned
/// batch path and reports the *measured* cycle and traffic accounting of
/// the batched weight-residency schedule. The pre-sliced weight plan
/// ([`NetworkPlan`]) is built once at construction and one
/// [`TileScratch`] is reused across requests, so a serving session
/// neither re-slices weights nor re-grows tile buffers per dispatch.
///
/// A backend can serve **several networks**: register more with
/// [`SimulatorBackend::with_model`] (each keeps its own plan and cost
/// model; all must share the primary's input shape, the shared-stem
/// requirement that lets one pool route mixed traffic). Dispatching a
/// batch of a non-resident network costs that network's weight refetch,
/// accounted by the pool as model-switch traffic.
#[derive(Debug)]
pub struct SimulatorBackend {
    edea: Edea,
    /// Entry 0 is the primary network ([`NetworkId::PRIMARY`]).
    models: Vec<ModelEntry>,
    scratch: Mutex<TileScratch>,
}

impl Clone for SimulatorBackend {
    fn clone(&self) -> Self {
        Self {
            edea: self.edea.clone(),
            models: self.models.clone(),
            // Scratch is pure working memory: a clone starts empty and
            // grows to steady state on its first request.
            scratch: Mutex::new(TileScratch::new()),
        }
    }
}

impl SimulatorBackend {
    /// Builds a simulator backend owning the accelerator, the primary
    /// network ([`NetworkId::PRIMARY`]) and its pre-sliced weight plan.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if the network does not map onto the
    /// accelerator's engine geometry.
    pub fn new(edea: Edea, qnet: QuantizedDscNetwork) -> Result<Self, CoreError> {
        let entry = Self::entry_for(&edea, NetworkId::PRIMARY, qnet)?;
        Ok(Self {
            edea,
            models: vec![entry],
            scratch: Mutex::new(TileScratch::new()),
        })
    }

    fn entry_for(
        edea: &Edea,
        id: NetworkId,
        qnet: QuantizedDscNetwork,
    ) -> Result<ModelEntry, CoreError> {
        let shapes: Vec<LayerShape> = qnet.layers().iter().map(|l| l.shape()).collect();
        let cost = CostModel::for_network(&shapes, edea.config())?;
        let plan = edea.plan_network(&qnet)?;
        Ok(ModelEntry {
            id,
            qnet,
            plan,
            cost,
        })
    }

    /// Registers another network under `id`, with its own plan and cost
    /// model. Requests carrying `id` route to it; everything else
    /// (including the single-model serve paths) is untouched.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if `id` is already registered or the
    ///   network's input shape differs from the primary's (one pool input
    ///   shape serves all models — the shared-stem requirement).
    /// * [`CoreError::UnsupportedShape`] if the network does not map onto
    ///   the accelerator's engine geometry.
    pub fn with_model(
        mut self,
        id: NetworkId,
        qnet: QuantizedDscNetwork,
    ) -> Result<Self, CoreError> {
        if self.models.iter().any(|m| m.id == id) {
            return Err(CoreError::InvalidConfig {
                detail: format!("network id {id} is already registered"),
            });
        }
        let entry = Self::entry_for(&self.edea, id, qnet)?;
        let s = entry.qnet.layers()[0].shape();
        let shape = (s.d_in, s.in_spatial, s.in_spatial);
        if shape != self.input_shape() {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "network {id} input shape {shape:?} != primary input shape {:?} \
                     (mixed-model serving requires a shared stem)",
                    self.input_shape()
                ),
            });
        }
        self.models.push(entry);
        Ok(self)
    }

    /// The networks this backend serves, primary first.
    #[must_use]
    pub fn networks(&self) -> Vec<NetworkId> {
        self.models.iter().map(|m| m.id).collect()
    }

    fn entry(&self, id: NetworkId) -> Option<&ModelEntry> {
        self.models.iter().find(|m| m.id == id)
    }

    fn entry_or_err(&self, id: NetworkId) -> Result<&ModelEntry, CoreError> {
        self.entry(id).ok_or_else(|| CoreError::InvalidRequest {
            detail: format!("unknown network id {id}"),
        })
    }

    /// The analytic cost model of the primary network (measured runs agree
    /// with it exactly; equality-tested).
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.models[0].cost
    }

    /// The analytic cost model of `network`, if registered.
    #[must_use]
    pub fn cost_of(&self, network: NetworkId) -> Option<&CostModel> {
        self.entry(network).map(|m| &m.cost)
    }

    /// The primary network being served.
    #[must_use]
    pub fn qnet(&self) -> &QuantizedDscNetwork {
        &self.models[0].qnet
    }

    /// The quantized network registered under `network`, if any.
    #[must_use]
    pub fn qnet_of(&self, network: NetworkId) -> Option<&QuantizedDscNetwork> {
        self.entry(network).map(|m| &m.qnet)
    }

    /// The accelerator instance executing the batches.
    #[must_use]
    pub fn accelerator(&self) -> &Edea {
        &self.edea
    }

    /// The primary network's pre-sliced weight plan, built once for the
    /// session.
    #[must_use]
    pub fn plan(&self) -> &NetworkPlan {
        &self.models[0].plan
    }

    /// Runs `f` with the session scratch, without ever blocking: the
    /// shared arena on the fast path, a fresh one under contention or
    /// after a poisoning panic (the buffers are plain working memory,
    /// always valid to reuse).
    fn with_scratch<R>(&self, f: impl FnOnce(&mut TileScratch) -> R) -> R {
        match self.scratch.try_lock() {
            Ok(mut g) => f(&mut g),
            Err(std::sync::TryLockError::Poisoned(p)) => f(&mut p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => f(&mut TileScratch::new()),
        }
    }

    /// Runs one input through the primary network on the cycle-accurate
    /// simulator, through the session's cached plan and reused scratch.
    /// No per-call identity check is needed: plan and network were built
    /// together in [`SimulatorBackend::new`] and are immutable.
    ///
    /// # Errors
    ///
    /// As [`Edea::run_network`].
    pub fn run_network(&self, input: &Tensor3<i8>) -> Result<NetworkRun, CoreError> {
        let m = &self.models[0];
        self.with_scratch(|scratch| {
            self.edea
                .run_network_planned_unchecked(&m.qnet, &m.plan, input, scratch)
        })
    }

    /// [`SimulatorBackend::run_network`] on a registered network.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRequest`] for an unknown id, else as
    /// [`Edea::run_network`].
    pub fn run_network_for(
        &self,
        network: NetworkId,
        input: &Tensor3<i8>,
    ) -> Result<NetworkRun, CoreError> {
        let m = self.entry_or_err(network)?;
        self.with_scratch(|scratch| {
            self.edea
                .run_network_planned_unchecked(&m.qnet, &m.plan, input, scratch)
        })
    }

    /// Runs a batch through the primary network's weight-residency
    /// schedule, through the session's cached plan and reused scratch (see
    /// [`SimulatorBackend::run_network`]).
    ///
    /// # Errors
    ///
    /// As [`Edea::run_batch`].
    pub fn run_batch(&self, inputs: &Batch<i8>) -> Result<BatchRun, CoreError> {
        self.run_batch_for(NetworkId::PRIMARY, inputs)
    }

    /// [`SimulatorBackend::run_batch`] on a registered network.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRequest`] for an unknown id, else as
    /// [`Edea::run_batch`].
    pub fn run_batch_for(
        &self,
        network: NetworkId,
        inputs: &Batch<i8>,
    ) -> Result<BatchRun, CoreError> {
        let m = self.entry_or_err(network)?;
        self.with_scratch(|scratch| {
            self.edea
                .run_batch_planned_unchecked(&m.qnet, &m.plan, inputs, scratch)
        })
    }
}

impl Backend for SimulatorBackend {
    fn name(&self) -> &'static str {
        "simulator"
    }

    fn config(&self) -> &EdeaConfig {
        self.edea.config()
    }

    fn input_shape(&self) -> (usize, usize, usize) {
        let s = self.models[0].qnet.layers()[0].shape();
        (s.d_in, s.in_spatial, s.in_spatial)
    }

    fn run(&self, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
        self.run_for(NetworkId::PRIMARY, inputs)
    }

    fn dispatch_cycles(&self, batch: usize) -> Option<u64> {
        // The measured batched schedule reports exactly the analytic
        // cycles (equality-tested in the serving suite).
        Some(self.cost().batch_cycles(batch))
    }

    fn input_shape_for(&self, network: NetworkId) -> Option<(usize, usize, usize)> {
        // Every registered model shares the primary's input shape
        // (enforced by `with_model`).
        self.entry(network).map(|_| self.input_shape())
    }

    fn run_for(&self, network: NetworkId, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
        let run = self.run_batch_for(network, inputs)?;
        let layers = run
            .stats
            .layers
            .iter()
            .map(|l| LayerTrace {
                index: l.shape.index,
                cycles: l.cycles,
                mac_slots: l.dwc_activity.mac_slots + l.pwc_activity.mac_slots,
                gated_slots: l.dwc_activity.zero_act_slots + l.pwc_activity.zero_act_slots,
                external_bytes: l.external.total(),
            })
            .collect();
        Ok(BackendRun {
            outputs: run.outputs,
            cycles: run.stats.total_cycles(),
            weight_bytes: run.stats.external_weight_total(),
            external_bytes: run.stats.external_total(),
            layers,
        })
    }

    fn dispatch_cycles_for(&self, network: NetworkId, batch: usize) -> Option<u64> {
        self.entry(network).map(|m| m.cost.batch_cycles(batch))
    }

    fn switch_bytes(&self, network: NetworkId) -> u64 {
        // Switching the resident model refetches the incoming network's
        // weights and offline parameters in full.
        self.entry(network).map_or(0, |m| m.cost.weight_bytes())
    }
}

/// The reference backend: outputs come from `edea-nn`'s golden int8
/// executor (the semantics the simulator is verified against), service
/// cost from the analytic [`CostModel`] of the same configuration — so a
/// schedule driven by this backend forms **identical batch boundaries** to
/// the simulator while executing the reference loop nests.
#[derive(Debug, Clone)]
pub struct GoldenBackend {
    qnet: QuantizedDscNetwork,
    cfg: EdeaConfig,
    cost: CostModel,
}

impl GoldenBackend {
    /// Builds a golden backend for `qnet`, costed as if running on `cfg`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if the network does not map onto
    /// `cfg`'s engine geometry (the cost model needs the mapping even
    /// though the reference execution itself would not).
    pub fn new(qnet: QuantizedDscNetwork, cfg: EdeaConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let shapes: Vec<LayerShape> = qnet.layers().iter().map(|l| l.shape()).collect();
        let cost = CostModel::for_network(&shapes, &cfg)?;
        Ok(Self { qnet, cfg, cost })
    }

    /// The analytic cost model pacing this backend.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

impl Backend for GoldenBackend {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn config(&self) -> &EdeaConfig {
        &self.cfg
    }

    fn input_shape(&self) -> (usize, usize, usize) {
        let s = self.qnet.layers()[0].shape();
        (s.d_in, s.in_spatial, s.in_spatial)
    }

    fn run(&self, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
        let exec = executor::try_run_batch(&self.qnet, inputs).map_err(|e| {
            CoreError::UnsupportedShape {
                detail: e.to_string(),
            }
        })?;
        Ok(BackendRun {
            outputs: exec.outputs(),
            cycles: self.cost.batch_cycles(inputs.len()),
            weight_bytes: self.cost.weight_bytes(),
            external_bytes: self.cost.batch_external_bytes(inputs.len()),
            layers: Vec::new(),
        })
    }

    fn dispatch_cycles(&self, batch: usize) -> Option<u64> {
        Some(self.cost.batch_cycles(batch))
    }
}

/// The capacity-planning backend: no network, no weights, no outputs —
/// service cost and traffic come from the analytic [`CostModel`] alone and
/// every "output" is an all-zero placeholder map. Use it for load sweeps
/// and property tests where only the scheduling behaviour matters; it is
/// orders of magnitude faster than executing the network.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    cfg: EdeaConfig,
    cost: CostModel,
    in_shape: (usize, usize, usize),
    out_shape: (usize, usize, usize),
}

impl AnalyticBackend {
    /// Builds an analytic backend for a layer chain on `cfg`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if a layer does not map onto the
    /// engine geometry or the chain is inconsistent.
    pub fn new(shapes: &[LayerShape], cfg: &EdeaConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let cost = CostModel::for_network(shapes, cfg)?;
        let first = &shapes[0];
        let last = &shapes[shapes.len() - 1];
        Ok(Self {
            cfg: cfg.clone(),
            cost,
            in_shape: (first.d_in, first.in_spatial, first.in_spatial),
            out_shape: (last.k_out, last.out_spatial(), last.out_spatial()),
        })
    }

    /// The analytic cost model pacing this backend.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

impl Backend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn config(&self) -> &EdeaConfig {
        &self.cfg
    }

    fn input_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    fn run(&self, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
        let (k, h, w) = self.out_shape;
        let outputs = Batch::from_fn(inputs.len(), |_| Tensor3::<i8>::zeros(k, h, w))
            // edea-lint: allow(panic-in-lib): the from_fn closure yields one fixed shape
            .expect("uniform placeholder outputs");
        Ok(BackendRun {
            outputs,
            cycles: self.cost.batch_cycles(inputs.len()),
            weight_bytes: self.cost.weight_bytes(),
            external_bytes: self.cost.batch_external_bytes(inputs.len()),
            layers: Vec::new(),
        })
    }

    fn dispatch_cycles(&self, batch: usize) -> Option<u64> {
        Some(self.cost.batch_cycles(batch))
    }
}

/// The batch-forming policy: dispatch when `max_batch` requests are queued,
/// or when the oldest queued request has waited `max_wait` ticks, whichever
/// comes first (and never before the accelerator is free).
///
/// `max_wait = 0` disables batching-by-waiting: every request dispatches as
/// soon as the accelerator is free, batching only what has already queued
/// up behind a busy accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Largest batch the scheduler may form (`≥ 1`).
    pub max_batch: usize,
    /// Longest a queue-head request may wait, in ticks, before the batch is
    /// dispatched regardless of its size.
    pub max_wait: u64,
}

impl Policy {
    /// Builds a validated policy.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `max_batch` is zero.
    pub fn new(max_batch: usize, max_wait: u64) -> Result<Self, CoreError> {
        let p = Self {
            max_batch,
            max_wait,
        };
        p.validate()?;
        Ok(p)
    }

    /// Checks the policy invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `max_batch` is zero.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_batch == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "policy max_batch must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One inference request: an input image stamped with its arrival tick and
/// the network it targets ([`NetworkId::PRIMARY`] unless the stream is
/// mixed-model).
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen identifier, unique within one `serve` call.
    pub id: u64,
    /// Arrival tick on the simulated clock.
    pub arrival: u64,
    /// The network this request targets. Backends that serve a single
    /// model only accept [`NetworkId::PRIMARY`].
    pub network: NetworkId,
    /// The quantized layer-0 input.
    pub input: Tensor3<i8>,
}

impl Request {
    /// Builds one request against the primary network.
    #[must_use]
    pub fn new(id: u64, arrival: u64, input: Tensor3<i8>) -> Self {
        Self::for_network(id, arrival, NetworkId::PRIMARY, input)
    }

    /// Builds one request against a specific network.
    #[must_use]
    pub fn for_network(id: u64, arrival: u64, network: NetworkId, input: Tensor3<i8>) -> Self {
        Self {
            id,
            arrival,
            network,
            input,
        }
    }

    /// Zips an arrival pattern with inputs into a request stream against
    /// the primary network, assigning ids `0..n` in order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRequest`] if the lengths differ.
    pub fn stream(arrivals: &[u64], inputs: Vec<Tensor3<i8>>) -> Result<Vec<Self>, CoreError> {
        if arrivals.len() != inputs.len() {
            return Err(CoreError::InvalidRequest {
                detail: format!(
                    "{} arrival ticks for {} inputs",
                    arrivals.len(),
                    inputs.len()
                ),
            });
        }
        Ok(arrivals
            .iter()
            .zip(inputs)
            .enumerate()
            .map(|(id, (&arrival, input))| Self::new(id as u64, arrival, input))
            .collect())
    }

    /// [`Request::stream`] with a per-request network id — the mixed-model
    /// traffic constructor.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRequest`] if the three lengths differ.
    pub fn stream_mixed(
        arrivals: &[u64],
        networks: &[NetworkId],
        inputs: Vec<Tensor3<i8>>,
    ) -> Result<Vec<Self>, CoreError> {
        if arrivals.len() != inputs.len() || networks.len() != inputs.len() {
            return Err(CoreError::InvalidRequest {
                detail: format!(
                    "{} arrival ticks and {} network ids for {} inputs",
                    arrivals.len(),
                    networks.len(),
                    inputs.len()
                ),
            });
        }
        Ok(arrivals
            .iter()
            .zip(networks)
            .zip(inputs)
            .enumerate()
            .map(|(id, ((&arrival, &network), input))| {
                Self::for_network(id as u64, arrival, network, input)
            })
            .collect())
    }
}

/// One served request: the output plus its full timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// Arrival tick (copied from the request).
    pub arrival: u64,
    /// Tick the carrying batch was dispatched.
    pub dispatched: u64,
    /// Tick the carrying batch completed.
    pub completed: u64,
    /// Index of the carrying batch in [`ServeReport::batches`].
    pub batch: usize,
    /// The network that served the request.
    pub network: NetworkId,
    /// The int8 network output.
    pub output: Tensor3<i8>,
}

impl Response {
    /// Ticks spent queued before dispatch.
    #[must_use]
    pub fn queue_ticks(&self) -> u64 {
        self.dispatched - self.arrival
    }

    /// End-to-end latency in ticks (arrival → completion).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }
}

/// One dispatched batch in a serve run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Batch index in dispatch order.
    pub index: usize,
    /// Number of requests in the batch.
    pub size: usize,
    /// Earliest arrival among the members.
    pub oldest_arrival: u64,
    /// Dispatch tick.
    pub dispatched: u64,
    /// Completion tick (`dispatched + cycles`).
    pub completed: u64,
    /// Service cycles reported by the backend.
    pub cycles: u64,
    /// The network the batch ran (batches are never mixed-network).
    pub network: NetworkId,
    /// External weight + offline-parameter bytes (paid once per batch).
    pub weight_bytes: u64,
    /// Total external bytes.
    pub external_bytes: u64,
    /// Model-switch traffic: the weight refetch paid because the worker's
    /// resident network differed from this batch's. Zero whenever the
    /// previous batch on the same worker ran the same network — so a
    /// single-model run reports zero everywhere. A category of its own,
    /// **not** folded into [`BatchRecord::external_bytes`].
    pub switch_bytes: u64,
}

/// Everything a serve run produced: per-request responses, per-batch
/// records, and aggregate throughput / latency / SLO statistics.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Name of the backend that executed the run.
    pub backend: String,
    /// The policy the scheduler ran under.
    pub policy: Policy,
    /// Responses in dispatch order (batch by batch, FIFO within a batch).
    pub responses: Vec<Response>,
    /// Batches in dispatch order.
    pub batches: Vec<BatchRecord>,
}

impl ServeReport {
    /// Looks a response up by request id.
    #[must_use]
    pub fn response(&self, id: u64) -> Option<&Response> {
        self.responses.iter().find(|r| r.id == id)
    }

    /// Completion tick of the last batch (0 for an empty run).
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.batches.last().map_or(0, |b| b.completed)
    }

    /// Mean formed-batch size.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.responses.len() as f64 / self.batches.len() as f64
    }

    /// External weight + offline-parameter bytes per served image — the
    /// amortization headline: equals the single-image figure when every
    /// batch has size 1 and falls toward `1/max_batch` of it as batches
    /// fill.
    #[must_use]
    pub fn weight_bytes_per_image(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let bytes: u64 = self.batches.iter().map(|b| b.weight_bytes).sum();
        bytes as f64 / self.responses.len() as f64
    }

    /// Total external bytes per served image.
    #[must_use]
    pub fn external_bytes_per_image(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let bytes: u64 = self.batches.iter().map(|b| b.external_bytes).sum();
        bytes as f64 / self.responses.len() as f64
    }

    /// Total model-switch traffic across all batches — the mixed-model
    /// serving cost headline. Zero for any single-model run.
    #[must_use]
    pub fn switch_bytes_total(&self) -> u64 {
        self.batches.iter().map(|b| b.switch_bytes).sum()
    }

    /// Mean end-to-end latency in ticks over the responses of one network
    /// (`None` when the run served none of its requests).
    #[must_use]
    pub fn mean_latency_for(&self, network: NetworkId) -> Option<f64> {
        let lat: Vec<u64> = self
            .responses
            .iter()
            .filter(|r| r.network == network)
            .map(Response::latency)
            .collect();
        if lat.is_empty() {
            return None;
        }
        Some(lat.iter().map(|&l| l as f64).sum::<f64>() / lat.len() as f64)
    }

    /// Mean end-to-end latency in ticks.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses
            .iter()
            .map(|r| r.latency() as f64)
            .sum::<f64>()
            / self.responses.len() as f64
    }

    /// Worst end-to-end latency in ticks.
    #[must_use]
    pub fn max_latency(&self) -> u64 {
        self.responses
            .iter()
            .map(Response::latency)
            .max()
            .unwrap_or(0)
    }

    /// Latency percentile in ticks, by the **nearest-rank** rule over the
    /// sorted latencies: the value at index `round(p/100 · (n−1))`, where
    /// `round` is half-away-from-zero ([`f64::round`]) — so at a half-index
    /// the *higher* rank wins (`p = 50` of two latencies returns the
    /// larger; for odd `n` it is the exact median). `p = 0` is the
    /// minimum, `p = 100` the maximum.
    ///
    /// `p` is clamped into `0.0..=100.0` (a NaN `p` reads as `0`); an
    /// empty report returns `0`, consistent with the rest of the
    /// empty-report convention (see [`ServeReport::slo_attainment`]).
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> u64 {
        if self.responses.is_empty() {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let mut lat: Vec<u64> = self.responses.iter().map(Response::latency).collect();
        lat.sort_unstable();
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        lat[idx.min(lat.len() - 1)]
    }

    /// Median end-to-end latency in ticks
    /// (= [`latency_percentile(50.0)`](ServeReport::latency_percentile)).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile end-to-end latency in ticks
    /// (= [`latency_percentile(95.0)`](ServeReport::latency_percentile)).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile end-to-end latency in ticks
    /// (= [`latency_percentile(99.0)`](ServeReport::latency_percentile)).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Fraction of requests whose latency met `slo` ticks.
    ///
    /// An empty report returns `0.0` — **every** aggregate statistic of an
    /// empty report is zero (mean/max latency, percentiles, batch size,
    /// bytes per image, throughput, and this attainment), so an idle
    /// window never reads as a vacuously *met* SLO.
    #[must_use]
    pub fn slo_attainment(&self, slo: u64) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().filter(|r| r.latency() <= slo).count() as f64
            / self.responses.len() as f64
    }

    /// Served images per second at `cfg`'s clock (images over the
    /// makespan). An empty report returns `0.0` (the empty-report
    /// convention of [`ServeReport::slo_attainment`]).
    #[must_use]
    pub fn throughput_images_per_second(&self, cfg: &EdeaConfig) -> f64 {
        if self.makespan() == 0 {
            return 0.0;
        }
        self.responses.len() as f64 / (self.makespan() as f64 * cfg.period_ns() * 1e-9)
    }
}

/// The deterministic batch-forming scheduler: a FIFO queue drained into a
/// single accelerator under a [`Policy`], on a simulated clock where one
/// tick is one accelerator cycle.
///
/// Dispatch rule — the accelerator being free at tick `t`, a batch of the
/// `min(queue, max_batch)` oldest requests dispatches at `t` when either
/// the queue holds `max_batch` requests, or the queue head has reached its
/// waiting deadline (`arrival + max_wait ≤ t`). Arrivals at or before a
/// dispatch tick join the queue first, so batch boundaries depend only on
/// the arrival pattern, the policy, and the backend's cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    policy: Policy,
}

impl Scheduler {
    /// Builds a scheduler with `policy`.
    #[must_use]
    pub fn new(policy: Policy) -> Self {
        Self { policy }
    }

    /// The policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Serves a request stream to completion on `backend`.
    ///
    /// Requests may be supplied in any order; they are served FIFO by
    /// `(arrival, id)`. The run is a pure function of its arguments.
    ///
    /// This is the single-worker case of the pool dispatch loop
    /// ([`crate::pool`]): the same event-driven simulation drives one
    /// backend here and N of them behind a
    /// [`Dispatcher`](crate::pool::Dispatcher) — a pool of one is
    /// bit-identical to this path under every dispatch policy.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the policy is invalid.
    /// * [`CoreError::InvalidRequest`] on a duplicate id or an input whose
    ///   shape does not match [`Backend::input_shape`].
    /// * Any error the backend returns for a dispatched batch.
    pub fn serve<B: Backend + ?Sized>(
        &self,
        backend: &B,
        requests: Vec<Request>,
    ) -> Result<ServeReport, CoreError> {
        self.serve_with(backend, requests, &crate::telemetry::Disabled)
    }

    /// [`Scheduler::serve`] with a telemetry sink observing the run.
    ///
    /// The sink receives the canonical event stream (see
    /// [`crate::telemetry`]); passing [`crate::telemetry::Disabled`] makes
    /// this identical to [`Scheduler::serve`] at zero extra cost.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::serve`].
    pub fn serve_with<B: Backend + ?Sized>(
        &self,
        backend: &B,
        requests: Vec<Request>,
        telemetry: &dyn crate::telemetry::Telemetry,
    ) -> Result<ServeReport, CoreError> {
        // A single backend has no cross-worker independence to exploit —
        // the one-worker event loop stays serial regardless of any
        // parallelism knob (batches on one worker are sequentially
        // dependent through its busy-until clock).
        let report = crate::pool::drive(
            &[backend],
            self.policy,
            crate::pool::DispatchPolicy::RoundRobin,
            requests,
            crate::par::Parallelism::serial(),
            telemetry,
        )?;
        Ok(report.serve)
    }
}

/// Deterministic arrival-pattern generators for serving experiments.
///
/// All generators return sorted tick sequences and are pure functions of
/// their arguments — the same inputs always yield the same pattern, on
/// every platform (the streams come from the vendored xoshiro generator).
pub mod arrivals {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `n` arrivals at a fixed inter-arrival `gap`: `0, gap, 2·gap, …`.
    #[must_use]
    pub fn uniform(n: usize, gap: u64) -> Vec<u64> {
        (0..n as u64).map(|i| i * gap).collect()
    }

    /// `n` arrivals with exponentially distributed inter-arrival times of
    /// mean `mean_gap` ticks (a Poisson process), seeded.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_gap` is positive and finite: an infinite (or
    /// NaN) gap would pass a bare positivity check and then saturate every
    /// arrival tick to `u64::MAX` in the float→tick rounding — a silent
    /// degenerate stream instead of an error at the call site.
    #[must_use]
    pub fn poisson(n: usize, mean_gap: f64, seed: u64) -> Vec<u64> {
        assert!(
            mean_gap.is_finite() && mean_gap > 0.0,
            "mean gap must be positive and finite, got {mean_gap}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -mean_gap * (1.0 - u).ln();
                t.round() as u64
            })
            .collect()
    }

    /// `n` arrivals in bursts of `burst` simultaneous requests, one burst
    /// every `gap` ticks (the last burst may be partial).
    #[must_use]
    pub fn bursts(n: usize, burst: usize, gap: u64) -> Vec<u64> {
        assert!(burst > 0, "burst size must be positive");
        (0..n).map(|i| (i / burst) as u64 * gap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn analytic() -> AnalyticBackend {
        AnalyticBackend::new(&mobilenet_v1_cifar10(), &EdeaConfig::paper()).unwrap()
    }

    fn zero_requests(backend: &AnalyticBackend, ticks: &[u64]) -> Vec<Request> {
        let (d, h, w) = backend.input_shape();
        Request::stream(
            ticks,
            (0..ticks.len())
                .map(|_| Tensor3::<i8>::zeros(d, h, w))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn cost_model_matches_timing_model() {
        let cfg = EdeaConfig::paper();
        let shapes = mobilenet_v1_cifar10();
        let cost = CostModel::for_network(&shapes, &cfg).unwrap();
        let total: u64 = shapes
            .iter()
            .map(|s| crate::timing::layer_cycles(s, &cfg).total())
            .sum();
        assert_eq!(cost.per_image_cycles(), total);
        assert_eq!(cost.batch_cycles(4), 4 * total);
        // Weight bytes are positive and independent of batch size; stream
        // bytes scale with it.
        assert!(cost.weight_bytes() > 0);
        assert_eq!(
            cost.batch_external_bytes(3) - cost.batch_external_bytes(1),
            2 * cost.stream_bytes_per_image()
        );
    }

    #[test]
    fn cost_model_rejects_broken_chains() {
        let cfg = EdeaConfig::paper();
        let mut shapes = mobilenet_v1_cifar10();
        shapes[1].d_in += 8; // still a Td multiple, but no longer chains
        assert!(matches!(
            CostModel::for_network(&shapes, &cfg),
            Err(CoreError::UnsupportedShape { .. })
        ));
        assert!(matches!(
            CostModel::for_network(&[], &cfg),
            Err(CoreError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn full_queue_dispatches_immediately_in_fifo_chunks() {
        let b = analytic();
        let reqs = zero_requests(&b, &[0; 8]);
        let report = Scheduler::new(Policy::new(4, 1_000_000).unwrap())
            .serve(&b, reqs)
            .unwrap();
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].size, 4);
        assert_eq!(report.batches[1].size, 4);
        assert_eq!(report.batches[0].dispatched, 0);
        // The second batch waits for the accelerator, not the deadline.
        assert_eq!(report.batches[1].dispatched, report.batches[0].completed);
        // FIFO: ids 0..4 ride batch 0, 4..8 batch 1.
        for r in &report.responses {
            assert_eq!(r.batch, (r.id / 4) as usize, "request {}", r.id);
        }
    }

    #[test]
    fn lone_request_dispatches_at_its_deadline() {
        let b = analytic();
        let reqs = zero_requests(&b, &[10]);
        let report = Scheduler::new(Policy::new(4, 500).unwrap())
            .serve(&b, reqs)
            .unwrap();
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].dispatched, 510);
        assert_eq!(
            report.responses[0].latency(),
            500 + b.cost().per_image_cycles()
        );
    }

    #[test]
    fn zero_wait_policy_dispatches_eagerly() {
        let b = analytic();
        let reqs = zero_requests(&b, &[0, 10]);
        let report = Scheduler::new(Policy::new(4, 0).unwrap())
            .serve(&b, reqs)
            .unwrap();
        // The first request dispatches alone at t=0; the second queues
        // behind the busy accelerator and dispatches at its completion.
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].dispatched, 0);
        assert_eq!(report.batches[0].size, 1);
        assert_eq!(report.batches[1].dispatched, report.batches[0].completed);
    }

    #[test]
    fn arrival_inside_wait_window_joins_the_batch() {
        let b = analytic();
        let reqs = zero_requests(&b, &[0, 400]);
        let report = Scheduler::new(Policy::new(2, 1_000).unwrap())
            .serve(&b, reqs)
            .unwrap();
        // The batch fills at t=400, well before the t=1000 deadline.
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].size, 2);
        assert_eq!(report.batches[0].dispatched, 400);
    }

    #[test]
    fn arrival_after_deadline_forms_its_own_batch() {
        let b = analytic();
        let service = b.cost().per_image_cycles();
        let late = 100 + service + 1; // after the first batch completes
        let reqs = zero_requests(&b, &[0, late]);
        let report = Scheduler::new(Policy::new(2, 100).unwrap())
            .serve(&b, reqs)
            .unwrap();
        assert_eq!(report.batches.len(), 2);
        assert_eq!(report.batches[0].dispatched, 100);
        assert_eq!(report.batches[1].dispatched, late + 100);
    }

    #[test]
    fn queue_grows_behind_busy_accelerator_and_amortizes() {
        // Offered load ~2× capacity: arrivals every half service time.
        let b = analytic();
        let gap = b.cost().per_image_cycles() / 2;
        let reqs = zero_requests(&b, &arrivals::uniform(16, gap));
        let report = Scheduler::new(Policy::new(8, 0).unwrap())
            .serve(&b, reqs)
            .unwrap();
        assert!(
            report.mean_batch_size() > 1.5,
            "mean batch {}",
            report.mean_batch_size()
        );
        let single = b.cost().weight_bytes() as f64;
        assert!(
            report.weight_bytes_per_image() < single,
            "{} !< {single}",
            report.weight_bytes_per_image()
        );
    }

    #[test]
    fn report_statistics_are_consistent() {
        let b = analytic();
        let reqs = zero_requests(&b, &arrivals::bursts(6, 3, 1_000_000));
        let report = Scheduler::new(Policy::new(4, 0).unwrap())
            .serve(&b, reqs)
            .unwrap();
        assert_eq!(report.responses.len(), 6);
        assert_eq!(report.makespan(), report.batches.last().unwrap().completed);
        assert!(report.latency_percentile(0.0) <= report.latency_percentile(50.0));
        assert!(report.latency_percentile(50.0) <= report.latency_percentile(100.0));
        assert_eq!(report.latency_percentile(100.0), report.max_latency());
        assert!((0.0..=1.0).contains(&report.slo_attainment(report.max_latency())));
        assert_eq!(report.slo_attainment(report.max_latency()), 1.0);
        assert!(report.throughput_images_per_second(b.config()) > 0.0);
        // Batches never overlap and dispatch after their members arrive.
        for pair in report.batches.windows(2) {
            assert!(pair[1].dispatched >= pair[0].completed);
        }
        for r in &report.responses {
            assert!(r.dispatched >= r.arrival);
            assert_eq!(r.completed, r.dispatched + report.batches[r.batch].cycles);
        }
    }

    #[test]
    fn empty_request_stream_yields_empty_report() {
        let b = analytic();
        let report = Scheduler::new(Policy::new(4, 100).unwrap())
            .serve(&b, Vec::new())
            .unwrap();
        assert!(report.responses.is_empty());
        assert!(report.batches.is_empty());
        assert_eq!(report.makespan(), 0);
        assert_eq!(report.mean_batch_size(), 0.0);
    }

    /// Builds a report whose responses have exactly the given latencies
    /// (arrival 0, completion = latency), with no batch records.
    fn report_with_latencies(lats: &[u64]) -> ServeReport {
        ServeReport {
            backend: "test".into(),
            policy: Policy::new(1, 0).unwrap(),
            responses: lats
                .iter()
                .enumerate()
                .map(|(i, &lat)| Response {
                    id: i as u64,
                    arrival: 0,
                    dispatched: 0,
                    completed: lat,
                    batch: 0,
                    network: NetworkId::PRIMARY,
                    output: Tensor3::<i8>::zeros(1, 1, 1),
                })
                .collect(),
            batches: Vec::new(),
        }
    }

    #[test]
    fn latency_percentile_exact_values_at_small_n() {
        // n = 1: every percentile is the lone latency.
        let r = report_with_latencies(&[7]);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(r.latency_percentile(p), 7, "n=1 p={p}");
        }
        // n = 2: p50 sits at the half-index 0.5, which rounds *up*
        // (half-away-from-zero), so the larger latency wins.
        let r = report_with_latencies(&[10, 20]);
        assert_eq!(r.latency_percentile(0.0), 10);
        assert_eq!(r.latency_percentile(50.0), 20);
        assert_eq!(r.latency_percentile(100.0), 20);
        // n = 3: p50 is the exact median.
        let r = report_with_latencies(&[30, 10, 20]); // unsorted on purpose
        assert_eq!(r.latency_percentile(0.0), 10);
        assert_eq!(r.latency_percentile(50.0), 20);
        assert_eq!(r.latency_percentile(100.0), 30);
    }

    #[test]
    fn latency_percentile_clamps_out_of_range_p() {
        let r = report_with_latencies(&[10, 20, 30]);
        assert_eq!(r.latency_percentile(-5.0), r.latency_percentile(0.0));
        assert_eq!(r.latency_percentile(250.0), r.latency_percentile(100.0));
        assert_eq!(r.latency_percentile(f64::NAN), r.latency_percentile(0.0));
        assert_eq!(
            r.latency_percentile(f64::NEG_INFINITY),
            r.latency_percentile(0.0)
        );
        assert_eq!(
            r.latency_percentile(f64::INFINITY),
            r.latency_percentile(100.0)
        );
    }

    #[test]
    fn empty_report_statistics_are_uniformly_zero() {
        // The empty-report convention: no vacuous SLO success, no
        // asymmetry — every aggregate is zero.
        let r = report_with_latencies(&[]);
        assert_eq!(r.slo_attainment(u64::MAX), 0.0);
        assert_eq!(r.throughput_images_per_second(&EdeaConfig::paper()), 0.0);
        assert_eq!(r.latency_percentile(50.0), 0);
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.max_latency(), 0);
        assert_eq!(r.mean_batch_size(), 0.0);
        assert_eq!(r.weight_bytes_per_image(), 0.0);
        assert_eq!(r.external_bytes_per_image(), 0.0);
        assert_eq!(r.makespan(), 0);
    }

    #[test]
    fn nonempty_report_slo_attainment_counts_met_requests() {
        let r = report_with_latencies(&[10, 20, 30, 40]);
        assert_eq!(r.slo_attainment(5), 0.0);
        assert_eq!(r.slo_attainment(20), 0.5);
        assert_eq!(r.slo_attainment(40), 1.0);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let b = analytic();
        assert!(matches!(
            Policy::new(0, 10),
            Err(CoreError::InvalidConfig { .. })
        ));
        // Wrong input shape.
        let bad = vec![Request::new(0, 0, Tensor3::<i8>::zeros(1, 1, 1))];
        assert!(matches!(
            Scheduler::new(Policy::new(2, 0).unwrap()).serve(&b, bad),
            Err(CoreError::InvalidRequest { .. })
        ));
        // Duplicate ids.
        let (d, h, w) = b.input_shape();
        let dup = vec![
            Request::new(7, 0, Tensor3::<i8>::zeros(d, h, w)),
            Request::new(7, 1, Tensor3::<i8>::zeros(d, h, w)),
        ];
        assert!(matches!(
            Scheduler::new(Policy::new(2, 0).unwrap()).serve(&b, dup),
            Err(CoreError::InvalidRequest { .. })
        ));
        // Mismatched stream lengths.
        assert!(matches!(
            Request::stream(&[0, 1], vec![Tensor3::<i8>::zeros(d, h, w)]),
            Err(CoreError::InvalidRequest { .. })
        ));
        // Mismatched mixed-stream lengths.
        assert!(matches!(
            Request::stream_mixed(
                &[0, 1],
                &[NetworkId::PRIMARY],
                vec![Tensor3::<i8>::zeros(d, h, w), Tensor3::<i8>::zeros(d, h, w)]
            ),
            Err(CoreError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn unknown_network_id_on_a_single_model_backend_names_the_request() {
        // A single-model backend (the trait defaults) serves only
        // PRIMARY: a request targeting any other network must fail up
        // front with an InvalidRequest naming both the request and the
        // network — not a panic, not a silently dropped response.
        let b = analytic();
        let (d, h, w) = b.input_shape();
        let reqs = vec![Request::for_network(
            3,
            0,
            NetworkId(7),
            Tensor3::<i8>::zeros(d, h, w),
        )];
        let err = Scheduler::new(Policy::new(1, 0).unwrap())
            .serve(&b, reqs)
            .unwrap_err();
        match err {
            CoreError::InvalidRequest { detail } => {
                assert!(detail.contains("request 3"), "{detail}");
                assert!(detail.contains("net7"), "{detail}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn multi_model_registration_is_validated() {
        use crate::accelerator::Edea;
        use edea_nn::mobilenet::{MobileNetV1, MobileNetV2};
        use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
        use edea_tensor::rng;

        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        let q1 = QuantizedDscNetwork::calibrate(&MobileNetV1::synthetic(0.5, 31), &calib);
        let q2 = QuantizedDscNetwork::calibrate_v2(
            &MobileNetV2::synthetic(0.25, 41),
            &calib,
            QuantStrategy::paper(),
        )
        .unwrap();
        // A second model on the primary's id is a duplicate.
        let backend =
            SimulatorBackend::new(Edea::new(EdeaConfig::paper()).unwrap(), q1.clone()).unwrap();
        let err = backend.clone().with_model(NetworkId::PRIMARY, q2.clone());
        assert!(
            matches!(err, Err(CoreError::InvalidConfig { .. })),
            "{err:?}"
        );
        // A model whose stem disagrees with the primary's cannot share
        // the pool's single input shape.
        let narrow = QuantizedDscNetwork::calibrate(&MobileNetV1::synthetic(0.25, 31), &calib);
        let err = backend.clone().with_model(NetworkId(1), narrow);
        match err {
            Err(CoreError::InvalidConfig { detail }) => {
                assert!(detail.contains("shared stem"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // A valid registration serves both ids; any other id is an
        // InvalidRequest naming the network.
        let backend = backend.with_model(NetworkId(1), q2).unwrap();
        assert_eq!(backend.networks(), vec![NetworkId::PRIMARY, NetworkId(1)]);
        assert_eq!(
            backend.input_shape_for(NetworkId(1)),
            Some(backend.input_shape())
        );
        assert!(backend.dispatch_cycles_for(NetworkId(1), 2).is_some());
        assert!(backend.switch_bytes(NetworkId(1)) > 0);
        let (d, h, w) = backend.input_shape();
        let batch = Batch::new(vec![Tensor3::<i8>::zeros(d, h, w)]).unwrap();
        let err = backend.run_batch_for(NetworkId(5), &batch).unwrap_err();
        match err {
            CoreError::InvalidRequest { detail } => {
                assert!(detail.contains("net5"), "{detail}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn backend_returning_wrong_output_count_is_an_error() {
        // The Backend trait is public; a broken implementation must
        // surface as an error, not as silently dropped responses.
        struct ShortBackend(AnalyticBackend);
        impl Backend for ShortBackend {
            fn name(&self) -> &'static str {
                "short"
            }
            fn config(&self) -> &EdeaConfig {
                self.0.config()
            }
            fn input_shape(&self) -> (usize, usize, usize) {
                self.0.input_shape()
            }
            fn run(&self, inputs: &Batch<i8>) -> Result<BackendRun, CoreError> {
                let mut run = self.0.run(inputs)?;
                let mut images = run.outputs.into_images();
                images.pop();
                run.outputs = Batch::new(images).expect("still non-empty");
                Ok(run)
            }
        }
        let b = ShortBackend(analytic());
        let reqs = zero_requests(&b.0, &[0, 0]);
        let err = Scheduler::new(Policy::new(2, 0).unwrap())
            .serve(&b, reqs)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedShape { .. }), "{err:?}");
    }

    #[test]
    fn serve_is_deterministic() {
        let b = analytic();
        let ticks = arrivals::poisson(24, 30_000.0, 99);
        let sched = Scheduler::new(Policy::new(4, 50_000).unwrap());
        let a = sched.serve(&b, zero_requests(&b, &ticks)).unwrap();
        let c = sched.serve(&b, zero_requests(&b, &ticks)).unwrap();
        assert_eq!(a.responses, c.responses);
        assert_eq!(a.batches, c.batches);
    }

    #[test]
    fn arrival_generators_are_deterministic_and_sorted() {
        let p1 = arrivals::poisson(32, 1000.0, 5);
        let p2 = arrivals::poisson(32, 1000.0, 5);
        assert_eq!(p1, p2);
        assert!(p1.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(p1, arrivals::poisson(32, 1000.0, 6));
        assert_eq!(arrivals::uniform(3, 10), vec![0, 10, 20]);
        assert_eq!(arrivals::bursts(5, 2, 100), vec![0, 0, 100, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn poisson_rejects_infinite_mean_gap() {
        // An infinite gap used to pass the bare `> 0.0` assert and then
        // saturate every tick to u64::MAX; now it fails fast.
        let _ = arrivals::poisson(4, f64::INFINITY, 1);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn poisson_rejects_nan_mean_gap() {
        let _ = arrivals::poisson(4, f64::NAN, 1);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn poisson_rejects_nonpositive_mean_gap() {
        let _ = arrivals::poisson(4, 0.0, 1);
    }
}
