//! Floorplan model (paper Fig. 8 "Layout view").
//!
//! The P&R database is not reproducible, but the quantitative content of
//! Fig. 8 is: the die dimensions (825.032 µm × 699.52 µm) and the relative
//! placement/area of the blocks. This module slices the die into block
//! rectangles proportional to the area breakdown and emits an SVG rendering.

use crate::area::AreaBreakdown;
use crate::paperdata;

/// One placed block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name.
    pub name: &'static str,
    /// Lower-left x (µm).
    pub x: f64,
    /// Lower-left y (µm).
    pub y: f64,
    /// Width (µm).
    pub w: f64,
    /// Height (µm).
    pub h: f64,
}

impl Block {
    /// Block area (µm²).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// A floorplan: die dimensions plus placed blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die width (µm).
    pub width_um: f64,
    /// Die height (µm).
    pub height_um: f64,
    /// Placed blocks (cover the die exactly).
    pub blocks: Vec<Block>,
}

/// Builds the floorplan by recursive slicing: the PWC engine takes the right
/// side of the die, the DWC engine the upper left, Non-Conv below it, and
/// the buffers/control fill the remainder — mirroring the relative placement
/// visible in Fig. 8.
#[must_use]
pub fn floorplan(area: &AreaBreakdown) -> Floorplan {
    let total = area.total_um2();
    let width = paperdata::DIE_WIDTH_UM;
    let height = paperdata::DIE_HEIGHT_UM;
    let scale = (width * height) / total; // absorb rounding differences
    let mut blocks = Vec::new();

    // Right vertical slice: PWC engine.
    let pwc_w = area.pwc_um2 * scale / height;
    blocks.push(Block {
        name: "pwc_engine",
        x: width - pwc_w,
        y: 0.0,
        w: pwc_w,
        h: height,
    });
    let left_w = width - pwc_w;

    // Upper-left: DWC engine.
    let dwc_h = area.dwc_um2 * scale / left_w;
    blocks.push(Block {
        name: "dwc_engine",
        x: 0.0,
        y: height - dwc_h,
        w: left_w,
        h: dwc_h,
    });

    // Middle-left: Non-Conv units.
    let nc_h = area.nonconv_um2 * scale / left_w;
    blocks.push(Block {
        name: "nonconv",
        x: 0.0,
        y: height - dwc_h - nc_h,
        w: left_w,
        h: nc_h,
    });

    // Bottom-left strip: buffers, intermediate buffer, control.
    let strip_h = height - dwc_h - nc_h;
    let buf_w = area.buffers_um2 * scale / strip_h;
    blocks.push(Block {
        name: "buffers",
        x: 0.0,
        y: 0.0,
        w: buf_w,
        h: strip_h,
    });
    let int_w = area.intermediate_um2 * scale / strip_h;
    blocks.push(Block {
        name: "intermediate",
        x: buf_w,
        y: 0.0,
        w: int_w,
        h: strip_h,
    });
    let ctl_w = left_w - buf_w - int_w;
    blocks.push(Block {
        name: "control",
        x: buf_w + int_w,
        y: 0.0,
        w: ctl_w,
        h: strip_h,
    });

    Floorplan {
        width_um: width,
        height_um: height,
        blocks,
    }
}

/// Renders a floorplan to a standalone SVG document.
#[must_use]
pub fn to_svg(fp: &Floorplan) -> String {
    const COLORS: [(&str, &str); 6] = [
        ("pwc_engine", "#4e79a7"),
        ("dwc_engine", "#f28e2b"),
        ("nonconv", "#59a14f"),
        ("buffers", "#e15759"),
        ("intermediate", "#b07aa1"),
        ("control", "#bab0ac"),
    ];
    let color = |name: &str| {
        COLORS
            .iter()
            .find(|(n, _)| *n == name)
            .map_or("#cccccc", |(_, c)| *c)
    };
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {:.1} {:.1}\" width=\"825\" height=\"700\">\n",
        fp.width_um, fp.height_um
    );
    svg.push_str(&format!(
        "  <rect x=\"0\" y=\"0\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#222\"/>\n",
        fp.width_um, fp.height_um
    ));
    for b in &fp.blocks {
        // SVG y grows downward; flip.
        let y = fp.height_um - b.y - b.h;
        svg.push_str(&format!(
            "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\" stroke=\"#000\"/>\n",
            b.x, y, b.w, b.h, color(b.name)
        ));
        svg.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"24\" fill=\"#fff\">{}</text>\n",
            b.x + 8.0,
            y + b.h / 2.0,
            b.name
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Floorplan {
        floorplan(&AreaBreakdown::paper())
    }

    #[test]
    fn die_dimensions_match_fig8() {
        let fp = plan();
        assert_eq!(fp.width_um, 825.032);
        assert_eq!(fp.height_um, 699.52);
    }

    #[test]
    fn blocks_cover_die_exactly() {
        let fp = plan();
        let sum: f64 = fp.blocks.iter().map(Block::area).sum();
        let die = fp.width_um * fp.height_um;
        assert!((sum - die).abs() / die < 1e-9, "{sum} vs {die}");
    }

    #[test]
    fn blocks_stay_inside_die_and_do_not_overlap() {
        let fp = plan();
        for b in &fp.blocks {
            assert!(b.x >= -1e-9 && b.y >= -1e-9);
            assert!(b.x + b.w <= fp.width_um + 1e-9, "{}", b.name);
            assert!(b.y + b.h <= fp.height_um + 1e-9, "{}", b.name);
        }
        // Pairwise overlap area must be zero.
        for (i, a) in fp.blocks.iter().enumerate() {
            for b in fp.blocks.iter().skip(i + 1) {
                let ox = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let oy = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                if ox > 1e-6 && oy > 1e-6 {
                    panic!("{} overlaps {} by {}", a.name, b.name, ox * oy);
                }
            }
        }
    }

    #[test]
    fn block_areas_match_breakdown_shares() {
        let area = AreaBreakdown::paper();
        let fp = floorplan(&area);
        let die = fp.width_um * fp.height_um;
        let find = |n: &str| fp.blocks.iter().find(|b| b.name == n).unwrap().area() / die;
        assert!((find("pwc_engine") - 0.4790).abs() < 0.001);
        assert!((find("dwc_engine") - 0.2837).abs() < 0.001);
        assert!((find("nonconv") - 0.1487).abs() < 0.001);
    }

    #[test]
    fn svg_contains_all_blocks() {
        let svg = to_svg(&plan());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("pwc_engine"));
        assert!(svg.contains("dwc_engine"));
        assert!(svg.contains("nonconv"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 7); // die + 6 blocks
    }
}
