//! Pre-sliced weight plans for the functional simulator.
//!
//! The loop nest of [`crate::accelerator`] consumes depthwise weights one
//! `Td`-kernel slice per channel pass, and pointwise weights one
//! `(Tk, Td)` tile per channel pass × kernel tile. Slicing is pure
//! bookkeeping — the same tensors come out for the same layer every time —
//! yet the original hot path rebuilt every slice on every
//! `run_layer`/`run_layer_batch` call, so a serving session re-sliced all
//! weights once per request. A [`LayerPlan`] performs that slicing once;
//! a [`NetworkPlan`] holds one plan per layer and is the unit a long-lived
//! deployment caches (see `edea::Deployment` and
//! [`crate::serve::SimulatorBackend`]).
//!
//! Plans are pure data derived from `(layer weights, config tile
//! geometry)`: executing through a plan is bit-exact with the unplanned
//! wrappers, which simply build a throwaway plan per call.

pub mod audit;

use std::sync::OnceLock;

use edea_nn::quantize::{QuantizedDscLayer, QuantizedDscNetwork};
use edea_nn::workload::LayerShape;
use edea_tensor::Tensor4;

use crate::config::EdeaConfig;
use crate::engine::LaneOccupancy;
use crate::CoreError;

/// The pre-sliced weights of one layer: everything `execute_layer` needs
/// that depends only on the layer and the tile geometry, not on the input.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    shape: LayerShape,
    /// Tile channel depth the slices were cut for.
    td: usize,
    /// Tile kernel count the slices were cut for.
    tk: usize,
    /// Lazily computed FNV-style digest of the plan's weight bytes, so a
    /// plan can detect being used with a same-shaped layer from a
    /// *different* network (`shape` alone identifies a layer only within
    /// one network). Lazy because the throwaway plans the unplanned
    /// wrappers build route through the `_unchecked` paths and never need
    /// it.
    fingerprint: OnceLock<u64>,
    /// `dw_slices[ct]` is the `(Td, 1, K, K)` depthwise slice of channel
    /// pass `ct`.
    dw_slices: Vec<Tensor4<i8>>,
    /// `pw_slices[ct][kt]` is the `(Tk, Td, 1, 1)` pointwise tile of
    /// channel pass `ct`, kernel tile `kt`.
    pw_slices: Vec<Vec<Tensor4<i8>>>,
    /// `pw_occupancy[ct][kt]` is the per-lane nonzero-weight occupancy of
    /// `pw_slices[ct][kt]`, precomputed once here so the PWC engine's
    /// zero-skipping kernels pay no per-tile weight scan — and so fully
    /// dense tiles are recognized up front and keep the branch-free dense
    /// kernels (`None` when `Td` exceeds the 64-bit mask word).
    pw_occupancy: Vec<Vec<Option<LaneOccupancy>>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one byte run into an FNV-1a style digest, in `u64` chunks so the
/// per-run identity check stays far below the run itself (~0.1 ms for the
/// width-1.0 network's 3.3 MB of weights).
fn fnv_bytes(h: &mut u64, bytes: &[i8]) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        for (dst, &src) in word.iter_mut().zip(chunk) {
            *dst = src as u8;
        }
        *h ^= u64::from_le_bytes(word);
        *h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        *h ^= u64::from(b as u8);
        *h = h.wrapping_mul(PRIME);
    }
}

/// Digest of a plan's own slices. The byte runs fed to [`fnv_bytes`] —
/// per depthwise slice, then per pointwise `(ct, kt, k)` row of `Td`
/// bytes — are chosen so [`layer_fingerprint`] can replay the identical
/// sequence straight from an unsliced layer.
fn plan_fingerprint(dw_slices: &[Tensor4<i8>], pw_slices: &[Vec<Tensor4<i8>>]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in dw_slices {
        fnv_bytes(&mut h, s.as_slice());
    }
    for row in pw_slices {
        for s in row {
            let (tk, td, _, _) = s.shape();
            let flat = s.as_slice();
            for k in 0..tk {
                fnv_bytes(&mut h, &flat[k * td..(k + 1) * td]);
            }
        }
    }
    h
}

/// Digest of a layer's weights over exactly the byte runs
/// [`plan_fingerprint`] hashes, read in place from the unsliced tensors.
fn layer_fingerprint(layer: &QuantizedDscLayer, td: usize, tk: usize) -> u64 {
    let mut h = FNV_OFFSET;
    let s = layer.shape();
    let dw = layer.dw_weights().values();
    let (_, _, kh, kw) = dw.shape();
    let kernel_vol = kh * kw;
    let dw_flat = dw.as_slice();
    for ct in 0..s.d_in / td {
        fnv_bytes(
            &mut h,
            &dw_flat[ct * td * kernel_vol..(ct + 1) * td * kernel_vol],
        );
    }
    let pw = layer.pw_weights().values();
    let (_, c_in, _, _) = pw.shape();
    let pw_flat = pw.as_slice();
    for ct in 0..s.d_in / td {
        for kt in 0..s.k_out / tk {
            for k in kt * tk..(kt + 1) * tk {
                fnv_bytes(
                    &mut h,
                    &pw_flat[k * c_in + ct * td..k * c_in + (ct + 1) * td],
                );
            }
        }
    }
    h
}

impl LayerPlan {
    /// Slices one layer's weights for `cfg`'s tile geometry.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if the layer does not map onto the
    /// engine geometry.
    pub fn new(layer: &QuantizedDscLayer, cfg: &EdeaConfig) -> Result<Self, CoreError> {
        let shape = layer.shape();
        crate::schedule::check_layer_geometry(&shape, cfg)?;
        let (td, tk) = (cfg.tile.td, cfg.tile.tk);
        let channel_passes = shape.d_in / td;
        let kernel_tiles = shape.k_out / tk;
        // Depthwise weights are (D, 1, K, K): the per-pass slice selects Td
        // *kernels* (one per channel).
        let dw_slices = (0..channel_passes)
            .map(|ct| layer.dw_weights().values().kernel_slice(ct * td, td))
            .collect();
        let pw_slices: Vec<Vec<Tensor4<i8>>> = (0..channel_passes)
            .map(|ct| {
                let chan = layer.pw_weights().values().channel_slice(ct * td, td);
                (0..kernel_tiles)
                    .map(|kt| chan.kernel_slice(kt * tk, tk))
                    .collect()
            })
            .collect();
        let pw_occupancy = pw_slices
            .iter()
            .map(|row| row.iter().map(LaneOccupancy::of_weights).collect())
            .collect();
        Ok(Self {
            shape,
            td,
            tk,
            fingerprint: OnceLock::new(),
            dw_slices,
            pw_slices,
            pw_occupancy,
        })
    }

    /// The shape of the layer this plan was sliced from.
    #[must_use]
    pub fn shape(&self) -> &LayerShape {
        &self.shape
    }

    /// The depthwise slice of channel pass `ct`.
    #[must_use]
    pub(crate) fn dw_slice(&self, ct: usize) -> &Tensor4<i8> {
        &self.dw_slices[ct]
    }

    /// The pointwise tile of channel pass `ct`, kernel tile `kt`.
    #[must_use]
    pub(crate) fn pw_slice(&self, ct: usize, kt: usize) -> &Tensor4<i8> {
        &self.pw_slices[ct][kt]
    }

    /// The precomputed per-lane weight occupancy of the pointwise tile of
    /// channel pass `ct`, kernel tile `kt` (`None` when the tile depth
    /// exceeds the mask word — the engine then skips on activations only).
    #[must_use]
    pub(crate) fn pw_occupancy(&self, ct: usize, kt: usize) -> Option<&LaneOccupancy> {
        self.pw_occupancy[ct][kt].as_ref()
    }

    /// Checks that this plan was built for `layer`: shape (which carries
    /// the layer index, so same-shaped layers of one network are told
    /// apart) plus a digest of the weight bytes (so a same-shaped layer
    /// of a *different* network — e.g. a recalibrated model — is caught
    /// instead of silently blending two models' parameters).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] naming the mismatch.
    pub fn check_layer(&self, layer: &QuantizedDscLayer) -> Result<(), CoreError> {
        if self.shape != layer.shape() {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer plan built for {:?} used with layer {:?}",
                    self.shape,
                    layer.shape()
                ),
            });
        }
        let own = *self
            .fingerprint
            .get_or_init(|| plan_fingerprint(&self.dw_slices, &self.pw_slices));
        if own != layer_fingerprint(layer, self.td, self.tk) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer plan built for a different layer {} (same shape, different weights)",
                    self.shape.index
                ),
            });
        }
        Ok(())
    }
}

/// One [`LayerPlan`] per layer of a network — the weight-slicing cache a
/// long-lived deployment builds once and reuses for every request.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    layers: Vec<LayerPlan>,
}

impl NetworkPlan {
    /// Slices every layer of `net` for `cfg`'s tile geometry.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if any layer does not map onto the
    /// engine geometry.
    pub fn new(net: &QuantizedDscNetwork, cfg: &EdeaConfig) -> Result<Self, CoreError> {
        let layers = net
            .layers()
            .iter()
            .map(|l| LayerPlan::new(l, cfg))
            .collect::<Result<_, _>>()?;
        Ok(Self { layers })
    }

    /// The per-layer plans, in network order.
    #[must_use]
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// Checks that this plan was built for `net` (layer count and shapes).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] on a count or shape mismatch.
    pub fn check_network(&self, net: &QuantizedDscNetwork) -> Result<(), CoreError> {
        if self.layers.len() != net.layers().len() {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "network plan holds {} layers, network has {}",
                    self.layers.len(),
                    net.layers().len()
                ),
            });
        }
        for (plan, layer) in self.layers.iter().zip(net.layers()) {
            plan.check_layer(layer)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_testutil::deploy;

    #[test]
    fn plan_slices_match_on_the_fly_slicing() {
        let d = deploy(0.25, 21);
        let cfg = EdeaConfig::paper();
        let layer = &d.qnet.layers()[1];
        let plan = LayerPlan::new(layer, &cfg).unwrap();
        let s = layer.shape();
        let (td, tk) = (cfg.tile.td, cfg.tile.tk);
        for ct in 0..s.d_in / td {
            assert_eq!(
                plan.dw_slice(ct),
                &layer.dw_weights().values().kernel_slice(ct * td, td)
            );
            let chan = layer.pw_weights().values().channel_slice(ct * td, td);
            for kt in 0..s.k_out / tk {
                assert_eq!(plan.pw_slice(ct, kt), &chan.kernel_slice(kt * tk, tk));
            }
        }
    }

    #[test]
    fn network_plan_covers_every_layer_and_checks_identity() {
        let d = deploy(0.25, 22);
        let cfg = EdeaConfig::paper();
        let plan = NetworkPlan::new(&d.qnet, &cfg).unwrap();
        assert_eq!(plan.layers().len(), d.qnet.layers().len());
        plan.check_network(&d.qnet).unwrap();
        // A plan for one layer rejects a different layer.
        let err = plan.layers()[0]
            .check_layer(&d.qnet.layers()[1])
            .unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedShape { .. }), "{err:?}");
    }

    #[test]
    fn plan_rejects_same_shaped_layer_with_different_weights() {
        // Two deployments at the same width share every LayerShape
        // (including the index) but have different weights; the
        // fingerprint must tell them apart.
        let a = deploy(0.25, 31);
        let b = deploy(0.25, 32);
        let cfg = EdeaConfig::paper();
        let plan = LayerPlan::new(&a.qnet.layers()[0], &cfg).unwrap();
        plan.check_layer(&a.qnet.layers()[0]).unwrap();
        let err = plan.check_layer(&b.qnet.layers()[0]).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedShape { .. }), "{err:?}");
        let net_plan = NetworkPlan::new(&a.qnet, &cfg).unwrap();
        assert!(net_plan.check_network(&b.qnet).is_err());
    }

    #[test]
    fn plan_rejects_unmappable_geometry() {
        let d = deploy(0.25, 23);
        let mut cfg = EdeaConfig::paper();
        cfg.tile.td = 3; // no layer's d_in is a multiple of 3
        assert!(LayerPlan::new(&d.qnet.layers()[0], &cfg).is_err());
    }
}
