//! Analytic latency/throughput model (paper Eq. 1, Eq. 2, Figs. 10 & 13).
//!
//! The schedule (Fig. 7): the ofmap is split into spatial **portions** of at
//! most `portion_limit × portion_limit` output pixels (ifmap-buffer
//! constraint, Eq. 2's "number of tiled ifmaps"). For every channel tile
//! (`⌈D/Td⌉` passes) and every portion, the pipeline pays the
//! 9-cycle initiation, then retires one PWC tile per cycle:
//!
//! ```text
//! Lat_tile  = (9 + ⌈N'/Tn⌉·⌈M'/Tm⌉·⌈K/Tk⌉) · T      (Eq. 1, portion N'×M')
//! Lat_total = Σ_portions Lat_tile · ⌈D/Td⌉           (Eq. 2)
//! ```
//!
//! With the paper's parameters this reproduces Fig. 13 exactly:
//! 1024 GOPS for layers 0–4, 973.5 for layers 5–10, 905.6 for layers 11–12.

use edea_nn::workload::{LayerShape, StageOp};

use crate::config::EdeaConfig;

/// Spatial portion sizes (ofmap rows/cols) for a layer under a portion
/// limit: the map is split into `⌈N/limit⌉` chunks per dimension, each of at
/// most `limit` pixels.
#[must_use]
pub fn portion_edges(out_spatial: usize, limit: usize) -> Vec<usize> {
    assert!(limit > 0, "portion limit must be positive");
    let mut edges = Vec::new();
    let mut remaining = out_spatial;
    while remaining > 0 {
        let chunk = remaining.min(limit);
        edges.push(chunk);
        remaining -= chunk;
    }
    edges
}

/// Cycle-level breakdown of one layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Number of spatial portions `P`.
    pub portions: u64,
    /// Channel passes `⌈D/Td⌉`.
    pub channel_passes: u64,
    /// Spatial tiles over the whole ofmap.
    pub spatial_tiles: u64,
    /// Kernel tiles `⌈K/Tk⌉`.
    pub kernel_tiles: u64,
    /// Total initiation cycles (`init · P · passes`).
    pub init: u64,
    /// Cycles the PWC engine is busy (`S_total · Kt · passes`).
    pub pwc_busy: u64,
    /// Cycles the DWC engine is busy (`S_total · passes`).
    pub dwc_busy: u64,
}

impl CycleBreakdown {
    /// Total cycles: initiation + PWC busy (the PWC is the steady-state
    /// bottleneck; DWC work is fully hidden under it).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.init + self.pwc_busy
    }

    /// DWC engine active fraction ("more idle time due to fewer MAC
    /// operations", Sec. III-D).
    #[must_use]
    pub fn dwc_utilization(&self) -> f64 {
        self.dwc_busy as f64 / self.total() as f64
    }

    /// PWC engine active fraction.
    #[must_use]
    pub fn pwc_utilization(&self) -> f64 {
        self.pwc_busy as f64 / self.total() as f64
    }

    /// Fraction of cycles spent in initiation — the term that grows for the
    /// small late layers (Fig. 10's latency uptick).
    #[must_use]
    pub fn init_fraction(&self) -> f64 {
        self.init as f64 / self.total() as f64
    }
}

/// Computes the cycle breakdown of a layer (Eq. 1 + Eq. 2).
///
/// A [`StageOp::PwcOnly`] stage (the 1×1 expand/project convolutions of an
/// inverted-residual block) bypasses the DWC engine entirely: the PWC is
/// fed straight from the ifmap buffer, so `dwc_busy` is zero while the
/// initiation and PWC terms keep the identical form — the total is still
/// `init + pwc_busy`.
///
/// # Panics
///
/// Panics if the layer kernel does not match the configuration (`Dsc`
/// stages must match the engine kernel; `PwcOnly` stages must be 1×1).
#[must_use]
pub fn layer_cycles(shape: &LayerShape, cfg: &EdeaConfig) -> CycleBreakdown {
    match shape.op {
        StageOp::Dsc => assert_eq!(shape.kernel, cfg.tile.kernel, "kernel mismatch"),
        StageOp::PwcOnly => assert_eq!(shape.kernel, 1, "PwcOnly stages are 1x1"),
    }
    let n = shape.out_spatial();
    let edges = portion_edges(n, cfg.portion_limit);
    let kernel_tiles = shape.k_out.div_ceil(cfg.tile.tk) as u64;
    let channel_passes = shape.d_in.div_ceil(cfg.tile.td) as u64;
    let mut portions = 0u64;
    let mut spatial_tiles = 0u64;
    for &rows in &edges {
        for &cols in &edges {
            portions += 1;
            spatial_tiles += (rows.div_ceil(cfg.tile.tn) * cols.div_ceil(cfg.tile.tm)) as u64;
        }
    }
    CycleBreakdown {
        portions,
        channel_passes,
        spatial_tiles,
        kernel_tiles,
        init: cfg.init_cycles * portions * channel_passes,
        pwc_busy: spatial_tiles * kernel_tiles * channel_passes,
        dwc_busy: match shape.op {
            StageOp::Dsc => spatial_tiles * channel_passes,
            StageOp::PwcOnly => 0,
        },
    }
}

/// Eq. 1 evaluated for one portion of `rows×cols` ofmap pixels, in cycles.
#[must_use]
pub fn eq1_tile_latency_cycles(rows: usize, cols: usize, k_out: usize, cfg: &EdeaConfig) -> u64 {
    cfg.init_cycles
        + (rows.div_ceil(cfg.tile.tn) * cols.div_ceil(cfg.tile.tm) * k_out.div_ceil(cfg.tile.tk))
            as u64
}

/// Layer latency in nanoseconds at the configured clock.
#[must_use]
pub fn layer_latency_ns(shape: &LayerShape, cfg: &EdeaConfig) -> f64 {
    layer_cycles(shape, cfg).total() as f64 * cfg.period_ns()
}

/// Layer throughput in GOPS (2 ops per MAC; Fig. 13).
#[must_use]
pub fn layer_throughput_gops(shape: &LayerShape, cfg: &EdeaConfig) -> f64 {
    shape.total_ops() as f64 / layer_latency_ns(shape, cfg)
}

/// Network-level timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkTiming {
    /// Sum of per-layer latencies (ns).
    pub total_latency_ns: f64,
    /// Total operations.
    pub total_ops: u64,
    /// Ops-weighted average throughput (GOPS).
    pub average_gops: f64,
    /// Highest per-layer throughput (GOPS) — the paper's "peak throughput".
    pub peak_gops: f64,
}

/// Summarizes timing over a layer stack.
///
/// # Panics
///
/// Panics if `layers` is empty.
#[must_use]
pub fn network_timing(layers: &[LayerShape], cfg: &EdeaConfig) -> NetworkTiming {
    assert!(!layers.is_empty(), "empty layer stack");
    let mut total_latency = 0.0;
    let mut total_ops = 0u64;
    let mut peak: f64 = 0.0;
    for l in layers {
        total_latency += layer_latency_ns(l, cfg);
        total_ops += l.total_ops();
        peak = peak.max(layer_throughput_gops(l, cfg));
    }
    NetworkTiming {
        total_latency_ns: total_latency,
        total_ops,
        average_gops: total_ops as f64 / total_latency,
        peak_gops: peak,
    }
}

/// Whole-batch cycles for one layer: `n ×` the per-image figure.
///
/// Batching does **not** change cycles per image: Eq. 1's 9-cycle
/// initiation is bound by fetching the portion's ifmap slice, which every
/// image needs, so weight residency removes DRAM *traffic* (and interface
/// energy), not pipeline time. What batching buys in time terms is covered
/// by [`crate::schedule::batch_weight_fetch_bytes`]'s traffic model and
/// the power model's lower interface energy.
///
/// # Panics
///
/// Panics if `n` is zero or the kernel does not match the configuration.
#[must_use]
pub fn batch_layer_cycles(shape: &LayerShape, cfg: &EdeaConfig, n: usize) -> u64 {
    assert!(n > 0, "batch must be non-empty");
    n as u64 * layer_cycles(shape, cfg).total()
}

/// Batch-level timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchNetworkTiming {
    /// Batch size `N ≥ 1`.
    pub batch: usize,
    /// Whole-batch cycles over all layers.
    pub total_cycles: u64,
    /// Cycles per image (equal to the unbatched network cycles).
    pub cycles_per_image: u64,
    /// Latency per image in ns.
    pub latency_per_image_ns: f64,
    /// Ops-weighted average throughput in GOPS (batch-invariant).
    pub average_gops: f64,
}

/// Summarizes batched timing over a layer stack.
///
/// # Panics
///
/// Panics if `layers` is empty or `n` is zero.
#[must_use]
pub fn batch_network_timing(
    layers: &[LayerShape],
    cfg: &EdeaConfig,
    n: usize,
) -> BatchNetworkTiming {
    assert!(n > 0, "batch must be non-empty");
    let per_image = network_timing(layers, cfg);
    let cycles_per_image: u64 = layers.iter().map(|l| layer_cycles(l, cfg).total()).sum();
    BatchNetworkTiming {
        batch: n,
        total_cycles: n as u64 * cycles_per_image,
        cycles_per_image,
        latency_per_image_ns: per_image.total_latency_ns,
        average_gops: per_image.average_gops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    /// Per-layer latencies in ns derived from Eq. 1/Eq. 2 — the series
    /// behind paper Fig. 10 (1 cycle = 1 ns at 1 GHz).
    const GOLDEN_LATENCY_NS: [u64; 13] = [
        4672, 4384, 8768, 4240, 8480, 4384, 8768, 8768, 8768, 8768, 8768, 4672, 9344,
    ];

    #[test]
    fn golden_latencies_fig10() {
        let layers = mobilenet_v1_cifar10();
        for (l, &want) in layers.iter().zip(&GOLDEN_LATENCY_NS) {
            let got = layer_cycles(l, &cfg()).total();
            assert_eq!(got, want, "layer {}", l.index);
        }
    }

    #[test]
    fn pwc_only_stages_never_occupy_the_dwc_engine() {
        // Inverted-residual expansions bypass the DWC engine entirely:
        // zero DWC-busy cycles, and Eq. 1 degenerates to init + pwc_busy.
        use edea_nn::workload::mobilenet_v2_cifar10;
        let v2 = mobilenet_v2_cifar10();
        let mut saw_pwc_only = false;
        for l in &v2 {
            let b = layer_cycles(l, &cfg());
            if l.op == edea_nn::workload::StageOp::PwcOnly {
                saw_pwc_only = true;
                assert_eq!(b.dwc_busy, 0, "layer {}", l.index);
            } else {
                assert!(b.dwc_busy > 0, "layer {}", l.index);
            }
            assert_eq!(b.total(), b.init + b.pwc_busy, "layer {}", l.index);
            assert!(b.pwc_busy > 0, "layer {}", l.index);
        }
        assert!(saw_pwc_only, "v2 should contain PwcOnly stages");
    }

    #[test]
    fn golden_throughput_fig13() {
        // Paper Fig. 13: 1024 GOPS (layers 0–4), 973.5 (5–10), 905.6 (11–12).
        let layers = mobilenet_v1_cifar10();
        let want = [
            1024.0, 1024.0, 1024.0, 1024.0, 1024.0, 973.5, 973.5, 973.5, 973.5, 973.5, 973.5,
            905.6, 905.6,
        ];
        for (l, w) in layers.iter().zip(want) {
            let got = layer_throughput_gops(l, &cfg());
            assert!((got - w).abs() < 0.1, "layer {}: {got} vs {w}", l.index);
        }
    }

    #[test]
    fn average_throughput_matches_paper() {
        // Paper: average throughput 981.42 GOPS over all DSC layers. The
        // ops-weighted average lands at 979.9; the arithmetic mean of the
        // per-layer values at 982.5 — the paper's number sits between.
        let layers = mobilenet_v1_cifar10();
        let t = network_timing(&layers, &cfg());
        assert!((t.average_gops - 979.9).abs() < 0.5, "{}", t.average_gops);
        let mean: f64 = layers
            .iter()
            .map(|l| layer_throughput_gops(l, &cfg()))
            .sum::<f64>()
            / layers.len() as f64;
        assert!((mean - 982.5).abs() < 1.0, "{mean}");
        assert!(t.average_gops < 981.42 && 981.42 < mean + 1.5);
    }

    #[test]
    fn peak_throughput_is_1024() {
        let layers = mobilenet_v1_cifar10();
        let t = network_timing(&layers, &cfg());
        assert!((t.peak_gops - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn eq1_matches_paper_form() {
        // Layer 12: whole 2×2 map is one portion; Eq. 1 gives
        // (9 + 1·1·64)·T = 73 cycles; Eq. 2 multiplies by D/Td = 128.
        let l12 = mobilenet_v1_cifar10()[12];
        assert_eq!(eq1_tile_latency_cycles(2, 2, 1024, &cfg()), 73);
        assert_eq!(layer_cycles(&l12, &cfg()).total(), 73 * 128);
    }

    #[test]
    fn portion_edges_cover_exactly() {
        assert_eq!(portion_edges(32, 8), vec![8, 8, 8, 8]);
        assert_eq!(portion_edges(8, 8), vec![8]);
        assert_eq!(portion_edges(2, 8), vec![2]);
        assert_eq!(portion_edges(10, 8), vec![8, 2]);
        assert_eq!(portion_edges(16, 8).iter().sum::<usize>(), 16);
    }

    #[test]
    fn portion_counts_match_eq2() {
        // Layer 0: 32×32 ofmap → 16 portions of 8×8, each 16 spatial tiles.
        let l0 = mobilenet_v1_cifar10()[0];
        let b = layer_cycles(&l0, &cfg());
        assert_eq!(b.portions, 16);
        assert_eq!(b.spatial_tiles, 256);
        assert_eq!(b.channel_passes, 4);
        assert_eq!(b.kernel_tiles, 4);
        assert_eq!(b.init, 9 * 16 * 4);
    }

    #[test]
    fn dwc_idles_more_on_wide_layers() {
        // Sec. III-D: "The DWC PE arrays encounter more idle time due to
        // fewer MAC operations" — utilization is 1/Kt-ish and shrinks as K
        // grows.
        let layers = mobilenet_v1_cifar10();
        let u0 = layer_cycles(&layers[0], &cfg()).dwc_utilization();
        let u12 = layer_cycles(&layers[12], &cfg()).dwc_utilization();
        assert!(u0 > 0.2 && u0 < 0.25, "{u0}");
        assert!(u12 < 0.02, "{u12}");
        for l in &layers {
            let b = layer_cycles(l, &cfg());
            assert!(b.pwc_utilization() > 0.85, "layer {}", l.index);
        }
    }

    #[test]
    fn init_fraction_grows_for_late_layers() {
        // Fig. 10's explanation: "the initiation stage … accounts for a
        // larger contribution" for small maps. Layer 6 spends 9/137 of its
        // cycles in initiation; layer 12 spends 9/73.
        let layers = mobilenet_v1_cifar10();
        let f6 = layer_cycles(&layers[6], &cfg()).init_fraction();
        let f12 = layer_cycles(&layers[12], &cfg()).init_fraction();
        assert!(f12 > f6);
        assert!((f6 - 9.0 / 137.0).abs() < 1e-9);
        assert!((f12 - 9.0 / 73.0).abs() < 1e-9);
    }

    #[test]
    fn latency_correlates_with_macs() {
        // Fig. 10: "a strong correlation between the number of MAC
        // operations and the total latency" — Pearson r over the 13 layers.
        let layers = mobilenet_v1_cifar10();
        let xs: Vec<f64> = layers.iter().map(|l| l.total_macs() as f64).collect();
        let ys: Vec<f64> = layers.iter().map(|l| layer_latency_ns(l, &cfg())).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let r = cov / (vx * vy).sqrt();
        assert!(r > 0.99, "correlation {r}");
    }

    #[test]
    fn batching_scales_total_cycles_but_not_per_image() {
        let layers = mobilenet_v1_cifar10();
        let base = network_timing(&layers, &cfg());
        for n in [1usize, 2, 4, 8, 16] {
            let b = batch_network_timing(&layers, &cfg(), n);
            assert_eq!(b.total_cycles, n as u64 * b.cycles_per_image);
            assert_eq!(b.cycles_per_image, 92_784); // the paper config's network cycles
            assert!((b.average_gops - base.average_gops).abs() < 1e-12);
            assert_eq!(
                batch_layer_cycles(&layers[0], &cfg(), n),
                n as u64 * layer_cycles(&layers[0], &cfg()).total()
            );
        }
    }

    #[test]
    fn slower_clock_scales_latency_not_cycles() {
        let l0 = mobilenet_v1_cifar10()[0];
        let mut half = cfg();
        half.clock_mhz = 500;
        assert_eq!(
            layer_cycles(&l0, &half).total(),
            layer_cycles(&l0, &cfg()).total()
        );
        assert!((layer_latency_ns(&l0, &half) - 2.0 * layer_latency_ns(&l0, &cfg())).abs() < 1e-9);
    }
}
