//! Deterministic fork-join parallelism for the simulator host.
//!
//! The simulated chip is parallel by thesis (dual engines, Fig. 7); the
//! *host* simulation was single-threaded. This module provides the two
//! primitives that parallelize it **without changing a single output
//! byte**:
//!
//! * [`Parallelism`] — the explicit thread-count knob threaded through
//!   [`Edea`](crate::accelerator::Edea), [`crate::pool::Pool`] and the
//!   `edea` facade's deployment builder. The default is serial
//!   (one thread = today's exact code path); the `EDEA_THREADS`
//!   environment variable sets a process-wide default so an entire test
//!   suite can be re-run on the parallel paths unchanged.
//! * [`map_lanes`] — a scoped fork-join over per-lane work items on
//!   `std::thread::scope` (no crates.io dependencies, no `unsafe`).
//!   Lane 0 runs on the calling thread; results are joined **in lane
//!   order**, never in completion order.
//! * [`chunk_ranges`] — the static contiguous partition both parallel
//!   seams use to split work across lanes, so every output element has
//!   exactly one writer and reductions can run in fixed index order.
//!
//! # The determinism contract
//!
//! Parallel callers must obey three rules, and everything in this module
//! is shaped to make obeying them easy:
//!
//! 1. **Static partition** — work is split by [`chunk_ranges`] before any
//!    thread starts; nothing is stolen or rebalanced at runtime.
//! 2. **One writer per element** — each lane owns its output slots
//!    (disjoint `&mut` slices); shared state is read-only.
//! 3. **Fixed-order reduction** — per-lane results are merged in lane
//!    (hence work-index) order after the join, so commutative-but-not-
//!    bit-associative folds (and error precedence) match the serial run.
//!
//! Under these rules a run at any thread count is **bit-identical** to
//! the serial run — enforced by the `parallel_identity` test matrix and
//! the determinism guard.

use crate::CoreError;

/// Maximum accepted thread count — a sanity bound, far above any real
/// host, so a malformed `EDEA_THREADS` cannot ask for millions of spawns.
pub const MAX_THREADS: usize = 256;

/// The explicit host-parallelism knob: how many OS threads a simulator
/// component may use for its fork-join regions.
///
/// `Parallelism::serial()` (the [`Default`]) is exactly the historical
/// single-threaded code path. Any other count changes **scheduling
/// only** — outputs, statistics and reports stay bit-identical (see the
/// module docs for the contract that guarantees it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::serial()
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} thread{}",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )
    }
}

impl Parallelism {
    /// One thread: the bit-identical serial base case.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A validated thread count.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `threads` is zero or exceeds
    /// [`MAX_THREADS`].
    pub fn new(threads: usize) -> Result<Self, CoreError> {
        if threads == 0 || threads > MAX_THREADS {
            return Err(CoreError::InvalidConfig {
                detail: format!("parallelism must be 1..={MAX_THREADS} threads, got {threads}"),
            });
        }
        Ok(Self { threads })
    }

    /// The process-wide default from the `EDEA_THREADS` environment
    /// variable, read leniently: unset, unparsable, zero or out-of-range
    /// values all fall back to [`Parallelism::serial`] — an environment
    /// knob must never turn into a runtime error. Use
    /// [`Parallelism::from_env_checked`] to learn *whether* the fallback
    /// was a silent repair of a malformed value.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_checked().0
    }

    /// As [`Parallelism::from_env`], but reports the parse outcome: the
    /// second element carries a warning when `EDEA_THREADS` was set to
    /// something unusable and the serial fallback papered over it.
    /// `Edea::new` and `Pool::new` surface that warning to stderr once per
    /// process, so a typo'd knob (`EDEA_THREADS=fourr`) no longer
    /// silently benchmarks the serial path.
    #[must_use]
    pub fn from_env_checked() -> (Self, Option<String>) {
        let value = std::env::var("EDEA_THREADS").ok();
        Self::parse_env_value(value.as_deref())
    }

    /// The pure parsing core of [`Parallelism::from_env_checked`]:
    /// `None` (unset) is the quiet serial default; a set-but-unusable
    /// value falls back to serial **with** a warning describing the
    /// repair. Separated from the environment read so tests can cover
    /// every outcome without racing on process-global state.
    #[must_use]
    pub fn parse_env_value(value: Option<&str>) -> (Self, Option<String>) {
        let Some(raw) = value else {
            return (Self::serial(), None);
        };
        let trimmed = raw.trim();
        match trimmed.parse::<usize>() {
            Ok(n) => match Self::new(n) {
                Ok(par) => (par, None),
                Err(e) => (
                    Self::serial(),
                    Some(format!(
                        "EDEA_THREADS={trimmed} is out of range ({e}); running serial"
                    )),
                ),
            },
            Err(_) => (
                Self::serial(),
                Some(format!(
                    "EDEA_THREADS={raw:?} is not a thread count; running serial"
                )),
            ),
        }
    }

    /// Prints an environment-repair warning to stderr, once per process —
    /// every `Edea`/`Pool` construction re-reads the variable, and a
    /// long-lived service should not log the same typo per request.
    pub(crate) fn warn_env_once(warning: &str) {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| eprintln!("edea-core: {warning}"));
    }

    /// The thread count (always ≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this knob is the serial base case.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

/// Splits `0..n` into `lanes` contiguous, in-order ranges — the static
/// partition of the determinism contract. The first `n % lanes` ranges
/// get one extra element; with `lanes > n` the trailing ranges are empty
/// (oversubscription degrades gracefully, it never reorders work).
///
/// # Panics
///
/// Panics if `lanes` is zero.
#[must_use]
pub fn chunk_ranges(n: usize, lanes: usize) -> Vec<std::ops::Range<usize>> {
    assert!(lanes > 0, "at least one lane is required");
    let base = n / lanes;
    let extra = n % lanes;
    let mut out = Vec::with_capacity(lanes);
    let mut start = 0usize;
    for lane in 0..lanes {
        let len = base + usize::from(lane < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Runs one closure invocation per lane on a scoped fork-join and returns
/// the results **in lane order** regardless of completion order.
///
/// Lane 0 executes on the calling thread (a one-lane call spawns
/// nothing — the serial base case runs exactly the caller's code); lanes
/// `1..` each get a scoped `std::thread`. The closure receives the lane
/// index and that lane's work item by value, so each lane owns its
/// mutable state outright and the borrow checker enforces the
/// one-writer-per-element rule at compile time.
///
/// # Panics
///
/// A panic on any lane is re-raised on the calling thread
/// (`resume_unwind`) after the scope joins — panics never vanish into a
/// detached thread.
pub fn map_lanes<T, R, F>(lanes: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if lanes.len() <= 1 {
        return lanes
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut items = lanes.into_iter();
        // edea-lint: allow(panic-in-lib): the len <= 1 early return guarantees a first item
        let first = items.next().expect("len checked above");
        // Spawn lanes 1.. first so they overlap with lane 0's inline run.
        let handles: Vec<_> = items
            .enumerate()
            .map(|(i, item)| scope.spawn(move || f(i + 1, item)))
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(0, first));
        for h in handles {
            // Join strictly in lane order: the reduction order the
            // determinism contract requires.
            out.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_the_default_and_displays() {
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::serial().to_string(), "1 thread");
        assert_eq!(Parallelism::new(4).unwrap().to_string(), "4 threads");
    }

    #[test]
    fn zero_and_oversized_thread_counts_are_rejected() {
        assert!(matches!(
            Parallelism::new(0),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Parallelism::new(MAX_THREADS + 1),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert_eq!(
            Parallelism::new(MAX_THREADS).unwrap().threads(),
            MAX_THREADS
        );
    }

    #[test]
    fn env_value_parsing_reports_repairs() {
        // Unset: quiet serial default, no warning.
        assert_eq!(
            Parallelism::parse_env_value(None),
            (Parallelism::serial(), None)
        );
        // Valid counts (whitespace tolerated): no warning.
        let (par, warn) = Parallelism::parse_env_value(Some("4"));
        assert_eq!(par.threads(), 4);
        assert!(warn.is_none());
        let (par, warn) = Parallelism::parse_env_value(Some(" 2 "));
        assert_eq!(par.threads(), 2);
        assert!(warn.is_none());
        // Out-of-range counts: serial fallback, with a warning naming it.
        for bad in ["0", "999"] {
            let (par, warn) = Parallelism::parse_env_value(Some(bad));
            assert!(par.is_serial());
            let warn = warn.unwrap();
            assert!(warn.contains("out of range"), "{warn}");
            assert!(warn.contains(bad), "{warn}");
        }
        // Unparsable garbage: serial fallback, with the raw value quoted.
        for bad in ["fourr", "", "-2", "3.5"] {
            let (par, warn) = Parallelism::parse_env_value(Some(bad));
            assert!(par.is_serial());
            let warn = warn.unwrap();
            assert!(warn.contains("not a thread count"), "{warn}");
            assert!(warn.contains(&format!("{bad:?}")), "{warn}");
        }
    }

    #[test]
    fn chunk_ranges_partition_contiguously() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(4, 4), vec![0..1, 1..2, 2..3, 3..4]);
        // Oversubscription: trailing lanes go empty, order is preserved.
        assert_eq!(chunk_ranges(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(chunk_ranges(0, 2), vec![0..0, 0..0]);
    }

    #[test]
    fn map_lanes_returns_results_in_lane_order() {
        // Lane 0 does the most work, so later lanes finish first; the
        // result order must still be the lane order.
        let work: Vec<usize> = (0..6).map(|i| (6 - i) * 50_000).collect();
        let out = map_lanes(work, |lane, spin| {
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i as u64);
            }
            (lane, spin, acc & 1)
        });
        for (lane, r) in out.iter().enumerate() {
            assert_eq!(r.0, lane);
            assert_eq!(r.1, (6 - lane) * 50_000);
        }
    }

    #[test]
    fn map_lanes_single_lane_runs_inline() {
        let tid = std::thread::current().id();
        let out = map_lanes(vec![()], move |lane, ()| {
            assert_eq!(lane, 0);
            std::thread::current().id() == tid
        });
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn map_lanes_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            map_lanes(vec![0, 1, 2], |_, v| {
                assert_ne!(v, 1, "lane payload 1 panics");
                v
            })
        });
        assert!(caught.is_err());
    }
}
