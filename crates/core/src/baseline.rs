//! Baseline architectures for the ablation study.
//!
//! The paper motivates two design decisions that these baselines isolate:
//!
//! * **Parallel dual engines** (vs. running the same two engines serially,
//!   DWC phase then PWC phase — the paper's ref \[6\] organization): the
//!   overlap hides all DWC compute under the PWC and shares one initiation,
//!   reducing latency.
//! * **Direct data transfer** through the intermediate buffer (vs. writing
//!   the DWC output to external memory and reading it back — what a
//!   non-streaming engine must do): eliminates `2·N·M·D` external accesses
//!   per layer (Fig. 3).
//!
//! [`serial_dual`] models both penalties together (ref \[6\]-style);
//! [`roundtrip_external_traffic`] isolates the traffic penalty for energy
//! comparisons.

use edea_nn::workload::LayerShape;

use crate::config::EdeaConfig;
use crate::timing;

/// Cycle/traffic summary of a baseline execution of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineLayer {
    /// Total cycles.
    pub cycles: u64,
    /// Extra external traffic versus EDEA, in bytes.
    pub extra_external_bytes: u64,
}

/// Serial dual-engine baseline: the same DWC and PWC arrays, but the PWC
/// phase only starts after the whole DWC phase of a portion-pass finished,
/// and the intermediate map round-trips external memory.
///
/// Per portion-pass: DWC phase `9 + S` cycles (one tile per cycle after its
/// own initiation), then PWC phase `9 + S·Kt` cycles.
#[must_use]
pub fn serial_dual(shape: &LayerShape, cfg: &EdeaConfig) -> BaselineLayer {
    let b = timing::layer_cycles(shape, cfg);
    // Each portion-pass pays both initiations and the un-hidden DWC compute.
    let passes = b.portions * b.channel_passes;
    let cycles = 2 * cfg.init_cycles * passes + b.dwc_busy + b.pwc_busy;
    BaselineLayer {
        cycles,
        extra_external_bytes: roundtrip_external_traffic(shape),
    }
}

/// The external-traffic penalty of dropping the intermediate buffer: the
/// DWC output is written out and read back once per kernel-tile pass
/// (the `La` dataflow re-reads the PWC input `⌈K/Tk⌉` times — from external
/// memory, without the on-chip buffer).
#[must_use]
pub fn roundtrip_external_traffic(shape: &LayerShape) -> u64 {
    let inter = shape.intermediate_elems();
    let kernel_tiles = shape.k_out.div_ceil(16) as u64;
    inter + inter * kernel_tiles
}

/// The paper's Fig. 3 variant of the same quantity: counting each crossing
/// once (write + read), the activation-access reduction EDEA achieves.
#[must_use]
pub fn fig3_roundtrip_traffic(shape: &LayerShape) -> u64 {
    2 * shape.intermediate_elems()
}

/// Relative latency of EDEA vs. the serial-dual baseline for one layer
/// (`< 1`: EDEA faster).
#[must_use]
pub fn parallel_speed_ratio(shape: &LayerShape, cfg: &EdeaConfig) -> f64 {
    let edea = timing::layer_cycles(shape, cfg).total();
    let serial = serial_dual(shape, cfg).cycles;
    edea as f64 / serial as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    #[test]
    fn serial_is_always_slower() {
        for l in mobilenet_v1_cifar10() {
            let edea = timing::layer_cycles(&l, &cfg()).total();
            let serial = serial_dual(&l, &cfg()).cycles;
            assert!(serial > edea, "layer {}", l.index);
        }
    }

    #[test]
    fn overlap_gain_is_roughly_one_over_kt_plus_init() {
        // For layer 6 (S=4, Kt=32, 64 passes): serial adds 9 + S = 13 cycles
        // per pass over EDEA's 137 → ratio ≈ 137/150.
        let l6 = mobilenet_v1_cifar10()[6];
        let ratio = parallel_speed_ratio(&l6, &cfg());
        assert!((ratio - 137.0 / 150.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn network_level_speedup_band() {
        // Across the network the parallel overlap buys a modest but real
        // latency reduction (the headline EDEA wins are energy/streaming).
        let layers = mobilenet_v1_cifar10();
        let edea: u64 = layers
            .iter()
            .map(|l| timing::layer_cycles(l, &cfg()).total())
            .sum();
        let serial: u64 = layers.iter().map(|l| serial_dual(l, &cfg()).cycles).sum();
        let speedup = serial as f64 / edea as f64;
        assert!(speedup > 1.05 && speedup < 1.30, "speedup {speedup}");
    }

    #[test]
    fn roundtrip_traffic_dominated_by_rereads() {
        // Layer 12: 4096-element intermediate × (1 write + 64 re-reads).
        let l12 = mobilenet_v1_cifar10()[12];
        assert_eq!(roundtrip_external_traffic(&l12), 4096 * 65);
        assert_eq!(fig3_roundtrip_traffic(&l12), 8192);
    }

    #[test]
    fn fig3_traffic_sums_to_paper_scale() {
        // Σ 2·N·M·D over the network = 315 392 eliminated accesses (the
        // Fig. 3 delta between baseline and direct transfer).
        let total: u64 = mobilenet_v1_cifar10()
            .iter()
            .map(fig3_roundtrip_traffic)
            .sum();
        assert_eq!(total, 2 * 157_696);
    }

    #[test]
    fn serial_extra_traffic_positive_everywhere() {
        for l in mobilenet_v1_cifar10() {
            assert!(serial_dual(&l, &cfg()).extra_external_bytes > 0);
        }
    }
}
