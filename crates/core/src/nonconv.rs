//! The Non-Convolutional unit (paper Fig. 6).
//!
//! Eight parallel lanes, one per channel of the current `Td` slice, each
//! applying the folded `y = k·x + b` (Q8.16), the round stage, and the
//! ReLU-folded clip to int8. The unit sits between the DWC adder trees and
//! the intermediate buffer; the same hardware is reused on the output path
//! after the PWC (the paper describes only the DWC→PWC placement; reuse on
//! drain is our documented assumption — it adds no cycles because the
//! output interface is otherwise idle).

use edea_nn::fold::FoldedAffine;
use edea_tensor::Tensor3;

use crate::config::EdeaConfig;
use crate::CoreError;

/// Activity record of the Non-Conv unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NonConvActivity {
    /// Multiply-add operations performed.
    pub ops: u64,
    /// Outputs clipped to zero (the ReLU floor) — these feed the zero-gating
    /// statistics of the PWC engine.
    pub zero_outputs: u64,
}

/// The Non-Conv unit: `lanes` parallel Q8.16 multiply-add datapaths.
#[derive(Debug, Clone)]
pub struct NonConvUnit {
    lanes: usize,
}

impl NonConvUnit {
    /// Builds the unit from the architecture configuration (`Td` lanes).
    #[must_use]
    pub fn new(cfg: &EdeaConfig) -> Self {
        Self { lanes: cfg.tile.td }
    }

    /// Number of parallel lanes (8 in the paper: "Non-Conv Unit #0 … X8").
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Transforms one accumulator tile `(C, Tn, Tm)` with per-channel
    /// parameters (`params[c]` applies to channel `c`), producing the int8
    /// tile the intermediate buffer stores.
    ///
    /// Thin allocating wrapper over [`NonConvUnit::apply_tile_into`]; the
    /// simulator's hot path uses the `_into` variant with a reused output
    /// buffer.
    ///
    /// `params` may cover more channels than the tile (the caller passes the
    /// slice for the current channel window).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `params` has fewer entries than
    /// the tile has channels.
    pub fn apply_tile(
        &self,
        acc: &Tensor3<i32>,
        params: &[FoldedAffine],
    ) -> Result<(Tensor3<i8>, NonConvActivity), CoreError> {
        let (c, h, w) = acc.shape();
        let mut out = Tensor3::<i8>::zeros(c, h, w);
        let activity = self.apply_tile_into(acc, params, &mut out)?;
        Ok((out, activity))
    }

    /// Transforms one accumulator tile into a caller-provided output
    /// buffer, which is reshaped to `acc`'s shape in place —
    /// allocation-free once the buffer has grown to that size, and
    /// bit-exact with [`NonConvUnit::apply_tile`]. The per-channel
    /// transform walks flat channel planes instead of indexing every
    /// element.
    ///
    /// The clip floor is the ReLU zero — the intermediate-boundary
    /// configuration. [`NonConvUnit::apply_tile_into_clipped`] exposes the
    /// floor for output boundaries that fold no ReLU (the linear project
    /// convolution of an inverted-residual block clips to −128).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `params` has fewer entries than
    /// the tile has channels.
    pub fn apply_tile_into(
        &self,
        acc: &Tensor3<i32>,
        params: &[FoldedAffine],
        out: &mut Tensor3<i8>,
    ) -> Result<NonConvActivity, CoreError> {
        self.apply_tile_into_clipped(acc, params, 0, out)
    }

    /// [`NonConvUnit::apply_tile_into`] with an explicit clip floor `lo`
    /// (`0` = folded ReLU, `-128` = linear output).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `params` has fewer entries than
    /// the tile has channels.
    pub fn apply_tile_into_clipped(
        &self,
        acc: &Tensor3<i32>,
        params: &[FoldedAffine],
        lo: i8,
        out: &mut Tensor3<i8>,
    ) -> Result<NonConvActivity, CoreError> {
        let (c, h, w) = acc.shape();
        if params.len() < c {
            return Err(CoreError::UnsupportedShape {
                detail: format!("{} Non-Conv parameter sets for {c} channels", params.len()),
            });
        }
        // The plane loop below writes every output element, so the
        // reshape skips the zero-fill.
        out.resize_for_overwrite(c, h, w);
        let mut activity = NonConvActivity::default();
        let plane = h * w;
        let planes = acc
            .as_slice()
            .chunks_exact(plane)
            .zip(out.as_mut_slice().chunks_exact_mut(plane));
        for ((src, dst), p) in planes.zip(params) {
            for (d, &a) in dst.iter_mut().zip(src) {
                let y = p.apply_fixed(a, lo);
                activity.ops += 1;
                activity.zero_outputs += u64::from(y == 0);
                *d = y;
            }
        }
        Ok(activity)
    }

    /// The residual extension of the output boundary: transforms one
    /// accumulator tile while summing the requantized skip connection
    /// `r · residual[c]` onto the `k·x + b` bus at wide Q8.16 precision
    /// *before* the round stage (see
    /// [`FoldedAffine::apply_fixed_residual`]) — the Non-Conv fold and the
    /// residual add commute bit-exactly, proven by the `residual_fold`
    /// property suite in `edea-nn`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `params` has fewer entries than
    /// the tile has channels, or if `residual`'s shape differs from
    /// `acc`'s.
    pub fn apply_tile_residual_into(
        &self,
        acc: &Tensor3<i32>,
        params: &[FoldedAffine],
        residual: &Tensor3<i8>,
        r: edea_fixed::Q8x16,
        lo: i8,
        out: &mut Tensor3<i8>,
    ) -> Result<NonConvActivity, CoreError> {
        let (c, h, w) = acc.shape();
        if params.len() < c {
            return Err(CoreError::UnsupportedShape {
                detail: format!("{} Non-Conv parameter sets for {c} channels", params.len()),
            });
        }
        if residual.shape() != acc.shape() {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "residual tile {:?} does not match accumulator tile {:?}",
                    residual.shape(),
                    acc.shape()
                ),
            });
        }
        out.resize_for_overwrite(c, h, w);
        let mut activity = NonConvActivity::default();
        let plane = h * w;
        let planes = acc
            .as_slice()
            .chunks_exact(plane)
            .zip(residual.as_slice().chunks_exact(plane))
            .zip(out.as_mut_slice().chunks_exact_mut(plane));
        for (((src, res), dst), p) in planes.zip(params) {
            for ((d, &a), &rv) in dst.iter_mut().zip(src).zip(res) {
                let y = p.apply_fixed_residual(a, rv, r, lo);
                activity.ops += 1;
                activity.zero_outputs += u64::from(y == 0);
                *d = y;
            }
        }
        Ok(activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_fixed::Q8x16;
    use edea_tensor::Tensor3;

    fn unit() -> NonConvUnit {
        NonConvUnit::new(&EdeaConfig::paper())
    }

    fn affine(k: f64, b: f64) -> FoldedAffine {
        FoldedAffine::fold(k, b, 1.0, 1.0, 1.0)
    }

    #[test]
    fn paper_unit_has_8_lanes() {
        assert_eq!(unit().lanes(), 8);
    }

    #[test]
    fn applies_per_channel_affine() {
        let acc = Tensor3::<i32>::from_fn(2, 2, 2, |c, h, w| (c as i32 + 1) * (h * 2 + w) as i32);
        let params = vec![affine(1.0, 0.0), affine(0.5, 1.0)];
        let (out, act) = unit().apply_tile(&acc, &params).unwrap();
        assert_eq!(out[(0, 1, 1)], 3); // 1.0·3 + 0
        assert_eq!(out[(1, 1, 1)], 4); // 0.5·6 + 1
        assert_eq!(act.ops, 8);
    }

    #[test]
    fn relu_floor_counts_zero_outputs() {
        let acc = Tensor3::<i32>::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as i32 - 2); // -2..1
        let params = vec![affine(1.0, 0.0)];
        let (out, act) = unit().apply_tile(&acc, &params).unwrap();
        assert_eq!(out.as_slice(), &[0, 0, 0, 1]);
        assert_eq!(act.zero_outputs, 3);
    }

    #[test]
    fn saturates_at_127() {
        let acc = Tensor3::<i32>::from_fn(1, 1, 1, |_, _, _| 1_000_000);
        let (out, _) = unit().apply_tile(&acc, &[affine(1.0, 0.0)]).unwrap();
        assert_eq!(out[(0, 0, 0)], 127);
    }

    #[test]
    fn rejects_missing_params() {
        let acc = Tensor3::<i32>::zeros(8, 2, 2);
        let params = vec![affine(1.0, 0.0); 4];
        assert!(unit().apply_tile(&acc, &params).is_err());
    }

    #[test]
    fn clipped_floor_passes_negative_outputs() {
        // lo = −128: the linear project boundary keeps signed codes that
        // the ReLU-folded boundary would floor to zero.
        let acc = Tensor3::<i32>::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as i32 - 2); // -2..1
        let params = vec![affine(1.0, 0.0)];
        let mut out = Tensor3::<i8>::zeros(1, 1, 1);
        unit()
            .apply_tile_into_clipped(&acc, &params, -128, &mut out)
            .unwrap();
        assert_eq!(out.as_slice(), &[-2, -1, 0, 1]);
    }

    #[test]
    fn residual_path_matches_the_fold_reference() {
        let acc = Tensor3::<i32>::from_fn(2, 2, 2, |c, h, w| {
            (c as i32 * 900 - 700) + (h as i32 * 55) - (w as i32 * 13)
        });
        let residual = Tensor3::<i8>::from_fn(2, 2, 2, |c, h, w| {
            (c as i32 * 37 - 60 + (h * 2 + w) as i32 * 9) as i8
        });
        let params = vec![
            FoldedAffine::fold(0.6, -0.1, 0.02, 0.01, 0.015),
            FoldedAffine::fold(-0.3, 0.4, 0.02, 0.01, 0.015),
        ];
        let r = Q8x16::from_f64(0.73);
        let mut out = Tensor3::<i8>::zeros(1, 1, 1);
        unit()
            .apply_tile_residual_into(&acc, &params, &residual, r, -128, &mut out)
            .unwrap();
        for ((c, h, w), &v) in out.indexed_iter() {
            assert_eq!(
                v,
                params[c].apply_fixed_residual(acc[(c, h, w)], residual[(c, h, w)], r, -128)
            );
        }
    }

    #[test]
    fn residual_rejects_mismatched_shapes() {
        let acc = Tensor3::<i32>::zeros(2, 2, 2);
        let residual = Tensor3::<i8>::zeros(2, 2, 1);
        let params = vec![affine(1.0, 0.0); 2];
        let mut out = Tensor3::<i8>::zeros(1, 1, 1);
        assert!(unit()
            .apply_tile_residual_into(&acc, &params, &residual, Q8x16::ONE, -128, &mut out)
            .is_err());
    }

    #[test]
    fn matches_q8_16_reference_bit_exactly() {
        // The unit must be exactly FoldedAffine::apply_fixed per element.
        let acc = Tensor3::<i32>::from_fn(3, 2, 2, |c, h, w| {
            (c as i32 * 1000 - 1500) + (h as i32 * 77) - (w as i32 * 31)
        });
        let params = vec![
            FoldedAffine::fold(0.7, -0.3, 0.02, 0.01, 0.015),
            FoldedAffine::fold(-0.2, 0.9, 0.02, 0.01, 0.015),
            FoldedAffine::fold(1.4, 0.0, 0.02, 0.01, 0.015),
        ];
        let (out, _) = unit().apply_tile(&acc, &params).unwrap();
        for ((c, h, w), &v) in out.indexed_iter() {
            assert_eq!(v, params[c].apply_fixed(acc[(c, h, w)], 0));
        }
        // And the constants really are Q8.16 words:
        assert_eq!(params[0].k, Q8x16::from_f64(params[0].k_exact));
    }
}
