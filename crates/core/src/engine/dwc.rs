//! The depthwise convolution engine (paper Fig. 5a).
//!
//! "The DWC engine consists of a fully parallel PE array capable of
//! simultaneously computing 8 channels of ifmap, resulting in a total of
//! 288 MAC operations. Each column of PE performs 3×3 MACs using an adder
//! tree and produces the output of DWC. … The DWC engine utilizes an ifmap
//! of size 4×4×8 (5×5×8 when stride is 2) and a tiled kernel of size 3×3×8,
//! and generates an ofmap of size 2×2×8."
//!
//! One invocation of [`DwcEngine::compute_tile`] models one engine cycle:
//! all `Td` channel PEs fire in parallel, each computing its `Tn×Tm` output
//! windows through 9-input adder trees.

use edea_tensor::ops::all_zero_i8;
use edea_tensor::{Tensor3, Tensor4};

use crate::config::EdeaConfig;
use crate::engine::EngineActivity;
use crate::CoreError;

/// Output of one DWC engine cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct DwcTileOutput {
    /// Accumulators, shape `(Td, Tn, Tm)` — int8×int8 sums over 3×3 taps
    /// (19-bit worst case, carried in `i32`).
    pub acc: Tensor3<i32>,
    /// Multiplier activity for the power model.
    pub activity: EngineActivity,
}

/// The DWC PE array.
#[derive(Debug, Clone)]
pub struct DwcEngine {
    td: usize,
    tn: usize,
    tm: usize,
    kernel: usize,
}

impl DwcEngine {
    /// Builds the engine from the architecture configuration.
    #[must_use]
    pub fn new(cfg: &EdeaConfig) -> Self {
        let t = &cfg.tile;
        Self {
            td: t.td,
            tn: t.tn,
            tm: t.tm,
            kernel: t.kernel,
        }
    }

    /// MAC slots exercised per invocation (288 for the paper config).
    #[must_use]
    pub fn macs_per_cycle(&self) -> u64 {
        (self.td * self.kernel * self.kernel * self.tn * self.tm) as u64
    }

    /// Computes one tile: `ifmap` is the `(Td, Tr, Tc)` input window
    /// (`Tr = (Tn−1)·stride + kernel`), `weights` the `(Td, 1, K, K)` kernel
    /// slice.
    ///
    /// Thin allocating wrapper over [`DwcEngine::compute_tile_into`]; the
    /// simulator's hot path uses the `_into` variant with a reused
    /// accumulator buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
        stride: usize,
    ) -> Result<DwcTileOutput, CoreError> {
        let mut acc = Tensor3::<i32>::zeros(self.td, self.tn, self.tm);
        let activity = self.compute_tile_into(ifmap, weights, stride, &mut acc)?;
        Ok(DwcTileOutput { acc, activity })
    }

    /// Computes one tile into a caller-provided accumulator buffer, which
    /// is reshaped to `(Td, Tn, Tm)` in place — allocation-free once the
    /// buffer has grown to that size. Bit-exact with
    /// [`DwcEngine::compute_tile`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile_into(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
        stride: usize,
        acc: &mut Tensor3<i32>,
    ) -> Result<EngineActivity, CoreError> {
        let tr = (self.tn - 1) * stride + self.kernel;
        let tc = (self.tm - 1) * stride + self.kernel;
        if ifmap.shape() != (self.td, tr, tc) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "DWC ifmap tile {:?}, engine expects ({}, {tr}, {tc}) at stride {stride}",
                    ifmap.shape(),
                    self.td
                ),
            });
        }
        if weights.shape() != (self.td, 1, self.kernel, self.kernel) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "DWC weight tile {:?}, engine expects ({}, 1, {}, {})",
                    weights.shape(),
                    self.td,
                    self.kernel,
                    self.kernel
                ),
            });
        }
        acc.resize_zeroed(self.td, self.tn, self.tm);
        // Flat-slice tap-major form of the 9-input adder trees: per
        // channel, each kernel tap accumulates into all Tn·Tm outputs. Per
        // output element the tap order is ascending `(kh, kw)` — integer
        // addition is associative, so this is bit-exact with both the
        // element-at-a-time fold and the tree the RTL instantiates.
        //
        // Zero skipping: a plane (one channel's input window) that is
        // entirely zero contributes exactly 0 to every accumulator, so the
        // simulator skips its whole 3×3×Tn×Tm slot block — bit-exact by
        // the additive identity, and the common case at the Fig.-11 late
        // layers (97.4 % element zeros ⇒ most 16-pixel windows are fully
        // zero). The skip granularity is deliberately the *plane*, never
        // the element: a per-element branch on mid-sparsity data
        // mispredicts constantly and forfeits the vectorized inner loop,
        // costing more than the multiplies it saves. The *modeled*
        // activity is decoupled from the shortcut: a skipped plane counts
        // its full `taps·pix` gated slots, and live planes count
        // per slot branchlessly inside the MAC loop — the power model sees
        // every clock-gated hardware slot either way.
        let ia = ifmap.as_slice();
        let wt = weights.as_slice();
        let out = acc.as_mut_slice();
        let pix = self.tn * self.tm;
        let taps = self.kernel * self.kernel;
        let mut zero_act = 0u64;
        for c in 0..self.td {
            let plane = &ia[c * tr * tc..(c + 1) * tr * tc];
            let wch = &wt[c * taps..(c + 1) * taps];
            let orow = &mut out[c * pix..(c + 1) * pix];
            if all_zero_i8(plane) {
                // Every slot of this channel sees a zero activation; the
                // accumulators stay at resize_zeroed's zeros — no MACs.
                zero_act += (taps * pix) as u64;
                continue;
            }
            for kh in 0..self.kernel {
                for kw in 0..self.kernel {
                    let w = i32::from(wch[kh * self.kernel + kw]);
                    for on in 0..self.tn {
                        let base = (on * stride + kh) * tc + kw;
                        for om in 0..self.tm {
                            let a = plane[base + om * stride];
                            zero_act += u64::from(a == 0);
                            orow[on * self.tm + om] += i32::from(a) * w;
                        }
                    }
                }
            }
        }
        // Weight zero counts, hoisted: every weight feeds all Tn·Tm lanes.
        let zero_weight: u64 = wt.iter().map(|&w| u64::from(w == 0)).sum();
        Ok(EngineActivity {
            mac_slots: self.macs_per_cycle(),
            zero_act_slots: zero_act,
            zero_weight_slots: zero_weight * pix as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::conv::depthwise_conv2d_i8;
    use edea_tensor::rng;

    fn engine() -> DwcEngine {
        DwcEngine::new(&EdeaConfig::paper())
    }

    #[test]
    fn macs_per_cycle_is_288() {
        assert_eq!(engine().macs_per_cycle(), 288);
    }

    #[test]
    fn matches_reference_conv_stride1() {
        // A 4×4×8 window against the golden depthwise conv (valid padding).
        let ifmap = rng::uniform_i8_tensor3(8, 4, 4, -128, 127, 1);
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 2);
        let out = engine().compute_tile(&ifmap, &weights, 1).unwrap();
        let reference = depthwise_conv2d_i8(&ifmap, &weights, 1, 0);
        assert_eq!(out.acc, reference);
    }

    #[test]
    fn matches_reference_conv_stride2() {
        // Fig. 5a: a 5×5×8 window at stride 2 still yields 2×2×8 outputs.
        let ifmap = rng::uniform_i8_tensor3(8, 5, 5, -128, 127, 3);
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 4);
        let out = engine().compute_tile(&ifmap, &weights, 2).unwrap();
        let reference = depthwise_conv2d_i8(&ifmap, &weights, 2, 0);
        assert_eq!(out.acc.shape(), (8, 2, 2));
        assert_eq!(out.acc, reference);
    }

    #[test]
    fn counts_zero_operands() {
        let mut ifmap = rng::uniform_i8_tensor3(8, 4, 4, 1, 127, 5); // no zeros
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, 1, 127, 6); // no zeros
        let out = engine().compute_tile(&ifmap, &weights, 1).unwrap();
        assert_eq!(out.activity.zero_act_slots, 0);
        assert_eq!(out.activity.zero_weight_slots, 0);
        // Zero one input pixel: it participates in windows covering it.
        ifmap[(0, 1, 1)] = 0;
        let out = engine().compute_tile(&ifmap, &weights, 1).unwrap();
        // Pixel (1,1) is covered by all four 3×3 windows at stride 1.
        assert_eq!(out.activity.zero_act_slots, 4);
    }

    #[test]
    fn worst_case_accumulator_fits_19_bits() {
        let ifmap = rng::uniform_i8_tensor3(8, 4, 4, -128, -128, 7);
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, -128, 8);
        let out = engine().compute_tile(&ifmap, &weights, 1).unwrap();
        for &v in out.acc.as_slice() {
            assert_eq!(v, 9 * 128 * 128);
            assert!(edea_fixed::sat::fits_in_bits(i64::from(v), 19));
        }
    }

    #[test]
    fn rejects_wrong_tile_shapes() {
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -1, 1, 9);
        let bad_ifmap = rng::uniform_i8_tensor3(8, 4, 4, -1, 1, 10);
        // 4×4 window is invalid at stride 2 (needs 5×5).
        assert!(engine().compute_tile(&bad_ifmap, &weights, 2).is_err());
        let bad_channels = rng::uniform_i8_tensor3(4, 4, 4, -1, 1, 11);
        assert!(engine().compute_tile(&bad_channels, &weights, 1).is_err());
    }

    #[test]
    fn full_parallelism_every_cycle() {
        // 100 % PE utilization: every invocation exercises all 288 slots.
        let ifmap = rng::uniform_i8_tensor3(8, 4, 4, -128, 127, 12);
        let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 13);
        let out = engine().compute_tile(&ifmap, &weights, 1).unwrap();
        assert_eq!(out.activity.mac_slots, 288);
    }
}
