//! The two convolution engines (paper Fig. 5).
//!
//! Both engines are *bit-exact* datapath models: given the same int8 tiles
//! the RTL would see, they produce the accumulator values the adder trees
//! would produce, plus the activity statistics (zero-operand counts) the
//! power model consumes.

mod dwc;
mod pwc;

pub use dwc::{DwcEngine, DwcTileOutput};
pub use pwc::{LaneOccupancy, PwcEngine, PwcTileOutput};

/// Activity statistics of one engine invocation.
///
/// `mac_slots` counts every multiplier slot exercised (the engines always
/// run fully parallel — 100 % PE utilization); `zero_act_slots` counts slots
/// whose activation operand was zero, which clock-gate their multiplier in
/// the silicon and therefore consume almost no dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineActivity {
    /// Multiplier slots exercised.
    pub mac_slots: u64,
    /// Slots with a zero activation operand (gated).
    pub zero_act_slots: u64,
    /// Slots with a zero weight operand.
    pub zero_weight_slots: u64,
}

impl EngineActivity {
    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &EngineActivity) {
        self.mac_slots += other.mac_slots;
        self.zero_act_slots += other.zero_act_slots;
        self.zero_weight_slots += other.zero_weight_slots;
    }

    /// Fraction of slots gated by zero activations.
    #[must_use]
    pub fn gating_fraction(&self) -> f64 {
        if self.mac_slots == 0 {
            return 0.0;
        }
        self.zero_act_slots as f64 / self.mac_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = EngineActivity {
            mac_slots: 10,
            zero_act_slots: 3,
            zero_weight_slots: 1,
        };
        a.merge(&EngineActivity {
            mac_slots: 5,
            zero_act_slots: 2,
            zero_weight_slots: 0,
        });
        assert_eq!(a.mac_slots, 15);
        assert_eq!(a.zero_act_slots, 5);
        assert_eq!(a.zero_weight_slots, 1);
    }

    #[test]
    fn gating_fraction_handles_empty() {
        assert_eq!(EngineActivity::default().gating_fraction(), 0.0);
        let a = EngineActivity {
            mac_slots: 4,
            zero_act_slots: 1,
            zero_weight_slots: 0,
        };
        assert_eq!(a.gating_fraction(), 0.25);
    }
}
