//! The pointwise convolution engine (paper Fig. 5b).
//!
//! "The PWC engine incorporates a total of 512 MAC operations. It operates
//! on an ifmap with dimensions 2×2×8 and a tiled kernel of size 1×1×8×16,
//! producing an ofmap with dimensions 2×2×16."
//!
//! One invocation models one engine cycle: 64 dot-product lanes
//! (`Tn·Tm·Tk`), each 8 deep (`Td`), summed by 8-input adder trees. The
//! returned values are *partial sums over one channel slice*; accumulation
//! across the `⌈D/Td⌉` passes happens in the psum SRAM
//! (see [`crate::accelerator`]).

use edea_tensor::ops::nonzero_row_mask_i8;
use edea_tensor::{Tensor3, Tensor4};

use crate::config::EdeaConfig;
use crate::engine::EngineActivity;
use crate::CoreError;

/// Per-lane nonzero-weight occupancy of one `(Tk, Td, 1, 1)` PWC weight
/// tile: bit `c` of `masks[k]` is set iff output channel `k`'s weight for
/// input channel `c` is nonzero.
///
/// Weights are fixed at plan time, so [`crate::plan::LayerPlan`]
/// precomputes one of these per weight tile; at run time the engine ANDs
/// it with the tile's activation occupancy and iterates only the set bits
/// — dense tiles short-circuit to the branch-free lane kernel, paying
/// nothing for the machinery.
///
/// Masks live inline (no heap): a width-1.0 network plan holds tens of
/// thousands of these, one per weight tile, and a per-tile `Vec` was a
/// measurable slice of one-shot plan-build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneOccupancy {
    masks: [u64; Self::MAX_LANES],
    lanes: usize,
    all_full: bool,
}

impl LaneOccupancy {
    /// Largest `Tk` the inline mask array covers (the paper config uses
    /// 16); wider tiles fall back to the unmasked engine paths.
    pub const MAX_LANES: usize = 16;

    /// Scans a `(Tk, Td, 1, 1)` weight tile. Returns `None` when the tile
    /// has more than 64 input channels or more than
    /// [`LaneOccupancy::MAX_LANES`] output channels (no mask storage fits;
    /// the engine then runs its unmasked paths).
    #[must_use]
    pub fn of_weights(weights: &Tensor4<i8>) -> Option<Self> {
        let (tk, td, _, _) = weights.shape();
        if td > 64 || tk > Self::MAX_LANES {
            return None;
        }
        let full = full_mask(td);
        let flat = weights.as_slice();
        let mut masks = [0u64; Self::MAX_LANES];
        if td == 8 {
            // The paper geometry: one u64 load per lane. Per-byte nonzero
            // detect word-wide: adding 0x7F to a byte's low 7 bits carries
            // into bit 7 iff they are nonzero, and OR-ing `x` back in
            // catches the 0x80 case — unlike the classic
            // `(x-0x01…) & !x & 0x80…` zero-byte probe, this has no
            // cross-byte borrows, so it identifies *which* bytes are zero
            // exactly. Then gather one bit per byte. Plan construction
            // scans every weight byte, so this path keeps the occupancy
            // precompute a negligible slice of plan-build time.
            for (dst, lane) in masks.iter_mut().zip(flat.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                for (dst, &src) in bytes.iter_mut().zip(lane) {
                    *dst = src as u8;
                }
                let x = u64::from_le_bytes(bytes);
                let hi = ((x & 0x7F7F_7F7F_7F7F_7F7F) + 0x7F7F_7F7F_7F7F_7F7F) | x;
                let nonzero = (hi & 0x8080_8080_8080_8080) >> 7;
                *dst = nonzero.wrapping_mul(0x0102_0408_1020_4080) >> 56;
            }
        } else {
            for (dst, lane) in masks.iter_mut().zip(flat.chunks_exact(td)) {
                *dst = lane
                    .iter()
                    .enumerate()
                    .fold(0u64, |m, (c, &w)| m | (u64::from(w != 0) << c));
            }
        }
        let all_full = masks[..tk].iter().all(|&m| m == full);
        Some(Self {
            masks,
            lanes: tk,
            all_full,
        })
    }

    /// Whether every lane uses every input channel (a fully dense tile).
    #[must_use]
    pub fn all_full(&self) -> bool {
        self.all_full
    }

    /// The nonzero-weight mask of lane `k`.
    ///
    /// # Panics
    ///
    /// If `k` is not a lane of the scanned tile.
    #[must_use]
    pub fn lane(&self, k: usize) -> u64 {
        assert!(k < self.lanes, "lane {k} out of {} lanes", self.lanes);
        self.masks[k]
    }
}

/// A mask with the low `td` bits set (`td` ≤ 64).
fn full_mask(td: usize) -> u64 {
    if td == 64 {
        u64::MAX
    } else {
        (1u64 << td) - 1
    }
}

/// Output of one PWC engine cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PwcTileOutput {
    /// Partial sums for one channel slice, shape `(Tk, Tn, Tm)`.
    pub partial: Tensor3<i32>,
    /// Multiplier activity for the power model.
    pub activity: EngineActivity,
}

/// The PWC PE array.
#[derive(Debug, Clone)]
pub struct PwcEngine {
    td: usize,
    tk: usize,
    tn: usize,
    tm: usize,
}

impl PwcEngine {
    /// Builds the engine from the architecture configuration.
    #[must_use]
    pub fn new(cfg: &EdeaConfig) -> Self {
        Self {
            td: cfg.tile.td,
            tk: cfg.tile.tk,
            tn: cfg.tile.tn,
            tm: cfg.tile.tm,
        }
    }

    /// MAC slots exercised per invocation (512 for the paper config).
    #[must_use]
    pub fn macs_per_cycle(&self) -> u64 {
        (self.td * self.tk * self.tn * self.tm) as u64
    }

    /// Computes one tile: `ifmap` is the `(Td, Tn, Tm)` intermediate tile
    /// from the Non-Conv unit, `weights` the `(Tk, Td, 1, 1)` kernel tile.
    ///
    /// Thin allocating wrapper over [`PwcEngine::compute_tile_into`]; the
    /// simulator's hot path uses the `_into` variant with a reused partial
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
    ) -> Result<PwcTileOutput, CoreError> {
        let mut partial = Tensor3::<i32>::zeros(self.tk, self.tn, self.tm);
        let activity = self.compute_tile_into(ifmap, weights, &mut partial)?;
        Ok(PwcTileOutput { partial, activity })
    }

    /// Computes one tile into a caller-provided partial-sum buffer, which
    /// is reshaped to `(Tk, Tn, Tm)` in place — allocation-free once the
    /// buffer has grown to that size. Bit-exact with
    /// [`PwcEngine::compute_tile`].
    ///
    /// Equivalent to [`PwcEngine::compute_tile_gated_into`] without a
    /// precomputed weight occupancy: zero *activations* are still skipped.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile_into(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
        partial: &mut Tensor3<i32>,
    ) -> Result<EngineActivity, CoreError> {
        self.compute_tile_gated_into(ifmap, weights, None, partial)
    }

    /// Computes one tile with zero skipping: input channels whose
    /// activation row is entirely zero — and, when `occupancy` is given,
    /// whose weight is zero for a lane — contribute exactly 0 to every
    /// partial sum, so their multiplies are elided. Bit-exact with the
    /// dense kernels (the additive identity), and a fully dense tile
    /// short-circuits to them, paying only the occupancy scan.
    ///
    /// The returned [`EngineActivity`] reports the *modeled hardware*
    /// slots — every zero-operand slot the silicon clock-gates is counted
    /// from the full tile, never elided with the software shortcut.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile_gated_into(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
        occupancy: Option<&LaneOccupancy>,
        partial: &mut Tensor3<i32>,
    ) -> Result<EngineActivity, CoreError> {
        if ifmap.shape() != (self.td, self.tn, self.tm) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "PWC ifmap tile {:?}, engine expects ({}, {}, {})",
                    ifmap.shape(),
                    self.td,
                    self.tn,
                    self.tm
                ),
            });
        }
        if weights.shape() != (self.tk, self.td, 1, 1) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "PWC weight tile {:?}, engine expects ({}, {}, 1, 1)",
                    weights.shape(),
                    self.tk,
                    self.td
                ),
            });
        }
        // Flat-slice axpy form of the 8-input adder trees: for each output
        // channel, accumulate one scaled activation plane per input
        // channel. Per output element the channel summation order is
        // ascending `c`, exactly as the element-at-a-time tree fold — the
        // partials are bit-identical. The paper's Tn = Tm = 2 tile runs
        // the register-resident lane kernel, which overwrites every output
        // element (so the reshape skips the zero-fill); other geometries
        // take the generic accumulate path over a zeroed buffer.
        let pix = self.tn * self.tm;
        let ia = ifmap.as_slice();
        let wt = weights.as_slice();
        // Skip dispatch: scan the tile's activation occupancy (bit `c` =
        // channel `c` has any nonzero pixel) and route to the masked
        // kernels — which walk only the set bits of `act_mask &
        // weight_mask` per lane — only when at least half the channel rows
        // are entirely zero. Below that the vectorized dense kernels win:
        // multiplying by a zero is cheaper than branching on one, so
        // moderate sparsity (and weight-only sparsity) stays branch-free.
        let act_mask = if self.td <= 64 {
            let mask = nonzero_row_mask_i8(ia, pix);
            (2 * mask.count_ones() as usize <= self.td).then_some(mask)
        } else {
            None // no mask word fits; dense kernels are bit-exact anyway
        };
        // Each arm owns its reshape: the lane kernels overwrite every
        // output element (no zero-fill needed), the generic arms
        // accumulate and require a zeroed buffer.
        match (act_mask, pix) {
            (None, 4) => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::mac_lanes::<4>(ia, wt, partial.as_mut_slice(), self.td, self.tk);
            }
            (None, 8) => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::mac_lanes::<8>(ia, wt, partial.as_mut_slice(), self.td, self.tk);
            }
            (Some(m), 4) => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::masked_lanes::<4>(
                    ia,
                    wt,
                    partial.as_mut_slice(),
                    self.td,
                    self.tk,
                    m,
                    occupancy,
                );
            }
            (Some(m), 8) => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::masked_lanes::<8>(
                    ia,
                    wt,
                    partial.as_mut_slice(),
                    self.td,
                    self.tk,
                    m,
                    occupancy,
                );
            }
            (mask, _) => {
                partial.resize_zeroed(self.tk, self.tn, self.tm);
                let out = partial.as_mut_slice();
                for k in 0..self.tk {
                    let wrow = &wt[k * self.td..(k + 1) * self.td];
                    let orow = &mut out[k * pix..(k + 1) * pix];
                    if let Some(act) = mask {
                        // Masked generic lanes: walk the set bits in
                        // ascending channel order — the summation order
                        // of the dense fold, minus its zero terms.
                        let mut m = act & occupancy.map_or(u64::MAX, |o| o.lane(k));
                        while m != 0 {
                            let c = m.trailing_zeros() as usize;
                            m &= m - 1;
                            let w = i32::from(wrow[c]);
                            let arow = &ia[c * pix..(c + 1) * pix];
                            for (o, &a) in orow.iter_mut().zip(arow) {
                                *o += i32::from(a) * w;
                            }
                        }
                    } else {
                        for (c, &wq) in wrow.iter().enumerate() {
                            let w = i32::from(wq);
                            let arow = &ia[c * pix..(c + 1) * pix];
                            for (o, &a) in orow.iter_mut().zip(arow) {
                                *o += i32::from(a) * w;
                            }
                        }
                    }
                }
            }
        }
        // Activity counts, hoisted out of the MAC loop: every activation
        // feeds all Tk adder trees, every weight all Tn·Tm lanes.
        let zero_act: u64 = ia.iter().map(|&a| u64::from(a == 0)).sum();
        let zero_weight: u64 = wt.iter().map(|&w| u64::from(w == 0)).sum();
        Ok(EngineActivity {
            mac_slots: self.macs_per_cycle(),
            zero_act_slots: zero_act * self.tk as u64,
            zero_weight_slots: zero_weight * pix as u64,
        })
    }

    /// The dot-product lanes with a compile-time pixel count (`PIX =
    /// Tn·Tm`), so each output tile's accumulators stay in registers and
    /// the lane loop fully unrolls. Channel summation order is identical
    /// to the generic path — bit-exact.
    fn mac_lanes<const PIX: usize>(ia: &[i8], wt: &[i8], out: &mut [i32], td: usize, tk: usize) {
        for k in 0..tk {
            let wrow = &wt[k * td..(k + 1) * td];
            let mut acc = [0i32; PIX];
            for (c, &wq) in wrow.iter().enumerate() {
                let w = i32::from(wq);
                let arow: &[i8; PIX] = ia[c * PIX..(c + 1) * PIX]
                    .try_into()
                    // edea-lint: allow(panic-in-lib): the chunk is PIX long by construction
                    .expect("lane slice is exactly PIX long");
                for (o, &a) in acc.iter_mut().zip(arow) {
                    *o += i32::from(a) * w;
                }
            }
            out[k * PIX..(k + 1) * PIX].copy_from_slice(&acc);
        }
    }

    /// The zero-skipping twin of [`PwcEngine::mac_lanes`]: each lane walks
    /// only the set bits of `act_mask & occupancy.lane(k)` — the input
    /// channels with a live activation *and* a live weight. Set bits come
    /// out in ascending channel order, so the summation order is the dense
    /// kernel's minus its zero terms: bit-exact by the additive identity.
    fn masked_lanes<const PIX: usize>(
        ia: &[i8],
        wt: &[i8],
        out: &mut [i32],
        td: usize,
        tk: usize,
        act_mask: u64,
        occupancy: Option<&LaneOccupancy>,
    ) {
        for k in 0..tk {
            let wrow = &wt[k * td..(k + 1) * td];
            let mut m = act_mask & occupancy.map_or(u64::MAX, |o| o.lane(k));
            let mut acc = [0i32; PIX];
            while m != 0 {
                let c = m.trailing_zeros() as usize;
                m &= m - 1;
                let w = i32::from(wrow[c]);
                let arow: &[i8; PIX] = ia[c * PIX..(c + 1) * PIX]
                    .try_into()
                    // edea-lint: allow(panic-in-lib): the chunk is PIX long by construction
                    .expect("lane slice is exactly PIX long");
                for (o, &a) in acc.iter_mut().zip(arow) {
                    *o += i32::from(a) * w;
                }
            }
            out[k * PIX..(k + 1) * PIX].copy_from_slice(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::conv::pointwise_conv2d_i8;
    use edea_tensor::rng;

    fn engine() -> PwcEngine {
        PwcEngine::new(&EdeaConfig::paper())
    }

    #[test]
    fn macs_per_cycle_is_512() {
        assert_eq!(engine().macs_per_cycle(), 512);
    }

    #[test]
    fn matches_reference_pointwise_conv() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, 127, 1);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 2);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.partial, pointwise_conv2d_i8(&ifmap, &weights));
        assert_eq!(out.partial.shape(), (16, 2, 2));
    }

    #[test]
    fn slice_accumulation_equals_full_depth_conv() {
        // Two channel slices accumulated externally must equal a single
        // 16-channel pointwise conv — the psum-SRAM contract.
        let full = rng::uniform_i8_tensor3(16, 2, 2, -128, 127, 3);
        let weights = rng::uniform_i8_tensor4(16, 16, 1, 1, -128, 127, 4);
        let lo = full.channel_slice(0, 8);
        let hi = full.channel_slice(8, 8);
        let w_lo = weights.channel_slice(0, 8);
        let w_hi = weights.channel_slice(8, 8);
        let e = engine();
        let a = e.compute_tile(&lo, &w_lo).unwrap().partial;
        let b = e.compute_tile(&hi, &w_hi).unwrap().partial;
        let reference = pointwise_conv2d_i8(&full, &weights);
        for k in 0..16 {
            for n in 0..2 {
                for m in 0..2 {
                    assert_eq!(a[(k, n, m)] + b[(k, n, m)], reference[(k, n, m)]);
                }
            }
        }
    }

    #[test]
    fn zero_activation_gating_counts() {
        let mut ifmap = rng::uniform_i8_tensor3(8, 2, 2, 1, 127, 5);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, 1, 127, 6);
        ifmap[(3, 1, 0)] = 0; // one zero activation feeds all 16 kernels
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.activity.zero_act_slots, 16);
    }

    #[test]
    fn occupancy_word_path_matches_naive_scan() {
        // td = 8 takes the word-at-a-time zero-byte path; td = 4 the
        // generic fold. Both must agree with a per-element scan for every
        // single-zero position and for denser zero patterns.
        for td in [8usize, 4] {
            let mut w = rng::uniform_i8_tensor4(16, td, 1, 1, 1, 127, 99);
            for hot in 0..w.len() {
                let saved = w.as_mut_slice()[hot];
                w.as_mut_slice()[hot] = 0;
                if hot % 3 == 0 {
                    w.as_mut_slice()[(hot + 7) % (16 * td)] = 0;
                }
                let occ = LaneOccupancy::of_weights(&w).unwrap();
                for k in 0..16 {
                    let naive =
                        (0..td).fold(0u64, |m, c| m | (u64::from(w[(k, c, 0, 0)] != 0) << c));
                    assert_eq!(occ.lane(k), naive, "td={td} hot={hot} lane={k}");
                }
                assert_eq!(
                    occ.all_full(),
                    w.as_slice().iter().all(|&v| v != 0),
                    "td={td} hot={hot}"
                );
                // Restore for the next pattern (approximately: the extra
                // zero seeded above may persist — that only adds variety).
                w.as_mut_slice()[hot] = saved;
            }
        }
        // Adversarial byte patterns for the word path: a 1 directly above a
        // 0 trips the borrow-propagation false positive of the classic
        // `(x-0x01…) & !x` zero-byte probe, and -128 (0x80) exercises the
        // sign bit. Every lane must still match the per-element scan.
        let rows: [[i8; 8]; 4] = [
            [0, 1, 1, 0, 1, 0, 0, 1],
            [-128, 0, -128, 1, 0, -128, 1, 0],
            [1, 1, 1, 1, 1, 1, 1, 1],
            [0, 0, 0, 0, 0, 0, 0, 0],
        ];
        let mut w = Tensor4::<i8>::zeros(16, 8, 1, 1);
        for k in 0..16 {
            for c in 0..8 {
                w[(k, c, 0, 0)] = rows[k % rows.len()][c];
            }
        }
        let occ = LaneOccupancy::of_weights(&w).unwrap();
        for k in 0..16 {
            let naive = (0..8).fold(0u64, |m, c| m | (u64::from(w[(k, c, 0, 0)] != 0) << c));
            assert_eq!(occ.lane(k), naive, "adversarial lane {k}");
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let e = engine();
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -1, 1, 7);
        let bad_w = rng::uniform_i8_tensor4(8, 8, 1, 1, -1, 1, 8);
        assert!(e.compute_tile(&ifmap, &bad_w).is_err());
        let bad_ifmap = rng::uniform_i8_tensor3(16, 2, 2, -1, 1, 9);
        let w = rng::uniform_i8_tensor4(16, 8, 1, 1, -1, 1, 10);
        assert!(e.compute_tile(&bad_ifmap, &w).is_err());
    }

    #[test]
    fn full_parallelism_every_cycle() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, 127, 11);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 12);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.activity.mac_slots, 512);
    }

    #[test]
    fn worst_case_partial_fits_adder_tree_width() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, -128, 13);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, -128, 14);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        for &v in out.partial.as_slice() {
            assert_eq!(v, 8 * 128 * 128);
            assert!(edea_fixed::sat::fits_in_bits(i64::from(v), 19));
        }
    }
}
