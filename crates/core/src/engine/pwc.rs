//! The pointwise convolution engine (paper Fig. 5b).
//!
//! "The PWC engine incorporates a total of 512 MAC operations. It operates
//! on an ifmap with dimensions 2×2×8 and a tiled kernel of size 1×1×8×16,
//! producing an ofmap with dimensions 2×2×16."
//!
//! One invocation models one engine cycle: 64 dot-product lanes
//! (`Tn·Tm·Tk`), each 8 deep (`Td`), summed by 8-input adder trees. The
//! returned values are *partial sums over one channel slice*; accumulation
//! across the `⌈D/Td⌉` passes happens in the psum SRAM
//! (see [`crate::accelerator`]).

use edea_tensor::{Tensor3, Tensor4};

use crate::config::EdeaConfig;
use crate::engine::EngineActivity;
use crate::CoreError;

/// Output of one PWC engine cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PwcTileOutput {
    /// Partial sums for one channel slice, shape `(Tk, Tn, Tm)`.
    pub partial: Tensor3<i32>,
    /// Multiplier activity for the power model.
    pub activity: EngineActivity,
}

/// The PWC PE array.
#[derive(Debug, Clone)]
pub struct PwcEngine {
    td: usize,
    tk: usize,
    tn: usize,
    tm: usize,
}

impl PwcEngine {
    /// Builds the engine from the architecture configuration.
    #[must_use]
    pub fn new(cfg: &EdeaConfig) -> Self {
        Self {
            td: cfg.tile.td,
            tk: cfg.tile.tk,
            tn: cfg.tile.tn,
            tm: cfg.tile.tm,
        }
    }

    /// MAC slots exercised per invocation (512 for the paper config).
    #[must_use]
    pub fn macs_per_cycle(&self) -> u64 {
        (self.td * self.tk * self.tn * self.tm) as u64
    }

    /// Computes one tile: `ifmap` is the `(Td, Tn, Tm)` intermediate tile
    /// from the Non-Conv unit, `weights` the `(Tk, Td, 1, 1)` kernel tile.
    ///
    /// Thin allocating wrapper over [`PwcEngine::compute_tile_into`]; the
    /// simulator's hot path uses the `_into` variant with a reused partial
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
    ) -> Result<PwcTileOutput, CoreError> {
        let mut partial = Tensor3::<i32>::zeros(self.tk, self.tn, self.tm);
        let activity = self.compute_tile_into(ifmap, weights, &mut partial)?;
        Ok(PwcTileOutput { partial, activity })
    }

    /// Computes one tile into a caller-provided partial-sum buffer, which
    /// is reshaped to `(Tk, Tn, Tm)` in place — allocation-free once the
    /// buffer has grown to that size. Bit-exact with
    /// [`PwcEngine::compute_tile`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if tile shapes do not match the
    /// engine geometry.
    pub fn compute_tile_into(
        &self,
        ifmap: &Tensor3<i8>,
        weights: &Tensor4<i8>,
        partial: &mut Tensor3<i32>,
    ) -> Result<EngineActivity, CoreError> {
        if ifmap.shape() != (self.td, self.tn, self.tm) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "PWC ifmap tile {:?}, engine expects ({}, {}, {})",
                    ifmap.shape(),
                    self.td,
                    self.tn,
                    self.tm
                ),
            });
        }
        if weights.shape() != (self.tk, self.td, 1, 1) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "PWC weight tile {:?}, engine expects ({}, {}, 1, 1)",
                    weights.shape(),
                    self.tk,
                    self.td
                ),
            });
        }
        // Flat-slice axpy form of the 8-input adder trees: for each output
        // channel, accumulate one scaled activation plane per input
        // channel. Per output element the channel summation order is
        // ascending `c`, exactly as the element-at-a-time tree fold — the
        // partials are bit-identical. The paper's Tn = Tm = 2 tile runs
        // the register-resident lane kernel, which overwrites every output
        // element (so the reshape skips the zero-fill); other geometries
        // take the generic accumulate path over a zeroed buffer.
        let pix = self.tn * self.tm;
        let ia = ifmap.as_slice();
        let wt = weights.as_slice();
        // Each arm owns its reshape: the lane kernels overwrite every
        // output element (no zero-fill needed), the generic arm
        // accumulates and requires a zeroed buffer.
        match pix {
            4 => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::mac_lanes::<4>(ia, wt, partial.as_mut_slice(), self.td, self.tk);
            }
            8 => {
                partial.resize_for_overwrite(self.tk, self.tn, self.tm);
                Self::mac_lanes::<8>(ia, wt, partial.as_mut_slice(), self.td, self.tk);
            }
            _ => {
                partial.resize_zeroed(self.tk, self.tn, self.tm);
                let out = partial.as_mut_slice();
                for k in 0..self.tk {
                    let wrow = &wt[k * self.td..(k + 1) * self.td];
                    let orow = &mut out[k * pix..(k + 1) * pix];
                    for (c, &wq) in wrow.iter().enumerate() {
                        let w = i32::from(wq);
                        let arow = &ia[c * pix..(c + 1) * pix];
                        for (o, &a) in orow.iter_mut().zip(arow) {
                            *o += i32::from(a) * w;
                        }
                    }
                }
            }
        }
        // Activity counts, hoisted out of the MAC loop: every activation
        // feeds all Tk adder trees, every weight all Tn·Tm lanes.
        let zero_act: u64 = ia.iter().map(|&a| u64::from(a == 0)).sum();
        let zero_weight: u64 = wt.iter().map(|&w| u64::from(w == 0)).sum();
        Ok(EngineActivity {
            mac_slots: self.macs_per_cycle(),
            zero_act_slots: zero_act * self.tk as u64,
            zero_weight_slots: zero_weight * pix as u64,
        })
    }

    /// The dot-product lanes with a compile-time pixel count (`PIX =
    /// Tn·Tm`), so each output tile's accumulators stay in registers and
    /// the lane loop fully unrolls. Channel summation order is identical
    /// to the generic path — bit-exact.
    fn mac_lanes<const PIX: usize>(ia: &[i8], wt: &[i8], out: &mut [i32], td: usize, tk: usize) {
        for k in 0..tk {
            let wrow = &wt[k * td..(k + 1) * td];
            let mut acc = [0i32; PIX];
            for (c, &wq) in wrow.iter().enumerate() {
                let w = i32::from(wq);
                let arow: &[i8; PIX] = ia[c * PIX..(c + 1) * PIX]
                    .try_into()
                    .expect("lane slice is exactly PIX long");
                for (o, &a) in acc.iter_mut().zip(arow) {
                    *o += i32::from(a) * w;
                }
            }
            out[k * PIX..(k + 1) * PIX].copy_from_slice(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::conv::pointwise_conv2d_i8;
    use edea_tensor::rng;

    fn engine() -> PwcEngine {
        PwcEngine::new(&EdeaConfig::paper())
    }

    #[test]
    fn macs_per_cycle_is_512() {
        assert_eq!(engine().macs_per_cycle(), 512);
    }

    #[test]
    fn matches_reference_pointwise_conv() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, 127, 1);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 2);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.partial, pointwise_conv2d_i8(&ifmap, &weights));
        assert_eq!(out.partial.shape(), (16, 2, 2));
    }

    #[test]
    fn slice_accumulation_equals_full_depth_conv() {
        // Two channel slices accumulated externally must equal a single
        // 16-channel pointwise conv — the psum-SRAM contract.
        let full = rng::uniform_i8_tensor3(16, 2, 2, -128, 127, 3);
        let weights = rng::uniform_i8_tensor4(16, 16, 1, 1, -128, 127, 4);
        let lo = full.channel_slice(0, 8);
        let hi = full.channel_slice(8, 8);
        let w_lo = weights.channel_slice(0, 8);
        let w_hi = weights.channel_slice(8, 8);
        let e = engine();
        let a = e.compute_tile(&lo, &w_lo).unwrap().partial;
        let b = e.compute_tile(&hi, &w_hi).unwrap().partial;
        let reference = pointwise_conv2d_i8(&full, &weights);
        for k in 0..16 {
            for n in 0..2 {
                for m in 0..2 {
                    assert_eq!(a[(k, n, m)] + b[(k, n, m)], reference[(k, n, m)]);
                }
            }
        }
    }

    #[test]
    fn zero_activation_gating_counts() {
        let mut ifmap = rng::uniform_i8_tensor3(8, 2, 2, 1, 127, 5);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, 1, 127, 6);
        ifmap[(3, 1, 0)] = 0; // one zero activation feeds all 16 kernels
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.activity.zero_act_slots, 16);
    }

    #[test]
    fn rejects_wrong_shapes() {
        let e = engine();
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -1, 1, 7);
        let bad_w = rng::uniform_i8_tensor4(8, 8, 1, 1, -1, 1, 8);
        assert!(e.compute_tile(&ifmap, &bad_w).is_err());
        let bad_ifmap = rng::uniform_i8_tensor3(16, 2, 2, -1, 1, 9);
        let w = rng::uniform_i8_tensor4(16, 8, 1, 1, -1, 1, 10);
        assert!(e.compute_tile(&bad_ifmap, &w).is_err());
    }

    #[test]
    fn full_parallelism_every_cycle() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, 127, 11);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 12);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.activity.mac_slots, 512);
    }

    #[test]
    fn worst_case_partial_fits_adder_tree_width() {
        let ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, -128, 13);
        let weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, -128, 14);
        let out = engine().compute_tile(&ifmap, &weights).unwrap();
        for &v in out.partial.as_slice() {
            assert_eq!(v, 8 * 128 * 128);
            assert!(edea_fixed::sat::fits_in_bits(i64::from(v), 19));
        }
    }
}
