//! Plan-time race auditor: proves the memory side of the determinism
//! contract **before any thread runs**.
//!
//! The parallel portion loop of `execute_layer` is race-free by
//! construction: portions tile the ofmap disjointly, each lane owns a
//! contiguous portion range ([`par::chunk_ranges`]) and with it a disjoint
//! window of the per-`(portion, image)` mid/out slot arrays, and every
//! lane counts traffic into private scratch. PR 7 *states* that contract
//! and the `parallel_identity` suite observes it after the fact; this
//! module proves it ahead of time, the same way the paper's schedule makes
//! buffer conflicts impossible by construction rather than detected at
//! runtime:
//!
//! 1. **Write-set disjointness** — each portion's paste window is lowered
//!    to row-major ofmap index intervals; a sort-and-scan proves every
//!    pair of intervals (hence every pair of lanes) disjoint.
//! 2. **Exact coverage** — the interval union is exactly `[0, out²)`:
//!    no ofmap pixel is written twice, none is left unwritten.
//! 3. **Slot partition** — the per-lane windows of the flat
//!    `(portion, image)` slot arrays are contiguous, disjoint and cover
//!    every slot, so the `split_slots` borrow split cannot panic or
//!    misattribute a slot.
//! 4. **Capacity bounds** — every buffer residency the portion loop will
//!    reserve (psum banks per in-flight image, the halo'd ifmap slice,
//!    weight and parameter slices, the intermediate tile) fits its
//!    configured capacity.
//!
//! Race and coverage violations surface as [`CoreError::InvalidConfig`]
//! naming the offending `(layer, portion, lane)` triple; capacity
//! violations surface as [`CoreError::BufferOverflow`] with the same
//! buffer names the runtime's [`crate::buffer::TrackedBuffer`]s carry.
//! `execute_layer` runs the audit under `debug_assertions` on the exact
//! portion list and lane count it is about to fork; release builds and
//! long-lived deployments run it once up front via `Edea::audit_plan`.

use edea_nn::workload::LayerShape;

use crate::config::EdeaConfig;
use crate::par::{self, Parallelism};
use crate::schedule::{check_layer_geometry, portions, Portion};
use crate::CoreError;

/// Summary of one layer's successful audit — every proof listed in the
/// module docs passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerAudit {
    /// Layer index within its network.
    pub layer: usize,
    /// Portions the schedule splits this layer's ofmap into.
    pub portions: usize,
    /// Lanes the portion loop would fork (after clamping to the portion
    /// count).
    pub lanes: usize,
    /// Row-major ofmap index intervals proven pairwise disjoint.
    pub intervals: usize,
    /// Worst-case psum residency the batch will reserve, in bytes.
    pub psum_peak_bytes: usize,
}

/// A race/coverage violation, pinned to its `(layer, portion, lane)`.
fn violation(layer: usize, portion: usize, lane: usize, what: &str) -> CoreError {
    CoreError::InvalidConfig {
        detail: format!("plan audit: layer {layer}, portion {portion}, lane {lane}: {what}"),
    }
}

/// A capacity violation, with the runtime buffer's name so the error is
/// indistinguishable from the one the portion loop itself would raise.
fn overflow(buffer: &'static str, required: usize, capacity: usize) -> Result<(), CoreError> {
    if required > capacity {
        return Err(CoreError::BufferOverflow {
            buffer,
            required,
            capacity,
        });
    }
    Ok(())
}

/// Audits an explicit portion list against `lanes` lanes and `n_images`
/// in-flight images — the low-level entry the injected-violation tests
/// drive with hand-built (deliberately broken) portion plans.
/// [`audit_layer`] wraps it with the real schedule.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] naming the offending
/// `(layer, portion, lane)` on a race, bounds or coverage violation;
/// [`CoreError::BufferOverflow`] naming the buffer on a capacity
/// violation.
pub fn audit_portions(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    ports: &[Portion],
    lanes: usize,
    n_images: usize,
) -> Result<LayerAudit, CoreError> {
    let layer = shape.index;
    if ports.is_empty() || lanes == 0 || n_images == 0 {
        return Err(violation(
            layer,
            0,
            0,
            "audit requires at least one portion, one lane and one image",
        ));
    }
    let out = shape.out_spatial();

    // Proof 3 — slot partition. The portion loop hands lane `i` the slot
    // window `ranges[i].start*n_images .. ranges[i].end*n_images`; prove
    // the windows are contiguous, in order, and cover every slot, so the
    // `split_slots` split is total and one-writer-per-slot holds.
    let ranges = par::chunk_ranges(ports.len(), lanes);
    let mut expect_start = 0usize;
    for (lane, range) in ranges.iter().enumerate() {
        if range.start != expect_start || range.end < range.start {
            return Err(violation(
                layer,
                range.start.min(ports.len().saturating_sub(1)),
                lane,
                "lane portion ranges are not a contiguous in-order partition",
            ));
        }
        expect_start = range.end;
    }
    if expect_start != ports.len() {
        return Err(violation(
            layer,
            ports.len() - 1,
            lanes - 1,
            "lane portion ranges do not cover every portion",
        ));
    }
    // Which lane will run each portion — for attributing violations.
    let mut lane_of = vec![0usize; ports.len()];
    for (lane, range) in ranges.iter().enumerate() {
        for p in range.clone() {
            lane_of[p] = lane;
        }
    }

    // Proofs 1 + 2 — write sets as row-major ofmap index intervals. Each
    // portion's paste window contributes one interval per ofmap row; the
    // mid and out maps (and every channel and image) share the same
    // spatial footprint, so disjointness here is disjointness of every
    // lane's full write set.
    // (start, end, portion); sized up front — the audit runs inside
    // debug-mode layer executions, where the allocation-regression guard
    // budgets every warm-run allocation.
    let mut intervals: Vec<(usize, usize, usize)> =
        Vec::with_capacity(ports.iter().map(|p| p.rows).sum());
    for (p, portion) in ports.iter().enumerate() {
        if portion.rows == 0 || portion.cols == 0 {
            return Err(violation(layer, p, lane_of[p], "portion is empty"));
        }
        if portion.row0 + portion.rows > out || portion.col0 + portion.cols > out {
            return Err(violation(
                layer,
                p,
                lane_of[p],
                "portion paste window writes outside the ofmap",
            ));
        }
        for r in 0..portion.rows {
            let start = (portion.row0 + r) * out + portion.col0;
            intervals.push((start, start + portion.cols, p));
        }
    }
    intervals.sort_unstable();
    let mut covered = 0usize;
    let mut prev_end = 0usize;
    let mut prev_portion = 0usize;
    for &(start, end, p) in &intervals {
        if start < prev_end && p != prev_portion {
            let what = format!(
                "write set overlaps portion {prev_portion} (lane {}) on ofmap indices \
                 {start}..{prev_end}",
                lane_of[prev_portion]
            );
            return Err(violation(layer, p, lane_of[p], &what));
        }
        if start < prev_end {
            return Err(violation(
                layer,
                p,
                lane_of[p],
                "portion write set overlaps itself",
            ));
        }
        covered += end - start;
        prev_end = end;
        prev_portion = p;
    }
    if covered != out * out {
        // Attribute the first gap to the portion whose interval follows it
        // (the schedule that should have started earlier); a gap at the
        // very end falls to the last portion.
        let mut expect = 0usize;
        let mut p = ports.len() - 1;
        for &(start, end, portion) in &intervals {
            if start > expect {
                p = portion;
                break;
            }
            expect = expect.max(end);
        }
        let what = format!(
            "portions cover {covered} of {} ofmap pixels; first unwritten index {expect}",
            out * out
        );
        return Err(violation(layer, p, lane_of[p], &what));
    }

    // Proof 4 — capacity bounds, exactly the residencies the portion loop
    // will reserve (buffer names match `BufferSet::for_batch`).
    let t = cfg.tile;
    let mut psum_peak = 0usize;
    let mut ifmap_peak = 0usize;
    for portion in ports {
        psum_peak = psum_peak.max(portion.pixels() * shape.k_out * 4);
        let (_, _, rows, cols) =
            portion.input_region(shape.stride, shape.kernel, shape.pad(), shape.in_spatial);
        ifmap_peak = ifmap_peak.max(rows * cols * t.td);
    }
    let psum_required = n_images * psum_peak;
    overflow("psum", psum_required, cfg.psum_buf_bytes * n_images)?;
    overflow("dwc_ifmap", ifmap_peak, cfg.ifmap_buf_bytes)?;
    // Op-aware residencies, exactly as `execute_layer` reserves them: a
    // PwcOnly stage fills neither the DWC weight registers nor a DWC-side
    // offline-parameter set.
    overflow(
        "dwc_weight",
        usize::try_from(shape.dwc_params()).unwrap_or(usize::MAX),
        cfg.dwc_weight_buf_bytes,
    )?;
    overflow(
        "offline",
        usize::try_from(crate::schedule::layer_param_fetch_bytes(shape)).unwrap_or(usize::MAX),
        cfg.offline_buf_bytes,
    )?;
    overflow("pwc_weight", t.td * shape.k_out, cfg.pwc_weight_buf_bytes)?;
    overflow(
        "intermediate",
        t.tn * t.tm * t.td,
        cfg.intermediate_buf_bytes,
    )?;

    Ok(LayerAudit {
        layer,
        portions: ports.len(),
        lanes,
        intervals: intervals.len(),
        psum_peak_bytes: psum_required,
    })
}

/// Audits one layer's real schedule: the portion list
/// [`portions`] produces and the lane count the portion loop would fork
/// under `par` (clamped exactly as `execute_layer` clamps it).
///
/// # Errors
///
/// As [`audit_portions`]; additionally [`CoreError::UnsupportedShape`] if
/// the layer does not map onto the engine geometry.
pub fn audit_layer(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    par: Parallelism,
    n_images: usize,
) -> Result<LayerAudit, CoreError> {
    check_layer_geometry(shape, cfg)?;
    let ports = portions(shape.out_spatial(), cfg.portion_limit);
    let lanes = par.threads().min(ports.len()).max(1);
    audit_portions(shape, cfg, &ports, lanes, n_images)
}

/// Audits every layer of a shape stack (e.g. a width-scaled MobileNet from
/// `edea_nn::workload::scale_width`) — the whole-network proof the
/// `plan_audit` bench binary reports.
///
/// # Errors
///
/// The first failing layer's error, as [`audit_layer`].
pub fn audit_network(
    shapes: &[LayerShape],
    cfg: &EdeaConfig,
    par: Parallelism,
    n_images: usize,
) -> Result<Vec<LayerAudit>, CoreError> {
    shapes
        .iter()
        .map(|s| audit_layer(s, cfg, par, n_images))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::{mobilenet_v1_cifar10, scale_width};

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    fn threads(n: usize) -> Parallelism {
        Parallelism::new(n).unwrap()
    }

    #[test]
    fn every_mobilenet_layer_passes_at_all_widths_and_lane_counts() {
        for width in [0.25, 0.5, 0.75, 1.0] {
            let shapes = scale_width(&mobilenet_v1_cifar10(), width, 8).unwrap();
            for n in [1usize, 2, 4, 8] {
                for batch in [1usize, 4] {
                    let audits = audit_network(&shapes, &cfg(), threads(n), batch)
                        .unwrap_or_else(|e| panic!("width {width} lanes {n}: {e}"));
                    assert_eq!(audits.len(), shapes.len());
                }
            }
        }
    }

    #[test]
    fn every_mobilenet_v2_stage_passes_the_proofs() {
        // The generalized workload: 17 inverted-residual stages, PwcOnly
        // expansions included.
        use edea_nn::workload::mobilenet_v2_cifar10;
        let shapes = scale_width(&mobilenet_v2_cifar10(), 0.25, 16).unwrap();
        for n in [1usize, 4] {
            let audits = audit_network(&shapes, &cfg(), threads(n), 2)
                .unwrap_or_else(|e| panic!("v2 lanes {n}: {e}"));
            assert_eq!(audits.len(), shapes.len());
        }
    }

    #[test]
    fn full_width_v2_expansions_overflow_the_paper_psum_budget() {
        // At width 1.0 the 6× expand stages hold up to 576 kernels over an
        // 8×8 portion — 147 456 bytes of psum against the paper's 64 KiB.
        // The audit proves the overflow ahead of time, naming the buffer,
        // instead of failing mid-run.
        use edea_nn::workload::mobilenet_v2_cifar10;
        let err = audit_network(&mobilenet_v2_cifar10(), &cfg(), threads(1), 1).unwrap_err();
        assert!(
            matches!(err, CoreError::BufferOverflow { buffer: "psum", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn audit_matches_the_real_schedule_shape() {
        let shapes = mobilenet_v1_cifar10();
        let a = audit_layer(&shapes[0], &cfg(), threads(4), 1).unwrap();
        let ports = portions(shapes[0].out_spatial(), cfg().portion_limit);
        assert_eq!(a.portions, ports.len());
        assert_eq!(a.lanes, 4.min(ports.len()));
        assert_eq!(a.intervals, ports.iter().map(|p| p.rows).sum::<usize>());
    }

    /// The injected-violation test: a hand-built portion plan in which
    /// portions 1 and 2 (on different lanes) overlap must be rejected with
    /// the offending `(layer, portion, lane)` triple.
    #[test]
    fn overlapping_portions_are_rejected_with_the_offending_triple() {
        let shape = &mobilenet_v1_cifar10()[1]; // 16×16 ofmap, layer 1
        let out = shape.out_spatial();
        assert_eq!(out, 16);
        let half = out / 2;
        let mut ports = vec![
            Portion {
                row0: 0,
                col0: 0,
                rows: half,
                cols: out,
            },
            Portion {
                row0: half,
                col0: 0,
                rows: half,
                cols: half,
            },
            Portion {
                row0: half,
                col0: half,
                rows: half,
                cols: half,
            },
        ];
        // Sound plan first: 3 portions over 2 lanes pass.
        audit_portions(shape, &cfg(), &ports, 2, 1).unwrap();
        // Shift portion 2 one column left: it now overwrites portion 1's
        // rightmost column. chunk_ranges(3, 2) = [0..2, 2..3], so portion
        // 2 is lane 1 and portion 1 is lane 0 — a true cross-lane race.
        ports[2].col0 = half - 1;
        let err = audit_portions(shape, &cfg(), &ports, 2, 1).unwrap_err();
        let CoreError::InvalidConfig { detail } = &err else {
            panic!("expected InvalidConfig, got {err:?}");
        };
        assert!(
            detail.contains("layer 1, portion 2, lane 1"),
            "triple missing: {detail}"
        );
        assert!(detail.contains("portion 1 (lane 0)"), "{detail}");
    }

    #[test]
    fn coverage_gaps_and_out_of_bounds_windows_are_rejected() {
        let shape = &mobilenet_v1_cifar10()[1];
        let out = shape.out_spatial();
        let half = out / 2;
        // Leave the bottom half unwritten.
        let top = vec![Portion {
            row0: 0,
            col0: 0,
            rows: half,
            cols: out,
        }];
        let err = audit_portions(shape, &cfg(), &top, 1, 1).unwrap_err();
        assert!(
            matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("unwritten")),
            "{err:?}"
        );
        // A window past the ofmap edge.
        let wide = vec![Portion {
            row0: 0,
            col0: 0,
            rows: out,
            cols: out + 1,
        }];
        let err = audit_portions(shape, &cfg(), &wide, 1, 1).unwrap_err();
        assert!(
            matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("outside")),
            "{err:?}"
        );
    }

    #[test]
    fn capacity_violations_name_the_runtime_buffer() {
        let shape = &mobilenet_v1_cifar10()[3]; // the psum-worst layer
        let mut c = cfg();
        c.psum_buf_bytes = 8 * 8 * shape.k_out * 4 - 4; // one word short
        let err = audit_layer(shape, &c, threads(1), 2).unwrap_err();
        assert!(
            matches!(err, CoreError::BufferOverflow { buffer: "psum", .. }),
            "{err:?}"
        );
        let mut c = cfg();
        c.ifmap_buf_bytes = 16; // cannot hold any halo'd slice
        let err = audit_layer(shape, &c, threads(1), 1).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::BufferOverflow {
                    buffer: "dwc_ifmap",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn audit_is_lane_count_invariant_for_sound_plans() {
        // The proofs hold for any lane count the clamp can produce —
        // oversubscription (more lanes than portions) included, because
        // audit_layer clamps exactly as execute_layer does.
        let shapes = mobilenet_v1_cifar10();
        let deep = &shapes[12]; // 2×2 ofmap: one portion
        for n in [1usize, 2, 64] {
            let a = audit_layer(deep, &cfg(), threads(n), 1).unwrap();
            assert_eq!(a.lanes, 1, "clamped to the single portion");
        }
    }
}
