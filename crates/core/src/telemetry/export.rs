//! Exporters: Chrome trace-event JSON and Prometheus text exposition.
//!
//! Both renderings are deterministic character for character — integer
//! sim-tick timestamps, fixed field order, fixed series order — so they
//! can be pinned as golden fixtures (the `trace_export` experiment does).
//!
//! The Chrome trace opens directly in Perfetto or `chrome://tracing`. The
//! viewer interprets `ts`/`dur` as microseconds; we emit raw simulated
//! ticks (1 displayed µs = 1 accelerator cycle), which keeps the export
//! bit-stable and the timeline scale exact. This complements the
//! stage-level VCD of [`crate::trace`]: the VCD shows intra-layer engine
//! stages of one network run, the Chrome trace shows the serving timeline
//! of a whole pool run.

use std::fmt::Write as _;

use super::metrics::{Histogram, Registry};
use super::Event;

/// Track ids: requests ride tid 0; worker `w` gets a batch track and a
/// layer track.
fn tid_batches(worker: usize) -> usize {
    1 + 2 * worker
}

fn tid_layers(worker: usize) -> usize {
    2 + 2 * worker
}

/// Renders an event stream as Chrome trace-event JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper).
///
/// Tracks: one `requests` track of per-request latency spans (arrival →
/// completion), and per worker one track of batch-execution spans (with
/// model-switch instants) plus one of per-layer engine spans. All
/// timestamps are simulated ticks.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let workers = events
        .iter()
        .filter_map(Event::worker)
        .max()
        .map_or(0, |w| w + 1);
    let mut lines: Vec<String> = Vec::new();
    lines.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"requests\"}}"
            .to_string(),
    );
    for w in 0..workers {
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker {w} batches\"}}}}",
            tid_batches(w)
        ));
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker {w} layers\"}}}}",
            tid_layers(w)
        ));
    }
    for ev in events {
        match *ev {
            Event::RequestCompleted {
                t,
                request,
                batch,
                worker,
                network,
                latency,
                queue_ticks,
            } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{},\"dur\":{latency},\
                     \"name\":\"req {request} {network}\",\
                     \"args\":{{\"batch\":{batch},\"worker\":{worker},\
                     \"queue_ticks\":{queue_ticks}}}}}",
                    t - latency
                ));
            }
            Event::ModelSwitch {
                t,
                batch,
                worker,
                network,
                bytes,
            } => {
                lines.push(format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{t},\"s\":\"t\",\
                     \"name\":\"switch {network}\",\
                     \"args\":{{\"batch\":{batch},\"bytes\":{bytes}}}}}",
                    tid_batches(worker)
                ));
            }
            Event::BatchExecuted {
                start,
                batch,
                worker,
                size,
                network,
                cycles,
                weight_bytes,
                external_bytes,
                switch_bytes,
                ..
            } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{start},\"dur\":{cycles},\
                     \"name\":\"batch {batch} {network}\",\
                     \"args\":{{\"size\":{size},\"weight_bytes\":{weight_bytes},\
                     \"external_bytes\":{external_bytes},\"switch_bytes\":{switch_bytes}}}}}",
                    tid_batches(worker)
                ));
            }
            Event::LayerExecuted {
                start,
                batch,
                worker,
                layer,
                cycles,
                mac_slots,
                gated_slots,
                ..
            } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{start},\"dur\":{cycles},\
                     \"name\":\"L{layer}\",\
                     \"args\":{{\"batch\":{batch},\"mac_slots\":{mac_slots},\
                     \"gated_slots\":{gated_slots}}}}}",
                    tid_layers(worker)
                ));
            }
            Event::RequestArrived { .. }
            | Event::RequestEnqueued { .. }
            | Event::BatchFormed { .. }
            | Event::BatchDispatched { .. } => {}
        }
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn help_for(name: &str) -> &'static str {
    match name {
        "requests_total" => "Requests that entered the run.",
        "requests_completed_total" => "Requests served to completion.",
        "batches_total" => "Batches dispatched.",
        "model_switches_total" => "Dispatches that flipped a worker's resident model.",
        "switch_bytes_total" => "Model-switch weight-refetch traffic in bytes.",
        "weight_bytes_total" => "External weight + offline-parameter bytes.",
        "external_bytes_total" => "Total external bytes.",
        "layer_spans_total" => "Per-layer execution spans recorded.",
        "mac_slots_total" => "MAC slots exercised (DWC + PWC).",
        "gated_slots_total" => "Slots gated by zero activations (DWC + PWC).",
        "worker_requests_total" => "Requests routed to the worker.",
        "worker_batches_total" => "Batches the worker dispatched.",
        "worker_busy_cycles" => "Cycles the worker spent executing batches.",
        "worker_switch_bytes" => "Model-switch traffic the worker paid.",
        "makespan_ticks" => "Completion tick of the last batch.",
        "queue_depth_max" => "Deepest any worker queue ever got.",
        "worker_queue_depth_max" => "Deepest the worker's queue ever got.",
        "latency_ticks" => "End-to-end request latency in ticks.",
        "queue_ticks" => "Ticks requests spent queued before dispatch.",
        "batch_size" => "Formed batch sizes.",
        "switch_bytes" => "Per-switch weight-refetch bytes.",
        "queue_depth" => "Queue depth observed at each enqueue.",
        "gated_slots" => "Gated slots per layer span.",
        _ => "EDEA simulated-clock metric.",
    }
}

fn push_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP edea_{name} {}", help_for(name));
    let _ = writeln!(out, "# TYPE edea_{name} histogram");
    let mut cumulative = 0u64;
    for i in 0..Histogram::buckets() {
        cumulative += h.bucket_count(i);
        match Histogram::edge(i) {
            Some(edge) => {
                let _ = writeln!(out, "edea_{name}_bucket{{le=\"{edge}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "edea_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "edea_{name}_sum {}", h.sum());
    let _ = writeln!(out, "edea_{name}_count {}", h.count());
}

/// Renders a [`Registry`] snapshot in the Prometheus text exposition
/// format (version 0.0.4). Metric names carry an `edea_` prefix;
/// per-worker series carry a `worker` label. Series order follows the
/// registry's fixed fold order, so the exposition is deterministic.
#[must_use]
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for &(name, v) in registry.counters() {
        let _ = writeln!(out, "# HELP edea_{name} {}", help_for(name));
        let _ = writeln!(out, "# TYPE edea_{name} counter");
        let _ = writeln!(out, "edea_{name} {v}");
    }
    for (name, series) in registry.worker_counters() {
        let _ = writeln!(out, "# HELP edea_{name} {}", help_for(name));
        let _ = writeln!(out, "# TYPE edea_{name} counter");
        for (w, v) in series.iter().enumerate() {
            let _ = writeln!(out, "edea_{name}{{worker=\"{w}\"}} {v}");
        }
    }
    for &(name, v) in registry.gauges() {
        let _ = writeln!(out, "# HELP edea_{name} {}", help_for(name));
        let _ = writeln!(out, "# TYPE edea_{name} gauge");
        let _ = writeln!(out, "edea_{name} {v}");
    }
    for (name, series) in registry.worker_gauges() {
        let _ = writeln!(out, "# HELP edea_{name} {}", help_for(name));
        let _ = writeln!(out, "# TYPE edea_{name} gauge");
        for (w, v) in series.iter().enumerate() {
            let _ = writeln!(out, "edea_{name}{{worker=\"{w}\"}} {v}");
        }
    }
    for (name, h) in registry.histograms() {
        push_histogram(&mut out, name, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::NetworkId;

    fn sample_events() -> Vec<Event> {
        let n = NetworkId::PRIMARY;
        vec![
            Event::RequestArrived {
                t: 0,
                request: 0,
                network: n,
            },
            Event::RequestEnqueued {
                t: 0,
                request: 0,
                worker: 0,
                depth: 1,
            },
            Event::BatchFormed {
                t: 2,
                batch: 0,
                worker: 0,
                size: 1,
                network: n,
            },
            Event::ModelSwitch {
                t: 2,
                batch: 0,
                worker: 0,
                network: NetworkId(1),
                bytes: 99,
            },
            Event::BatchDispatched {
                t: 2,
                batch: 0,
                worker: 0,
                size: 1,
                network: n,
            },
            Event::LayerExecuted {
                start: 2,
                end: 7,
                batch: 0,
                worker: 0,
                layer: 0,
                network: n,
                cycles: 5,
                mac_slots: 10,
                gated_slots: 4,
            },
            Event::BatchExecuted {
                start: 2,
                end: 12,
                batch: 0,
                worker: 0,
                size: 1,
                network: n,
                cycles: 10,
                weight_bytes: 7,
                external_bytes: 9,
                switch_bytes: 99,
            },
            Event::RequestCompleted {
                t: 12,
                request: 0,
                batch: 0,
                worker: 0,
                network: n,
                latency: 12,
                queue_ticks: 2,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structured() {
        let events = sample_events();
        let a = chrome_trace(&events);
        let b = chrome_trace(&events);
        assert_eq!(a, b);
        // Well-formed wrapper, one metadata line per track.
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.trim_end().ends_with("]}"));
        assert_eq!(a.matches("thread_name").count(), 3);
        // The request span starts at arrival (t − latency = 0).
        assert!(a.contains("\"name\":\"req 0 net0\""), "{a}");
        assert!(a.contains("\"ts\":0,\"dur\":12"), "{a}");
        // Batch and layer spans land on their worker's tracks.
        assert!(a.contains("\"name\":\"batch 0 net0\""), "{a}");
        assert!(a.contains("\"name\":\"L0\""), "{a}");
        assert!(a.contains("\"name\":\"switch net1\""), "{a}");
    }

    #[test]
    fn empty_stream_renders_an_empty_trace() {
        let s = chrome_trace(&[]);
        // Just the requests metadata track — still valid JSON.
        assert_eq!(s.matches("\"ph\"").count(), 1);
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_complete() {
        let r = Registry::from_events(&sample_events());
        let a = prometheus(&r);
        assert_eq!(a, prometheus(&r));
        assert!(a.contains("# TYPE edea_requests_total counter"), "{a}");
        assert!(a.contains("edea_requests_total 1"), "{a}");
        assert!(
            a.contains("edea_worker_busy_cycles{worker=\"0\"} 10"),
            "{a}"
        );
        assert!(a.contains("# TYPE edea_latency_ticks histogram"), "{a}");
        assert!(a.contains("edea_latency_ticks_bucket{le=\"16\"} 1"), "{a}");
        assert!(
            a.contains("edea_latency_ticks_bucket{le=\"+Inf\"} 1"),
            "{a}"
        );
        assert!(a.contains("edea_latency_ticks_sum 12"), "{a}");
        assert!(a.contains("edea_latency_ticks_count 1"), "{a}");
        assert!(a.contains("edea_makespan_ticks 12"), "{a}");
        // Histogram buckets are cumulative and monotone.
        let counts: Vec<u64> = a
            .lines()
            .filter(|l| l.starts_with("edea_latency_ticks_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), Histogram::buckets());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }
}
