//! Derived views over an event stream: busy/idle intervals, utilization,
//! and queue-depth-over-time, plus a structural well-formedness check.
//!
//! These reconstruct the same quantities `PoolReport` computes
//! independently inside `pool::drive` — `worker_utilization`,
//! `max_queue_depth`, `mean_queue_depth` — from nothing but the telemetry
//! stream. The equality tests in `telemetry_properties` hold the two
//! accounting paths to *exact* equality (same integer arithmetic, same
//! single float division), which is the point: two derivations, one truth.

use super::Event;

/// Number of workers that appear in the stream (max worker id + 1).
#[must_use]
pub fn worker_count(events: &[Event]) -> usize {
    events
        .iter()
        .filter_map(Event::worker)
        .max()
        .map_or(0, |w| w + 1)
}

/// Completion tick of the **last-dispatched** batch (0 for an empty
/// stream) — the last `BatchExecuted` event in stream order, since the
/// canonical stream emits batches in global dispatch order. This is
/// `ServeReport::makespan`'s definition (`batches.last().completed`), the
/// denominator of both `worker_utilization` and `mean_queue_depth`; on a
/// multi-worker pool it can differ from the maximum completion tick.
#[must_use]
pub fn makespan(events: &[Event]) -> u64 {
    events
        .iter()
        .rev()
        .find_map(|ev| match *ev {
            Event::BatchExecuted { end, .. } => Some(end),
            _ => None,
        })
        .unwrap_or(0)
}

/// Per-worker busy intervals `(start, end)` in batch-execution order.
#[must_use]
pub fn busy_intervals(events: &[Event], workers: usize) -> Vec<Vec<(u64, u64)>> {
    let mut out = vec![Vec::new(); workers];
    for ev in events {
        if let Event::BatchExecuted {
            start, end, worker, ..
        } = *ev
        {
            if worker < workers {
                out[worker].push((start, end));
            }
        }
    }
    out
}

/// Per-worker busy cycles (sum of batch-execution span lengths). Matches
/// `WorkerReport::busy_cycles`.
#[must_use]
pub fn busy_cycles(events: &[Event], workers: usize) -> Vec<u64> {
    let mut out = vec![0u64; workers];
    for ev in events {
        if let Event::BatchExecuted { worker, cycles, .. } = *ev {
            if worker < workers {
                out[worker] += cycles;
            }
        }
    }
    out
}

/// Per-worker utilization: busy cycles over the pool makespan. Performs
/// the same `busy as f64 / makespan as f64` division as
/// `PoolReport::worker_utilization`, so the results are bit-identical.
#[must_use]
pub fn utilization(events: &[Event], workers: usize) -> Vec<f64> {
    let span = makespan(events);
    busy_cycles(events, workers)
        .into_iter()
        .map(|busy| {
            if span == 0 {
                0.0
            } else {
                busy as f64 / span as f64
            }
        })
        .collect()
}

/// Queue-depth-over-time for one worker: `(tick, depth)` samples, one per
/// depth change, merged from enqueue (+1 each) and dispatch (−size)
/// events. At equal ticks enqueues apply before dispatches, mirroring the
/// event loop's arrival-before-dispatch ordering.
#[must_use]
pub fn queue_depth_series(events: &[Event], worker: usize) -> Vec<(u64, i64)> {
    // (tick, kind, delta): kind 0 = enqueue, 1 = dispatch, so a stable
    // sort puts same-tick enqueues first.
    let mut deltas: Vec<(u64, u8, i64)> = Vec::new();
    for ev in events {
        match *ev {
            Event::RequestEnqueued { t, worker: w, .. } if w == worker => {
                deltas.push((t, 0, 1));
            }
            Event::BatchDispatched {
                t, worker: w, size, ..
            } if w == worker => {
                deltas.push((t, 1, -(size as i64)));
            }
            _ => {}
        }
    }
    deltas.sort_by_key(|&(t, kind, _)| (t, kind));
    let mut out = Vec::new();
    let mut depth = 0i64;
    for (t, _, delta) in deltas {
        depth += delta;
        out.push((t, depth));
    }
    out
}

/// Deepest the worker's queue ever got. Matches
/// `WorkerReport::max_queue_depth`: enqueue events carry the post-push
/// depth, and the loop only samples depth on pushes.
#[must_use]
pub fn max_queue_depth(events: &[Event], worker: usize) -> usize {
    events
        .iter()
        .filter_map(|ev| match *ev {
            Event::RequestEnqueued {
                worker: w, depth, ..
            } if w == worker => Some(depth),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Time-weighted mean queue depth for one worker over the pool makespan.
///
/// Replays the depth series and accumulates `depth × dt` in `u128`, then
/// performs the single `integral as f64 / makespan as f64` division —
/// the identical arithmetic `pool::drive` uses for
/// `WorkerReport::mean_queue_depth`, so equality is exact, not
/// approximate. (Same-tick segments have `dt = 0` and queues drain to
/// empty before the loop ends, so ordering within a tick cannot perturb
/// the integral.)
#[must_use]
pub fn mean_queue_depth(events: &[Event], worker: usize, makespan: u64) -> f64 {
    if makespan == 0 {
        return 0.0;
    }
    let series = queue_depth_series(events, worker);
    let mut integral: u128 = 0;
    let mut prev_t = 0u64;
    let mut depth = 0i64;
    for (t, d) in series {
        integral += u128::from(t - prev_t) * depth.max(0) as u128;
        prev_t = t;
        depth = d;
    }
    integral += u128::from(makespan - prev_t) * depth.max(0) as u128;
    integral as f64 / makespan as f64
}

/// Structural well-formedness of a canonical event stream.
///
/// Checks the span-tree invariants the emitter promises:
/// - every request that arrives is enqueued at the same tick, and every
///   completion closes an arrival (ids match one-to-one);
/// - every batch is formed, dispatched, and executed at consistent ticks
///   (`formed.t == dispatched.t == executed.start`, `end − start ==
///   cycles`, `end` never precedes `start`);
/// - layer spans nest inside their batch span and exactly tile it
///   (contiguous, in order, summing to the batch's cycles) when present;
/// - per-worker batch spans never overlap and appear in start order;
/// - request completions land at their batch's end tick.
///
/// Returns `Err` with a description of the first violation found.
pub fn check_well_formed(events: &[Event]) -> Result<(), String> {
    use std::collections::BTreeMap;

    let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new(); // request -> t
    let mut enqueued: BTreeMap<u64, u64> = BTreeMap::new();
    let mut completed: BTreeMap<u64, u64> = BTreeMap::new();
    // batch -> (t_formed, t_dispatched, span)
    let mut formed: BTreeMap<usize, u64> = BTreeMap::new();
    let mut dispatched: BTreeMap<usize, u64> = BTreeMap::new();
    let mut executed: BTreeMap<usize, (u64, u64, u64, usize)> = BTreeMap::new();
    let mut layers: BTreeMap<usize, Vec<(u64, u64, u64)>> = BTreeMap::new();
    let mut worker_spans: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();

    for ev in events {
        match *ev {
            Event::RequestArrived { t, request, .. } => {
                if arrivals.insert(request, t).is_some() {
                    return Err(format!("request {request} arrived twice"));
                }
            }
            Event::RequestEnqueued { t, request, .. } => {
                if enqueued.insert(request, t).is_some() {
                    return Err(format!("request {request} enqueued twice"));
                }
            }
            Event::BatchFormed { t, batch, .. } => {
                if formed.insert(batch, t).is_some() {
                    return Err(format!("batch {batch} formed twice"));
                }
            }
            Event::BatchDispatched { t, batch, .. } => {
                if dispatched.insert(batch, t).is_some() {
                    return Err(format!("batch {batch} dispatched twice"));
                }
            }
            Event::ModelSwitch { .. } => {}
            Event::LayerExecuted {
                start,
                end,
                batch,
                cycles,
                ..
            } => {
                if end < start {
                    return Err(format!("layer span in batch {batch} ends before it starts"));
                }
                if end - start != cycles {
                    return Err(format!("layer span in batch {batch} disagrees with cycles"));
                }
                layers.entry(batch).or_default().push((start, end, cycles));
            }
            Event::BatchExecuted {
                start,
                end,
                batch,
                worker,
                size,
                cycles,
                ..
            } => {
                if end < start {
                    return Err(format!("batch {batch} ends before it starts"));
                }
                if end - start != cycles {
                    return Err(format!("batch {batch} span disagrees with cycles"));
                }
                if executed.insert(batch, (start, end, cycles, size)).is_some() {
                    return Err(format!("batch {batch} executed twice"));
                }
                worker_spans.entry(worker).or_default().push((start, end));
            }
            Event::RequestCompleted {
                t,
                request,
                batch,
                latency,
                ..
            } => {
                if completed.insert(request, t).is_some() {
                    return Err(format!("request {request} completed twice"));
                }
                let Some(&(_, end, _, _)) = executed.get(&batch) else {
                    return Err(format!(
                        "request {request} completed in unexecuted batch {batch}"
                    ));
                };
                if t != end {
                    return Err(format!(
                        "request {request} completes at {t}, batch {batch} ends at {end}"
                    ));
                }
                let Some(&arrived) = arrivals.get(&request) else {
                    return Err(format!("request {request} completed without arriving"));
                };
                if t - arrived != latency {
                    return Err(format!("request {request} latency disagrees with span"));
                }
            }
        }
    }

    for (&request, &t) in &arrivals {
        match enqueued.get(&request) {
            Some(&te) if te == t => {}
            Some(_) => return Err(format!("request {request} enqueued at a different tick")),
            None => return Err(format!("request {request} arrived but never enqueued")),
        }
        if !completed.contains_key(&request) {
            return Err(format!("request {request} arrived but never completed"));
        }
    }
    for &request in completed.keys() {
        if !arrivals.contains_key(&request) {
            return Err(format!("request {request} completed without arriving"));
        }
    }

    for (&batch, &(start, end, cycles, _)) in &executed {
        match (formed.get(&batch), dispatched.get(&batch)) {
            (Some(&tf), Some(&td)) if tf == td && td == start => {}
            (None, _) => return Err(format!("batch {batch} executed but never formed")),
            (_, None) => return Err(format!("batch {batch} executed but never dispatched")),
            _ => return Err(format!("batch {batch} form/dispatch/start ticks disagree")),
        }
        if let Some(spans) = layers.get(&batch) {
            let mut cursor = start;
            let mut total = 0u64;
            for &(s, e, c) in spans {
                if s != cursor {
                    return Err(format!("batch {batch} layer spans do not tile the batch"));
                }
                cursor = e;
                total += c;
            }
            if cursor != end || total != cycles {
                return Err(format!(
                    "batch {batch} layer spans do not sum to its cycles"
                ));
            }
        }
    }
    for &batch in layers.keys() {
        if !executed.contains_key(&batch) {
            return Err(format!("batch {batch} has layer spans but never executed"));
        }
    }

    for (&worker, spans) in &worker_spans {
        for pair in spans.windows(2) {
            let (s0, e0) = pair[0];
            let (s1, _) = pair[1];
            if s1 < e0 || s1 < s0 {
                return Err(format!("worker {worker} batch spans overlap or regress"));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::NetworkId;

    fn stream() -> Vec<Event> {
        let n = NetworkId::PRIMARY;
        vec![
            Event::RequestArrived {
                t: 0,
                request: 0,
                network: n,
            },
            Event::RequestEnqueued {
                t: 0,
                request: 0,
                worker: 0,
                depth: 1,
            },
            Event::RequestArrived {
                t: 1,
                request: 1,
                network: n,
            },
            Event::RequestEnqueued {
                t: 1,
                request: 1,
                worker: 0,
                depth: 2,
            },
            Event::BatchFormed {
                t: 4,
                batch: 0,
                worker: 0,
                size: 2,
                network: n,
            },
            Event::BatchDispatched {
                t: 4,
                batch: 0,
                worker: 0,
                size: 2,
                network: n,
            },
            Event::LayerExecuted {
                start: 4,
                end: 10,
                batch: 0,
                worker: 0,
                layer: 0,
                network: n,
                cycles: 6,
                mac_slots: 8,
                gated_slots: 2,
            },
            Event::LayerExecuted {
                start: 10,
                end: 14,
                batch: 0,
                worker: 0,
                layer: 1,
                network: n,
                cycles: 4,
                mac_slots: 6,
                gated_slots: 1,
            },
            Event::BatchExecuted {
                start: 4,
                end: 14,
                batch: 0,
                worker: 0,
                size: 2,
                network: n,
                cycles: 10,
                weight_bytes: 5,
                external_bytes: 6,
                switch_bytes: 0,
            },
            Event::RequestCompleted {
                t: 14,
                request: 0,
                batch: 0,
                worker: 0,
                network: n,
                latency: 14,
                queue_ticks: 4,
            },
            Event::RequestCompleted {
                t: 14,
                request: 1,
                batch: 0,
                worker: 0,
                network: n,
                latency: 13,
                queue_ticks: 3,
            },
        ]
    }

    #[test]
    fn derives_busy_and_utilization() {
        let events = stream();
        assert_eq!(worker_count(&events), 1);
        assert_eq!(makespan(&events), 14);
        assert_eq!(busy_cycles(&events, 1), vec![10]);
        assert_eq!(busy_intervals(&events, 1), vec![vec![(4, 14)]]);
        assert_eq!(utilization(&events, 1), vec![10.0 / 14.0]);
    }

    #[test]
    fn derives_queue_depth() {
        let events = stream();
        assert_eq!(queue_depth_series(&events, 0), vec![(0, 1), (1, 2), (4, 0)]);
        assert_eq!(max_queue_depth(&events, 0), 2);
        // Integral: depth 1 over [0,1) + depth 2 over [1,4) = 7.
        assert_eq!(mean_queue_depth(&events, 0, 14), 7.0 / 14.0);
    }

    #[test]
    fn well_formed_stream_passes() {
        assert_eq!(check_well_formed(&stream()), Ok(()));
        assert_eq!(check_well_formed(&[]), Ok(()));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // Completion tick off the batch end.
        let mut events = stream();
        let last = events.len() - 1;
        if let Event::RequestCompleted { t, latency, .. } = &mut events[last] {
            *t += 1;
            *latency += 1;
        }
        assert!(check_well_formed(&events).is_err());

        // Layer spans that no longer tile the batch.
        let mut events = stream();
        if let Event::LayerExecuted { start, end, .. } = &mut events[6] {
            *start += 1;
            *end += 1;
        }
        assert!(check_well_formed(&events).is_err());

        // A request that never completes.
        let mut events = stream();
        events.pop();
        assert!(check_well_formed(&events).is_err());
    }
}
