//! The metrics registry: counters, gauges and log-2 histograms folded
//! from an event stream.
//!
//! A [`Registry`] is a deterministic pure function of its events: same
//! stream, same snapshot, on every host and at every thread count — so a
//! rendered snapshot can be pinned as a golden fixture. The registry is
//! cross-checked against [`ServeReport`](crate::serve::ServeReport) /
//! [`PoolReport`](crate::pool::PoolReport) in the telemetry suite: every
//! quantity both accounting paths expose must agree exactly.

use super::Event;

/// Number of finite histogram bucket edges: `2^0 .. 2^32`.
const EDGES: usize = 33;

/// A fixed-bucket histogram with deterministic log-2 edges.
///
/// Bucket `i` (for `i < 33`) counts observations `v ≤ 2^i`; one overflow
/// bucket (`+Inf`) catches the rest. The edges are fixed at construction
/// so snapshots are stable fixtures — no adaptive resizing, no
/// quantile sketching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; index 33 is the `+Inf` bucket.
    counts: [u64; EDGES + 1],
    sum: u128,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; EDGES + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.sum += u128::from(v);
        self.count += 1;
    }

    /// The bucket index `v` falls into (the first edge `2^i ≥ v`; 33 for
    /// the `+Inf` overflow bucket).
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        (0..EDGES as u32)
            .find(|&i| v <= 1u64 << i)
            .map_or(EDGES, |i| i as usize)
    }

    /// Upper edge of bucket `i` (`None` for the `+Inf` bucket, or out of
    /// range).
    #[must_use]
    pub fn edge(i: usize) -> Option<u64> {
        (i < EDGES).then(|| 1u64 << i)
    }

    /// Number of buckets including `+Inf`.
    #[must_use]
    pub fn buckets() -> usize {
        EDGES + 1
    }

    /// Non-cumulative count of bucket `i` (0 out of range).
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }
}

/// A metrics snapshot folded from one run's event stream.
///
/// All series are insertion-ordered (the fold order below is fixed), so
/// iteration — and therefore the Prometheus exposition — is deterministic.
///
/// | kind | names |
/// |---|---|
/// | counter | `requests_total`, `requests_completed_total`, `batches_total`, `model_switches_total`, `switch_bytes_total`, `weight_bytes_total`, `external_bytes_total`, `layer_spans_total`, `mac_slots_total`, `gated_slots_total` |
/// | per-worker counter | `worker_requests_total`, `worker_batches_total`, `worker_busy_cycles`, `worker_switch_bytes` |
/// | gauge | `makespan_ticks`, `queue_depth_max` |
/// | per-worker gauge | `worker_queue_depth_max` |
/// | histogram | `latency_ticks`, `queue_ticks`, `batch_size`, `switch_bytes`, `queue_depth`, `gated_slots` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    worker_counters: Vec<(&'static str, Vec<u64>)>,
    gauges: Vec<(&'static str, u64)>,
    worker_gauges: Vec<(&'static str, Vec<u64>)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// Folds an event stream into a snapshot. Pure and deterministic: the
    /// same events always yield the same registry.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn from_events(events: &[Event]) -> Self {
        let workers = events
            .iter()
            .filter_map(Event::worker)
            .max()
            .map_or(0, |w| w + 1);
        let z = || vec![0u64; workers];

        let mut requests = 0u64;
        let mut completed = 0u64;
        let mut batches = 0u64;
        let mut switches = 0u64;
        let mut switch_bytes_total = 0u64;
        let mut weight_bytes_total = 0u64;
        let mut external_bytes_total = 0u64;
        let mut layer_spans = 0u64;
        let mut mac_slots_total = 0u64;
        let mut gated_slots_total = 0u64;
        let mut makespan = 0u64;
        let mut w_requests = z();
        let mut w_batches = z();
        let mut w_busy = z();
        let mut w_switch = z();
        let mut w_depth_max = z();
        let mut h_latency = Histogram::new();
        let mut h_queue = Histogram::new();
        let mut h_batch_size = Histogram::new();
        let mut h_switch = Histogram::new();
        let mut h_depth = Histogram::new();
        let mut h_gated = Histogram::new();

        for ev in events {
            match *ev {
                Event::RequestArrived { .. } => requests += 1,
                Event::RequestEnqueued { worker, depth, .. } => {
                    w_requests[worker] += 1;
                    w_depth_max[worker] = w_depth_max[worker].max(depth as u64);
                    h_depth.observe(depth as u64);
                }
                Event::BatchFormed { .. } | Event::BatchDispatched { .. } => {}
                Event::ModelSwitch { worker, bytes, .. } => {
                    switches += 1;
                    switch_bytes_total += bytes;
                    w_switch[worker] += bytes;
                    h_switch.observe(bytes);
                }
                Event::LayerExecuted {
                    mac_slots,
                    gated_slots,
                    ..
                } => {
                    layer_spans += 1;
                    mac_slots_total += mac_slots;
                    gated_slots_total += gated_slots;
                    h_gated.observe(gated_slots);
                }
                Event::BatchExecuted {
                    end,
                    worker,
                    size,
                    cycles,
                    weight_bytes,
                    external_bytes,
                    ..
                } => {
                    batches += 1;
                    weight_bytes_total += weight_bytes;
                    external_bytes_total += external_bytes;
                    // The canonical stream emits batches in dispatch
                    // order, and `ServeReport::makespan` is the
                    // *last-dispatched* batch's completion — overwrite,
                    // don't max, so the gauge equals the report exactly.
                    makespan = end;
                    w_batches[worker] += 1;
                    w_busy[worker] += cycles;
                    h_batch_size.observe(size as u64);
                }
                Event::RequestCompleted {
                    latency,
                    queue_ticks,
                    ..
                } => {
                    completed += 1;
                    h_latency.observe(latency);
                    h_queue.observe(queue_ticks);
                }
            }
        }

        Self {
            counters: vec![
                ("requests_total", requests),
                ("requests_completed_total", completed),
                ("batches_total", batches),
                ("model_switches_total", switches),
                ("switch_bytes_total", switch_bytes_total),
                ("weight_bytes_total", weight_bytes_total),
                ("external_bytes_total", external_bytes_total),
                ("layer_spans_total", layer_spans),
                ("mac_slots_total", mac_slots_total),
                ("gated_slots_total", gated_slots_total),
            ],
            worker_counters: vec![
                ("worker_requests_total", w_requests),
                ("worker_batches_total", w_batches),
                ("worker_busy_cycles", w_busy),
                ("worker_switch_bytes", w_switch),
            ],
            gauges: vec![
                ("makespan_ticks", makespan),
                (
                    "queue_depth_max",
                    w_depth_max.iter().copied().max().unwrap_or(0),
                ),
            ],
            worker_gauges: vec![("worker_queue_depth_max", w_depth_max)],
            histograms: vec![
                ("latency_ticks", h_latency),
                ("queue_ticks", h_queue),
                ("batch_size", h_batch_size),
                ("switch_bytes", h_switch),
                ("queue_depth", h_depth),
                ("gated_slots", h_gated),
            ],
        }
    }

    /// An unlabeled counter's value (`None` for an unknown name).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// A per-worker counter series (`None` for an unknown name).
    #[must_use]
    pub fn worker_counter(&self, name: &str) -> Option<&[u64]> {
        self.worker_counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// A gauge's value (`None` for an unknown name).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// A per-worker gauge series (`None` for an unknown name).
    #[must_use]
    pub fn worker_gauge(&self, name: &str) -> Option<&[u64]> {
        self.worker_gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// A histogram (`None` for an unknown name).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// All unlabeled counters, in fold order.
    #[must_use]
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All per-worker counter series, in fold order.
    #[must_use]
    pub fn worker_counters(&self) -> &[(&'static str, Vec<u64>)] {
        &self.worker_counters
    }

    /// All gauges, in fold order.
    #[must_use]
    pub fn gauges(&self) -> &[(&'static str, u64)] {
        &self.gauges
    }

    /// All per-worker gauge series, in fold order.
    #[must_use]
    pub fn worker_gauges(&self) -> &[(&'static str, Vec<u64>)] {
        &self.worker_gauges
    }

    /// All histograms, in fold order.
    #[must_use]
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::NetworkId;

    #[test]
    fn bucket_edges_are_log2_and_stable() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(1 << 32), EDGES - 1);
        assert_eq!(Histogram::bucket_of((1 << 32) + 1), EDGES);
        assert_eq!(Histogram::bucket_of(u64::MAX), EDGES);
        assert_eq!(Histogram::edge(0), Some(1));
        assert_eq!(Histogram::edge(32), Some(1 << 32));
        assert_eq!(Histogram::edge(33), None);
        assert_eq!(Histogram::buckets(), 34);
    }

    #[test]
    fn histogram_conserves_count_and_sum() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 8 + (1 << 20) + u128::from(u64::MAX));
        let total: u64 = (0..Histogram::buckets()).map(|i| h.bucket_count(i)).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn registry_folds_a_tiny_stream() {
        let n = NetworkId::PRIMARY;
        let events = vec![
            Event::RequestArrived {
                t: 0,
                request: 0,
                network: n,
            },
            Event::RequestEnqueued {
                t: 0,
                request: 0,
                worker: 1,
                depth: 1,
            },
            Event::BatchFormed {
                t: 5,
                batch: 0,
                worker: 1,
                size: 1,
                network: n,
            },
            Event::ModelSwitch {
                t: 5,
                batch: 0,
                worker: 1,
                network: n,
                bytes: 64,
            },
            Event::BatchDispatched {
                t: 5,
                batch: 0,
                worker: 1,
                size: 1,
                network: n,
            },
            Event::LayerExecuted {
                start: 5,
                end: 15,
                batch: 0,
                worker: 1,
                layer: 0,
                network: n,
                cycles: 10,
                mac_slots: 100,
                gated_slots: 40,
            },
            Event::BatchExecuted {
                start: 5,
                end: 15,
                batch: 0,
                worker: 1,
                size: 1,
                network: n,
                cycles: 10,
                weight_bytes: 32,
                external_bytes: 48,
                switch_bytes: 64,
            },
            Event::RequestCompleted {
                t: 15,
                request: 0,
                batch: 0,
                worker: 1,
                network: n,
                latency: 15,
                queue_ticks: 5,
            },
        ];
        let r = Registry::from_events(&events);
        assert_eq!(r.counter("requests_total"), Some(1));
        assert_eq!(r.counter("requests_completed_total"), Some(1));
        assert_eq!(r.counter("batches_total"), Some(1));
        assert_eq!(r.counter("model_switches_total"), Some(1));
        assert_eq!(r.counter("switch_bytes_total"), Some(64));
        assert_eq!(r.counter("weight_bytes_total"), Some(32));
        assert_eq!(r.counter("external_bytes_total"), Some(48));
        assert_eq!(r.counter("mac_slots_total"), Some(100));
        assert_eq!(r.counter("gated_slots_total"), Some(40));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.gauge("makespan_ticks"), Some(15));
        assert_eq!(r.gauge("queue_depth_max"), Some(1));
        // Worker series cover workers 0..=1 (index 1 was the max seen).
        assert_eq!(r.worker_counter("worker_busy_cycles"), Some(&[0, 10][..]));
        assert_eq!(r.worker_counter("worker_requests_total"), Some(&[0, 1][..]));
        assert_eq!(r.worker_gauge("worker_queue_depth_max"), Some(&[0, 1][..]));
        let lat = r.histogram("latency_ticks").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), 15);
        assert!(r.histogram("unknown").is_none());
    }

    #[test]
    fn empty_stream_yields_zeroed_registry() {
        let r = Registry::from_events(&[]);
        assert_eq!(r.counter("requests_total"), Some(0));
        assert_eq!(r.gauge("makespan_ticks"), Some(0));
        assert_eq!(r.worker_counter("worker_busy_cycles"), Some(&[][..]));
        assert_eq!(r.histogram("latency_ticks").unwrap().count(), 0);
    }
}
