//! Deterministic observability on the simulated clock.
//!
//! Every number this crate produces lives on the simulated clock (one tick
//! = one accelerator cycle), so observability here is unlike wall-clock
//! tracing: a run's telemetry is a **pure function of the run's inputs**,
//! bit-identical across hosts, repetitions and thread counts. That makes
//! traces and metric snapshots pinnable as golden fixtures, exactly like
//! the paper artifacts.
//!
//! The subsystem has three parts:
//!
//! * **Events** ([`Event`]) — the full request lifecycle (arrival →
//!   enqueue → batch-form → dispatch → model-switch → execute → complete),
//!   per-layer execution spans, and per-batch traffic/sparsity counter
//!   deltas, each stamped with sim-time and stable ids (request, batch,
//!   worker, layer, network). A [`Telemetry`] sink receives them; the
//!   default [`Recorder`] keeps a bounded ring buffer, the no-op
//!   [`Disabled`] sink costs one branch on the hot path and nothing else.
//! * **Metrics** ([`metrics::Registry`]) — named counters, gauges and
//!   fixed log-2-bucket histograms folded from an event stream, snapshot
//!   cross-checked against [`ServeReport`](crate::serve::ServeReport) /
//!   [`PoolReport`](crate::pool::PoolReport) so the two accounting paths
//!   must agree.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (opens in
//!   Perfetto / `chrome://tracing`; complements the stage-level VCD of
//!   [`crate::trace`]) and Prometheus text exposition.
//!
//! # Determinism contract
//!
//! Events are **derived, not sampled**: the serving event loop
//! (`pool::drive`) records its serial routing decisions and then emits the
//! whole event stream in one post-pass over the assembled run — responses,
//! batch records and per-layer traces that are already pinned bit-identical
//! across thread counts by the `parallel_identity` suite. Worker threads
//! never touch the sink, so parallel runs produce byte-identical telemetry
//! to serial ones by construction, and enabling a recorder can never
//! change the run it observes.
//!
//! The canonical emission order is: first the request intake in routing
//! order ([`Event::RequestArrived`], [`Event::RequestEnqueued`] per
//! request), then per batch in dispatch order: [`Event::BatchFormed`],
//! [`Event::ModelSwitch`] (only when switch traffic was paid),
//! [`Event::BatchDispatched`], one [`Event::LayerExecuted`] per layer
//! (cycle-accurate backends only; the spans exactly tile the batch span),
//! [`Event::BatchExecuted`], and one [`Event::RequestCompleted`] per
//! member.
//!
//! Timestamps always come from the **caller's simulated clock** — never
//! from [`std::time::Instant`] or any other wall-clock source (enforced by
//! the `edea-lint` `wall-clock-in-sim` rule, which carries a
//! telemetry-specific diagnostic for this module).

pub mod derive;
pub mod export;
pub mod metrics;

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use edea_nn::workload::NetworkId;

/// One telemetry event on the simulated clock.
///
/// Every variant is plain-old-data (`Copy`), so recording never allocates
/// and event streams compare bit-exactly with `==`. Span-shaped variants
/// carry explicit `start`/`end` ticks; point events carry one tick `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request entered the run at its arrival tick.
    RequestArrived {
        /// Arrival tick.
        t: u64,
        /// Request id.
        request: u64,
        /// The network the request targets.
        network: NetworkId,
    },
    /// The dispatcher routed the request onto a worker's FIFO queue.
    RequestEnqueued {
        /// Enqueue tick (= the arrival tick; routing is immediate).
        t: u64,
        /// Request id.
        request: u64,
        /// The worker whose queue received the request.
        worker: usize,
        /// Queue depth *after* the enqueue.
        depth: usize,
    },
    /// A worker's queue head formed a batch (same-network prefix).
    BatchFormed {
        /// Formation tick (= the dispatch tick; a batch forms when its
        /// dispatch condition fires).
        t: u64,
        /// Batch index in global dispatch order.
        batch: usize,
        /// The worker that formed it.
        worker: usize,
        /// Number of member requests.
        size: usize,
        /// The network every member targets.
        network: NetworkId,
    },
    /// The dispatch flipped the worker's resident model and paid the
    /// incoming network's weight refetch. Emitted only when traffic was
    /// actually paid (a same-network dispatch emits nothing).
    ModelSwitch {
        /// The dispatch tick the switch was charged at.
        t: u64,
        /// The batch whose dispatch caused the switch.
        batch: usize,
        /// The switching worker.
        worker: usize,
        /// The network switched *to*.
        network: NetworkId,
        /// The refetch traffic in bytes.
        bytes: u64,
    },
    /// A batch left its queue for execution.
    BatchDispatched {
        /// Dispatch tick.
        t: u64,
        /// Batch index in global dispatch order.
        batch: usize,
        /// The executing worker.
        worker: usize,
        /// Number of member requests.
        size: usize,
        /// The network the batch runs.
        network: NetworkId,
    },
    /// One layer's execution span inside a dispatched batch. Emitted only
    /// by backends that report per-layer traces (the cycle-accurate
    /// simulator); the spans of one batch exactly tile its
    /// [`Event::BatchExecuted`] span, in layer order.
    LayerExecuted {
        /// Span start tick.
        start: u64,
        /// Span end tick (`start + cycles`).
        end: u64,
        /// The enclosing batch.
        batch: usize,
        /// The executing worker.
        worker: usize,
        /// Layer index within the network.
        layer: usize,
        /// The network the batch runs.
        network: NetworkId,
        /// Layer cycles over the whole batch.
        cycles: u64,
        /// MAC slots exercised over the batch (DWC + PWC engines).
        mac_slots: u64,
        /// Slots gated by zero activations (the sparsity the paper's
        /// Fig. 11 measures), DWC + PWC.
        gated_slots: u64,
    },
    /// A batch's whole execution span plus its traffic counter deltas.
    BatchExecuted {
        /// Dispatch tick.
        start: u64,
        /// Completion tick (`start + cycles`).
        end: u64,
        /// Batch index in global dispatch order.
        batch: usize,
        /// The executing worker.
        worker: usize,
        /// Number of member requests.
        size: usize,
        /// The network the batch ran.
        network: NetworkId,
        /// Service cycles.
        cycles: u64,
        /// External weight + offline-parameter bytes (paid once per batch).
        weight_bytes: u64,
        /// Total external bytes.
        external_bytes: u64,
        /// Model-switch traffic charged at this dispatch (its own
        /// category, never folded into `external_bytes`).
        switch_bytes: u64,
    },
    /// A request's batch completed: the end of its lifecycle.
    RequestCompleted {
        /// Completion tick.
        t: u64,
        /// Request id.
        request: u64,
        /// The batch that carried it.
        batch: usize,
        /// The worker that executed it.
        worker: usize,
        /// The network that served it.
        network: NetworkId,
        /// End-to-end latency in ticks (arrival → completion).
        latency: u64,
        /// Ticks spent queued before dispatch.
        queue_ticks: u64,
    },
}

impl Event {
    /// The simulated tick the event is stamped with (span events answer
    /// their start tick).
    #[must_use]
    pub fn time(&self) -> u64 {
        match *self {
            Event::RequestArrived { t, .. }
            | Event::RequestEnqueued { t, .. }
            | Event::BatchFormed { t, .. }
            | Event::ModelSwitch { t, .. }
            | Event::BatchDispatched { t, .. }
            | Event::RequestCompleted { t, .. } => t,
            Event::LayerExecuted { start, .. } | Event::BatchExecuted { start, .. } => start,
        }
    }

    /// The worker the event concerns, if any (arrivals precede routing).
    #[must_use]
    pub fn worker(&self) -> Option<usize> {
        match *self {
            Event::RequestArrived { .. } => None,
            Event::RequestEnqueued { worker, .. }
            | Event::BatchFormed { worker, .. }
            | Event::ModelSwitch { worker, .. }
            | Event::BatchDispatched { worker, .. }
            | Event::LayerExecuted { worker, .. }
            | Event::BatchExecuted { worker, .. }
            | Event::RequestCompleted { worker, .. } => Some(worker),
        }
    }
}

/// A sink for telemetry events.
///
/// The serving loop consults [`Telemetry::enabled`] once per decision
/// point and skips **all** telemetry work — side-record collection,
/// per-layer trace retention, event derivation — when it answers `false`,
/// so a disabled sink costs one predictable branch and nothing else.
///
/// Implementations must be `Sync` (sinks are shared by reference across a
/// serve call) and must not reorder events: the emission order is part of
/// the determinism contract (see the module docs). All events arrive from
/// the serial post-pass of the event loop — never from worker threads.
pub trait Telemetry: Sync + fmt::Debug {
    /// Whether this sink wants events at all. `false` must be constant for
    /// the sink's lifetime (the loop gates collection on it up front).
    fn enabled(&self) -> bool;

    /// Receives one event. Timestamps inside `event` are simulated ticks
    /// supplied by the caller — a sink never stamps time itself.
    fn record(&self, event: &Event);
}

/// The no-op sink: telemetry off, zero hot-path cost beyond one branch.
///
/// This is what every serve path uses unless a recorder is wired in; the
/// alloc-regression suite pins that serving through `Disabled` allocates
/// exactly as much as serving with no telemetry argument at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Disabled;

impl Telemetry for Disabled {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Default capacity of a [`Recorder`] ring buffer, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// The default sink: a bounded ring buffer of events.
///
/// The buffer is preallocated at construction and never grows; once full,
/// the **oldest** event is dropped per new arrival and the drop counter
/// advances, so steady-state recording allocates nothing. Interior
/// mutability is a [`Mutex`] (recording happens on the serial post-pass,
/// so the lock is uncontended; a poisoned lock is recovered, the buffer
/// being plain data that is always valid).
#[derive(Debug)]
pub struct Recorder {
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

#[derive(Debug)]
struct RecorderInner {
    events: VecDeque<Event>,
    dropped: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with the default capacity ([`DEFAULT_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            inner: Mutex::new(RecorderInner {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        // The buffer is plain data, always valid to reuse after a panic
        // elsewhere — recover instead of propagating poison.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The fixed event capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events dropped because the buffer was full (oldest-first).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A snapshot of the buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().copied().collect()
    }

    /// Clears the buffer and the drop counter.
    pub fn clear(&self) {
        let mut g = self.lock();
        g.events.clear();
        g.dropped = 0;
    }
}

impl Telemetry for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        let mut g = self.lock();
        if g.events.len() == self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event::RequestArrived {
            t,
            request: t,
            network: NetworkId::PRIMARY,
        }
    }

    #[test]
    fn disabled_is_off_and_recorder_is_on() {
        assert!(!Disabled.enabled());
        Disabled.record(&ev(0)); // no-op, no panic
        let r = Recorder::new();
        assert!(r.enabled());
        assert_eq!(r.capacity(), DEFAULT_CAPACITY);
        assert!(r.is_empty());
    }

    #[test]
    fn recorder_keeps_events_in_order() {
        let r = Recorder::with_capacity(8);
        for t in 0..5 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let events = r.events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time(), i as u64);
        }
    }

    #[test]
    fn full_recorder_drops_oldest_and_counts() {
        let r = Recorder::with_capacity(3);
        for t in 0..5 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let times: Vec<u64> = r.events().iter().map(Event::time).collect();
        assert_eq!(times, vec![2, 3, 4]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = Recorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.record(&ev(1));
        r.record(&ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].time(), 2);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn event_accessors_answer_time_and_worker() {
        let a = Event::RequestArrived {
            t: 7,
            request: 0,
            network: NetworkId::PRIMARY,
        };
        assert_eq!(a.time(), 7);
        assert_eq!(a.worker(), None);
        let l = Event::LayerExecuted {
            start: 10,
            end: 20,
            batch: 0,
            worker: 3,
            layer: 1,
            network: NetworkId::PRIMARY,
            cycles: 10,
            mac_slots: 0,
            gated_slots: 0,
        };
        assert_eq!(l.time(), 10);
        assert_eq!(l.worker(), Some(3));
    }
}
