//! The accelerator pool: N serving backends behind one dispatcher.
//!
//! The paper argues a *single* EDEA instance wins by keeping DWC→PWC
//! traffic on-chip; the system-level question is how many instances it
//! takes to serve heavy traffic, and what replication costs. This module
//! answers it in simulation:
//!
//! * [`Pool`] — N [`Backend`] workers, each with its own busy-until clock
//!   and its own weight residency (every dispatch to a worker pays that
//!   worker's batch-wide weight fetch — replicas do **not** share DRAM
//!   amortization).
//! * [`Dispatcher`] — routes requests to workers under a
//!   [`DispatchPolicy`] ([`RoundRobin`](DispatchPolicy::RoundRobin),
//!   [`LeastLoaded`](DispatchPolicy::LeastLoaded) — fewest outstanding
//!   requests, earliest-free tie-break — or
//!   [`JoinShortestQueue`](DispatchPolicy::JoinShortestQueue)), while
//!   each worker forms batches from its own FIFO queue under the same
//!   [`Policy`] rule as the single-backend [`Scheduler`](crate::serve::Scheduler).
//! * [`PoolReport`] — a [`ServeReport`] aggregate plus per-worker
//!   utilization, queue-depth and traffic accounting
//!   ([`WorkerReport`]), and the batch → worker assignment map.
//!
//! The whole pool runs on the same simulated clock as the single-backend
//! scheduler: one tick is one accelerator cycle, and the run is a pure
//! function of `(requests, policy, dispatch policy, pool)`.
//!
//! **The single-backend scheduler is the N = 1 case.** `Scheduler::serve`
//! delegates to the same event loop with one worker, and a pool of one
//! produces a bit-identical [`ServeReport`] under every dispatch policy
//! (all three route every request to the lone worker) — pinned by a
//! regression test in the root `tests/pool.rs` suite.
//!
//! **Replication cost.** Batching amortizes the per-dispatch weight fetch;
//! spreading a fixed arrival stream over more workers shortens queues, so
//! batches shrink and the *aggregate* weight DRAM traffic per image
//! **rises** with N — the inverse of the `batch_sweep` 1/N curve, and the
//! price of horizontal scaling the single-instance model cannot show (see
//! the `pool_sweep` experiment).
//!
//! # Example
//!
//! ```
//! use edea_core::pool::{Dispatcher, DispatchPolicy, Pool};
//! use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy, Request};
//! use edea_core::EdeaConfig;
//! use edea_nn::workload::mobilenet_v1_cifar10;
//! use edea_tensor::Tensor3;
//!
//! let cfg = EdeaConfig::paper();
//! let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &cfg)?;
//! let (d, h, w) = backend.input_shape();
//! let pool = Pool::replicate(backend, 4)?;
//! let ticks = arrivals::poisson(16, 20_000.0, 7);
//! let inputs = (0..16).map(|_| Tensor3::<i8>::zeros(d, h, w)).collect();
//! let dispatcher = Dispatcher::new(Policy::new(4, 100_000)?, DispatchPolicy::LeastLoaded);
//! let report = dispatcher.serve(&pool, Request::stream(&ticks, inputs)?)?;
//! assert_eq!(report.serve.responses.len(), 16);
//! assert_eq!(report.workers.len(), 4);
//! # Ok::<(), edea_core::CoreError>(())
//! ```

use std::collections::VecDeque;

use edea_nn::workload::NetworkId;
use edea_tensor::Batch;

use crate::config::EdeaConfig;
use crate::par::{self, Parallelism};
use crate::serve::{
    Backend, BackendRun, BatchRecord, LayerTrace, Policy, Request, Response, ServeReport,
};
use crate::telemetry::{Event, Telemetry};
use crate::CoreError;

/// How the dispatcher assigns incoming requests to pool workers.
///
/// Every policy is deterministic (ties break toward the lowest worker
/// index) and all three coincide on a pool of one — the single-backend
/// [`Scheduler`](crate::serve::Scheduler) case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cyclic assignment in arrival order, blind to worker state.
    RoundRobin,
    /// The worker with the least outstanding work — fewest requests
    /// queued **plus in service** (the batch it is currently executing),
    /// ties broken by the earliest-free worker (smallest busy-until
    /// tick; an idle worker counts as free *now*), then lower index.
    LeastLoaded,
    /// The worker with the fewest queued (not yet dispatched) requests —
    /// blind to the batch in service — ties broken by earlier free tick,
    /// then lower index.
    JoinShortestQueue,
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::JoinShortestQueue => "join-shortest-queue",
        })
    }
}

/// A pool of N serving backends with identical interfaces: same input
/// shape and same accelerator configuration (one clock paces the whole
/// simulation).
///
/// Workers are typically N clones of one backend ([`Pool::replicate`]) —
/// each clone owns its weight plan and scratch, the simulated analogue of
/// N chips each holding a resident copy of the weights.
#[derive(Debug, Clone)]
pub struct Pool<B> {
    workers: Vec<B>,
    par: Parallelism,
}

impl<B: Backend> Pool<B> {
    /// Builds a pool from explicit workers.
    ///
    /// Host parallelism defaults to [`Parallelism::from_env`]
    /// (`EDEA_THREADS`, else serial); override with
    /// [`Pool::with_parallelism`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `workers` is empty or a worker
    /// disagrees with worker 0 on input shape or configuration.
    pub fn new(workers: Vec<B>) -> Result<Self, CoreError> {
        if workers.is_empty() {
            return Err(CoreError::InvalidConfig {
                detail: "pool must contain at least one worker".into(),
            });
        }
        let shape = workers[0].input_shape();
        let cfg = workers[0].config().clone();
        for (i, w) in workers.iter().enumerate().skip(1) {
            if w.input_shape() != shape {
                return Err(CoreError::InvalidConfig {
                    detail: format!(
                        "pool worker {i} input shape {:?} != worker 0 input shape {shape:?}",
                        w.input_shape()
                    ),
                });
            }
            if *w.config() != cfg {
                return Err(CoreError::InvalidConfig {
                    detail: format!(
                        "pool worker {i} configuration differs from worker 0 \
                         (one clock must pace the whole pool)"
                    ),
                });
            }
        }
        let (par, warning) = Parallelism::from_env_checked();
        if let Some(w) = &warning {
            Parallelism::warn_env_once(w);
        }
        Ok(Self { workers, par })
    }

    /// Builds a pool of `n` clones of one worker.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `n` is zero.
    pub fn replicate(worker: B, n: usize) -> Result<Self, CoreError>
    where
        B: Clone,
    {
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "pool must contain at least one worker".into(),
            });
        }
        Self::new(vec![worker; n])
    }

    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// A pool is never empty (enforced at construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The workers.
    #[must_use]
    pub fn workers(&self) -> &[B] {
        &self.workers
    }

    /// The configuration pacing every worker.
    #[must_use]
    pub fn config(&self) -> &EdeaConfig {
        self.workers[0].config()
    }

    /// The host-parallelism knob for batch execution across workers.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Sets the host thread count for executing different workers' batches
    /// concurrently. A host-simulation knob, not a serving parameter: the
    /// dispatch loop stays serial on the simulated clock at any setting,
    /// and reports are bit-identical (see [`crate::par`] and the
    /// dispatch loop's oracle mode).
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// In-place variant of [`Pool::with_parallelism`].
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }
}

/// Routes a request stream across a [`Pool`]: a [`DispatchPolicy`] assigns
/// each request to a worker's FIFO queue at its arrival tick, and each
/// worker forms batches from its own queue under the shared [`Policy`]
/// exactly as the single-backend scheduler does (dispatch when the batch
/// fills or the queue head's deadline passes, never before that worker is
/// free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatcher {
    policy: Policy,
    dispatch: DispatchPolicy,
}

impl Dispatcher {
    /// Builds a dispatcher with a batch-forming `policy` and a routing
    /// `dispatch` policy.
    #[must_use]
    pub fn new(policy: Policy, dispatch: DispatchPolicy) -> Self {
        Self { policy, dispatch }
    }

    /// The batch-forming policy each worker runs under.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The routing policy.
    #[must_use]
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// Serves a request stream to completion across the pool.
    ///
    /// Requests may be supplied in any order; they are routed in
    /// `(arrival, id)` order and served FIFO within each worker. The run
    /// is a pure function of its arguments.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the policy is invalid.
    /// * [`CoreError::InvalidRequest`] on a duplicate id or an input whose
    ///   shape does not match the pool's input shape.
    /// * Any error a worker returns for a dispatched batch.
    pub fn serve<B: Backend>(
        &self,
        pool: &Pool<B>,
        requests: Vec<Request>,
    ) -> Result<PoolReport, CoreError> {
        self.serve_with(pool, requests, &crate::telemetry::Disabled)
    }

    /// [`Dispatcher::serve`] with a telemetry sink observing the run.
    ///
    /// The sink receives the canonical event stream (see
    /// [`crate::telemetry`]) derived from the run's assembled outcome, so
    /// it is bit-identical at every thread count; passing
    /// [`crate::telemetry::Disabled`] makes this identical to
    /// [`Dispatcher::serve`] at zero extra cost.
    ///
    /// # Errors
    ///
    /// Same as [`Dispatcher::serve`].
    pub fn serve_with<B: Backend>(
        &self,
        pool: &Pool<B>,
        requests: Vec<Request>,
        telemetry: &dyn crate::telemetry::Telemetry,
    ) -> Result<PoolReport, CoreError> {
        let workers: Vec<&B> = pool.workers.iter().collect();
        drive(
            &workers,
            self.policy,
            self.dispatch,
            requests,
            pool.par,
            telemetry,
        )
    }
}

/// Per-worker accounting of one pool serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index in the pool.
    pub index: usize,
    /// Requests routed to this worker.
    pub requests: usize,
    /// Batches this worker dispatched.
    pub batches: usize,
    /// Cycles this worker spent executing batches.
    pub busy_cycles: u64,
    /// External weight + offline-parameter bytes this worker fetched
    /// (paid per dispatch — replicas do not share residency).
    pub weight_bytes: u64,
    /// Total external bytes this worker moved.
    pub external_bytes: u64,
    /// Model-switch traffic this worker paid: the weight refetch charged
    /// whenever a dispatched batch's network differed from the worker's
    /// resident one. Workers start resident on [`NetworkId::PRIMARY`], so
    /// a single-model run reports zero. A traffic category of its own,
    /// never folded into [`WorkerReport::external_bytes`].
    pub switch_bytes: u64,
    /// Deepest its request queue ever got.
    pub max_queue_depth: usize,
    /// Time-averaged queue depth over the run's makespan.
    pub mean_queue_depth: f64,
}

/// Everything a pool serve run produced: the aggregate [`ServeReport`]
/// (responses and batches in global dispatch order — bit-identical to the
/// single-backend scheduler when the pool has one worker), per-worker
/// accounting, and the batch → worker assignment map.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Aggregate report over all workers, in global dispatch order.
    pub serve: ServeReport,
    /// The routing policy the run used.
    pub dispatch: DispatchPolicy,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Worker index that executed each batch of
    /// [`ServeReport::batches`](crate::serve::ServeReport).
    pub assignments: Vec<usize>,
}

impl PoolReport {
    /// Number of workers the run dispatched across.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The worker that executed batch `batch` (`None` out of range).
    #[must_use]
    pub fn worker_of(&self, batch: usize) -> Option<usize> {
        self.assignments.get(batch).copied()
    }

    /// Fraction of the makespan worker `w` spent busy.
    ///
    /// Returns 0.0 both for an empty run (per the empty-report
    /// convention) and for an out-of-range worker index — like
    /// [`PoolReport::worker_of`]'s `None`, the accessors never panic on a
    /// bad index.
    #[must_use]
    pub fn worker_utilization(&self, w: usize) -> f64 {
        let makespan = self.serve.makespan();
        let Some(worker) = self.workers.get(w) else {
            return 0.0;
        };
        if makespan == 0 {
            return 0.0;
        }
        worker.busy_cycles as f64 / makespan as f64
    }

    /// `(min, max)` worker utilization — the load-balance spread.
    #[must_use]
    pub fn utilization_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for w in 0..self.workers.len() {
            let u = self.worker_utilization(w);
            lo = lo.min(u);
            hi = hi.max(u);
        }
        if lo.is_infinite() {
            lo = 0.0;
        }
        (lo, hi)
    }

    /// Mean worker utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        (0..self.workers.len())
            .map(|w| self.worker_utilization(w))
            .sum::<f64>()
            / self.workers.len() as f64
    }

    /// Deepest any worker's queue ever got.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate external weight + offline-parameter bytes per served
    /// image — **rises** with the worker count at fixed load: spreading
    /// the stream shortens queues, batches shrink, and every extra
    /// dispatch pays its own weight fetch (the replication cost).
    #[must_use]
    pub fn weight_bytes_per_image(&self) -> f64 {
        self.serve.weight_bytes_per_image()
    }
}

/// One worker's run state inside the event loop.
struct WorkerState {
    queue: VecDeque<Request>,
    free_at: u64,
    /// Size of the batch currently executing (counts as outstanding work
    /// for [`DispatchPolicy::LeastLoaded`] while `free_at` is in the
    /// future).
    in_service: usize,
    /// The network whose weights the worker holds resident. Workers boot
    /// resident on the primary model; dispatching any other network pays
    /// that network's switch traffic and flips residency.
    resident: NetworkId,
    requests: usize,
    batches: usize,
    busy_cycles: u64,
    weight_bytes: u64,
    external_bytes: u64,
    switch_bytes: u64,
    max_queue_depth: usize,
    /// `Σ queue-depth × ticks`, advanced whenever simulated time moves.
    depth_integral: u128,
}

impl WorkerState {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            free_at: 0,
            in_service: 0,
            resident: NetworkId::PRIMARY,
            requests: 0,
            batches: 0,
            busy_cycles: 0,
            weight_bytes: 0,
            external_bytes: 0,
            switch_bytes: 0,
            max_queue_depth: 0,
            depth_integral: 0,
        }
    }

    /// Number of leading queued requests that target the same network as
    /// the queue head — the longest batch the worker could dispatch
    /// (batches are never mixed-network: one plan runs per dispatch). On
    /// single-model streams this is the whole queue.
    fn same_network_prefix(&self) -> usize {
        let Some(head) = self.queue.front() else {
            return 0;
        };
        self.queue
            .iter()
            .take_while(|r| r.network == head.network)
            .count()
    }

    /// The tick this worker's next batch may dispatch, given the current
    /// simulated time — the single-backend scheduler's rule verbatim:
    /// `ready = now.max(free_at)`; dispatch at `ready` when the head's
    /// same-network prefix holds `max_batch`, else at the queue head's
    /// waiting deadline (but never before `ready`). A request of another
    /// network parked behind the prefix never fills the head's batch.
    fn dispatch_at(&self, now: u64, policy: Policy) -> Option<u64> {
        let head = self.queue.front()?;
        let ready = now.max(self.free_at);
        if self.same_network_prefix() >= policy.max_batch {
            Some(ready)
        } else {
            Some(ready.max(head.arrival.saturating_add(policy.max_wait)))
        }
    }
}

/// Picks the worker for a request arriving at `now` under `policy`.
fn route(
    workers: &[WorkerState],
    policy: DispatchPolicy,
    rr_cursor: &mut usize,
    now: u64,
) -> usize {
    match policy {
        DispatchPolicy::RoundRobin => {
            let i = *rr_cursor;
            *rr_cursor = (*rr_cursor + 1) % workers.len();
            i
        }
        DispatchPolicy::LeastLoaded => {
            workers
                .iter()
                .enumerate()
                .min_by_key(|(i, w)| {
                    let busy = if w.free_at > now { w.in_service } else { 0 };
                    (w.queue.len() + busy, w.free_at.max(now), *i)
                })
                // edea-lint: allow(panic-in-lib): Pool::new rejects empty worker sets
                .expect("pool is non-empty")
                .0
        }
        DispatchPolicy::JoinShortestQueue => {
            workers
                .iter()
                .enumerate()
                .min_by_key(|(i, w)| (w.queue.len(), w.free_at.max(now), *i))
                // edea-lint: allow(panic-in-lib): Pool::new rejects empty worker sets
                .expect("pool is non-empty")
                .0
        }
    }
}

/// One dispatched-but-not-yet-executed batch in the oracle-mode event
/// loop: the scheduling decision (who, when, how long) is final; only the
/// execution — outputs and measured traffic — is deferred to a worker
/// thread.
struct PlannedBatch {
    worker: usize,
    /// The network every member targets (batches are never mixed).
    network: NetworkId,
    /// `(id, arrival)` of each drained request, in FIFO order.
    timeline: Vec<(u64, u64)>,
    inputs: Batch<i8>,
    dispatched: u64,
    /// The backend's pre-declared service cycles
    /// ([`Backend::dispatch_cycles_for`]); the measured run must match
    /// exactly, enforced at assembly.
    predicted: u64,
    /// Model-switch traffic charged at the (serial) scheduling decision.
    switch_bytes: u64,
}

/// One routing decision, side-recorded in the serial scheduling loop so
/// the telemetry post-pass can replay arrivals in routing order. Collected
/// only when the sink is enabled — the disabled path allocates nothing.
struct RouteRecord {
    /// Arrival tick (= enqueue tick; routing is immediate).
    t: u64,
    /// Request id.
    request: u64,
    /// Network the request targets.
    network: NetworkId,
    /// Worker the dispatch policy chose.
    worker: usize,
    /// Queue depth just after the push (what `max_queue_depth` samples).
    depth: usize,
}

/// Replays a finished run as the canonical telemetry event stream (see
/// `crate::telemetry`): phase A emits arrival + enqueue per routing
/// decision in routing order; phase B walks batches in global dispatch
/// order emitting form/switch/dispatch, per-layer spans tiling the batch
/// span, the batch span itself, then a completion per member request.
///
/// Everything here is derived from the *assembled* run — `routes` from
/// the serial scheduling loop, the rest from outputs that are already
/// bit-identical across thread counts (PR-7 contract) — so the stream is
/// bit-identical at every thread count by construction. Worker threads
/// never touch the sink.
fn emit(
    tel: &dyn Telemetry,
    routes: &[RouteRecord],
    responses: &[Response],
    batches: &[BatchRecord],
    assignments: &[usize],
    batch_layers: &[Vec<LayerTrace>],
) {
    for r in routes {
        tel.record(&Event::RequestArrived {
            t: r.t,
            request: r.request,
            network: r.network,
        });
        tel.record(&Event::RequestEnqueued {
            t: r.t,
            request: r.request,
            worker: r.worker,
            depth: r.depth,
        });
    }
    // Responses are pushed batch-by-batch in dispatch order in both the
    // serial and oracle paths, so each batch's members are the next
    // `size` responses.
    let mut member = 0usize;
    for b in batches {
        let worker = assignments.get(b.index).copied().unwrap_or(0);
        tel.record(&Event::BatchFormed {
            t: b.dispatched,
            batch: b.index,
            worker,
            size: b.size,
            network: b.network,
        });
        if b.switch_bytes > 0 {
            tel.record(&Event::ModelSwitch {
                t: b.dispatched,
                batch: b.index,
                worker,
                network: b.network,
                bytes: b.switch_bytes,
            });
        }
        tel.record(&Event::BatchDispatched {
            t: b.dispatched,
            batch: b.index,
            worker,
            size: b.size,
            network: b.network,
        });
        let mut cursor = b.dispatched;
        if let Some(layers) = batch_layers.get(b.index) {
            for l in layers {
                let end = cursor + l.cycles;
                tel.record(&Event::LayerExecuted {
                    start: cursor,
                    end,
                    batch: b.index,
                    worker,
                    layer: l.index,
                    network: b.network,
                    cycles: l.cycles,
                    mac_slots: l.mac_slots,
                    gated_slots: l.gated_slots,
                });
                cursor = end;
            }
        }
        tel.record(&Event::BatchExecuted {
            start: b.dispatched,
            end: b.completed,
            batch: b.index,
            worker,
            size: b.size,
            network: b.network,
            cycles: b.cycles,
            weight_bytes: b.weight_bytes,
            external_bytes: b.external_bytes,
            switch_bytes: b.switch_bytes,
        });
        for resp in responses.iter().skip(member).take(b.size) {
            tel.record(&Event::RequestCompleted {
                t: resp.completed,
                request: resp.id,
                batch: b.index,
                worker,
                network: resp.network,
                latency: resp.completed - resp.arrival,
                queue_ticks: resp.dispatched - resp.arrival,
            });
        }
        member += b.size;
    }
}

/// The shared discrete-event serve loop: routes arrivals to per-worker
/// queues and dispatches each worker's batches in global time order,
/// processing arrivals before dispatches at equal ticks (an arrival at or
/// before a dispatch tick joins a queue first — it may fill a batch and
/// move its dispatch earlier, exactly as in the single-backend scheduler).
///
/// `Scheduler::serve` calls this with one worker; the pool API calls it
/// with N. With one worker every routing policy is the identity, so the
/// single-backend path *is* the N = 1 case of this loop.
///
/// # Parallel execution (oracle mode)
///
/// The scheduling decisions depend on *when* batches complete, so the
/// event loop itself must stay serial on the simulated clock. When `par`
/// allows more than one thread, the pool has more than one worker, and
/// every worker pre-declares its service cycles
/// ([`Backend::dispatch_cycles`]), the loop runs in **oracle mode**: it
/// makes every scheduling decision serially from the predicted cycles,
/// recording [`PlannedBatch`]es instead of executing them, then executes
/// all batches on a scoped fork-join — partitioned **by worker** (a
/// worker's batches stay on one lane, in dispatch order, preserving each
/// backend's sequential self-consistency) — and assembles responses,
/// batch records and per-worker traffic in global dispatch order. A
/// measured run that contradicts its prediction fails the whole run
/// (`InvalidConfig`): silently diverging clocks would un-pin the
/// simulated schedule from the executed one. Any backend without a
/// prediction (the default) keeps today's serial execute-at-dispatch
/// behaviour.
pub(crate) fn drive<W: Backend + ?Sized>(
    workers: &[&W],
    policy: Policy,
    dispatch: DispatchPolicy,
    requests: Vec<Request>,
    par: Parallelism,
    tel: &dyn Telemetry,
) -> Result<PoolReport, CoreError> {
    policy.validate()?;
    // Telemetry is derived, never recorded from worker threads: routing
    // decisions are side-recorded in the serial loop below, per-batch
    // layer traces are captured off each run, and one post-pass replays
    // the assembled outcome into the sink (see `emit`). With a disabled
    // sink none of these vectors ever allocates.
    let observe = tel.enabled();
    let mut routes: Vec<RouteRecord> = Vec::new();
    let mut batch_layers: Vec<Vec<LayerTrace>> = Vec::new();
    assert!(!workers.is_empty(), "pool is non-empty by construction");
    // The distinct networks this stream targets (usually just PRIMARY).
    let networks: Vec<NetworkId> = {
        let mut v: Vec<NetworkId> = requests.iter().map(|r| r.network).collect();
        v.sort_unstable_by_key(|n| n.0);
        v.dedup();
        v
    };
    // Oracle mode is all-or-nothing, decided up front: a mixed pool (some
    // workers predicting, some not — for any network the stream targets)
    // runs serially like any other.
    let oracle = !par.is_serial()
        && workers.len() > 1
        && workers.iter().all(|w| {
            networks
                .iter()
                .all(|&n| w.dispatch_cycles_for(n, 1).is_some())
        });
    for r in &requests {
        let Some(want) = workers[0].input_shape_for(r.network) else {
            return Err(CoreError::InvalidRequest {
                detail: format!(
                    "request {}: unknown network id {} (backend {} does not serve it)",
                    r.id,
                    r.network,
                    workers[0].name()
                ),
            });
        };
        if r.input.shape() != want {
            return Err(CoreError::InvalidRequest {
                detail: format!(
                    "request {}: input shape {:?} != backend input shape {:?}",
                    r.id,
                    r.input.shape(),
                    want
                ),
            });
        }
    }
    {
        let mut ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(CoreError::InvalidRequest {
                detail: format!("duplicate request id {}", dup[0]),
            });
        }
    }

    let n_requests = requests.len();
    let mut pending: VecDeque<Request> = {
        let mut v = requests;
        v.sort_by_key(|r| (r.arrival, r.id));
        v.into()
    };
    let mut states: Vec<WorkerState> = (0..workers.len()).map(|_| WorkerState::new()).collect();
    let mut responses = Vec::with_capacity(n_requests);
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut assignments: Vec<usize> = Vec::new();
    let mut planned: Vec<PlannedBatch> = Vec::new();
    let mut rr_cursor = 0usize;
    let mut now = 0u64;

    // Advances simulated time to `t`, accumulating each worker's
    // queue-depth integral over the elapsed ticks.
    let advance = |states: &mut [WorkerState], now: &mut u64, t: u64| {
        if t > *now {
            let dt = u128::from(t - *now);
            for s in states.iter_mut() {
                s.depth_integral += s.queue.len() as u128 * dt;
            }
            *now = t;
        }
    };

    loop {
        // The earliest worker dispatch on the table (ties → lowest index).
        let next_dispatch: Option<(u64, usize)> = states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.dispatch_at(now, policy).map(|t| (t, i)))
            .min();

        // Route the next arrival if it lands at or before that dispatch.
        let route_next = match (pending.front(), next_dispatch) {
            (Some(r), Some((t, _))) => r.arrival <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if route_next {
            // edea-lint: allow(panic-in-lib): route_next is true only when the front exists
            let r = pending.pop_front().expect("checked front");
            advance(&mut states, &mut now, r.arrival);
            let w = route(&states, dispatch, &mut rr_cursor, now);
            let s = &mut states[w];
            if observe {
                routes.push(RouteRecord {
                    t: r.arrival,
                    request: r.id,
                    network: r.network,
                    worker: w,
                    depth: s.queue.len() + 1,
                });
            }
            s.queue.push_back(r);
            s.requests += 1;
            s.max_queue_depth = s.max_queue_depth.max(s.queue.len());
            continue;
        }

        // edea-lint: allow(panic-in-lib): route_next is false only when a dispatch exists
        let (t, wi) = next_dispatch.expect("route_next is false only with a dispatch");
        advance(&mut states, &mut now, t);
        let state = &mut states[wi];
        let size = state.same_network_prefix().min(policy.max_batch);
        // edea-lint: allow(panic-in-lib): dispatch_at returned Some, so the queue
        // head (and thus a non-empty same-network prefix) exists
        let network = state.queue.front().expect("non-empty batch").network;
        // Move the inputs out of the drained requests — no tensor copies
        // on the dispatch path.
        let mut timeline = Vec::with_capacity(size);
        let mut inputs = Vec::with_capacity(size);
        for r in state.queue.drain(..size) {
            timeline.push((r.id, r.arrival));
            inputs.push(r.input);
        }
        let oldest_arrival = timeline[0].1;
        // edea-lint: allow(panic-in-lib): every request shape was checked against the
        // backend at intake (InvalidRequest), so the drained batch is uniform
        let inputs = Batch::new(inputs).expect("request shapes validated above");
        let index = assignments.len();
        // Model-switch accounting happens here, on the serial scheduling
        // decision, so oracle and serial runs agree exactly: a dispatch
        // whose network differs from the worker's resident one pays the
        // incoming network's refetch and flips residency.
        let switch = if state.resident == network {
            0
        } else {
            workers[wi].switch_bytes(network)
        };
        state.resident = network;
        state.switch_bytes += switch;
        let cycles = if oracle {
            // Oracle mode: every scheduling consequence of this dispatch
            // (busy-until, responses' completion, the next batch boundary)
            // follows from the pre-declared cycles; execution is deferred.
            let predicted = workers[wi]
                .dispatch_cycles_for(network, size)
                .ok_or_else(|| CoreError::InvalidConfig {
                    detail: format!(
                        "backend {} declared dispatch cycles for a batch of 1 \
                         but not for a batch of {size}; dispatch_cycles must \
                         be all-or-nothing",
                        workers[wi].name()
                    ),
                })?;
            planned.push(PlannedBatch {
                worker: wi,
                network,
                timeline,
                inputs,
                dispatched: now,
                predicted,
                switch_bytes: switch,
            });
            predicted
        } else {
            let mut run = workers[wi].run_for(network, &inputs)?;
            if run.outputs.len() != size {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "backend {} returned {} outputs for a batch of {size}",
                        workers[wi].name(),
                        run.outputs.len()
                    ),
                });
            }
            if observe {
                batch_layers.push(std::mem::take(&mut run.layers));
            }
            let completed = now + run.cycles;
            for ((id, arrival), output) in timeline.into_iter().zip(run.outputs.into_images()) {
                responses.push(Response {
                    id,
                    arrival,
                    dispatched: now,
                    completed,
                    batch: index,
                    network,
                    output,
                });
            }
            batches.push(BatchRecord {
                index,
                size,
                oldest_arrival,
                dispatched: now,
                completed,
                cycles: run.cycles,
                network,
                weight_bytes: run.weight_bytes,
                external_bytes: run.external_bytes,
                switch_bytes: switch,
            });
            state.weight_bytes += run.weight_bytes;
            state.external_bytes += run.external_bytes;
            run.cycles
        };
        assignments.push(wi);
        state.free_at = now + cycles;
        state.in_service = size;
        state.batches += 1;
        state.busy_cycles += cycles;
    }

    // Oracle mode, phase 2: execute every planned batch on a scoped
    // fork-join, partitioned by worker (a worker's batches stay on one
    // lane, in dispatch order), then assemble in global dispatch order.
    if !planned.is_empty() {
        let lanes_n = par.threads().min(workers.len());
        let worker_ranges = par::chunk_ranges(workers.len(), lanes_n);
        let mut worker_lane = vec![0usize; workers.len()];
        for (lane, range) in worker_ranges.iter().enumerate() {
            for w in range.clone() {
                worker_lane[w] = lane;
            }
        }
        // Per-lane job lists are ascending in global batch index.
        let mut lane_jobs: Vec<Vec<usize>> = vec![Vec::new(); lanes_n];
        for (j, p) in planned.iter().enumerate() {
            lane_jobs[worker_lane[p.worker]].push(j);
        }
        let planned_ref = &planned;
        let lane_results = par::map_lanes(lane_jobs, |_, jobs| {
            let mut out: Vec<(usize, Result<BackendRun, CoreError>)> =
                Vec::with_capacity(jobs.len());
            for j in jobs {
                let p = &planned_ref[j];
                let result = workers[p.worker].run_for(p.network, &p.inputs);
                let failed = result.is_err();
                out.push((j, result));
                if failed {
                    // Stop at this lane's first error: jobs are in
                    // dispatch order per lane, so the globally first
                    // error is always executed and found at assembly.
                    break;
                }
            }
            out
        });
        let mut runs: Vec<Option<Result<BackendRun, CoreError>>> =
            (0..planned.len()).map(|_| None).collect();
        for lane in lane_results {
            for (j, r) in lane {
                runs[j] = Some(r);
            }
        }
        // Ascending assembly reproduces the serial loop's responses,
        // batch records, per-worker traffic and error precedence exactly
        // (the schedule prefix up to any first error is identical, since
        // predictions equal measured cycles for every successful run).
        for (j, p) in planned.into_iter().enumerate() {
            let mut run = runs[j]
                .take()
                // edea-lint: allow(panic-in-lib): lanes cover 0..planned.len(), and the
                // fixed-order reduction stops this loop at the first missing run
                .expect("every batch up to the first error was executed")?;
            let size = p.timeline.len();
            if run.outputs.len() != size {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "backend {} returned {} outputs for a batch of {size}",
                        workers[p.worker].name(),
                        run.outputs.len()
                    ),
                });
            }
            if run.cycles != p.predicted {
                return Err(CoreError::InvalidConfig {
                    detail: format!(
                        "backend {} reported {} cycles for a batch of {size} but \
                         declared {} at dispatch; dispatch_cycles must equal the \
                         measured run exactly",
                        workers[p.worker].name(),
                        run.cycles,
                        p.predicted
                    ),
                });
            }
            if observe {
                batch_layers.push(std::mem::take(&mut run.layers));
            }
            let completed = p.dispatched + run.cycles;
            let oldest_arrival = p.timeline[0].1;
            states[p.worker].weight_bytes += run.weight_bytes;
            states[p.worker].external_bytes += run.external_bytes;
            for ((id, arrival), output) in p.timeline.into_iter().zip(run.outputs.into_images()) {
                responses.push(Response {
                    id,
                    arrival,
                    dispatched: p.dispatched,
                    completed,
                    batch: j,
                    network: p.network,
                    output,
                });
            }
            batches.push(BatchRecord {
                index: j,
                size,
                oldest_arrival,
                dispatched: p.dispatched,
                completed,
                cycles: run.cycles,
                network: p.network,
                weight_bytes: run.weight_bytes,
                external_bytes: run.external_bytes,
                switch_bytes: p.switch_bytes,
            });
        }
    }

    if observe {
        emit(
            tel,
            &routes,
            &responses,
            &batches,
            &assignments,
            &batch_layers,
        );
    }

    let makespan = batches.last().map_or(0, |b| b.completed);
    let workers_report = states
        .into_iter()
        .enumerate()
        .map(|(index, s)| WorkerReport {
            index,
            requests: s.requests,
            batches: s.batches,
            busy_cycles: s.busy_cycles,
            weight_bytes: s.weight_bytes,
            external_bytes: s.external_bytes,
            switch_bytes: s.switch_bytes,
            max_queue_depth: s.max_queue_depth,
            mean_queue_depth: if makespan == 0 {
                0.0
            } else {
                s.depth_integral as f64 / makespan as f64
            },
        })
        .collect();

    Ok(PoolReport {
        serve: ServeReport {
            backend: workers[0].name().to_string(),
            policy,
            responses,
            batches,
        },
        dispatch,
        workers: workers_report,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{arrivals, AnalyticBackend, Scheduler};
    use edea_nn::workload::mobilenet_v1_cifar10;
    use edea_tensor::Tensor3;

    fn analytic() -> AnalyticBackend {
        AnalyticBackend::new(&mobilenet_v1_cifar10(), &EdeaConfig::paper()).unwrap()
    }

    fn zero_requests(backend: &AnalyticBackend, ticks: &[u64]) -> Vec<Request> {
        let (d, h, w) = backend.input_shape();
        Request::stream(
            ticks,
            (0..ticks.len())
                .map(|_| Tensor3::<i8>::zeros(d, h, w))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_pool_and_zero_replication_are_rejected() {
        assert!(matches!(
            Pool::<AnalyticBackend>::new(Vec::new()),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Pool::replicate(analytic(), 0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn mismatched_workers_are_rejected() {
        let a = analytic();
        let mut shapes = mobilenet_v1_cifar10();
        shapes.truncate(3); // different output, same input shape — allowed
        let b = AnalyticBackend::new(&shapes, &EdeaConfig::paper()).unwrap();
        assert!(Pool::new(vec![a.clone(), b]).is_ok());

        // A different clock is not allowed: one clock paces the pool.
        let mut cfg = EdeaConfig::paper();
        cfg.clock_mhz *= 2;
        let c = AnalyticBackend::new(&mobilenet_v1_cifar10(), &cfg).unwrap();
        assert!(matches!(
            Pool::new(vec![a, c]),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn pool_of_one_matches_single_scheduler_for_every_policy() {
        let b = analytic();
        let ticks = arrivals::poisson(24, b.cost().per_image_cycles() as f64 / 2.0, 31);
        let policy = Policy::new(4, b.cost().per_image_cycles()).unwrap();
        let single = Scheduler::new(policy)
            .serve(&b, zero_requests(&b, &ticks))
            .unwrap();
        for dp in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::JoinShortestQueue,
        ] {
            let pool = Pool::replicate(b.clone(), 1).unwrap();
            let report = Dispatcher::new(policy, dp)
                .serve(&pool, zero_requests(&b, &ticks))
                .unwrap();
            assert_eq!(report.serve.batches, single.batches, "{dp}");
            assert_eq!(report.serve.responses, single.responses, "{dp}");
            assert_eq!(report.assignments, vec![0; single.batches.len()], "{dp}");
        }
    }

    #[test]
    fn round_robin_cycles_through_workers() {
        let b = analytic();
        // Far-apart arrivals: each request dispatches alone; round-robin
        // must still cycle 0, 1, 2, 0, 1, 2.
        let gap = b.cost().per_image_cycles() * 2;
        let pool = Pool::replicate(b.clone(), 3).unwrap();
        let report = Dispatcher::new(Policy::new(1, 0).unwrap(), DispatchPolicy::RoundRobin)
            .serve(&pool, zero_requests(&b, &arrivals::uniform(6, gap)))
            .unwrap();
        assert_eq!(report.assignments, vec![0, 1, 2, 0, 1, 2]);
        for w in &report.workers {
            assert_eq!(w.requests, 2);
            assert_eq!(w.batches, 2);
        }
    }

    #[test]
    fn least_loaded_prefers_idle_workers() {
        let b = analytic();
        let service = b.cost().per_image_cycles();
        // r0 at t=0 occupies worker 0; r1 arrives while it is busy and
        // must go to the idle worker 1, not queue behind worker 0.
        let pool = Pool::replicate(b.clone(), 2).unwrap();
        let report = Dispatcher::new(Policy::new(4, 0).unwrap(), DispatchPolicy::LeastLoaded)
            .serve(&pool, zero_requests(&b, &[0, service / 2]))
            .unwrap();
        assert_eq!(report.assignments, vec![0, 1]);
        assert_eq!(report.serve.batches[1].dispatched, service / 2);
        // Both served with zero queueing: latency is exactly one service.
        for r in &report.serve.responses {
            assert_eq!(r.latency(), service);
        }
    }

    #[test]
    fn join_shortest_queue_balances_a_burst() {
        let b = analytic();
        // Four simultaneous arrivals, max_wait long enough that nothing
        // dispatches during routing: JSQ spreads them 1-1-1-1.
        let pool = Pool::replicate(b.clone(), 4).unwrap();
        let report = Dispatcher::new(
            Policy::new(4, 1_000_000).unwrap(),
            DispatchPolicy::JoinShortestQueue,
        )
        .serve(&pool, zero_requests(&b, &[0, 0, 0, 0]))
        .unwrap();
        for w in &report.workers {
            assert_eq!(w.requests, 1, "worker {}", w.index);
        }
    }

    #[test]
    fn two_workers_double_throughput_of_an_overloaded_stream() {
        let b = analytic();
        let service = b.cost().per_image_cycles();
        // Saturating load: all requests at t=0, batch-of-1 policy.
        let ticks = vec![0u64; 8];
        let policy = Policy::new(1, 0).unwrap();
        let one = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
            .serve(
                &Pool::replicate(b.clone(), 1).unwrap(),
                zero_requests(&b, &ticks),
            )
            .unwrap();
        let two = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
            .serve(
                &Pool::replicate(b.clone(), 2).unwrap(),
                zero_requests(&b, &ticks),
            )
            .unwrap();
        assert_eq!(one.serve.makespan(), 8 * service);
        assert_eq!(two.serve.makespan(), 4 * service);
        // Perfect balance: both workers fully busy until the makespan.
        assert_eq!(two.utilization_range(), (1.0, 1.0));
    }

    #[test]
    fn replication_raises_weight_traffic_per_image_at_fixed_load() {
        let b = analytic();
        let service = b.cost().per_image_cycles();
        // 2× overload on one worker: batches form and amortize. The same
        // stream on four workers dispatches mostly singles.
        let ticks = arrivals::poisson(32, service as f64 / 2.0, 77);
        let policy = Policy::new(8, service).unwrap();
        let mut prev = 0.0f64;
        for n in [1usize, 2, 4] {
            let report = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
                .serve(
                    &Pool::replicate(b.clone(), n).unwrap(),
                    zero_requests(&b, &ticks),
                )
                .unwrap();
            let wpi = report.weight_bytes_per_image();
            assert!(
                wpi >= prev,
                "weight B/img fell from {prev} to {wpi} going to {n} workers"
            );
            prev = wpi;
        }
        // And the single-worker run actually amortized, so the rise is real.
        assert!(prev > 0.0);
    }

    #[test]
    fn worker_reports_are_consistent_with_the_aggregate() {
        let b = analytic();
        let service = b.cost().per_image_cycles();
        let ticks = arrivals::poisson(24, service as f64 / 3.0, 41);
        let pool = Pool::replicate(b.clone(), 3).unwrap();
        let report = Dispatcher::new(
            Policy::new(4, service).unwrap(),
            DispatchPolicy::JoinShortestQueue,
        )
        .serve(&pool, zero_requests(&b, &ticks))
        .unwrap();

        assert_eq!(report.worker_count(), 3);
        assert_eq!(report.assignments.len(), report.serve.batches.len());
        // Conservation: per-worker sums equal the aggregate.
        let sum_req: usize = report.workers.iter().map(|w| w.requests).sum();
        let sum_batches: usize = report.workers.iter().map(|w| w.batches).sum();
        let sum_weight: u64 = report.workers.iter().map(|w| w.weight_bytes).sum();
        assert_eq!(sum_req, report.serve.responses.len());
        assert_eq!(sum_batches, report.serve.batches.len());
        assert_eq!(
            sum_weight,
            report
                .serve
                .batches
                .iter()
                .map(|b| b.weight_bytes)
                .sum::<u64>()
        );
        // Utilization is a fraction of the makespan; busy time never
        // exceeds it.
        for w in 0..3 {
            let u = report.worker_utilization(w);
            assert!((0.0..=1.0).contains(&u), "worker {w} utilization {u}");
        }
        let (lo, hi) = report.utilization_range();
        assert!(lo <= report.mean_utilization() && report.mean_utilization() <= hi);
        // Per-batch worker attribution covers every batch.
        for i in 0..report.serve.batches.len() {
            assert!(report.worker_of(i).unwrap() < 3);
        }
        assert_eq!(report.worker_of(report.serve.batches.len()), None);
        // Out-of-range accessors are consistent: `worker_of` answers
        // `None`, `worker_utilization` answers 0.0 — neither panics.
        assert_eq!(report.worker_of(usize::MAX), None);
        assert_eq!(report.worker_utilization(report.worker_count()), 0.0);
        assert_eq!(report.worker_utilization(usize::MAX), 0.0);
        // In range it still reports real busy fractions (this run served
        // work, so at least one worker was busy).
        assert!((0..3).any(|w| report.worker_utilization(w) > 0.0));
    }

    /// A two-model simulator backend: MobileNetV1 (primary) and
    /// MobileNetV2 (net1) at width 0.25, sharing the stem input shape.
    fn mixed_backend(threads: usize) -> crate::serve::SimulatorBackend {
        use crate::accelerator::Edea;
        use crate::serve::SimulatorBackend;
        use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
        use edea_tensor::rng;

        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        // v1 at width 0.5 and v2 at width 0.25 share the stem output
        // shape (16, 32, 32) — the multi-model precondition.
        let v1 = edea_nn::mobilenet::MobileNetV1::synthetic(0.5, 31);
        let q1 = QuantizedDscNetwork::calibrate(&v1, &calib);
        let v2 = edea_nn::mobilenet::MobileNetV2::synthetic(0.25, 41);
        let q2 = QuantizedDscNetwork::calibrate_v2(&v2, &calib, QuantStrategy::paper()).unwrap();
        let edea = Edea::new(EdeaConfig::paper())
            .unwrap()
            .with_parallelism(Parallelism::new(threads).unwrap());
        SimulatorBackend::new(edea, q1)
            .unwrap()
            .with_model(NetworkId(1), q2)
            .unwrap()
    }

    fn mixed_requests(backend: &impl Backend, nets: &[u32], ticks: &[u64]) -> Vec<Request> {
        let (d, h, w) = backend.input_shape();
        let networks: Vec<NetworkId> = nets.iter().map(|&n| NetworkId(n)).collect();
        Request::stream_mixed(
            ticks,
            &networks,
            nets.iter()
                .map(|&n| {
                    Tensor3::<i8>::from_fn(d, h, w, |c, r, col| (c + r + col + n as usize) as i8)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn mixed_stream_batches_same_network_prefixes_and_pays_switch_traffic() {
        let b = mixed_backend(1);
        // One worker, everything arrives at t = 0: the queue reads
        // v1 v1 v2 v2 v1. Prefix batching must form [v1 v1] [v2 v2] [v1]
        // — never a mixed batch — and charge switch traffic exactly on
        // the two residency flips (PRIMARY → net1 → PRIMARY).
        let reqs = mixed_requests(&b, &[0, 0, 1, 1, 0], &[0; 5]);
        let pool = Pool::replicate(b.clone(), 1)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let report = Dispatcher::new(Policy::new(2, 0).unwrap(), DispatchPolicy::RoundRobin)
            .serve(&pool, reqs)
            .unwrap();

        let nets: Vec<u32> = report.serve.batches.iter().map(|b| b.network.0).collect();
        assert_eq!(nets, vec![0, 1, 0]);
        assert_eq!(
            report
                .serve
                .batches
                .iter()
                .map(|b| b.size)
                .collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        // Per-response network attribution follows the batches.
        for r in &report.serve.responses {
            assert_eq!(r.network.0, if (2..=3).contains(&r.id) { 1 } else { 0 });
        }
        // Switch traffic: worker boots resident on PRIMARY, so batch 0 is
        // free; batch 1 pays net1's full refetch, batch 2 pays net0's.
        let sw: Vec<u64> = report
            .serve
            .batches
            .iter()
            .map(|b| b.switch_bytes)
            .collect();
        assert_eq!(sw[0], 0);
        assert_eq!(sw[1], b.switch_bytes(NetworkId(1)));
        assert_eq!(sw[2], b.switch_bytes(NetworkId::PRIMARY));
        assert!(sw[1] > 0 && sw[2] > 0);
        assert_eq!(report.serve.switch_bytes_total(), sw.iter().sum::<u64>());
        assert_eq!(
            report.workers[0].switch_bytes,
            report.serve.switch_bytes_total()
        );
        // Switch traffic is its own category, never folded into the
        // backend-measured external bytes: the v2 batch's external and
        // cycle figures equal a direct switch-free run of the same inputs.
        let (d, h, w) = b.input_shape();
        let img =
            |n: u32| Tensor3::<i8>::from_fn(d, h, w, |c, r, col| (c + r + col + n as usize) as i8);
        let direct = b
            .run_for(NetworkId(1), &Batch::new(vec![img(1), img(1)]).unwrap())
            .unwrap();
        assert_eq!(
            report.serve.batches[1].external_bytes,
            direct.external_bytes
        );
        assert_eq!(report.serve.batches[1].cycles, direct.cycles);
        // Per-network latency accounting sees both populations.
        assert!(report.serve.mean_latency_for(NetworkId::PRIMARY).is_some());
        assert!(report.serve.mean_latency_for(NetworkId(1)).is_some());
        assert_eq!(report.serve.mean_latency_for(NetworkId(9)), None);
    }

    #[test]
    fn single_model_stream_on_a_multi_model_backend_pays_no_switch_traffic() {
        let b = mixed_backend(1);
        let reqs = mixed_requests(&b, &[0, 0, 0, 0], &[0, 10, 20, 30]);
        let pool = Pool::replicate(b, 2)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let report = Dispatcher::new(Policy::new(2, 1_000).unwrap(), DispatchPolicy::LeastLoaded)
            .serve(&pool, reqs)
            .unwrap();
        assert_eq!(report.serve.switch_bytes_total(), 0);
        assert!(report.workers.iter().all(|w| w.switch_bytes == 0));
        assert!(report
            .serve
            .batches
            .iter()
            .all(|b| b.network == NetworkId::PRIMARY));
    }

    #[test]
    fn a_foreign_network_request_never_fills_the_heads_batch() {
        let b = mixed_backend(1);
        // max_batch = 2, long wait: a v1 head plus a v2 arrival must NOT
        // dispatch as a "full" batch of two — the v2 request parks behind
        // the prefix and each network dispatches alone at its deadline.
        let reqs = mixed_requests(&b, &[0, 1], &[0, 0]);
        let pool = Pool::replicate(b, 1)
            .unwrap()
            .with_parallelism(Parallelism::serial());
        let report = Dispatcher::new(Policy::new(2, 5_000).unwrap(), DispatchPolicy::RoundRobin)
            .serve(&pool, reqs)
            .unwrap();
        assert_eq!(report.serve.batches.len(), 2);
        assert!(report.serve.batches.iter().all(|b| b.size == 1));
        // Neither batch dispatched before the head's deadline.
        assert_eq!(report.serve.batches[0].dispatched, 5_000);
    }

    #[test]
    fn mixed_serving_is_bit_identical_across_thread_counts() {
        // The oracle-mode event loop must reproduce the serial mixed-model
        // schedule exactly: same batches, same networks, same switch
        // traffic, same outputs.
        let serve = |threads: usize| -> PoolReport {
            let b = mixed_backend(threads);
            let reqs = mixed_requests(&b, &[0, 1, 0, 1, 1, 0, 0, 1], &arrivals::uniform(8, 1_000));
            let pool = Pool::replicate(b, 2)
                .unwrap()
                .with_parallelism(Parallelism::new(threads).unwrap());
            Dispatcher::new(Policy::new(2, 2_000).unwrap(), DispatchPolicy::LeastLoaded)
                .serve(&pool, reqs)
                .unwrap()
        };
        let serial = serve(1);
        let parallel = serve(4);
        assert_eq!(serial.serve.responses, parallel.serve.responses);
        assert_eq!(serial.serve.batches, parallel.serve.batches);
        assert_eq!(serial.assignments, parallel.assignments);
        assert_eq!(serial.workers, parallel.workers);
        // The mixed stream actually exercised both models and a switch.
        assert!(serial
            .serve
            .batches
            .iter()
            .any(|b| b.network == NetworkId(1)));
        assert!(serial.serve.switch_bytes_total() > 0);
    }

    #[test]
    fn unknown_network_id_is_rejected_naming_request_and_network() {
        let b = mixed_backend(1);
        let (d, h, w) = b.input_shape();
        let reqs = vec![Request::for_network(
            7,
            0,
            NetworkId(9),
            Tensor3::<i8>::zeros(d, h, w),
        )];
        let pool = Pool::replicate(b, 1).unwrap();
        let err = Dispatcher::new(Policy::new(1, 0).unwrap(), DispatchPolicy::RoundRobin)
            .serve(&pool, reqs)
            .unwrap_err();
        match err {
            CoreError::InvalidRequest { detail } => {
                assert!(detail.contains("request 7"), "{detail}");
                assert!(detail.contains("net9"), "{detail}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_yields_empty_pool_report() {
        let b = analytic();
        let pool = Pool::replicate(b, 2).unwrap();
        let report = Dispatcher::new(Policy::new(4, 0).unwrap(), DispatchPolicy::LeastLoaded)
            .serve(&pool, Vec::new())
            .unwrap();
        assert!(report.serve.responses.is_empty());
        assert_eq!(report.utilization_range(), (0.0, 0.0));
        assert_eq!(report.mean_utilization(), 0.0);
        assert_eq!(report.max_queue_depth(), 0);
        for w in &report.workers {
            assert_eq!(w.mean_queue_depth, 0.0);
        }
    }
}
