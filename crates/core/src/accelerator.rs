//! The functional accelerator simulator.
//!
//! [`Edea::run_layer`] executes one quantized DSC layer exactly as the
//! silicon would: portion by portion, channel pass by channel pass, tile by
//! tile through the DWC engine, Non-Conv unit, intermediate buffer, PWC
//! engine and psum SRAM — counting every buffer and external-memory access
//! on the way. Its outputs are **bit-exact** with `edea-nn`'s golden
//! executor (checked in tests and again in the integration suite), and its
//! cycle accounting is cross-checked against the analytic model of
//! [`crate::timing`].

use edea_nn::quantize::{QuantizedDscLayer, QuantizedDscNetwork};
use edea_tensor::{Tensor3, Tensor4};

use crate::buffer::BufferSet;
use crate::config::EdeaConfig;
use crate::engine::{DwcEngine, EngineActivity, PwcEngine};
use crate::nonconv::NonConvUnit;
use crate::schedule::{portions, spatial_tiles};
use crate::stats::{BufferTraffic, LayerStats, NetworkStats};
use crate::timing;
use crate::CoreError;

/// Result of running one layer.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// The int8 layer output (after the output-side Non-Conv).
    pub output: Tensor3<i8>,
    /// The reconstructed intermediate map (PWC input) — never leaves the
    /// chip in hardware; exposed for verification.
    pub pwc_input: Tensor3<i8>,
    /// Execution statistics.
    pub stats: LayerStats,
}

/// Result of running a full network.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Final feature map.
    pub output: Tensor3<i8>,
    /// Per-layer statistics.
    pub stats: NetworkStats,
}

/// The EDEA accelerator.
#[derive(Debug, Clone)]
pub struct Edea {
    cfg: EdeaConfig,
    dwc: DwcEngine,
    pwc: PwcEngine,
    nonconv: NonConvUnit,
}

impl Edea {
    /// Builds an accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid; use [`Edea::try_new`] for a fallible
    /// constructor.
    #[must_use]
    pub fn new(cfg: EdeaConfig) -> Self {
        Self::try_new(cfg).expect("invalid EDEA configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] from [`EdeaConfig::validate`].
    pub fn try_new(cfg: EdeaConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let dwc = DwcEngine::new(&cfg);
        let pwc = PwcEngine::new(&cfg);
        let nonconv = NonConvUnit::new(&cfg);
        Ok(Self {
            cfg,
            dwc,
            pwc,
            nonconv,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EdeaConfig {
        &self.cfg
    }

    fn check_layer(&self, layer: &QuantizedDscLayer, input: &Tensor3<i8>) -> Result<(), CoreError> {
        let s = layer.shape();
        let t = &self.cfg.tile;
        if input.shape() != (s.d_in, s.in_spatial, s.in_spatial) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer {} expects input ({}, {}, {}), got {:?}",
                    s.index,
                    s.d_in,
                    s.in_spatial,
                    s.in_spatial,
                    input.shape()
                ),
            });
        }
        if s.d_in % t.td != 0 {
            return Err(CoreError::UnsupportedShape {
                detail: format!("d_in {} not a multiple of Td {}", s.d_in, t.td),
            });
        }
        if s.k_out % t.tk != 0 {
            return Err(CoreError::UnsupportedShape {
                detail: format!("k_out {} not a multiple of Tk {}", s.k_out, t.tk),
            });
        }
        if s.out_spatial() % t.tn != 0 {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "output size {} not a multiple of Tn {}",
                    s.out_spatial(),
                    t.tn
                ),
            });
        }
        if s.kernel != t.kernel {
            return Err(CoreError::UnsupportedShape {
                detail: format!("kernel {} != engine kernel {}", s.kernel, t.kernel),
            });
        }
        Ok(())
    }

    /// Runs one quantized DSC layer.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if the layer does not map onto the
    /// engine geometry (channels/kernels must be multiples of `Td`/`Tk`,
    /// output size a multiple of `Tn`); [`CoreError::BufferOverflow`] if a
    /// buffer capacity would be exceeded.
    pub fn run_layer(
        &self,
        layer: &QuantizedDscLayer,
        input: &Tensor3<i8>,
    ) -> Result<LayerRun, CoreError> {
        self.check_layer(layer, input)?;
        let s = layer.shape();
        let t = self.cfg.tile;
        let (td, tk, tn, tm) = (t.td, t.tk, t.tn, t.tm);
        let out = s.out_spatial();
        let pad = s.pad();
        let padded = input.zero_padded(pad);
        let channel_passes = s.d_in / td;
        let kernel_tiles = s.k_out / tk;

        let mut buffers = BufferSet::new(&self.cfg);
        // Layer-setup transfers (once per layer): all DWC weights, both
        // Non-Conv parameter sets.
        let dwc_weight_bytes = s.kernel * s.kernel * s.d_in;
        buffers.external.read(dwc_weight_bytes);
        buffers.dwc_weight.fill(dwc_weight_bytes)?;
        let offline_bytes = 6 * (s.d_in + s.k_out); // 2×24-bit words per channel
        buffers.external.read(offline_bytes);
        buffers.offline.fill(offline_bytes)?;

        // Pre-slice weights per channel pass / kernel tile.
        // Depthwise weights are (D, 1, K, K): the per-pass slice selects Td
        // *kernels* (one per channel).
        let dw_slices: Vec<Tensor4<i8>> = (0..channel_passes)
            .map(|ct| layer.dw_weights().values().kernel_slice(ct * td, td))
            .collect();
        let pw_slices: Vec<Vec<Tensor4<i8>>> = (0..channel_passes)
            .map(|ct| {
                let chan = layer.pw_weights().values().channel_slice(ct * td, td);
                (0..kernel_tiles)
                    .map(|kt| chan.kernel_slice(kt * tk, tk))
                    .collect()
            })
            .collect();

        let mut mid_map = Tensor3::<i8>::zeros(s.d_in, out, out);
        let mut out_map = Tensor3::<i8>::zeros(s.k_out, out, out);
        let mut dwc_activity = EngineActivity::default();
        let mut pwc_activity = EngineActivity::default();
        let mut nonconv_ops = 0u64;
        let mut dwc_invocations = 0u64;
        let mut pwc_invocations = 0u64;

        let tr = (tn - 1) * s.stride + s.kernel;
        let tc = (tm - 1) * s.stride + s.kernel;

        for portion in portions(out, self.cfg.portion_limit) {
            // Per-portion psum SRAM residency (write traffic is counted per
            // PWC invocation below).
            let psum_bytes = portion.pixels() * s.k_out * 4;
            buffers.psum.reserve(psum_bytes)?;
            let mut psum = Tensor3::<i32>::zeros(s.k_out, portion.rows, portion.cols);
            let tiles = spatial_tiles(&portion, &self.cfg);

            for ct in 0..channel_passes {
                // Initiation: load the portion's ifmap slice for this
                // channel window (with halo), the weight slice registers and
                // the offline parameters.
                let (_, _, rows, cols) =
                    portion.input_region(s.stride, s.kernel, pad, s.in_spatial);
                let slice_bytes = rows * cols * td;
                buffers.external.read(slice_bytes);
                buffers.ifmap.fill(slice_bytes)?;
                buffers.dwc_weight.read(s.kernel * s.kernel * td);
                buffers.offline.read(6 * td);
                // PWC weight slice for this channel window × all kernels.
                let pw_bytes = td * s.k_out;
                buffers.external.read(pw_bytes);
                buffers.pwc_weight.fill(pw_bytes)?;

                for st in &tiles {
                    // DWC: one engine cycle.
                    let window = Tensor3::from_fn(td, tr, tc, |c, h, w| {
                        padded[(ct * td + c, st.row0 * s.stride + h, st.col0 * s.stride + w)]
                    });
                    buffers.ifmap.read(tr * tc * td);
                    let dwc_out = self.dwc.compute_tile(&window, &dw_slices[ct], s.stride)?;
                    dwc_activity.merge(&dwc_out.activity);
                    dwc_invocations += 1;

                    // Non-Conv: fold to int8 and stream to the intermediate
                    // buffer (direct data transfer — no external round trip).
                    let (mid_tile, nc) = self
                        .nonconv
                        .apply_tile(&dwc_out.acc, &layer.nonconv1()[ct * td..])?;
                    nonconv_ops += nc.ops;
                    buffers.intermediate.fill(tn * tm * td)?;
                    for c in 0..td {
                        for n in 0..tn {
                            for m in 0..tm {
                                mid_map[(ct * td + c, st.row0 + n, st.col0 + m)] =
                                    mid_tile[(c, n, m)];
                            }
                        }
                    }

                    // PWC: one engine cycle per kernel tile, accumulating
                    // into the psum SRAM.
                    for kt in 0..kernel_tiles {
                        buffers.intermediate.read(tn * tm * td);
                        buffers.pwc_weight.read(td * tk);
                        let p = self.pwc.compute_tile(&mid_tile, &pw_slices[ct][kt])?;
                        pwc_activity.merge(&p.activity);
                        pwc_invocations += 1;
                        // Read-modify-write: the first pass writes fresh
                        // values, later passes read the running sums first.
                        if ct > 0 {
                            buffers.psum.read(tk * tn * tm * 4);
                        }
                        for k in 0..tk {
                            for n in 0..tn {
                                for m in 0..tm {
                                    psum[(
                                        kt * tk + k,
                                        st.row0 - portion.row0 + n,
                                        st.col0 - portion.col0 + m,
                                    )] += p.partial[(k, n, m)];
                                }
                            }
                        }
                    }
                }
            }

            // Drain: output-side Non-Conv and external write-back
            // (overlapped with the next portion in hardware — no cycles).
            buffers.psum.read(psum_bytes);
            let (portion_out, nc) = self.nonconv.apply_tile(&psum, layer.nonconv2())?;
            nonconv_ops += nc.ops;
            for k in 0..s.k_out {
                for r in 0..portion.rows {
                    for c in 0..portion.cols {
                        out_map[(k, portion.row0 + r, portion.col0 + c)] = portion_out[(k, r, c)];
                    }
                }
            }
            buffers.external.write(portion.pixels() * s.k_out);
            buffers.psum.clear();
        }

        // psum write traffic: one word per PWC invocation.
        // (Recorded here in bulk — the loop above tracked reads.)
        let psum_write_bytes = pwc_invocations * (tk * tn * tm * 4) as u64;

        let breakdown = timing::layer_cycles(&s, &self.cfg);
        debug_assert_eq!(dwc_invocations, breakdown.dwc_busy, "DWC cycle accounting");
        debug_assert_eq!(pwc_invocations, breakdown.pwc_busy, "PWC cycle accounting");

        let zero_frac = |t: &Tensor3<i8>| {
            t.as_slice().iter().filter(|&&v| v == 0).count() as f64 / t.len() as f64
        };
        let stats = LayerStats {
            shape: s,
            breakdown,
            cycles: breakdown.total(),
            dwc_activity,
            pwc_activity,
            nonconv_ops,
            input_zero: zero_frac(input),
            mid_zero: zero_frac(&mid_map),
            out_zero: zero_frac(&out_map),
            external: BufferTraffic {
                reads: buffers.external.reads,
                writes: buffers.external.writes,
            },
            onchip: BufferTraffic {
                reads: buffers.onchip_reads(),
                writes: buffers.onchip_writes() + psum_write_bytes,
            },
            intermediate: BufferTraffic {
                reads: buffers.intermediate.reads(),
                writes: buffers.intermediate.writes(),
            },
            psum: BufferTraffic {
                reads: buffers.psum.reads(),
                writes: psum_write_bytes,
            },
        };
        Ok(LayerRun {
            output: out_map,
            pwc_input: mid_map,
            stats,
        })
    }

    /// Runs the whole quantized DSC stack.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer error.
    pub fn run_network(
        &self,
        net: &QuantizedDscNetwork,
        input: &Tensor3<i8>,
    ) -> Result<NetworkRun, CoreError> {
        let mut x = input.clone();
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let run = self.run_layer(layer, &x)?;
            x = run.output;
            layers.push(run.stats);
        }
        Ok(NetworkRun {
            output: x,
            stats: NetworkStats { layers },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::executor;
    use edea_nn::mobilenet::MobileNetV1;
    use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
    use edea_nn::sparsity::SparsityProfile;
    use edea_tensor::rng;

    fn setup() -> (MobileNetV1, QuantizedDscNetwork, Tensor3<i8>) {
        let mut model = MobileNetV1::synthetic(0.25, 31);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        (model, qnet, input)
    }

    #[test]
    fn layer_is_bit_exact_with_golden_executor() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_layer(&qnet.layers()[0], &input).unwrap();
        let golden = executor::run_layer(&qnet.layers()[0], &input);
        assert_eq!(run.pwc_input, golden.pwc_input, "intermediate map differs");
        assert_eq!(run.output, golden.output, "output map differs");
    }

    #[test]
    fn network_is_bit_exact_with_golden_executor() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_network(&qnet, &input).unwrap();
        let golden = executor::run_network(&qnet, &input);
        assert_eq!(run.output, golden.output);
        // Zero statistics agree too.
        for (a, b) in run.stats.layers.iter().zip(&golden.activities) {
            assert!((a.mid_zero - b.dwc_out_zero).abs() < 1e-12);
            assert!((a.out_zero - b.pwc_out_zero).abs() < 1e-12);
        }
    }

    #[test]
    fn cycle_counts_match_analytic_model() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            let analytic = timing::layer_cycles(&stats.shape, edea.config());
            assert_eq!(
                stats.cycles,
                analytic.total(),
                "layer {}",
                stats.shape.index
            );
        }
    }

    #[test]
    fn mac_counts_match_workload() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            assert_eq!(stats.dwc_activity.mac_slots, stats.shape.dwc_macs());
            assert_eq!(stats.pwc_activity.mac_slots, stats.shape.pwc_macs());
        }
    }

    #[test]
    fn intermediate_traffic_replaces_external_roundtrip() {
        // The direct transfer: intermediate-buffer writes equal the
        // intermediate map size × channel passes … and none of it appears
        // as external traffic beyond input/weights/output.
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let l0 = &qnet.layers()[0];
        let run = edea.run_layer(l0, &input).unwrap();
        let s = l0.shape();
        let inter_elems = s.intermediate_elems();
        assert_eq!(run.stats.intermediate.writes, inter_elems);
        // Each intermediate byte is read once per kernel tile:
        assert_eq!(
            run.stats.intermediate.reads,
            inter_elems * (s.k_out / 16) as u64
        );
        // External writes are exactly the ofmap (nothing intermediate):
        assert_eq!(run.stats.external.writes, s.ofmap_elems());
    }

    #[test]
    fn rejects_mismatched_input() {
        let (_, qnet, _) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let bad = Tensor3::<i8>::zeros(3, 32, 32);
        assert!(matches!(
            edea.run_layer(&qnet.layers()[0], &bad),
            Err(CoreError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn synthetic_stats_match_simulated_traffic() {
        // The analytic stats constructor must reproduce the simulator's
        // accounting exactly (cycles, MAC slots, every traffic category).
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            let synth = crate::stats::synthetic_layer_stats(
                &stats.shape,
                edea.config(),
                stats.input_zero,
                stats.mid_zero,
                stats.out_zero,
            );
            assert_eq!(stats.cycles, synth.cycles, "layer {}", stats.shape.index);
            assert_eq!(
                stats.external, synth.external,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.onchip, synth.onchip, "layer {}", stats.shape.index);
            assert_eq!(
                stats.intermediate, synth.intermediate,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.psum, synth.psum, "layer {}", stats.shape.index);
            assert_eq!(
                stats.nonconv_ops, synth.nonconv_ops,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(
                stats.dwc_activity.mac_slots, synth.dwc_activity.mac_slots,
                "layer {}",
                stats.shape.index
            );
        }
    }

    #[test]
    fn utilization_is_full_when_engines_fire() {
        // "100% PE utilization": every DWC invocation uses all 288 slots,
        // every PWC invocation all 512.
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper());
        let run = edea.run_layer(&qnet.layers()[0], &input).unwrap();
        let b = &run.stats.breakdown;
        assert_eq!(run.stats.dwc_activity.mac_slots, b.dwc_busy * 288);
        assert_eq!(run.stats.pwc_activity.mac_slots, b.pwc_busy * 512);
    }
}
