//! The functional accelerator simulator.
//!
//! [`Edea::run_layer`] executes one quantized DSC layer exactly as the
//! silicon would: portion by portion, channel pass by channel pass, tile by
//! tile through the DWC engine, Non-Conv unit, intermediate buffer, PWC
//! engine and psum SRAM — counting every buffer and external-memory access
//! on the way. Its outputs are **bit-exact** with `edea-nn`'s golden
//! executor (checked in tests and again in the integration suite), and its
//! cycle accounting is cross-checked against the analytic model of
//! [`crate::timing`].
//!
//! [`Edea::run_batch`] runs a whole batch of images through the batched
//! loop nest of [`crate::schedule`]: weight tiles are fetched from
//! external memory once per batch instead of once per image, so the
//! external weight traffic per image falls as `1/N` while outputs stay
//! bit-identical to the per-image path.

use edea_nn::quantize::{QuantizedDscLayer, QuantizedDscNetwork};
use edea_nn::workload::StageOp;
use edea_tensor::{Batch, Tensor3};

use crate::buffer::BufferSet;
use crate::config::EdeaConfig;
use crate::engine::{DwcEngine, EngineActivity, PwcEngine};
use crate::nonconv::NonConvUnit;
use crate::par::{self, Parallelism};
use crate::plan::{LayerPlan, NetworkPlan};
use crate::schedule::{portions, spatial_tiles, Portion, WeightResidency};
use crate::scratch::TileScratch;
use crate::stats::{BatchLayerStats, BatchNetworkStats, BufferTraffic, LayerStats, NetworkStats};
use crate::timing;
use crate::CoreError;

/// Result of running one layer.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// The int8 layer output (after the output-side Non-Conv).
    pub output: Tensor3<i8>,
    /// The reconstructed intermediate map (PWC input) — never leaves the
    /// chip in hardware; exposed for verification.
    pub pwc_input: Tensor3<i8>,
    /// Execution statistics.
    pub stats: LayerStats,
}

/// Result of running a full network.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Final feature map.
    pub output: Tensor3<i8>,
    /// Per-layer statistics.
    pub stats: NetworkStats,
}

/// Result of running one layer over a batch.
#[derive(Debug, Clone)]
pub struct BatchLayerRun {
    /// Per-image int8 layer outputs, in batch order.
    pub outputs: Vec<Tensor3<i8>>,
    /// Per-image intermediate maps (PWC inputs), for verification.
    pub pwc_inputs: Vec<Tensor3<i8>>,
    /// Whole-batch execution statistics.
    pub stats: BatchLayerStats,
}

/// Result of running a full network over a batch.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Final feature maps, one per image.
    pub outputs: Batch<i8>,
    /// Per-layer whole-batch statistics.
    pub stats: BatchNetworkStats,
}

/// Splits the flat `(portion, image)` slot array into disjoint per-lane
/// `&mut` slices: lane `i` owns the slots of its portion range
/// `ranges[i]`, scaled by `per` slots per portion. The borrow checker then
/// enforces the one-writer-per-slot rule of [`crate::par`] at compile
/// time.
fn split_slots<'a, T>(
    mut slots: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
    per: usize,
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    for range in ranges {
        let (head, tail) = slots.split_at_mut(range.len() * per);
        out.push(head);
        slots = tail;
    }
    out
}

/// Per-portion activity counters, accumulated lane-locally by the portion
/// loop and merged in lane order afterwards. Every field is an exact
/// (`u64` or counter-struct) sum, so the fixed-order merge reproduces the
/// serial totals bit for bit.
#[derive(Debug, Default)]
struct PortionTally {
    dwc_activity: EngineActivity,
    pwc_activity: EngineActivity,
    nonconv_ops: u64,
    dwc_invocations: u64,
    pwc_invocations: u64,
}

impl PortionTally {
    fn merge(&mut self, other: &Self) {
        self.dwc_activity.merge(&other.dwc_activity);
        self.pwc_activity.merge(&other.pwc_activity);
        self.nonconv_ops += other.nonconv_ops;
        self.dwc_invocations += other.dwc_invocations;
        self.pwc_invocations += other.pwc_invocations;
    }
}

/// The EDEA accelerator.
#[derive(Debug, Clone)]
pub struct Edea {
    cfg: EdeaConfig,
    dwc: DwcEngine,
    pwc: PwcEngine,
    nonconv: NonConvUnit,
    par: Parallelism,
    /// The repair message from a malformed `EDEA_THREADS`, if construction
    /// had to fall back to serial (see [`Parallelism::from_env_checked`]).
    par_warning: Option<String>,
}

impl Edea {
    /// Builds an accelerator, validating the configuration.
    ///
    /// Host parallelism defaults to [`Parallelism::from_env`]
    /// (`EDEA_THREADS`, else serial); override with
    /// [`Edea::with_parallelism`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] from [`EdeaConfig::validate`].
    pub fn new(cfg: EdeaConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let dwc = DwcEngine::new(&cfg);
        let pwc = PwcEngine::new(&cfg);
        let nonconv = NonConvUnit::new(&cfg);
        let (par, par_warning) = Parallelism::from_env_checked();
        if let Some(w) = &par_warning {
            Parallelism::warn_env_once(w);
        }
        Ok(Self {
            cfg,
            dwc,
            pwc,
            nonconv,
            par,
            par_warning,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EdeaConfig {
        &self.cfg
    }

    /// The host-parallelism knob for the per-portion tile loop.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The warning raised if `EDEA_THREADS` was set but unusable when this
    /// accelerator was built (the knob then silently meant "serial" — this
    /// is how a harness notices). `None` when the variable was unset,
    /// valid, or the parallelism was set explicitly.
    #[must_use]
    pub fn parallelism_warning(&self) -> Option<&str> {
        self.par_warning.as_deref()
    }

    /// Sets the host thread count for the per-portion tile loop. This is a
    /// host-simulation knob, not an architecture parameter: any setting
    /// produces bit-identical outputs, statistics and traffic counters
    /// (see [`crate::par`] for the contract).
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.set_parallelism(par);
        self
    }

    /// In-place variant of [`Edea::with_parallelism`].
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
        // An explicit setting supersedes whatever the environment said.
        self.par_warning = None;
    }

    fn check_layer(&self, layer: &QuantizedDscLayer, input: &Tensor3<i8>) -> Result<(), CoreError> {
        let s = layer.shape();
        if input.shape() != (s.d_in, s.in_spatial, s.in_spatial) {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer {} expects input ({}, {}, {}), got {:?}",
                    s.index,
                    s.d_in,
                    s.in_spatial,
                    s.in_spatial,
                    input.shape()
                ),
            });
        }
        crate::schedule::check_layer_geometry(&s, &self.cfg)
    }

    /// Builds the pre-sliced weight plan of a whole network on this
    /// accelerator's tile geometry — the cache a long-lived session builds
    /// once so repeated requests stop re-slicing weights (see
    /// [`Edea::run_batch_planned`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if any layer does not map onto the
    /// engine geometry.
    pub fn plan_network(&self, net: &QuantizedDscNetwork) -> Result<NetworkPlan, CoreError> {
        NetworkPlan::new(net, &self.cfg)
    }

    /// Runs the plan-time race audit ([`crate::plan::audit`]) over every
    /// layer of `plan` for a batch of `batch` in-flight images: write-set
    /// disjointness across lanes, exact ofmap coverage, the per-lane slot
    /// partition and all buffer-capacity bounds, at this accelerator's
    /// [`Edea::parallelism`]. A long-lived deployment calls this once up
    /// front; debug builds additionally re-prove the same facts inside
    /// every layer execution.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the offending
    /// `(layer, portion, lane)` triple on a race or coverage violation;
    /// [`CoreError::BufferOverflow`] naming the buffer on a capacity
    /// violation.
    pub fn audit_plan(
        &self,
        plan: &NetworkPlan,
        batch: usize,
    ) -> Result<Vec<crate::plan::audit::LayerAudit>, CoreError> {
        plan.layers()
            .iter()
            .map(|lp| crate::plan::audit::audit_layer(lp.shape(), &self.cfg, self.par, batch))
            .collect()
    }

    /// Runs one quantized DSC layer.
    ///
    /// Thin wrapper over the planned path: slices the layer's weights into
    /// a throwaway [`LayerPlan`] and runs with a fresh [`TileScratch`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if the layer does not map onto the
    /// engine geometry (channels/kernels must be multiples of `Td`/`Tk`,
    /// output size a multiple of `Tn`); [`CoreError::BufferOverflow`] if a
    /// buffer capacity would be exceeded.
    pub fn run_layer(
        &self,
        layer: &QuantizedDscLayer,
        input: &Tensor3<i8>,
    ) -> Result<LayerRun, CoreError> {
        let plan = LayerPlan::new(layer, &self.cfg)?;
        let mut scratch = TileScratch::new();
        let mut run = self.execute_layer(
            layer,
            &plan,
            std::slice::from_ref(input),
            None,
            WeightResidency::PerImage,
            &mut scratch,
        )?;
        Ok(LayerRun {
            // edea-lint: allow(panic-in-lib): from_ref put exactly one image in
            output: run.outputs.pop().expect("one image in, one image out"),
            // edea-lint: allow(panic-in-lib): from_ref put exactly one image in
            pwc_input: run.pwc_inputs.pop().expect("one image in, one image out"),
            stats: run.stats.into_layer_stats(),
        })
    }

    /// Runs one quantized DSC layer over a batch of images with weight
    /// tiles held resident across the batch (the batched loop nest of
    /// [`crate::schedule`]): external weight and offline-parameter fetches
    /// are paid once, ifmap reads and ofmap writes once per image, and the
    /// psum SRAM holds one residency per in-flight image.
    ///
    /// Per-image outputs are **bit-identical** to [`Edea::run_layer`] —
    /// batching changes when weights are fetched, never what is computed.
    ///
    /// # Errors
    ///
    /// As [`Edea::run_layer`], checked per image; additionally
    /// [`CoreError::BufferOverflow`] if the `batch×`-provisioned psum SRAM
    /// cannot hold every in-flight image's portion psums.
    pub fn run_layer_batch(
        &self,
        layer: &QuantizedDscLayer,
        inputs: &[Tensor3<i8>],
    ) -> Result<BatchLayerRun, CoreError> {
        let plan = LayerPlan::new(layer, &self.cfg)?;
        let mut scratch = TileScratch::new();
        self.execute_layer(
            layer,
            &plan,
            inputs,
            None,
            WeightResidency::PerBatch,
            &mut scratch,
        )
    }

    /// Runs one layer through a caller-held [`LayerPlan`] and
    /// [`TileScratch`] — the zero-setup-cost variant the planned network
    /// runs and the allocation-regression tests use. Outputs are
    /// bit-identical to [`Edea::run_layer_batch`] (and, per image, to
    /// [`Edea::run_layer`] under [`WeightResidency::PerImage`]).
    ///
    /// # Errors
    ///
    /// As [`Edea::run_layer_batch`]; additionally
    /// [`CoreError::UnsupportedShape`] if `plan` was built for a different
    /// layer.
    pub fn run_layer_planned(
        &self,
        layer: &QuantizedDscLayer,
        plan: &LayerPlan,
        inputs: &[Tensor3<i8>],
        residency: WeightResidency,
        scratch: &mut TileScratch,
    ) -> Result<BatchLayerRun, CoreError> {
        plan.check_layer(layer)?;
        self.execute_layer(layer, plan, inputs, None, residency, scratch)
    }

    /// One portion of the layer schedule: psum residency, the channel-pass
    /// × image × tile loop, and the drain — writing **portion-local**
    /// intermediate (`mids`) and output (`outs`) maps (one slot per image)
    /// and counting traffic into the caller's `buffers`/`tally`.
    ///
    /// This is the unit the parallel portion loop distributes across
    /// lanes: a portion touches only its own output rectangle, its lane's
    /// scratch and its lane's counters, so any static partition of
    /// portions is race-free by construction, and every count it produces
    /// is a pure function of the portion alone (identical in any lane).
    #[allow(clippy::too_many_arguments)]
    fn run_portion(
        &self,
        layer: &QuantizedDscLayer,
        plan: &LayerPlan,
        padded: &[Tensor3<i8>],
        residuals: Option<&[Tensor3<i8>]>,
        residency: WeightResidency,
        portion: &Portion,
        buffers: &mut BufferSet,
        scratch: &mut TileScratch,
        mids: &mut [Tensor3<i8>],
        outs: &mut [Tensor3<i8>],
        tally: &mut PortionTally,
    ) -> Result<(), CoreError> {
        let s = layer.shape();
        let t = self.cfg.tile;
        let (td, tk, tn, tm) = (t.td, t.tk, t.tn, t.tm);
        let pad = s.pad();
        let n_images = padded.len();
        let channel_passes = s.d_in / td;
        let kernel_tiles = s.k_out / tk;
        let tr = (tn - 1) * s.stride + s.kernel;
        let tc = (tm - 1) * s.stride + s.kernel;

        // Per-portion psum SRAM residency, one bank per in-flight image
        // (write traffic is counted per PWC invocation below).
        let psum_bytes = portion.pixels() * s.k_out * 4;
        buffers.psum.reserve(n_images * psum_bytes)?;
        for psum in scratch.psums.iter_mut().take(n_images) {
            psum.resize_zeroed(s.k_out, portion.rows, portion.cols);
        }
        for mid in mids.iter_mut() {
            mid.resize_zeroed(s.d_in, portion.rows, portion.cols);
        }
        let tiles = spatial_tiles(portion, &self.cfg);
        let (_, _, rows, cols) = portion.input_region(s.stride, s.kernel, pad, s.in_spatial);
        let slice_bytes = rows * cols * td;
        let pw_bytes = td * s.k_out;

        for ct in 0..channel_passes {
            // Weight-side initiation: the weight-slice registers, the
            // offline parameters and the PWC weight slice for this
            // channel window × all kernels. With resident weights this
            // happens once and serves every image of the batch. A PwcOnly
            // stage has no DWC weights and no DWC-side Non-Conv
            // parameters, so only the PWC slice moves.
            let load_weight_slices = |buffers: &mut BufferSet| -> Result<(), CoreError> {
                if s.op == StageOp::Dsc {
                    buffers.dwc_weight.read(s.kernel * s.kernel * td);
                    buffers.offline.read(6 * td);
                }
                buffers.external.read_weights(pw_bytes);
                buffers.pwc_weight.fill(pw_bytes)
            };
            if residency == WeightResidency::PerBatch {
                load_weight_slices(buffers)?;
            }

            for (img, padded_img) in padded.iter().enumerate() {
                if residency == WeightResidency::PerImage {
                    load_weight_slices(buffers)?;
                }
                // Ifmap-side initiation: this image's slice for the
                // portion's channel window (with halo) — inherently
                // per-image.
                buffers.external.read_ifmap(slice_bytes);
                buffers.ifmap.fill(slice_bytes)?;

                for st in &tiles {
                    // Window extraction into the scratch buffer with flat
                    // row copies (for a 1×1 stride-1 PwcOnly stage the
                    // window *is* the `(Td, Tn, Tm)` input tile).
                    padded_img.copy_window_into(
                        ct * td,
                        st.row0 * s.stride,
                        st.col0 * s.stride,
                        &mut scratch.window,
                    );
                    buffers.ifmap.read(tr * tc * td);
                    let mid_tile: &Tensor3<i8> = match s.op {
                        StageOp::Dsc => {
                            // DWC: one engine cycle.
                            let act = self.dwc.compute_tile_into(
                                &scratch.window,
                                plan.dw_slice(ct),
                                s.stride,
                                &mut scratch.dwc_acc,
                            )?;
                            tally.dwc_activity.merge(&act);
                            tally.dwc_invocations += 1;

                            // Non-Conv: fold to int8 and stream to the
                            // intermediate buffer (direct data transfer —
                            // no external round trip).
                            let nc = self.nonconv.apply_tile_into(
                                &scratch.dwc_acc,
                                &layer.nonconv1()[ct * td..],
                                &mut scratch.mid_tile,
                            )?;
                            tally.nonconv_ops += nc.ops;
                            buffers.intermediate.fill(tn * tm * td)?;
                            &scratch.mid_tile
                        }
                        // PwcOnly: the DWC engine, Non-Conv #1 and the
                        // intermediate buffer are bypassed — the PWC is
                        // fed straight from the ifmap buffer.
                        StageOp::PwcOnly => &scratch.window,
                    };
                    mids[img].paste_window(
                        ct * td,
                        st.row0 - portion.row0,
                        st.col0 - portion.col0,
                        mid_tile,
                    );

                    // PWC: one engine cycle per kernel tile,
                    // accumulating into this image's psum bank.
                    for kt in 0..kernel_tiles {
                        match s.op {
                            StageOp::Dsc => buffers.intermediate.read(tn * tm * td),
                            // The tile is re-read from the ifmap buffer
                            // once per kernel tile instead.
                            StageOp::PwcOnly => buffers.ifmap.read(tn * tm * td),
                        }
                        buffers.pwc_weight.read(td * tk);
                        let act = self.pwc.compute_tile_gated_into(
                            mid_tile,
                            plan.pw_slice(ct, kt),
                            plan.pw_occupancy(ct, kt),
                            &mut scratch.pwc_partial,
                        )?;
                        tally.pwc_activity.merge(&act);
                        tally.pwc_invocations += 1;
                        // Read-modify-write: the first pass writes fresh
                        // values, later passes read the running sums
                        // first.
                        if ct > 0 {
                            buffers.psum.read(tk * tn * tm * 4);
                        }
                        let psum = scratch.psums[img].as_mut_slice();
                        let part = scratch.pwc_partial.as_slice();
                        let r0 = st.row0 - portion.row0;
                        let c0 = st.col0 - portion.col0;
                        for k in 0..tk {
                            for n in 0..tn {
                                let dst =
                                    ((kt * tk + k) * portion.rows + r0 + n) * portion.cols + c0;
                                let src = (k * tn + n) * tm;
                                for m in 0..tm {
                                    psum[dst + m] += part[src + m];
                                }
                            }
                        }
                    }
                }
            }
        }

        // Drain: output-side Non-Conv and external write-back per image
        // (overlapped with the next portion in hardware — no cycles). The
        // clip floor is the layer's (0 for a folded ReLU, −128 for the
        // linear project of an inverted-residual block); a residual-add
        // stage streams the saved block input in from external memory and
        // sums it onto the Non-Conv bus at wide precision.
        let lo = layer.out_lo();
        for (img, (psum, out)) in scratch
            .psums
            .iter()
            .take(n_images)
            .zip(outs.iter_mut())
            .enumerate()
        {
            buffers.psum.read(psum_bytes);
            let nc = if let Some(res_imgs) = residuals {
                let r = layer
                    .residual_scale()
                    .ok_or_else(|| CoreError::UnsupportedShape {
                        detail: format!("layer {}: residual add without a residual scale", s.index),
                    })?;
                buffers.external.read_ifmap(portion.pixels() * s.k_out);
                scratch
                    .res_tile
                    .resize_zeroed(s.k_out, portion.rows, portion.cols);
                res_imgs[img].copy_window_into(
                    0,
                    portion.row0,
                    portion.col0,
                    &mut scratch.res_tile,
                );
                self.nonconv.apply_tile_residual_into(
                    psum,
                    layer.nonconv2(),
                    &scratch.res_tile,
                    r,
                    lo,
                    out,
                )?
            } else {
                self.nonconv
                    .apply_tile_into_clipped(psum, layer.nonconv2(), lo, out)?
            };
            tally.nonconv_ops += nc.ops;
            buffers.external.write(portion.pixels() * s.k_out);
        }
        buffers.psum.clear();
        Ok(())
    }

    /// The functional schedule, generalized over a batch of images and a
    /// weight-residency policy. `PerImage` reproduces the per-image
    /// baseline accounting exactly (every image re-fetches all weights);
    /// `PerBatch` fetches each weight tile once for the whole batch.
    ///
    /// The tile loop works entirely in `scratch`'s reusable buffers —
    /// reserved once up front, so the steady state performs zero heap
    /// allocations per tile (guarded by the allocation-regression test).
    ///
    /// With [`Edea::parallelism`] above one thread, portions are statically
    /// partitioned into contiguous lanes ([`par::chunk_ranges`]) and run
    /// concurrently: each lane owns a private [`TileScratch`], a private
    /// [`BufferSet`] for counting and its own portion-local output slots,
    /// then lanes are reduced **in lane order** (exact `u64` counter sums,
    /// first error in portion order) and the portion outputs pasted in
    /// portion order — bit-identical to the serial run by construction
    /// (see [`crate::par`]) and enforced by the `parallel_identity` suite.
    fn execute_layer(
        &self,
        layer: &QuantizedDscLayer,
        plan: &LayerPlan,
        inputs: &[Tensor3<i8>],
        residuals: Option<&[Tensor3<i8>]>,
        residency: WeightResidency,
        scratch: &mut TileScratch,
    ) -> Result<BatchLayerRun, CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::UnsupportedShape {
                detail: "batch must contain at least one image".into(),
            });
        }
        for input in inputs {
            self.check_layer(layer, input)?;
        }
        let s = layer.shape();
        if s.residual_add != residuals.is_some() {
            return Err(CoreError::UnsupportedShape {
                detail: format!(
                    "layer {}: residual_add={} but residual batch {}",
                    s.index,
                    s.residual_add,
                    if residuals.is_some() {
                        "provided"
                    } else {
                        "missing"
                    }
                ),
            });
        }
        if let Some(res) = residuals {
            if res.len() != inputs.len() {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: {} residual maps for {} images",
                        s.index,
                        res.len(),
                        inputs.len()
                    ),
                });
            }
            let out = s.out_spatial();
            for r in res {
                if r.shape() != (s.k_out, out, out) {
                    return Err(CoreError::UnsupportedShape {
                        detail: format!(
                            "layer {}: residual map {:?} does not match ofmap ({}, {out}, {out})",
                            s.index,
                            r.shape(),
                            s.k_out
                        ),
                    });
                }
            }
            if layer.residual_scale().is_none() {
                return Err(CoreError::UnsupportedShape {
                    detail: format!("layer {}: residual add without a residual scale", s.index),
                });
            }
        }
        let t = self.cfg.tile;
        let (tk, tn, tm) = (t.tk, t.tn, t.tm);
        let out = s.out_spatial();
        let pad = s.pad();
        let n_images = inputs.len();
        let padded: Vec<Tensor3<i8>> = inputs.iter().map(|i| i.zero_padded(pad)).collect();
        scratch.reserve(&s, &self.cfg, n_images);

        let mut buffers = BufferSet::for_batch(&self.cfg, n_images);
        // Layer-setup transfers: all DWC weights and the Non-Conv
        // parameter sets the stage actually uses — once per batch with
        // resident weights, once per image in the baseline. PwcOnly
        // stages have neither DWC weights nor a DWC-side parameter set.
        let weight_loads = match residency {
            WeightResidency::PerImage => n_images,
            WeightResidency::PerBatch => 1,
        };
        let dwc_weight_bytes = s.dwc_params() as usize;
        let offline_bytes = match s.op {
            StageOp::Dsc => 6 * (s.dwc_out_channels() + s.k_out), // 2×24-bit words per channel
            StageOp::PwcOnly => 6 * s.k_out,
        };
        for _ in 0..weight_loads {
            if dwc_weight_bytes > 0 {
                buffers.external.read_weights(dwc_weight_bytes);
                buffers.dwc_weight.fill(dwc_weight_bytes)?;
            }
            buffers.external.read_params(offline_bytes);
            buffers.offline.fill(offline_bytes)?;
        }

        let mut mid_maps: Vec<Tensor3<i8>> = (0..n_images)
            .map(|_| Tensor3::<i8>::zeros(s.d_in, out, out))
            .collect();
        let mut out_maps: Vec<Tensor3<i8>> = (0..n_images)
            .map(|_| Tensor3::<i8>::zeros(s.k_out, out, out))
            .collect();
        let mut tally = PortionTally::default();

        let ports = portions(out, self.cfg.portion_limit);
        let n_slots = ports.len() * n_images;
        scratch.reserve_portion_slots(&s, &self.cfg, n_slots);
        let lanes = self.par.threads().min(ports.len()).max(1);
        // Debug builds re-prove the determinism contract on the exact
        // portion list and lane count about to fork (release deployments
        // run the same proofs once up front via `Edea::audit_plan`).
        #[cfg(debug_assertions)]
        crate::plan::audit::audit_portions(&s, &self.cfg, &ports, lanes, n_images)?;

        // The slot vectors leave the scratch for the duration of the
        // portion loop so they can be split into disjoint per-lane `&mut`
        // slices; they are restored below on every path, success or error.
        let mut portion_mids = std::mem::take(&mut scratch.portion_mids);
        let mut portion_outs = std::mem::take(&mut scratch.portion_outs);

        let run_result = if lanes <= 1 {
            // Serial base case: one lane over all portions, main buffers,
            // the caller's scratch — the historical code path.
            let mut result = Ok(());
            for (p, portion) in ports.iter().enumerate() {
                let slots = p * n_images..(p + 1) * n_images;
                if let Err(e) = self.run_portion(
                    layer,
                    plan,
                    &padded,
                    residuals,
                    residency,
                    portion,
                    &mut buffers,
                    &mut *scratch,
                    &mut portion_mids[slots.clone()],
                    &mut portion_outs[slots],
                    &mut tally,
                ) {
                    result = Err(e);
                    break;
                }
            }
            result
        } else {
            // Parallel lanes: contiguous portion ranges, lane-private
            // scratches (lane 0 reuses the caller's), lane-private
            // counting buffers, disjoint output slots.
            scratch.ensure_lanes(lanes - 1, &s, &self.cfg, n_images);
            let mut lane_scratches = std::mem::take(&mut scratch.lanes);
            let ranges = par::chunk_ranges(ports.len(), lanes);
            let mid_slices = split_slots(&mut portion_mids[..n_slots], &ranges, n_images);
            let out_slices = split_slots(&mut portion_outs[..n_slots], &ranges, n_images);

            struct LaneCtx<'a> {
                scratch: &'a mut TileScratch,
                mids: &'a mut [Tensor3<i8>],
                outs: &'a mut [Tensor3<i8>],
                range: std::ops::Range<usize>,
            }
            let ctxs: Vec<LaneCtx<'_>> = std::iter::once(&mut *scratch)
                .chain(lane_scratches.iter_mut().take(lanes - 1))
                .zip(mid_slices)
                .zip(out_slices)
                .zip(ranges)
                .map(|(((scratch, mids), outs), range)| LaneCtx {
                    scratch,
                    mids,
                    outs,
                    range,
                })
                .collect();

            let lane_results = par::map_lanes(ctxs, |_, ctx| {
                let mut buffers = BufferSet::for_batch(&self.cfg, n_images);
                let mut tally = PortionTally::default();
                let mut result = Ok(());
                for (i, p) in ctx.range.clone().enumerate() {
                    let slots = i * n_images..(i + 1) * n_images;
                    if let Err(e) = self.run_portion(
                        layer,
                        plan,
                        &padded,
                        residuals,
                        residency,
                        &ports[p],
                        &mut buffers,
                        ctx.scratch,
                        &mut ctx.mids[slots.clone()],
                        &mut ctx.outs[slots],
                        &mut tally,
                    ) {
                        // Stop at this lane's first error; since lanes are
                        // contiguous, the first error across lanes in lane
                        // order is the serial run's first error.
                        result = Err(e);
                        break;
                    }
                }
                (buffers, tally, result)
            });
            scratch.lanes = lane_scratches;

            // Fixed-order reduction: lane order == portion order.
            let mut first_err = Ok(());
            for (lane_buffers, lane_tally, lane_result) in lane_results {
                buffers.absorb(&lane_buffers);
                tally.merge(&lane_tally);
                if first_err.is_ok() {
                    first_err = lane_result;
                }
            }
            first_err
        };

        if run_result.is_ok() {
            // Paste phase, serially in portion order: assemble the full
            // mid/out maps from the portion-local slots. Portions tile the
            // output map disjointly, so this is a pure scatter.
            for (p, portion) in ports.iter().enumerate() {
                for img in 0..n_images {
                    let slot = p * n_images + img;
                    mid_maps[img].paste_window(0, portion.row0, portion.col0, &portion_mids[slot]);
                    out_maps[img].paste_window(0, portion.row0, portion.col0, &portion_outs[slot]);
                }
            }
        }
        scratch.portion_mids = portion_mids;
        scratch.portion_outs = portion_outs;
        run_result?;

        // psum write traffic: one word per PWC invocation.
        // (Recorded here in bulk — the loop above tracked reads.)
        let psum_write_bytes = tally.pwc_invocations * (tk * tn * tm * 4) as u64;

        let breakdown = timing::layer_cycles(&s, &self.cfg);
        let nb = n_images as u64;
        debug_assert_eq!(
            tally.dwc_invocations,
            nb * breakdown.dwc_busy,
            "DWC cycle accounting"
        );
        debug_assert_eq!(
            tally.pwc_invocations,
            nb * breakdown.pwc_busy,
            "PWC cycle accounting"
        );

        let zero_frac = |t: &Tensor3<i8>| {
            t.as_slice().iter().filter(|&&v| v == 0).count() as f64 / t.len() as f64
        };
        let mean_zero =
            |ts: &[Tensor3<i8>]| ts.iter().map(zero_frac).sum::<f64>() / ts.len() as f64;
        let stats = BatchLayerStats {
            shape: s,
            batch: n_images,
            residency,
            breakdown,
            cycles: nb * breakdown.total(),
            dwc_activity: tally.dwc_activity,
            pwc_activity: tally.pwc_activity,
            nonconv_ops: tally.nonconv_ops,
            input_zero: mean_zero(inputs),
            mid_zero: mean_zero(&mid_maps),
            out_zero: mean_zero(&out_maps),
            external: buffers.external,
            onchip: BufferTraffic {
                reads: buffers.onchip_reads(),
                writes: buffers.onchip_writes() + psum_write_bytes,
            },
            intermediate: BufferTraffic {
                reads: buffers.intermediate.reads(),
                writes: buffers.intermediate.writes(),
            },
            psum: BufferTraffic {
                reads: buffers.psum.reads(),
                writes: psum_write_bytes,
            },
        };
        Ok(BatchLayerRun {
            outputs: out_maps,
            pwc_inputs: mid_maps,
            stats,
        })
    }

    /// Runs the whole quantized DSC stack.
    ///
    /// Thin wrapper over [`Edea::run_network_planned`] with a throwaway
    /// [`NetworkPlan`]; long-lived sessions should build the plan once with
    /// [`Edea::plan_network`] instead.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer error.
    pub fn run_network(
        &self,
        net: &QuantizedDscNetwork,
        input: &Tensor3<i8>,
    ) -> Result<NetworkRun, CoreError> {
        // The plan was just built from this very network — skip the
        // identity check (it would re-hash every weight byte).
        let plan = NetworkPlan::new(net, &self.cfg)?;
        let mut scratch = TileScratch::new();
        self.run_network_planned_unchecked(net, &plan, input, &mut scratch)
    }

    /// Runs the whole quantized DSC stack through a pre-built
    /// [`NetworkPlan`], threading one [`TileScratch`] through every layer.
    /// The input is borrowed, not copied: the first layer reads it in
    /// place, and each subsequent layer consumes the previous output by
    /// move. Bit-identical to [`Edea::run_network`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `plan` was built for a different
    /// network; otherwise the first per-layer error.
    pub fn run_network_planned(
        &self,
        net: &QuantizedDscNetwork,
        plan: &NetworkPlan,
        input: &Tensor3<i8>,
    ) -> Result<NetworkRun, CoreError> {
        plan.check_network(net)?;
        let mut scratch = TileScratch::new();
        self.run_network_planned_unchecked(net, plan, input, &mut scratch)
    }

    /// [`Edea::run_network_planned`] without the plan-identity check, for
    /// callers that constructed plan and network together (the wrappers,
    /// [`crate::serve::SimulatorBackend`]).
    pub(crate) fn run_network_planned_unchecked(
        &self,
        net: &QuantizedDscNetwork,
        plan: &NetworkPlan,
        input: &Tensor3<i8>,
        scratch: &mut TileScratch,
    ) -> Result<NetworkRun, CoreError> {
        debug_assert_eq!(plan.layers().len(), net.layers().len());
        let mut layers = Vec::with_capacity(net.layers().len());
        let mut x: Option<Tensor3<i8>> = None;
        // The saved int8 block input of an inverted-residual skip, held
        // between the `residual_save` stage and the `residual_add` stage
        // that consumes it (same order as the golden executor).
        let mut saved: Option<Tensor3<i8>> = None;
        for (layer, lp) in net.layers().iter().zip(plan.layers()) {
            let s = layer.shape();
            if s.residual_save {
                saved = Some(x.as_ref().unwrap_or(input).clone());
            }
            let residual = if s.residual_add {
                Some(saved.take().ok_or_else(|| CoreError::UnsupportedShape {
                    detail: format!("layer {}: residual add without a preceding save", s.index),
                })?)
            } else {
                None
            };
            let cur = x.as_ref().unwrap_or(input);
            let mut run = self.execute_layer(
                layer,
                lp,
                std::slice::from_ref(cur),
                residual.as_ref().map(std::slice::from_ref),
                WeightResidency::PerImage,
                &mut *scratch,
            )?;
            // edea-lint: allow(panic-in-lib): from_ref put exactly one image in
            x = Some(run.outputs.pop().expect("one image in, one image out"));
            layers.push(run.stats.into_layer_stats());
        }
        Ok(NetworkRun {
            output: x.unwrap_or_else(|| input.clone()),
            stats: NetworkStats { layers },
        })
    }

    /// Runs the whole quantized DSC stack over a batch of images, holding
    /// weight tiles resident across the batch at every layer.
    ///
    /// Per-image outputs are bit-identical to running each image through
    /// [`Edea::run_network`]; what changes is the external-memory traffic
    /// ([`BatchNetworkStats::weight_bytes_per_image`] falls as `1/N`) and
    /// the psum SRAM provisioning (`N` banks, see
    /// [`crate::buffer::BufferSet::for_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer error.
    pub fn run_batch(
        &self,
        net: &QuantizedDscNetwork,
        inputs: &Batch<i8>,
    ) -> Result<BatchRun, CoreError> {
        // The plan was just built from this very network — skip the
        // identity check (it would re-hash every weight byte).
        let plan = NetworkPlan::new(net, &self.cfg)?;
        let mut scratch = TileScratch::new();
        self.run_batch_planned_unchecked(net, &plan, inputs, &mut scratch)
    }

    /// Runs a whole batch through a pre-built [`NetworkPlan`] — the serving
    /// hot path: no weight re-slicing, one [`TileScratch`] threaded through
    /// every layer, and the input batch borrowed rather than deep-copied
    /// (the first layer reads the images in place; later layers consume
    /// the previous outputs by move). Bit-identical to [`Edea::run_batch`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedShape`] if `plan` was built for a different
    /// network; otherwise the first per-layer error.
    pub fn run_batch_planned(
        &self,
        net: &QuantizedDscNetwork,
        plan: &NetworkPlan,
        inputs: &Batch<i8>,
    ) -> Result<BatchRun, CoreError> {
        let mut scratch = TileScratch::new();
        self.run_batch_planned_with(net, plan, inputs, &mut scratch)
    }

    /// [`Edea::run_batch_planned`] with a caller-held [`TileScratch`], so
    /// a serving session can reuse one scratch across requests (see
    /// [`crate::serve::SimulatorBackend`]) instead of re-growing the
    /// buffers per dispatch.
    ///
    /// # Errors
    ///
    /// As [`Edea::run_batch_planned`].
    pub fn run_batch_planned_with(
        &self,
        net: &QuantizedDscNetwork,
        plan: &NetworkPlan,
        inputs: &Batch<i8>,
        scratch: &mut TileScratch,
    ) -> Result<BatchRun, CoreError> {
        plan.check_network(net)?;
        self.run_batch_planned_unchecked(net, plan, inputs, scratch)
    }

    /// [`Edea::run_batch_planned_with`] without the plan-identity check,
    /// for callers that constructed plan and network together (the
    /// wrappers, [`crate::serve::SimulatorBackend`]).
    pub(crate) fn run_batch_planned_unchecked(
        &self,
        net: &QuantizedDscNetwork,
        plan: &NetworkPlan,
        inputs: &Batch<i8>,
        scratch: &mut TileScratch,
    ) -> Result<BatchRun, CoreError> {
        debug_assert_eq!(plan.layers().len(), net.layers().len());
        let mut layers = Vec::with_capacity(net.layers().len());
        let mut xs: Option<Vec<Tensor3<i8>>> = None;
        // Per-image saved block inputs for inverted-residual skips (same
        // save-then-add order as the golden executor).
        let mut saved: Option<Vec<Tensor3<i8>>> = None;
        for (layer, lp) in net.layers().iter().zip(plan.layers()) {
            let s = layer.shape();
            if s.residual_save {
                saved = Some(xs.as_deref().unwrap_or(inputs.images()).to_vec());
            }
            let residual = if s.residual_add {
                Some(saved.take().ok_or_else(|| CoreError::UnsupportedShape {
                    detail: format!("layer {}: residual add without a preceding save", s.index),
                })?)
            } else {
                None
            };
            let cur: &[Tensor3<i8>] = xs.as_deref().unwrap_or(inputs.images());
            let run = self.execute_layer(
                layer,
                lp,
                cur,
                residual.as_deref(),
                WeightResidency::PerBatch,
                &mut *scratch,
            )?;
            xs = Some(run.outputs);
            layers.push(run.stats);
        }
        Ok(BatchRun {
            outputs: Batch::new(xs.unwrap_or_else(|| inputs.images().to_vec()))
                // edea-lint: allow(panic-in-lib): every output of one layer has the layer's shape
                .expect("uniform layer outputs"),
            stats: BatchNetworkStats {
                batch: inputs.len(),
                layers,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::executor;
    use edea_nn::mobilenet::MobileNetV1;
    use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
    use edea_nn::sparsity::SparsityProfile;
    use edea_tensor::rng;

    fn setup() -> (MobileNetV1, QuantizedDscNetwork, Tensor3<i8>) {
        let mut model = MobileNetV1::synthetic(0.25, 31);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        (model, qnet, input)
    }

    #[test]
    fn layer_is_bit_exact_with_golden_executor() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_layer(&qnet.layers()[0], &input).unwrap();
        let golden = executor::run_layer(&qnet.layers()[0], &input);
        assert_eq!(run.pwc_input, golden.pwc_input, "intermediate map differs");
        assert_eq!(run.output, golden.output, "output map differs");
    }

    #[test]
    fn network_is_bit_exact_with_golden_executor() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        let golden = executor::run_network(&qnet, &input);
        assert_eq!(run.output, golden.output);
        // Zero statistics agree too.
        for (a, b) in run.stats.layers.iter().zip(&golden.activities) {
            assert!((a.mid_zero - b.dwc_out_zero).abs() < 1e-12);
            assert!((a.out_zero - b.pwc_out_zero).abs() < 1e-12);
        }
    }

    #[test]
    fn cycle_counts_match_analytic_model() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            let analytic = timing::layer_cycles(&stats.shape, edea.config());
            assert_eq!(
                stats.cycles,
                analytic.total(),
                "layer {}",
                stats.shape.index
            );
        }
    }

    #[test]
    fn mac_counts_match_workload() {
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            assert_eq!(stats.dwc_activity.mac_slots, stats.shape.dwc_macs());
            assert_eq!(stats.pwc_activity.mac_slots, stats.shape.pwc_macs());
        }
    }

    #[test]
    fn intermediate_traffic_replaces_external_roundtrip() {
        // The direct transfer: intermediate-buffer writes equal the
        // intermediate map size × channel passes … and none of it appears
        // as external traffic beyond input/weights/output.
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let l0 = &qnet.layers()[0];
        let run = edea.run_layer(l0, &input).unwrap();
        let s = l0.shape();
        let inter_elems = s.intermediate_elems();
        assert_eq!(run.stats.intermediate.writes, inter_elems);
        // Each intermediate byte is read once per kernel tile:
        assert_eq!(
            run.stats.intermediate.reads,
            inter_elems * (s.k_out / 16) as u64
        );
        // External writes are exactly the ofmap (nothing intermediate):
        assert_eq!(run.stats.external.writes, s.ofmap_elems());
    }

    #[test]
    fn rejects_mismatched_input() {
        let (_, qnet, _) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let bad = Tensor3::<i8>::zeros(3, 32, 32);
        assert!(matches!(
            edea.run_layer(&qnet.layers()[0], &bad),
            Err(CoreError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn synthetic_stats_match_simulated_traffic() {
        // The analytic stats constructor must reproduce the simulator's
        // accounting exactly (cycles, MAC slots, every traffic category).
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            let synth = crate::stats::synthetic_layer_stats(
                &stats.shape,
                edea.config(),
                stats.input_zero,
                stats.mid_zero,
                stats.out_zero,
            );
            assert_eq!(stats.cycles, synth.cycles, "layer {}", stats.shape.index);
            assert_eq!(
                stats.external, synth.external,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.onchip, synth.onchip, "layer {}", stats.shape.index);
            assert_eq!(
                stats.intermediate, synth.intermediate,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.psum, synth.psum, "layer {}", stats.shape.index);
            assert_eq!(
                stats.nonconv_ops, synth.nonconv_ops,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(
                stats.dwc_activity.mac_slots, synth.dwc_activity.mac_slots,
                "layer {}",
                stats.shape.index
            );
        }
    }

    fn setup_batch(n: usize) -> (QuantizedDscNetwork, Batch<i8>) {
        let mut model = MobileNetV1::synthetic(0.25, 31);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        let images = rng::synthetic_batch(n, 3, 32, 32, 77);
        let inputs = Batch::new(
            images
                .iter()
                .map(|img| qnet.quantize_input(&model.forward_stem(img)))
                .collect(),
        )
        .unwrap();
        (qnet, inputs)
    }

    #[test]
    fn batch_outputs_are_bit_identical_to_per_image_runs() {
        let (qnet, inputs) = setup_batch(3);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let batch = edea.run_batch(&qnet, &inputs).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = edea.run_network(&qnet, input).unwrap();
            assert_eq!(batch.outputs[i], single.output, "image {i}");
            let golden = executor::run_network(&qnet, input);
            assert_eq!(batch.outputs[i], golden.output, "image {i} vs golden");
        }
    }

    #[test]
    fn batch_of_one_matches_unbatched_stats_exactly() {
        let (qnet, inputs) = setup_batch(1);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let batch = edea.run_batch(&qnet, &inputs).unwrap();
        let single = edea.run_network(&qnet, &inputs[0]).unwrap();
        assert_eq!(batch.outputs[0], single.output);
        for (b, s) in batch.stats.layers.iter().zip(&single.stats.layers) {
            assert_eq!(b.clone().into_layer_stats(), *s, "layer {}", s.shape.index);
        }
    }

    #[test]
    fn batched_weight_reads_equal_unbatched_reads() {
        // The whole point: a batch of N fetches each external weight byte
        // once — the same count as a single image, not N×.
        let (qnet, inputs) = setup_batch(4);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let batch = edea.run_batch(&qnet, &inputs).unwrap();
        let single = edea.run_network(&qnet, &inputs[0]).unwrap();
        for (b, s) in batch.stats.layers.iter().zip(&single.stats.layers) {
            assert_eq!(
                b.external.weight_reads, s.external.weight_reads,
                "layer {}",
                s.shape.index
            );
            assert_eq!(
                b.external.param_reads, s.external.param_reads,
                "layer {}",
                s.shape.index
            );
            // Per-image streams scale with N.
            assert_eq!(b.external.ifmap_reads, 4 * s.external.ifmap_reads);
            assert_eq!(b.external.writes, 4 * s.external.writes);
            assert_eq!(b.cycles, 4 * s.cycles);
        }
    }

    #[test]
    fn synthetic_batch_stats_match_batched_simulator() {
        let (qnet, inputs) = setup_batch(2);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let batch = edea.run_batch(&qnet, &inputs).unwrap();
        for stats in &batch.stats.layers {
            let synth = crate::stats::synthetic_batch_layer_stats(
                &stats.shape,
                edea.config(),
                2,
                WeightResidency::PerBatch,
                stats.input_zero,
                stats.mid_zero,
                stats.out_zero,
            );
            assert_eq!(stats.cycles, synth.cycles, "layer {}", stats.shape.index);
            assert_eq!(
                stats.external, synth.external,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.onchip, synth.onchip, "layer {}", stats.shape.index);
            assert_eq!(
                stats.intermediate, synth.intermediate,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.psum, synth.psum, "layer {}", stats.shape.index);
            assert_eq!(
                stats.nonconv_ops, synth.nonconv_ops,
                "layer {}",
                stats.shape.index
            );
        }
    }

    #[test]
    fn undersized_psum_banks_overflow_in_batch_mode_too() {
        // The psum SRAM is provisioned batch× one bank; a bank smaller
        // than a portion's psums must still be caught by the capacity
        // check of the batched reservation.
        let (qnet, inputs) = setup_batch(2);
        let mut cfg = EdeaConfig::paper();
        // Layer 0 at width 0.25: one portion's psums are 8×8×16×4 bytes.
        cfg.psum_buf_bytes = 8 * 8 * 16 * 4 - 4; // one word short per bank
        let edea = Edea::new(cfg).unwrap();
        let err = edea
            .run_layer_batch(&qnet.layers()[0], inputs.images())
            .unwrap_err();
        assert!(matches!(err, CoreError::BufferOverflow { .. }), "{err:?}");
    }

    #[test]
    fn empty_batch_is_rejected() {
        let (qnet, _) = setup_batch(1);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        assert!(matches!(
            edea.run_layer_batch(&qnet.layers()[0], &[]),
            Err(CoreError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn utilization_is_full_when_engines_fire() {
        // "100% PE utilization": every DWC invocation uses all 288 slots,
        // every PWC invocation all 512.
        let (_, qnet, input) = setup();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_layer(&qnet.layers()[0], &input).unwrap();
        let b = &run.stats.breakdown;
        assert_eq!(run.stats.dwc_activity.mac_slots, b.dwc_busy * 288);
        assert_eq!(run.stats.pwc_activity.mac_slots, b.pwc_busy * 512);
    }

    fn setup_v2() -> (
        edea_nn::mobilenet::MobileNetV2,
        QuantizedDscNetwork,
        Tensor3<i8>,
    ) {
        let model = edea_nn::mobilenet::MobileNetV2::synthetic(0.25, 41);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 32);
        let qnet =
            QuantizedDscNetwork::calibrate_v2(&model, &calib, QuantStrategy::paper()).unwrap();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        (model, qnet, input)
    }

    #[test]
    fn v2_network_is_bit_exact_with_golden_executor() {
        // The inverted-residual stack: PwcOnly expansions, linear
        // projections and Q8.16 residual adds through the same datapath.
        let (_, qnet, input) = setup_v2();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        let golden = executor::run_network(&qnet, &input);
        assert_eq!(run.output, golden.output);
    }

    #[test]
    fn v2_planned_path_matches_one_shot() {
        let (_, qnet, input) = setup_v2();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let plan = NetworkPlan::new(&qnet, edea.config()).unwrap();
        let planned = edea.run_network_planned(&qnet, &plan, &input).unwrap();
        let oneshot = edea.run_network(&qnet, &input).unwrap();
        assert_eq!(planned.output, oneshot.output);
    }

    #[test]
    fn v2_batch_outputs_match_per_image_and_golden() {
        let (model, qnet, _) = setup_v2();
        let images = rng::synthetic_batch(3, 3, 32, 32, 77);
        let inputs = Batch::new(
            images
                .iter()
                .map(|img| qnet.quantize_input(&model.forward_stem(img)))
                .collect(),
        )
        .unwrap();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let batch = edea.run_batch(&qnet, &inputs).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = edea.run_network(&qnet, input).unwrap();
            assert_eq!(batch.outputs[i], single.output, "image {i}");
            let golden = executor::run_network(&qnet, input);
            assert_eq!(batch.outputs[i], golden.output, "image {i} vs golden");
        }
    }

    #[test]
    fn v2_synthetic_stats_match_simulated_traffic() {
        // The analytic mirror must track the generalized datapath exactly:
        // PwcOnly stages (no DWC/intermediate traffic, ifmap-side kernel
        // re-reads) and residual-add stages (external residual stream).
        let (_, qnet, input) = setup_v2();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_network(&qnet, &input).unwrap();
        for stats in &run.stats.layers {
            let synth = crate::stats::synthetic_layer_stats(
                &stats.shape,
                edea.config(),
                stats.input_zero,
                stats.mid_zero,
                stats.out_zero,
            );
            assert_eq!(stats.cycles, synth.cycles, "layer {}", stats.shape.index);
            assert_eq!(
                stats.external, synth.external,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.onchip, synth.onchip, "layer {}", stats.shape.index);
            assert_eq!(
                stats.intermediate, synth.intermediate,
                "layer {}",
                stats.shape.index
            );
            assert_eq!(stats.psum, synth.psum, "layer {}", stats.shape.index);
            assert_eq!(
                stats.nonconv_ops, synth.nonconv_ops,
                "layer {}",
                stats.shape.index
            );
        }
    }

    #[test]
    fn v2_residual_add_without_matching_batch_is_rejected() {
        // execute_layer's contract: the residual batch must be present
        // exactly when the shape says residual_add, with one map per image.
        let (_, qnet, input) = setup_v2();
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let add_layer = qnet
            .layers()
            .iter()
            .find(|l| l.shape().residual_add)
            .expect("v2 has residual-add stages");
        let err = edea.run_layer(add_layer, &input).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedShape { .. }), "{err:?}");
    }
}
