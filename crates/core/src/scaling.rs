//! Technology / voltage / precision normalization (paper Table III,
//! methodology of the paper's ref \[19\]).
//!
//! Cross-technology comparisons scale each design to a common operating
//! point (22 nm, 0.8 V, 8-bit):
//!
//! * **Precision**: quadratic — a `b`-bit MAC costs ≈ `(b/8)²` of an 8-bit
//!   one, so throughput-type metrics gain `(b/8)²` when normalized to 8 bit.
//! * **Energy efficiency**: dynamic energy ∝ `C·V²`, with switched
//!   capacitance shrinking ≈ `tech^1.5` (gate + wire); EE scales by
//!   `(tech/22)^1.5 · (V/0.8)²`. This exponent reproduces the paper's
//!   normalized numbers within ≈10 % (see tests) — closer than the naive
//!   linear-capacitance rule.
//! * **Area efficiency**: area ∝ `tech²`; with the voltage-headroom factor
//!   the paper evidently applies, AE scales by `(tech/22)² · (V/0.8)²`.

/// An operating point: technology node, supply voltage, precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Technology node in nm.
    pub tech_nm: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Datapath precision in bits.
    pub precision_bits: u32,
}

impl OperatingPoint {
    /// The EDEA reference point: 22 nm, 0.8 V, 8 bit.
    #[must_use]
    pub fn edea() -> Self {
        Self {
            tech_nm: 22.0,
            voltage: 0.8,
            precision_bits: 8,
        }
    }
}

/// Precision normalization factor to 8 bit: `(bits/8)²`.
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn precision_factor(bits: u32) -> f64 {
    assert!(bits > 0, "precision must be positive");
    let r = f64::from(bits) / 8.0;
    r * r
}

/// Scales an energy-efficiency figure (TOPS/W) from one operating point to
/// another: `× (from.tech/to.tech)^1.5 · (from.V/to.V)²`, precision
/// normalized quadratically.
#[must_use]
pub fn scale_energy_efficiency(ee: f64, from: &OperatingPoint, to: &OperatingPoint) -> f64 {
    ee * precision_factor(from.precision_bits) / precision_factor(to.precision_bits)
        * (from.tech_nm / to.tech_nm).powf(1.5)
        * (from.voltage / to.voltage).powi(2)
}

/// Scales an area-efficiency figure (GOPS/mm²):
/// `× (from.tech/to.tech)² · (from.V/to.V)²`, precision normalized.
#[must_use]
pub fn scale_area_efficiency(ae: f64, from: &OperatingPoint, to: &OperatingPoint) -> f64 {
    ae * precision_factor(from.precision_bits) / precision_factor(to.precision_bits)
        * (from.tech_nm / to.tech_nm).powi(2)
        * (from.voltage / to.voltage).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(tech: f64, v: f64, bits: u32) -> OperatingPoint {
        OperatingPoint {
            tech_nm: tech,
            voltage: v,
            precision_bits: bits,
        }
    }

    #[test]
    fn identity_at_reference_point() {
        let e = OperatingPoint::edea();
        assert_eq!(scale_energy_efficiency(13.43, &e, &e), 13.43);
        assert_eq!(scale_area_efficiency(1678.53, &e, &e), 1678.53);
    }

    #[test]
    fn precision_normalization_is_quadratic() {
        // Table III normalizes [17]'s 16-bit results "using (Precision/8)²":
        // 0.34 TOPS/W → 1.36.
        assert_eq!(precision_factor(16), 4.0);
        assert_eq!(precision_factor(8), 1.0);
        assert!((0.34 * precision_factor(16) - 1.36).abs() < 1e-9);
    }

    #[test]
    fn reproduces_paper_normalized_ee_within_12pct() {
        // Paper Table III normalized energy efficiencies: [16] 7.73,
        // [17] 4.32, [18] 9.9 (from 0.92/1.36/4.94 pre-scaling). The paper's
        // exact rule is unstated; tech^1.5·V² lands within 12 % on all
        // three (a linear-capacitance rule errs by up to 45 %).
        let to = OperatingPoint::edea();
        let cases = [
            (0.92, pt(65.0, 1.08, 8), 7.73),
            (0.34, pt(40.0, 0.9, 16), 4.32),
            (4.94, pt(28.0, 0.9, 8), 9.9),
        ];
        for (raw, from, paper) in cases {
            let got = scale_energy_efficiency(raw, &from, &to);
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.12,
                "{raw} @ {from:?}: got {got}, paper {paper} ({err:.1}%)"
            );
        }
    }

    #[test]
    fn reproduces_paper_normalized_ae_within_20pct() {
        // Paper Table III normalized area efficiencies: [16] 266.86,
        // [17] 290.12 (8-bit-normalized 71.6), [18] 255.
        let to = OperatingPoint::edea();
        let cases = [
            (15.8, pt(65.0, 1.08, 8), 266.86),
            (17.9, pt(40.0, 0.9, 16), 290.12),
            (145.28, pt(28.0, 0.9, 8), 255.0),
        ];
        for (raw, from, paper) in cases {
            let got = scale_area_efficiency(raw, &from, &to);
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.20,
                "{raw} @ {from:?}: got {got}, paper {paper} ({err:.1}%)"
            );
        }
    }

    #[test]
    fn same_tech_designs_are_untouched() {
        // [4] is also 22 nm / 0.8 V / 8 bit: its numbers pass through.
        let to = OperatingPoint::edea();
        let from = pt(22.0, 0.8, 8);
        assert_eq!(scale_energy_efficiency(5.07, &from, &to), 5.07);
        assert_eq!(scale_area_efficiency(519.2, &from, &to), 519.2);
    }

    #[test]
    fn scaling_is_monotone_in_tech_and_voltage() {
        let to = OperatingPoint::edea();
        let a = scale_energy_efficiency(1.0, &pt(65.0, 1.0, 8), &to);
        let b = scale_energy_efficiency(1.0, &pt(40.0, 1.0, 8), &to);
        let c = scale_energy_efficiency(1.0, &pt(40.0, 0.9, 8), &to);
        assert!(a > b && b > c);
    }
}
