//! Energy / power model (paper Figs. 9, 11, 12).
//!
//! Architectural power modeling in the Accelergy/Timeloop tradition: each
//! action (an active MAC, a gated MAC, a byte moved per memory level, a
//! Non-Conv op) carries an energy constant; the functional simulator's
//! activity counts turn those into per-layer energy, and dividing by the
//! latency gives power. Zero activations clock-gate their multipliers —
//! this is what makes power fall as sparsity rises (Fig. 11) and energy
//! efficiency peak at the sparse layer 10 (Fig. 12).
//!
//! Two parameter sets are provided:
//!
//! * [`EnergyModel::physical_22nm`] — first-principles per-action energies
//!   for a 22 nm node; reproduces the *shape* of Figs. 11/12 from scratch.
//! * [`EnergyModel::calibrate`] — a non-negative least-squares fit of the
//!   datapath/memory coefficients to the paper's 13 per-layer power points
//!   (the standard way architectural models are anchored to silicon).

use crate::config::EdeaConfig;
use crate::stats::LayerStats;

/// Per-action energy constants (pJ) and constant power terms (mW).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per active DWC MAC (pJ).
    pub e_mac_dwc_pj: f64,
    /// Energy per active PWC MAC (pJ).
    pub e_mac_pwc_pj: f64,
    /// Fraction of MAC energy saved when the activation operand is zero.
    pub gating: f64,
    /// Energy per Non-Conv op (Q8.16 multiply-add + round + clip) (pJ).
    pub e_nonconv_pj: f64,
    /// Energy per on-chip SRAM byte (weight/ifmap/offline buffers) (pJ).
    pub e_sram_pj_byte: f64,
    /// Energy per psum/intermediate register-file byte (pJ).
    pub e_rf_pj_byte: f64,
    /// Energy per external-interface byte charged to the chip (pJ).
    pub e_ext_pj_byte: f64,
    /// Clock-tree and control power while running (mW).
    pub p_clock_mw: f64,
    /// Leakage power (mW).
    pub p_static_mw: f64,
}

/// Power of one layer, split by component (the Fig. 9 right-hand pie).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// DWC engine (mW).
    pub dwc_mw: f64,
    /// PWC engine (mW).
    pub pwc_mw: f64,
    /// Non-Conv units (mW).
    pub nonconv_mw: f64,
    /// SRAM buffers (mW).
    pub buffers_mw: f64,
    /// Psum/intermediate register files (mW).
    pub rf_mw: f64,
    /// External interface (mW).
    pub io_mw: f64,
    /// Clock tree (mW).
    pub clock_mw: f64,
    /// Leakage (mW).
    pub static_mw: f64,
}

impl PowerBreakdown {
    /// Total power (mW).
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.dwc_mw
            + self.pwc_mw
            + self.nonconv_mw
            + self.buffers_mw
            + self.rf_mw
            + self.io_mw
            + self.clock_mw
            + self.static_mw
    }

    /// Component shares as `(label, percent)` pairs.
    #[must_use]
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        let t = self.total_mw();
        vec![
            ("pwc", 100.0 * self.pwc_mw / t),
            ("dwc", 100.0 * self.dwc_mw / t),
            ("clock", 100.0 * self.clock_mw / t),
            ("nonconv", 100.0 * self.nonconv_mw / t),
            ("buffers", 100.0 * (self.buffers_mw + self.rf_mw) / t),
            ("io", 100.0 * self.io_mw / t),
            ("static", 100.0 * self.static_mw / t),
        ]
    }
}

impl EnergyModel {
    /// First-principles per-action energies for a 22 nm node at 0.8 V
    /// (int8 MAC ≈ 0.2 pJ, SRAM ≈ 0.12 pJ/B, register file ≈ 0.03 pJ/B,
    /// chip-side external interface ≈ 0.5 pJ/B).
    #[must_use]
    pub fn physical_22nm() -> Self {
        Self {
            e_mac_dwc_pj: 0.25,
            e_mac_pwc_pj: 0.15,
            gating: 0.85,
            e_nonconv_pj: 1.5,
            e_sram_pj_byte: 0.12,
            e_rf_pj_byte: 0.03,
            e_ext_pj_byte: 0.5,
            p_clock_mw: 8.0,
            p_static_mw: 3.0,
        }
    }

    /// Macro-level constants matching the paper's accounting: the
    /// post-layout power of the accelerator macro charges buffer reads and
    /// interface toggling far less than standalone-memory models (the
    /// paper's buffers + IO slices total < 7 % of power despite a sustained
    /// 128 B/cycle weight stream). Used as the base for
    /// [`EnergyModel::calibrate`].
    #[must_use]
    pub fn macro_level_22nm() -> Self {
        Self {
            e_nonconv_pj: 0.4,
            e_sram_pj_byte: 0.02,
            e_rf_pj_byte: 0.01,
            e_ext_pj_byte: 0.05,
            p_clock_mw: 5.0,
            p_static_mw: 2.0,
            ..Self::physical_22nm()
        }
    }

    /// Active (non-gated) MAC equivalents of an engine activity record.
    fn active_macs(&self, a: &crate::engine::EngineActivity) -> f64 {
        a.mac_slots as f64 - self.gating * a.zero_act_slots as f64
    }

    /// Per-layer power breakdown.
    #[must_use]
    pub fn layer_power(&self, stats: &LayerStats, cfg: &EdeaConfig) -> PowerBreakdown {
        let lat_ns = stats.cycles as f64 * cfg.period_ns();
        // 1 pJ / 1 ns = 1 mW.
        let sram_bytes = stats.onchip.total() - stats.psum.total() - stats.intermediate.total();
        PowerBreakdown {
            dwc_mw: self.e_mac_dwc_pj * self.active_macs(&stats.dwc_activity) / lat_ns,
            pwc_mw: self.e_mac_pwc_pj * self.active_macs(&stats.pwc_activity) / lat_ns,
            nonconv_mw: self.e_nonconv_pj * stats.nonconv_ops as f64 / lat_ns,
            buffers_mw: self.e_sram_pj_byte * sram_bytes as f64 / lat_ns,
            rf_mw: self.e_rf_pj_byte * (stats.psum.total() + stats.intermediate.total()) as f64
                / lat_ns,
            io_mw: self.e_ext_pj_byte * stats.external.total() as f64 / lat_ns,
            clock_mw: self.p_clock_mw,
            static_mw: self.p_static_mw,
        }
    }

    /// Per-layer total power (mW).
    #[must_use]
    pub fn layer_power_mw(&self, stats: &LayerStats, cfg: &EdeaConfig) -> f64 {
        self.layer_power(stats, cfg).total_mw()
    }

    /// Per-layer energy efficiency in TOPS/W: `ops / (P · t)`.
    #[must_use]
    pub fn layer_efficiency_tops_w(&self, stats: &LayerStats, cfg: &EdeaConfig) -> f64 {
        let ops = 2.0 * stats.total_macs() as f64;
        let energy_pj = self.layer_power_mw(stats, cfg) * stats.cycles as f64 * cfg.period_ns();
        // ops / pJ = TOPS/W (10^12 ops per joule).
        ops / energy_pj
    }

    /// Fits the sparsity-dependent datapath coefficients (DWC/PWC MAC
    /// energies and the constant clock/leakage term) to per-layer power
    /// targets (mW) by non-negative least squares. The memory-movement and
    /// Non-Conv energies are pinned at their physical 22 nm values and
    /// subtracted from the targets first — fitting them too would let the
    /// (nearly layer-invariant) SRAM streaming term absorb variance that
    /// physically belongs to the gated MAC arrays.
    ///
    /// # Panics
    ///
    /// Panics if `stats` and `targets_mw` differ in length or are empty.
    #[must_use]
    pub fn calibrate(stats: &[LayerStats], cfg: &EdeaConfig, targets_mw: &[f64]) -> Self {
        assert_eq!(stats.len(), targets_mw.len(), "one target per layer");
        assert!(!stats.is_empty(), "need at least one layer");
        let base = Self::macro_level_22nm();
        // Features per layer: [dwc_rate, pwc_rate, 1] (columns 3..5 unused).
        let rows: Vec<[f64; 6]> = stats
            .iter()
            .map(|s| {
                let lat = s.cycles as f64 * cfg.period_ns();
                [
                    base.active_macs(&s.dwc_activity) / lat,
                    base.active_macs(&s.pwc_activity) / lat,
                    1.0,
                    0.0,
                    0.0,
                    0.0,
                ]
            })
            .collect();
        // Subtract the pinned memory/Non-Conv contributions.
        let adjusted: Vec<f64> = stats
            .iter()
            .zip(targets_mw)
            .map(|(s, &t)| {
                let b = base.layer_power(s, cfg);
                (t - b.nonconv_mw - b.buffers_mw - b.rf_mw - b.io_mw).max(0.0)
            })
            .collect();
        let coeffs = nnls(&rows, &adjusted);
        Self {
            e_mac_dwc_pj: coeffs[0],
            e_mac_pwc_pj: coeffs[1],
            p_clock_mw: coeffs[2] * 0.75,
            p_static_mw: coeffs[2] * 0.25,
            ..base
        }
    }
}

/// Non-negative least squares via iterated constrained normal equations:
/// solve, clamp negative coefficients to zero (remove the column), repeat.
fn nnls(rows: &[[f64; 6]], targets: &[f64]) -> [f64; 6] {
    let mut active = [true; 6];
    loop {
        let idx: Vec<usize> = (0..6).filter(|&j| active[j]).collect();
        let n = idx.len();
        if n == 0 {
            return [0.0; 6];
        }
        // Normal equations A^T A x = A^T b on the active columns.
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut atb = vec![0.0f64; n];
        for (r, row) in rows.iter().enumerate() {
            for (i, &ji) in idx.iter().enumerate() {
                atb[i] += row[ji] * targets[r];
                for (j, &jj) in idx.iter().enumerate() {
                    ata[i][j] += row[ji] * row[jj];
                }
            }
        }
        // Tikhonov damping for numerical safety.
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let x = solve(&mut ata, &mut atb);
        let mut out = [0.0f64; 6];
        let mut any_negative = false;
        for (i, &j) in idx.iter().enumerate() {
            if x[i] < 0.0 {
                active[j] = false;
                any_negative = true;
            } else {
                out[j] = x[i];
            }
        }
        if !any_negative {
            return out;
        }
    }
}

/// Gaussian elimination with partial pivoting (consumes its inputs).
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue;
        }
        for r in col + 1..n {
            let f = a[r][col] / diag;
            let (head, tail) = a.split_at_mut(r);
            let (pivot_row, row) = (&head[col], &mut tail[0]);
            for c in col..n {
                row[c] -= f * pivot_row[c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = if a[col][col].abs() < 1e-30 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

/// Per-layer zero fractions `(input, mid, out)` from the paper sparsity
/// profile — shared by the analytic layer-stats builders.
fn paper_zero_fractions(index: usize) -> (f64, f64, f64) {
    let profile = edea_nn::sparsity::SparsityProfile::paper();
    let input_zero = if index == 0 {
        0.5 // stem activation sparsity
    } else {
        profile.pwc_zero[index - 1]
    };
    (input_zero, profile.dwc_zero[index], profile.pwc_zero[index])
}

/// Builds the 13 full-size MobileNetV1 layer statistics analytically from
/// the paper sparsity profile — the inputs for calibrating and evaluating
/// the power model without running a full-width simulation.
#[must_use]
pub fn paper_layer_stats(cfg: &EdeaConfig) -> Vec<LayerStats> {
    let layers = edea_nn::workload::mobilenet_v1_cifar10();
    layers
        .iter()
        .map(|l| {
            let (input_zero, mid_zero, out_zero) = paper_zero_fractions(l.index);
            crate::stats::synthetic_layer_stats(l, cfg, input_zero, mid_zero, out_zero)
        })
        .collect()
}

/// Batched analogue of [`paper_layer_stats`]: the 13 full-size layer
/// statistics for a batch of `n` images under the given weight residency,
/// with the same paper-profile zero fractions applied to every image.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn paper_batch_layer_stats(
    cfg: &EdeaConfig,
    n: usize,
    residency: crate::schedule::WeightResidency,
) -> crate::stats::BatchNetworkStats {
    let layers = edea_nn::workload::mobilenet_v1_cifar10();
    crate::stats::BatchNetworkStats {
        batch: n,
        layers: layers
            .iter()
            .map(|l| {
                let (input_zero, mid_zero, out_zero) = paper_zero_fractions(l.index);
                crate::stats::synthetic_batch_layer_stats(
                    l, cfg, n, residency, input_zero, mid_zero, out_zero,
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata;

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    fn calibrated() -> (Vec<LayerStats>, EnergyModel) {
        let stats = paper_layer_stats(&cfg());
        let model = EnergyModel::calibrate(&stats, &cfg(), &paperdata::power_mw());
        (stats, model)
    }

    #[test]
    fn physical_model_lands_in_silicon_ballpark() {
        // First-principles constants must put every layer inside 30–200 mW
        // (the paper's band is 67.7–117.7 mW) with the right ordering trend.
        let stats = paper_layer_stats(&cfg());
        let m = EnergyModel::physical_22nm();
        for s in &stats {
            let p = m.layer_power_mw(s, &cfg());
            assert!(p > 30.0 && p < 200.0, "layer {}: {p} mW", s.shape.index);
        }
        // Sparse late layers must be cheaper than dense early ones.
        let p1 = m.layer_power_mw(&stats[1], &cfg());
        let p12 = m.layer_power_mw(&stats[12], &cfg());
        assert!(p12 < p1, "{p12} vs {p1}");
    }

    #[test]
    fn calibrated_model_tracks_paper_power() {
        let (stats, m) = calibrated();
        let targets = paperdata::power_mw();
        let mut worst = 0.0f64;
        for (s, &t) in stats.iter().zip(&targets) {
            let p = m.layer_power_mw(s, &cfg());
            worst = worst.max((p - t).abs());
        }
        assert!(worst < 12.0, "worst per-layer residual {worst} mW");
    }

    #[test]
    fn calibrated_coefficients_are_nonnegative() {
        let (_, m) = calibrated();
        for v in [
            m.e_mac_dwc_pj,
            m.e_mac_pwc_pj,
            m.e_sram_pj_byte,
            m.e_rf_pj_byte,
            m.e_ext_pj_byte,
            m.p_clock_mw,
            m.p_static_mw,
        ] {
            assert!(v >= 0.0, "{m:?}");
        }
    }

    #[test]
    fn peak_efficiency_layer_and_value() {
        // Fig. 12: peak at layer 10, 13.43 TOPS/W.
        let (stats, m) = calibrated();
        let effs: Vec<f64> = stats
            .iter()
            .map(|s| m.layer_efficiency_tops_w(s, &cfg()))
            .collect();
        let (peak_layer, peak) = effs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(
            peak_layer == 10 || peak_layer == 12,
            "peak at layer {peak_layer} (paper: 10, with 12 a close second)"
        );
        assert!((peak - 13.43).abs() < 1.0, "peak {peak} vs paper 13.43");
    }

    #[test]
    fn average_efficiency_near_paper() {
        let (stats, m) = calibrated();
        let mean: f64 = stats
            .iter()
            .map(|s| m.layer_efficiency_tops_w(s, &cfg()))
            .sum::<f64>()
            / stats.len() as f64;
        assert!(
            (mean - paperdata::headline::AVG_TOPS_W).abs() < 1.0,
            "{mean}"
        );
    }

    #[test]
    fn power_decreases_with_sparsity() {
        // Fig. 11: "The power reduces as the zero percentage increases."
        // Correlation between mid-activation zero fraction and power must be
        // strongly negative.
        let (stats, m) = calibrated();
        let zs: Vec<f64> = stats.iter().map(|s| s.mid_zero).collect();
        let ps: Vec<f64> = stats.iter().map(|s| m.layer_power_mw(s, &cfg())).collect();
        let n = zs.len() as f64;
        let mz = zs.iter().sum::<f64>() / n;
        let mp = ps.iter().sum::<f64>() / n;
        let cov: f64 = zs.iter().zip(&ps).map(|(z, p)| (z - mz) * (p - mp)).sum();
        let vz: f64 = zs.iter().map(|z| (z - mz).powi(2)).sum();
        let vp: f64 = ps.iter().map(|p| (p - mp).powi(2)).sum();
        let r = cov / (vz * vp).sqrt();
        assert!(r < -0.6, "correlation {r}");
    }

    #[test]
    fn breakdown_shares_order_matches_fig9() {
        // At the peak workload: PWC > DWC among engines, PWC dominant.
        let (stats, m) = calibrated();
        let b = m.layer_power(&stats[10], &cfg());
        assert!(b.pwc_mw > b.dwc_mw);
        // The calibrated fit attributes ≥30 % to the PWC array at the peak
        // point (the paper's 66 % folds clocking/register overhead into the
        // engine blocks; our model carries those in the constant term).
        assert!(
            b.pwc_mw / b.total_mw() > 0.30,
            "PWC share {}",
            b.pwc_mw / b.total_mw()
        );
        let sum: f64 = b.shares().iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn gating_reduces_power_monotonically() {
        let stats = paper_layer_stats(&cfg());
        let mut low = EnergyModel::physical_22nm();
        low.gating = 0.0;
        let mut high = EnergyModel::physical_22nm();
        high.gating = 1.0;
        for s in &stats {
            assert!(high.layer_power_mw(s, &cfg()) <= low.layer_power_mw(s, &cfg()));
        }
    }

    #[test]
    fn nnls_recovers_exact_nonnegative_solution() {
        // y = 2·x0 + 0.5·x2 with noise-free rows.
        let rows: Vec<[f64; 6]> = (0..10)
            .map(|i| {
                let x = f64::from(i);
                [x, (x * 7.0) % 3.0, x * x, 0.0, 0.0, 1.0]
            })
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 0.5 * r[2] + 3.0).collect();
        let c = nnls(&rows, &targets);
        assert!((c[0] - 2.0).abs() < 1e-6, "{c:?}");
        assert!((c[2] - 0.5).abs() < 1e-6, "{c:?}");
        assert!((c[5] - 3.0).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn nnls_clamps_negative_components() {
        // Target anti-correlates with feature 0: the fit must zero it, not
        // go negative.
        let rows: Vec<[f64; 6]> = (0..8)
            .map(|i| [f64::from(i), 0.0, 0.0, 0.0, 0.0, 1.0])
            .collect();
        let targets: Vec<f64> = (0..8).map(|i| 10.0 - f64::from(i)).collect();
        let c = nnls(&rows, &targets);
        assert_eq!(c[0], 0.0);
        assert!(c[5] > 0.0);
    }
}
