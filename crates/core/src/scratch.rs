//! Reusable scratch buffers for the simulator's tile pipeline.
//!
//! Every spatial tile of the loop nest in [`crate::accelerator`] needs the
//! same five working buffers: the DWC input window, the DWC accumulator
//! tile, the Non-Conv'd intermediate tile, the PWC partial-sum tile, and
//! (per portion) the psum banks plus the portion-local mid/output maps. The
//! original hot path allocated all of them afresh on every tile — the
//! software equivalent of the external-memory round trips the paper's
//! direct data transfer eliminates. A [`TileScratch`] owns them instead:
//! [`TileScratch::reserve`] grows each buffer to the layer's largest shape
//! once per layer run, and every later reshape
//! ([`edea_tensor::Tensor3::resize_zeroed`]) reuses the allocation, so the
//! steady-state tile loop performs **zero heap allocations** (guarded by
//! the allocation-regression test in `crates/core/tests`).
//!
//! A scratch outlives a layer run: `Edea::run_network_planned` and
//! `run_batch_planned` thread one scratch through every layer, and its
//! capacity grows monotonically to the largest layer it has seen.

use edea_nn::workload::LayerShape;
use edea_tensor::Tensor3;

use crate::config::EdeaConfig;

/// The per-layer-run scratch arena: one set of tile buffers reused across
/// tiles, kernel tiles, channel passes, portions and images.
#[derive(Debug, Clone)]
pub struct TileScratch {
    /// The `(Td, Tr, Tc)` DWC input window of the current tile.
    pub(crate) window: Tensor3<i8>,
    /// The `(Td, Tn, Tm)` DWC accumulator tile.
    pub(crate) dwc_acc: Tensor3<i32>,
    /// The `(Td, Tn, Tm)` intermediate tile (Non-Conv output).
    pub(crate) mid_tile: Tensor3<i8>,
    /// The `(Tk, Tn, Tm)` PWC partial-sum tile.
    pub(crate) pwc_partial: Tensor3<i32>,
    /// Per-image psum banks for the current portion,
    /// `(K, portion rows, portion cols)` each.
    pub(crate) psums: Vec<Tensor3<i32>>,
    /// The `(K, portion rows, portion cols)` residual window fetched at
    /// the drain of an inverted-residual add stage (unused otherwise).
    pub(crate) res_tile: Tensor3<i8>,
    /// Lane-private sub-scratches for the parallel portion loop (lane 0
    /// reuses this scratch itself; lane `i + 1` owns `lanes[i]`). Empty
    /// until a parallel run reserves them; a serial run never touches it.
    pub(crate) lanes: Vec<TileScratch>,
    /// Portion-local intermediate maps, one slot per `(portion, image)`,
    /// pasted into the full mid maps in portion order after all lanes join.
    pub(crate) portion_mids: Vec<Tensor3<i8>>,
    /// Portion-local drained outputs (after the output-side Non-Conv), one
    /// slot per `(portion, image)`, pasted in portion order after the join.
    pub(crate) portion_outs: Vec<Tensor3<i8>>,
}

impl Default for TileScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl TileScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            window: Tensor3::zeros(1, 1, 1),
            dwc_acc: Tensor3::zeros(1, 1, 1),
            mid_tile: Tensor3::zeros(1, 1, 1),
            pwc_partial: Tensor3::zeros(1, 1, 1),
            psums: Vec::new(),
            res_tile: Tensor3::zeros(1, 1, 1),
            lanes: Vec::new(),
            portion_mids: Vec::new(),
            portion_outs: Vec::new(),
        }
    }

    /// Grows every buffer so a run of layer `s` with `n_images` in-flight
    /// images never allocates in the tile loop. Only the window is
    /// *shaped* here (its shape defines the extraction extent; its
    /// contents are fully overwritten per tile) — every other buffer gets
    /// capacity only, since its consumer reshapes it with
    /// [`Tensor3::resize_zeroed`] before use. Capacity only ever grows —
    /// reserving for a smaller layer after a larger one is free.
    pub fn reserve(&mut self, s: &LayerShape, cfg: &EdeaConfig, n_images: usize) {
        let t = &cfg.tile;
        let tr = (t.tn - 1) * s.stride + s.kernel;
        let tc = (t.tm - 1) * s.stride + s.kernel;
        self.window.resize_zeroed(t.td, tr, tc);
        self.dwc_acc.reserve_capacity(t.td * t.tn * t.tm);
        self.mid_tile.reserve_capacity(t.td * t.tn * t.tm);
        self.pwc_partial.reserve_capacity(t.tk * t.tn * t.tm);
        // The largest portion is bounded by the portion limit and the map.
        let pmax = s.out_spatial().min(cfg.portion_limit).max(1);
        let bank = s.k_out * pmax * pmax;
        while self.psums.len() < n_images {
            self.psums.push(Tensor3::zeros(1, 1, 1));
        }
        for psum in self.psums.iter_mut().take(n_images) {
            psum.reserve_capacity(bank);
        }
        if s.residual_add {
            self.res_tile.reserve_capacity(bank);
        }
    }

    /// Grows the per-`(portion, image)` output slots so the portion loop —
    /// serial or parallel — writes portion-local mids/outs without
    /// allocating in steady state. Slot vectors only ever grow, like the
    /// psum banks.
    pub(crate) fn reserve_portion_slots(
        &mut self,
        s: &LayerShape,
        cfg: &EdeaConfig,
        n_slots: usize,
    ) {
        let pmax = s.out_spatial().min(cfg.portion_limit).max(1);
        while self.portion_mids.len() < n_slots {
            self.portion_mids.push(Tensor3::zeros(1, 1, 1));
        }
        while self.portion_outs.len() < n_slots {
            self.portion_outs.push(Tensor3::zeros(1, 1, 1));
        }
        for mid in self.portion_mids.iter_mut().take(n_slots) {
            mid.reserve_capacity(s.d_in * pmax * pmax);
        }
        for out in self.portion_outs.iter_mut().take(n_slots) {
            out.reserve_capacity(s.k_out * pmax * pmax);
        }
    }

    /// Grows the lane-private sub-scratch pool to `extra` entries (for
    /// lanes `1..=extra`; lane 0 reuses this scratch) and reserves each
    /// for layer `s`, so the parallel tile loops stay allocation-free in
    /// steady state.
    pub(crate) fn ensure_lanes(
        &mut self,
        extra: usize,
        s: &LayerShape,
        cfg: &EdeaConfig,
        n_images: usize,
    ) {
        while self.lanes.len() < extra {
            self.lanes.push(TileScratch::new());
        }
        for lane in self.lanes.iter_mut().take(extra) {
            lane.reserve(s, cfg, n_images);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    #[test]
    fn reserve_sizes_buffers_for_the_layer() {
        let cfg = EdeaConfig::paper();
        let mut scratch = TileScratch::new();
        let layers = mobilenet_v1_cifar10();
        scratch.reserve(&layers[0], &cfg, 2);
        // The stride-1 window is shaped (its shape drives window
        // extraction); the rest get capacity for their steady-state
        // shapes, so the resizes their consumers perform cannot allocate.
        assert_eq!(scratch.window.shape(), (8, 4, 4));
        assert_eq!(scratch.psums.len(), 2);
        let bank = layers[0].k_out * 8 * 8;
        scratch.psums[0].resize_zeroed(layers[0].k_out, 8, 8);
        assert_eq!(scratch.psums[0].len(), bank);
        scratch.dwc_acc.resize_zeroed(8, 2, 2);
        scratch.pwc_partial.resize_zeroed(16, 2, 2);
        // A stride-2 layer widens the window to 5×5.
        let stride2 = layers.iter().find(|l| l.stride == 2).unwrap();
        scratch.reserve(stride2, &cfg, 1);
        assert_eq!(scratch.window.shape(), (8, 5, 5));
        // Extra psum banks from the previous reserve are kept, not freed.
        assert_eq!(scratch.psums.len(), 2);
    }
}
