//! VCD (Value Change Dump) export of the pipeline trace.
//!
//! The paper's authors verified EDEA with QuestaSim waveforms; this module
//! gives the reproduction the equivalent artifact: the cycle-accurate
//! pipeline trace of [`crate::pipeline`] rendered as an IEEE-1364 VCD file
//! that any waveform viewer (GTKWave etc.) opens — one 1-bit signal per
//! pipeline stage plus the tile/kernel-tile counters.

use std::collections::BTreeMap;

use crate::pipeline::{Stage, TraceEvent};

/// Signal identifiers assigned to the stages (VCD short codes).
fn stage_code(stage: Stage) -> char {
    match stage {
        Stage::DwcLoad => 'a',
        Stage::DwcProcess => 'b',
        Stage::OfflineLoad => 'c',
        Stage::NonConv => 'd',
        Stage::IntermediateWrite => 'e',
        Stage::PwcWeightLoad => 'f',
        Stage::PwcProcess => 'g',
        Stage::Output => 'h',
    }
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a pipeline trace as a VCD document.
///
/// Each stage becomes a 1-bit wire that pulses high for every cycle the
/// stage is active; `tile` and `ktile` are 16-bit buses following the PWC
/// engine's coordinates. The timescale is 1 ns = 1 cycle (the paper's
/// 1 GHz clock).
#[must_use]
pub fn to_vcd(events: &[TraceEvent], clock_mhz: u64) -> String {
    let period_ns = (1000.0 / clock_mhz.max(1) as f64).round().max(1.0) as u64;
    let mut out = String::new();
    out.push_str("$date EDEA reproduction $end\n");
    out.push_str("$version edea-core pipeline trace $end\n");
    out.push_str(&format!("$timescale {period_ns}ns $end\n"));
    out.push_str("$scope module edea $end\n");
    for stage in Stage::all() {
        out.push_str(&format!(
            "$var wire 1 {} {} $end\n",
            stage_code(stage),
            sanitize(stage.label())
        ));
    }
    out.push_str("$var wire 16 t tile $end\n");
    out.push_str("$var wire 16 k ktile $end\n");
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Group events by cycle; emit rising edges at the cycle and falling
    // edges at the next cycle for stages that stop being active.
    let mut by_cycle: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_cycle.entry(e.cycle).or_default().push(e);
    }
    let mut active_prev: Vec<Stage> = Vec::new();
    let mut last_tile: Option<(u32, u32)> = None;
    for (&cycle, evs) in &by_cycle {
        out.push_str(&format!("#{cycle}\n"));
        // Falling edges for stages active previously but not now.
        let now: Vec<Stage> = evs.iter().map(|e| e.stage).collect();
        for s in &active_prev {
            if !now.contains(s) {
                out.push_str(&format!("0{}\n", stage_code(*s)));
            }
        }
        for e in evs {
            if !active_prev.contains(&e.stage) {
                out.push_str(&format!("1{}\n", stage_code(e.stage)));
            }
            if e.stage == Stage::PwcProcess && last_tile != Some((e.tile, e.kernel_tile)) {
                out.push_str(&format!("b{:b} t\n", e.tile));
                out.push_str(&format!("b{:b} k\n", e.kernel_tile));
                last_tile = Some((e.tile, e.kernel_tile));
            }
        }
        active_prev = now;
    }
    if let Some((&last, _)) = by_cycle.iter().next_back() {
        out.push_str(&format!("#{}\n", last + 1));
        for s in &active_prev {
            out.push_str(&format!("0{}\n", stage_code(*s)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_layer;
    use crate::EdeaConfig;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn trace() -> Vec<TraceEvent> {
        simulate_layer(&mobilenet_v1_cifar10()[0], &EdeaConfig::paper(), 500).events
    }

    #[test]
    fn vcd_has_required_sections() {
        let vcd = to_vcd(&trace(), 1000);
        for section in [
            "$timescale 1ns $end",
            "$enddefinitions $end",
            "$scope module edea",
        ] {
            assert!(vcd.contains(section), "missing {section}");
        }
    }

    #[test]
    fn declares_all_stage_signals() {
        let vcd = to_vcd(&trace(), 1000);
        for stage in Stage::all() {
            assert!(vcd.contains(&sanitize(stage.label())), "{}", stage.label());
        }
        assert!(vcd.contains("$var wire 16 t tile $end"));
    }

    #[test]
    fn first_pwc_pulse_at_cycle_9() {
        let vcd = to_vcd(&trace(), 1000);
        // The PWC wire 'g' must rise exactly at timestamp #9.
        let idx = vcd.find("1g").expect("pwc rises");
        let before = &vcd[..idx];
        let last_ts = before.rfind('#').expect("timestamp");
        let ts: u64 = before[last_ts + 1..]
            .lines()
            .next()
            .unwrap()
            .trim()
            .parse()
            .expect("numeric timestamp");
        assert_eq!(ts, 9);
    }

    #[test]
    fn timestamps_are_monotone() {
        let vcd = to_vcd(&trace(), 1000);
        let mut prev = 0u64;
        for line in vcd.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: u64 = ts.parse().expect("numeric");
                assert!(t >= prev, "timestamps went backwards at {t}");
                prev = t;
            }
        }
    }

    #[test]
    fn slower_clock_changes_timescale() {
        let vcd = to_vcd(&trace(), 500);
        assert!(vcd.contains("$timescale 2ns $end"));
    }

    #[test]
    fn every_rise_has_a_fall() {
        let vcd = to_vcd(&trace(), 1000);
        for stage in Stage::all() {
            let c = stage_code(stage);
            let rises = vcd.matches(&format!("1{c}")).count();
            let falls = vcd.matches(&format!("0{c}")).count();
            // Each pulse that started must end (traces are finite).
            assert!(rises > 0, "stage {c} never fired");
            assert!(
                rises.abs_diff(falls) <= 1,
                "unbalanced pulses for {c}: {rises} rises, {falls} falls"
            );
        }
    }
}
