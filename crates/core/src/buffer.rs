//! On-chip buffers and the external-memory interface, with access counting.
//!
//! Fig. 4's buffer set: DWC ifmap buffer, DWC weight buffer, offline
//! (Non-Conv parameter) buffer, intermediate buffer, PWC weight buffer —
//! plus the psum SRAM the portion-wise PWC accumulation requires (not
//! detailed in the paper; see ARCHITECTURE.md). Every transfer in the
//! functional simulator goes through these objects so the energy model and
//! the DSE cross-checks read real counts, not estimates.

use crate::CoreError;

/// A capacity-checked buffer that counts bytes read/written and tracks the
/// peak occupancy a schedule actually required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedBuffer {
    name: &'static str,
    capacity: usize,
    reads: u64,
    writes: u64,
    occupancy: usize,
    peak: usize,
}

impl TrackedBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new(name: &'static str, capacity: usize) -> Self {
        Self {
            name,
            capacity,
            reads: 0,
            writes: 0,
            occupancy: 0,
            peak: 0,
        }
    }

    /// Buffer name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes read so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bytes written so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Peak occupancy observed.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: usize) {
        self.reads += bytes as u64;
    }

    /// Declares the live contents to be `bytes` (e.g. after loading a tile),
    /// checking capacity, and counts the fill as writes.
    ///
    /// # Errors
    ///
    /// [`CoreError::BufferOverflow`] if `bytes` exceeds the capacity.
    pub fn fill(&mut self, bytes: usize) -> Result<(), CoreError> {
        if bytes > self.capacity {
            return Err(CoreError::BufferOverflow {
                buffer: self.name,
                required: bytes,
                capacity: self.capacity,
            });
        }
        self.writes += bytes as u64;
        self.occupancy = bytes;
        self.peak = self.peak.max(bytes);
        Ok(())
    }

    /// Declares `bytes` of live contents *without* counting write traffic —
    /// used to capacity-check a residency whose fill traffic is accounted
    /// separately (e.g. psum write-backs counted per engine invocation).
    ///
    /// # Errors
    ///
    /// [`CoreError::BufferOverflow`] if `bytes` exceeds the capacity.
    pub fn reserve(&mut self, bytes: usize) -> Result<(), CoreError> {
        if bytes > self.capacity {
            return Err(CoreError::BufferOverflow {
                buffer: self.name,
                required: bytes,
                capacity: self.capacity,
            });
        }
        self.occupancy = bytes;
        self.peak = self.peak.max(bytes);
        Ok(())
    }

    /// Records a write of `bytes` on top of the current occupancy.
    ///
    /// # Errors
    ///
    /// [`CoreError::BufferOverflow`] if the occupancy would exceed capacity.
    pub fn append(&mut self, bytes: usize) -> Result<(), CoreError> {
        let new = self.occupancy + bytes;
        if new > self.capacity {
            return Err(CoreError::BufferOverflow {
                buffer: self.name,
                required: new,
                capacity: self.capacity,
            });
        }
        self.writes += bytes as u64;
        self.occupancy = new;
        self.peak = self.peak.max(new);
        Ok(())
    }

    /// Empties the buffer (occupancy only; counters persist).
    pub fn clear(&mut self) {
        self.occupancy = 0;
    }

    /// Folds another buffer's traffic counters into this one — the
    /// fixed-order reduction step of the parallel portion loop, where each
    /// lane counts its traffic into a private [`BufferSet`] and the lanes
    /// are merged in lane order afterwards. Byte counters are exact sums
    /// (`u64` addition is associative), so the merged totals are
    /// bit-identical to the serial run; peak occupancy takes the max over
    /// lanes.
    pub(crate) fn absorb(&mut self, other: &Self) {
        debug_assert_eq!(self.name, other.name);
        debug_assert_eq!(self.capacity, other.capacity);
        self.reads += other.reads;
        self.writes += other.writes;
        self.peak = self.peak.max(other.peak);
    }
}

/// External (off-chip) memory interface counters, in bytes, split by
/// stream.
///
/// The split matters for batching: weight and offline-parameter fetches
/// depend only on the layer, so a batched schedule pays them **once per
/// batch**, while ifmap reads and ofmap writes are inherently per-image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExternalMemory {
    /// Weight bytes read (DWC kernels + PWC tile slices).
    pub weight_reads: u64,
    /// Offline Non-Conv parameter bytes read.
    pub param_reads: u64,
    /// Activation (ifmap slice) bytes read.
    pub ifmap_reads: u64,
    /// Bytes written to external memory (the ofmap).
    pub writes: u64,
}

impl ExternalMemory {
    /// Records a weight fetch.
    pub fn read_weights(&mut self, bytes: usize) {
        self.weight_reads += bytes as u64;
    }

    /// Records an offline-parameter fetch.
    pub fn read_params(&mut self, bytes: usize) {
        self.param_reads += bytes as u64;
    }

    /// Records an ifmap-slice fetch.
    pub fn read_ifmap(&mut self, bytes: usize) {
        self.ifmap_reads += bytes as u64;
    }

    /// Records a write.
    pub fn write(&mut self, bytes: usize) {
        self.writes += bytes as u64;
    }

    /// Total bytes read, over all streams.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.weight_reads + self.param_reads + self.ifmap_reads
    }

    /// Total traffic.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads() + self.writes
    }

    /// Folds another interface's counters into this one (exact `u64`
    /// sums; see [`TrackedBuffer::absorb`]).
    pub(crate) fn absorb(&mut self, other: &Self) {
        self.weight_reads += other.weight_reads;
        self.param_reads += other.param_reads;
        self.ifmap_reads += other.ifmap_reads;
        self.writes += other.writes;
    }
}

/// The complete buffer set of Fig. 4 (plus the psum SRAM).
#[derive(Debug, Clone)]
pub struct BufferSet {
    /// DWC ifmap buffer.
    pub ifmap: TrackedBuffer,
    /// DWC weight buffer.
    pub dwc_weight: TrackedBuffer,
    /// Offline buffer (Non-Conv `k`, `b` parameters).
    pub offline: TrackedBuffer,
    /// Intermediate buffer (direct DWC→PWC transfer).
    pub intermediate: TrackedBuffer,
    /// PWC weight buffer.
    pub pwc_weight: TrackedBuffer,
    /// PWC partial-sum SRAM.
    pub psum: TrackedBuffer,
    /// External memory interface.
    pub external: ExternalMemory,
}

impl BufferSet {
    /// Builds the buffer set from an [`crate::EdeaConfig`].
    #[must_use]
    pub fn new(cfg: &crate::EdeaConfig) -> Self {
        Self::for_batch(cfg, 1)
    }

    /// Builds the buffer set for a batched schedule keeping `batch` images
    /// in flight per portion.
    ///
    /// The batched loop nest (portion → channel pass → image) holds one
    /// psum residency *per in-flight image*, so the psum SRAM must be
    /// provisioned `batch×` — that is the silicon cost of weight-residency
    /// amortization, and the capacity check here is what surfaces it. All
    /// other buffers hold one image's (or one layer's) working set at a
    /// time regardless of batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn for_batch(cfg: &crate::EdeaConfig, batch: usize) -> Self {
        assert!(batch > 0, "batch must be non-empty");
        Self {
            ifmap: TrackedBuffer::new("dwc_ifmap", cfg.ifmap_buf_bytes),
            dwc_weight: TrackedBuffer::new("dwc_weight", cfg.dwc_weight_buf_bytes),
            offline: TrackedBuffer::new("offline", cfg.offline_buf_bytes),
            intermediate: TrackedBuffer::new("intermediate", cfg.intermediate_buf_bytes),
            pwc_weight: TrackedBuffer::new("pwc_weight", cfg.pwc_weight_buf_bytes),
            psum: TrackedBuffer::new("psum", cfg.psum_buf_bytes * batch),
            external: ExternalMemory::default(),
        }
    }

    /// Total on-chip SRAM bytes read.
    #[must_use]
    pub fn onchip_reads(&self) -> u64 {
        self.ifmap.reads()
            + self.dwc_weight.reads()
            + self.offline.reads()
            + self.intermediate.reads()
            + self.pwc_weight.reads()
            + self.psum.reads()
    }

    /// Total on-chip SRAM bytes written.
    #[must_use]
    pub fn onchip_writes(&self) -> u64 {
        self.ifmap.writes()
            + self.dwc_weight.writes()
            + self.offline.writes()
            + self.intermediate.writes()
            + self.pwc_weight.writes()
            + self.psum.writes()
    }

    /// Folds a lane-private buffer set's counters into this one, in the
    /// caller's (lane) order — the parallel portion loop's reduction.
    pub(crate) fn absorb(&mut self, other: &Self) {
        self.ifmap.absorb(&other.ifmap);
        self.dwc_weight.absorb(&other.dwc_weight);
        self.offline.absorb(&other.offline);
        self.intermediate.absorb(&other.intermediate);
        self.pwc_weight.absorb(&other.pwc_weight);
        self.psum.absorb(&other.psum);
        self.external.absorb(&other.external);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdeaConfig;

    #[test]
    fn fill_checks_capacity() {
        let mut b = TrackedBuffer::new("test", 100);
        b.fill(100).unwrap();
        assert_eq!(b.peak(), 100);
        let err = b.fill(101).unwrap_err();
        assert!(matches!(
            err,
            CoreError::BufferOverflow { buffer: "test", .. }
        ));
    }

    #[test]
    fn append_accumulates_and_overflows() {
        let mut b = TrackedBuffer::new("test", 10);
        b.append(6).unwrap();
        b.append(4).unwrap();
        assert!(b.append(1).is_err());
        b.clear();
        b.append(10).unwrap();
        assert_eq!(b.writes(), 20);
        assert_eq!(b.peak(), 10);
    }

    #[test]
    fn counters_accumulate() {
        let mut b = TrackedBuffer::new("test", 1000);
        b.read(10);
        b.read(20);
        b.fill(500).unwrap();
        assert_eq!(b.reads(), 30);
        assert_eq!(b.writes(), 500);
    }

    #[test]
    fn external_memory_totals() {
        let mut e = ExternalMemory::default();
        e.read_weights(60);
        e.read_params(30);
        e.read_ifmap(10);
        e.write(50);
        assert_eq!(e.reads(), 100);
        assert_eq!(e.total(), 150);
    }

    #[test]
    fn batched_set_scales_only_the_psum_banks() {
        let cfg = EdeaConfig::paper();
        let one = BufferSet::new(&cfg);
        let four = BufferSet::for_batch(&cfg, 4);
        assert_eq!(four.psum.capacity(), 4 * one.psum.capacity());
        assert_eq!(four.ifmap.capacity(), one.ifmap.capacity());
        assert_eq!(four.pwc_weight.capacity(), one.pwc_weight.capacity());
        assert_eq!(four.intermediate.capacity(), one.intermediate.capacity());
    }

    #[test]
    fn buffer_set_aggregates() {
        let mut set = BufferSet::new(&EdeaConfig::paper());
        set.ifmap.read(5);
        set.psum.fill(7).unwrap();
        assert_eq!(set.onchip_reads(), 5);
        assert_eq!(set.onchip_writes(), 7);
    }

    #[test]
    fn paper_capacities_hold_worst_layers() {
        let set = BufferSet::new(&EdeaConfig::paper());
        // Layer-3 psums: 8×8 portion × 256 kernels × 4 B.
        assert!(set.psum.capacity() >= 8 * 8 * 256 * 4);
        // Deepest DWC weights: 3·3·1024.
        assert!(set.dwc_weight.capacity() >= 9 * 1024);
        // Widest PWC weight slice: 8 × 1024, double-buffered.
        assert!(set.pwc_weight.capacity() >= 2 * 8 * 1024);
        // Stride-2 portion window: 17×17×8, double-buffered.
        assert!(set.ifmap.capacity() >= 2 * 17 * 17 * 8);
    }
}
