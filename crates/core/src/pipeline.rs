//! Cycle-accurate pipeline simulation (paper Fig. 7).
//!
//! The analytic model of [`crate::timing`] asserts the closed form
//! `(9 + S·Kt)` per portion-pass; this module *derives* that number by
//! actually clocking the pipeline: a cycle loop in which the load stages,
//! the DWC engine, the Non-Conv unit, the (double-buffered) intermediate
//! buffer and the PWC engine advance concurrently, exactly as Fig. 7 draws
//! them. The simulation also emits a stage/cycle trace from which the
//! Fig. 7 timing diagram is regenerated as text.

use edea_nn::workload::LayerShape;

use crate::config::EdeaConfig;
use crate::schedule::{portions, spatial_tiles};

/// Pipeline stages, in Fig. 7's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// "DWC Input Ifmap & Weight" — the load phase of the initiation.
    DwcLoad,
    /// "DWC Engine Process" — one DWC engine cycle.
    DwcProcess,
    /// "DWC Input offline Data" — Non-Conv parameter fetch.
    OfflineLoad,
    /// "Non-Conv Unit Process".
    NonConv,
    /// "Write Intermediate Buffer".
    IntermediateWrite,
    /// "PWC Input Weight" — kernel-tile weight fetch.
    PwcWeightLoad,
    /// "PWC Engine Process" — one PWC engine cycle.
    PwcProcess,
    /// "Output Data" — psum drain / write-back.
    Output,
}

impl Stage {
    /// All stages in display order.
    #[must_use]
    pub fn all() -> [Stage; 8] {
        [
            Stage::DwcLoad,
            Stage::DwcProcess,
            Stage::OfflineLoad,
            Stage::NonConv,
            Stage::IntermediateWrite,
            Stage::PwcWeightLoad,
            Stage::PwcProcess,
            Stage::Output,
        ]
    }

    /// Display label (as in Fig. 7).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Stage::DwcLoad => "DWC Input Ifmap & Weight",
            Stage::DwcProcess => "DWC Engine Process",
            Stage::OfflineLoad => "DWC Input offline Data",
            Stage::NonConv => "Non-Conv Unit Process",
            Stage::IntermediateWrite => "Write Intermediate Buffer",
            Stage::PwcWeightLoad => "PWC Input Weight",
            Stage::PwcProcess => "PWC Engine Process",
            Stage::Output => "Output Data",
        }
    }
}

/// One traced stage occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock cycle (0-based from layer start).
    pub cycle: u64,
    /// Stage active in that cycle.
    pub stage: Stage,
    /// Spatial tile index within the pass (DWC/PWC rows).
    pub tile: u32,
    /// Kernel tile index (PWC row), 0 elsewhere.
    pub kernel_tile: u32,
}

/// Result of the cycle-accurate simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Total cycles to execute the layer.
    pub total_cycles: u64,
    /// Cycles the DWC engine computed.
    pub dwc_busy: u64,
    /// Cycles the PWC engine computed.
    pub pwc_busy: u64,
    /// Stage trace (capped at the requested limit).
    pub events: Vec<TraceEvent>,
}

// Initiation schedule within the 9-cycle fill, per Fig. 7's T0…T8:
// cycles 0–3 load ifmap+weights, cycle 4 first DWC, cycle 5 offline fetch,
// cycle 6 Non-Conv, cycle 7 intermediate write, cycle 8 PWC weight load;
// the first PWC compute lands on cycle 9.
const LOAD_CYCLES: u64 = 4;
const DWC_FIRST: u64 = LOAD_CYCLES; // cycle 4
const OFFLINE_CYCLE: u64 = 5;
const NONCONV_FIRST: u64 = 6;
const IBUF_FIRST: u64 = 7;
const PWC_WEIGHT_CYCLE: u64 = 8;

/// Clocks one layer through the pipeline.
///
/// `trace_limit` caps the number of recorded events (the computation always
/// runs to completion).
///
/// # Panics
///
/// Panics if the layer kernel does not match the configuration.
#[must_use]
pub fn simulate_layer(shape: &LayerShape, cfg: &EdeaConfig, trace_limit: usize) -> PipelineResult {
    assert_eq!(shape.kernel, cfg.tile.kernel, "kernel mismatch");
    let kt = shape.k_out.div_ceil(cfg.tile.tk) as u64;
    let passes = shape.d_in.div_ceil(cfg.tile.td) as u64;
    let mut clock = 0u64;
    let mut dwc_busy = 0u64;
    let mut pwc_busy = 0u64;
    let mut events: Vec<TraceEvent> = Vec::new();
    let push = |e: TraceEvent, events: &mut Vec<TraceEvent>| {
        if events.len() < trace_limit {
            events.push(e);
        }
    };

    for portion in portions(shape.out_spatial(), cfg.portion_limit) {
        let s = spatial_tiles(&portion, cfg).len() as u64;
        for _pass in 0..passes {
            let base = clock;
            // --- initiation (fill) ---
            for c in 0..LOAD_CYCLES {
                push(
                    TraceEvent {
                        cycle: base + c,
                        stage: Stage::DwcLoad,
                        tile: 0,
                        kernel_tile: 0,
                    },
                    &mut events,
                );
            }
            push(
                TraceEvent {
                    cycle: base + OFFLINE_CYCLE,
                    stage: Stage::OfflineLoad,
                    tile: 0,
                    kernel_tile: 0,
                },
                &mut events,
            );
            push(
                TraceEvent {
                    cycle: base + PWC_WEIGHT_CYCLE,
                    stage: Stage::PwcWeightLoad,
                    tile: 0,
                    kernel_tile: 0,
                },
                &mut events,
            );
            // --- per-tile dataflow ---
            // Tile t's DWC fires as soon as the double-buffered intermediate
            // slot frees: tile 0 during the fill (cycle base+4), tile t ≥ 1
            // the moment the PWC starts consuming tile t−1. The PWC may only
            // read tile t one cycle after its intermediate-buffer write —
            // for Kt ≥ 3 this is always satisfied and the pipeline is
            // bubble-free (Eq. 1); for Kt < 3 real stalls appear, which this
            // simulation models and Eq. 1 does not.
            let mut pwc_cursor = base + cfg.init_cycles; // first PWC compute
            let mut prev_consume_start = pwc_cursor;
            for t in 0..s {
                let (dwc_cycle, nc_cycle, wr_cycle) = if t == 0 {
                    (base + DWC_FIRST, base + NONCONV_FIRST, base + IBUF_FIRST)
                } else {
                    let d = prev_consume_start;
                    (d, d + 1, d + 2)
                };
                push(
                    TraceEvent {
                        cycle: dwc_cycle,
                        stage: Stage::DwcProcess,
                        tile: t as u32,
                        kernel_tile: 0,
                    },
                    &mut events,
                );
                dwc_busy += 1;
                push(
                    TraceEvent {
                        cycle: nc_cycle,
                        stage: Stage::NonConv,
                        tile: t as u32,
                        kernel_tile: 0,
                    },
                    &mut events,
                );
                push(
                    TraceEvent {
                        cycle: wr_cycle,
                        stage: Stage::IntermediateWrite,
                        tile: t as u32,
                        kernel_tile: 0,
                    },
                    &mut events,
                );
                let ready = if t == 0 {
                    base + cfg.init_cycles
                } else {
                    wr_cycle + 1
                };
                let consume_start = pwc_cursor.max(ready);
                prev_consume_start = consume_start;
                pwc_cursor = consume_start;
                for k in 0..kt {
                    push(
                        TraceEvent {
                            cycle: pwc_cursor,
                            stage: Stage::PwcProcess,
                            tile: t as u32,
                            kernel_tile: k as u32,
                        },
                        &mut events,
                    );
                    pwc_busy += 1;
                    pwc_cursor += 1;
                }
            }
            clock = pwc_cursor;
        }
        // Output drain of the portion overlaps the next pass (Fig. 7's
        // bottom row); record it at the last cycle.
        push(
            TraceEvent {
                cycle: clock - 1,
                stage: Stage::Output,
                tile: 0,
                kernel_tile: 0,
            },
            &mut events,
        );
    }
    PipelineResult {
        total_cycles: clock,
        dwc_busy,
        pwc_busy,
        events,
    }
}

/// Renders the first `upto` cycles of a trace as a Fig. 7-style text Gantt
/// chart (one row per stage, `█` marks activity).
#[must_use]
pub fn render_gantt(events: &[TraceEvent], upto: u64) -> String {
    let mut out = String::new();
    let width = upto as usize;
    for stage in Stage::all() {
        let mut row = vec![' '; width];
        for e in events.iter().filter(|e| e.stage == stage && e.cycle < upto) {
            row[e.cycle as usize] = '█';
        }
        out.push_str(&format!("{:<26}|", stage.label()));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    let mut ticks = String::new();
    for c in 0..width {
        ticks.push(if c % 5 == 0 { '\'' } else { ' ' });
    }
    out.push_str(&format!("{:<26}|{}|\n", "cycle (T0 + n)", ticks));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    #[test]
    fn pipeline_matches_analytic_model_on_all_layers() {
        // The emergent cycle count of the clocked pipeline must equal
        // Eq. 1 × Eq. 2 for every MobileNetV1 layer.
        for l in mobilenet_v1_cifar10() {
            let sim = simulate_layer(&l, &cfg(), 0);
            let analytic = timing::layer_cycles(&l, &cfg());
            assert_eq!(sim.total_cycles, analytic.total(), "layer {}", l.index);
            assert_eq!(sim.dwc_busy, analytic.dwc_busy, "layer {}", l.index);
            assert_eq!(sim.pwc_busy, analytic.pwc_busy, "layer {}", l.index);
        }
    }

    #[test]
    fn first_pwc_output_after_nine_cycles() {
        // Fig. 7: "the initiation takes 9 clock cycles before generating the
        // first PWC output result".
        let l = mobilenet_v1_cifar10()[0];
        let sim = simulate_layer(&l, &cfg(), 10_000);
        let first_pwc = sim
            .events
            .iter()
            .find(|e| e.stage == Stage::PwcProcess)
            .expect("pwc fired");
        assert_eq!(first_pwc.cycle, 9);
    }

    #[test]
    fn stage_order_within_initiation() {
        let l = mobilenet_v1_cifar10()[6];
        let sim = simulate_layer(&l, &cfg(), 10_000);
        let first = |s: Stage| sim.events.iter().find(|e| e.stage == s).unwrap().cycle;
        assert!(first(Stage::DwcLoad) < first(Stage::DwcProcess));
        assert!(first(Stage::DwcProcess) < first(Stage::NonConv));
        assert!(first(Stage::NonConv) < first(Stage::IntermediateWrite));
        assert!(first(Stage::IntermediateWrite) < first(Stage::PwcProcess));
        assert_eq!(first(Stage::OfflineLoad), 5);
        assert_eq!(first(Stage::PwcWeightLoad), 8);
    }

    #[test]
    fn dwc_and_pwc_overlap_in_time() {
        // Dual-engine parallelism: there must exist cycles where a DWC
        // compute and a PWC compute happen simultaneously.
        let l = mobilenet_v1_cifar10()[0];
        let sim = simulate_layer(&l, &cfg(), 50_000);
        let dwc: std::collections::BTreeSet<u64> = sim
            .events
            .iter()
            .filter(|e| e.stage == Stage::DwcProcess)
            .map(|e| e.cycle)
            .collect();
        let overlap = sim
            .events
            .iter()
            .filter(|e| e.stage == Stage::PwcProcess)
            .any(|e| dwc.contains(&e.cycle));
        assert!(overlap, "engines never overlapped");
    }

    #[test]
    fn pwc_never_stalls_in_steady_state() {
        // Within one pass the PWC retires exactly one tile per cycle from
        // cycle 9 to the end — no bubbles.
        let l = mobilenet_v1_cifar10()[12]; // single portion, S=1, Kt=64
        let sim = simulate_layer(&l, &cfg(), 200_000);
        let mut pwc_cycles: Vec<u64> = sim
            .events
            .iter()
            .filter(|e| e.stage == Stage::PwcProcess && e.cycle < 73)
            .map(|e| e.cycle)
            .collect();
        pwc_cycles.sort_unstable();
        assert_eq!(pwc_cycles.len(), 64);
        for (i, c) in pwc_cycles.iter().enumerate() {
            assert_eq!(*c, 9 + i as u64);
        }
    }

    #[test]
    fn gantt_renders_all_stage_rows() {
        let l = mobilenet_v1_cifar10()[0];
        let sim = simulate_layer(&l, &cfg(), 10_000);
        let g = render_gantt(&sim.events, 24);
        for stage in Stage::all() {
            assert!(g.contains(stage.label()), "missing row {}", stage.label());
        }
        assert!(g.contains('█'));
    }

    #[test]
    fn narrow_kernel_workloads_stall() {
        // With Kt = 1 the intermediate write cannot stay ahead of a
        // one-cycle-per-tile PWC: the clocked pipeline exposes bubbles the
        // closed-form Eq. 1 does not model. (MobileNetV1 never enters this
        // regime — its smallest K is 64, i.e. Kt = 4.)
        use edea_nn::workload::LayerShape;
        let l = LayerShape::dsc(0, 8, 8, 16, 1, 3);
        let sim = simulate_layer(&l, &cfg(), 0);
        let analytic = timing::layer_cycles(&l, &cfg());
        assert!(
            sim.total_cycles > analytic.total(),
            "{} vs {}",
            sim.total_cycles,
            analytic.total()
        );
    }

    #[test]
    fn trace_limit_caps_events_not_cycles() {
        let l = mobilenet_v1_cifar10()[0];
        let a = simulate_layer(&l, &cfg(), 10);
        let b = simulate_layer(&l, &cfg(), 0);
        assert_eq!(a.events.len(), 10);
        assert!(b.events.is_empty());
        assert_eq!(a.total_cycles, b.total_cycles);
    }
}
