//! Tile/portion iteration of the chosen dataflow.
//!
//! The DSE selected `La` with `Tn = Tm = 2`, `Td = 8`, `Tk = 16`; the
//! realized hardware additionally splits large feature maps into spatial
//! **portions** (ifmap-buffer constraint) and, thanks to the intermediate
//! buffer, runs the kernel loop innermost at tile granularity (Fig. 7):
//!
//! ```text
//! for portion in portions(ofmap):          # ≤ 8×8 ofmap pixels
//!   for ct in 0..⌈D/Td⌉:                   # channel passes
//!     (9-cycle initiation: load ifmap slice, weights, offline params)
//!     for st in spatial_tiles(portion):    # 2×2 ofmap each
//!       DWC tile → Non-Conv → intermediate buffer     (1 cycle)
//!       for kt in 0..⌈K/Tk⌉:               # kernel tiles
//!         PWC tile → psum[st][kt] += …                (1 cycle each)
//!   drain psums → Non-Conv → output                   (overlapped)
//! ```
//!
//! # Batched schedule
//!
//! For multi-image inference the nest gains an image loop *inside* the
//! channel pass, so every external weight fetch — the layer's DWC kernels
//! and offline parameters, and the per-pass PWC weight slice — stays
//! resident and serves the whole batch ([`WeightResidency::PerBatch`]):
//!
//! ```text
//! for portion in portions(ofmap):
//!   for ct in 0..⌈D/Td⌉:
//!     load DWC weight slice + offline params + PWC weight slice   (once)
//!     for img in 0..N:                     # batch loop
//!       load img's ifmap slice (per-image initiation)
//!       for st in spatial_tiles(portion):  # as in the per-image nest
//!         …
//!   drain each image's psums → Non-Conv → output
//! ```
//!
//! Ifmap reads and ofmap writes remain per-image; weight traffic is paid
//! once per batch. The cost is psum SRAM: each in-flight image holds its
//! own psum residency per portion (see
//! [`crate::buffer::BufferSet::for_batch`]).

use crate::config::EdeaConfig;
use crate::CoreError;
use edea_nn::workload::{LayerShape, StageOp};

/// Checks that one layer shape maps onto the engine geometry: channels a
/// multiple of `Td`, kernels of `Tk`, output size of `Tn`, and the stage
/// kernel matching the engine — `Dsc` stages run the engine's depthwise
/// kernel, `PwcOnly` stages (inverted-residual expand/project) must be
/// 1×1 with stride 1 and no padding. The single source of this rule — the
/// accelerator's per-layer check and the serving layer's network
/// validation both delegate here.
///
/// The generalized shape axes ([`LayerShape::dilation`],
/// [`LayerShape::depth_multiplier`], asymmetric [`LayerShape::padding`])
/// exist for schedule-space exploration; the realized datapath executes
/// only their degenerate settings, and this check is where the boundary is
/// enforced with a typed error instead of silent miscomputation.
///
/// # Errors
///
/// [`CoreError::UnsupportedShape`] naming the violated constraint.
pub fn check_layer_geometry(s: &LayerShape, cfg: &EdeaConfig) -> Result<(), CoreError> {
    let t = &cfg.tile;
    if s.d_in % t.td != 0 {
        return Err(CoreError::UnsupportedShape {
            detail: format!(
                "layer {}: d_in {} not a multiple of Td {}",
                s.index, s.d_in, t.td
            ),
        });
    }
    if s.k_out % t.tk != 0 {
        return Err(CoreError::UnsupportedShape {
            detail: format!(
                "layer {}: k_out {} not a multiple of Tk {}",
                s.index, s.k_out, t.tk
            ),
        });
    }
    if s.out_spatial() % t.tn != 0 {
        return Err(CoreError::UnsupportedShape {
            detail: format!(
                "layer {}: output size {} not a multiple of Tn {}",
                s.index,
                s.out_spatial(),
                t.tn
            ),
        });
    }
    if s.dilation != 1 {
        return Err(CoreError::UnsupportedShape {
            detail: format!(
                "layer {}: dilation {} not supported by the datapath",
                s.index, s.dilation
            ),
        });
    }
    if s.depth_multiplier != 1 {
        return Err(CoreError::UnsupportedShape {
            detail: format!(
                "layer {}: depth multiplier {} not supported by the datapath",
                s.index, s.depth_multiplier
            ),
        });
    }
    match s.op {
        StageOp::Dsc => {
            if s.kernel != t.kernel {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: kernel {} != engine kernel {}",
                        s.index, s.kernel, t.kernel
                    ),
                });
            }
            if !s.padding.is_symmetric() {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: asymmetric padding ({}, {}) not supported by the datapath",
                        s.index, s.padding.before, s.padding.after
                    ),
                });
            }
        }
        StageOp::PwcOnly => {
            if s.kernel != 1 || s.stride != 1 || s.padding.total() != 0 {
                return Err(CoreError::UnsupportedShape {
                    detail: format!(
                        "layer {}: PwcOnly stage must be 1x1 stride-1 unpadded \
                         (kernel {}, stride {}, padding ({}, {}))",
                        s.index, s.kernel, s.stride, s.padding.before, s.padding.after
                    ),
                });
            }
        }
    }
    Ok(())
}

/// When external weight/parameter fetches are (re)paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightResidency {
    /// Every image re-fetches all weight tiles — the per-image baseline.
    #[default]
    PerImage,
    /// Weight tiles are fetched once and stay resident across the batch.
    PerBatch,
}

/// External weight bytes one image's layer execution fetches: the DWC
/// kernels (once per layer) plus the PWC weight slice re-fetched for every
/// portion × channel pass (`P·⌈D/Td⌉·Td·K`).
#[must_use]
pub fn layer_weight_fetch_bytes(shape: &LayerShape, cfg: &EdeaConfig) -> u64 {
    let b = crate::timing::layer_cycles(shape, cfg);
    shape.dwc_params() + b.portions * b.channel_passes * (cfg.tile.td * shape.k_out) as u64
}

/// External offline-parameter bytes one image's layer execution fetches:
/// two 24-bit `(k, b)` words per channel at each Non-Conv boundary the
/// stage actually crosses. A `Dsc` stage pays both boundaries (the
/// DWC-side set covers the depthwise output channels — `d_in ×` the depth
/// multiplier); a `PwcOnly` stage has no DWC-side Non-Conv, so only the
/// output-side set is fetched.
#[must_use]
pub fn layer_param_fetch_bytes(shape: &LayerShape) -> u64 {
    match shape.op {
        StageOp::Dsc => 6 * (shape.dwc_out_channels() + shape.k_out) as u64,
        StageOp::PwcOnly => 6 * shape.k_out as u64,
    }
}

/// External weight + offline-parameter bytes a batch of `n` images fetches
/// under the given residency: `n×` the per-image figure when every image
/// reloads, `1×` when tiles stay resident.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn batch_weight_fetch_bytes(
    shape: &LayerShape,
    cfg: &EdeaConfig,
    n: usize,
    residency: WeightResidency,
) -> u64 {
    assert!(n > 0, "batch must be non-empty");
    let per_image = layer_weight_fetch_bytes(shape, cfg) + layer_param_fetch_bytes(shape);
    match residency {
        WeightResidency::PerImage => n as u64 * per_image,
        WeightResidency::PerBatch => per_image,
    }
}

/// A spatial portion: a rectangle of ofmap pixels processed with one psum
/// residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Portion {
    /// First ofmap row.
    pub row0: usize,
    /// First ofmap column.
    pub col0: usize,
    /// Rows of ofmap pixels.
    pub rows: usize,
    /// Columns of ofmap pixels.
    pub cols: usize,
}

impl Portion {
    /// Ofmap pixels in this portion.
    #[must_use]
    pub fn pixels(&self) -> usize {
        self.rows * self.cols
    }

    /// The ifmap region this portion reads (in *unpadded* ifmap
    /// coordinates, clipped to the map): returns
    /// `(row0, col0, rows, cols)` of the input window including halo.
    #[must_use]
    pub fn input_region(
        &self,
        stride: usize,
        kernel: usize,
        pad: usize,
        in_spatial: usize,
    ) -> (usize, usize, usize, usize) {
        self.input_region_general(stride, kernel, 1, pad, in_spatial)
    }

    /// [`Portion::input_region`] generalized over dilation and a
    /// possibly-asymmetric leading pad: the window is computed with the
    /// *effective* kernel extent `(kernel−1)·dilation + 1` and shifted by
    /// `pad_before` (the trailing pad only widens the padded map, so it
    /// never moves the window origin). Underflow below the map is clipped
    /// to zero, overflow clipped to `in_spatial` — the region never
    /// escapes the real map (proven over the generalized axes by the
    /// `schedule_properties` suite).
    #[must_use]
    pub fn input_region_general(
        &self,
        stride: usize,
        kernel: usize,
        dilation: usize,
        pad_before: usize,
        in_spatial: usize,
    ) -> (usize, usize, usize, usize) {
        let eff = (kernel - 1) * dilation + 1;
        // Padded-coordinate window: [row0*stride, row0*stride + (rows-1)*stride + eff)
        let r0p = self.row0 * stride;
        let c0p = self.col0 * stride;
        let rows_p = (self.rows - 1) * stride + eff;
        let cols_p = (self.cols - 1) * stride + eff;
        // Clip to real (unpadded) extent. A window lying entirely inside
        // the trailing pad (possible with large asymmetric `after` pads)
        // clips to an empty region rather than underflowing.
        let r1 = (r0p + rows_p).saturating_sub(pad_before).min(in_spatial);
        let c1 = (c0p + cols_p).saturating_sub(pad_before).min(in_spatial);
        let r0 = r0p.saturating_sub(pad_before).min(r1);
        let c0 = c0p.saturating_sub(pad_before).min(c1);
        (r0, c0, r1 - r0, c1 - c0)
    }
}

/// A spatial tile inside a portion: `Tn×Tm` ofmap pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialTile {
    /// First ofmap row.
    pub row0: usize,
    /// First ofmap column.
    pub col0: usize,
}

/// Splits an `out_spatial × out_spatial` ofmap into portions of at most
/// `limit × limit` pixels (row-major).
#[must_use]
pub fn portions(out_spatial: usize, limit: usize) -> Vec<Portion> {
    let edges = crate::timing::portion_edges(out_spatial, limit);
    let mut out = Vec::new();
    let mut row0 = 0;
    for &rows in &edges {
        let mut col0 = 0;
        for &cols in &edges {
            out.push(Portion {
                row0,
                col0,
                rows,
                cols,
            });
            col0 += cols;
        }
        row0 += rows;
    }
    out
}

/// Spatial tiles of a portion, row-major, each anchored at a multiple of
/// `(Tn, Tm)` relative to the portion origin.
#[must_use]
pub fn spatial_tiles(p: &Portion, cfg: &EdeaConfig) -> Vec<SpatialTile> {
    let mut tiles = Vec::new();
    let mut r = 0;
    while r < p.rows {
        let mut c = 0;
        while c < p.cols {
            tiles.push(SpatialTile {
                row0: p.row0 + r,
                col0: p.col0 + c,
            });
            c += cfg.tile.tm;
        }
        r += cfg.tile.tn;
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EdeaConfig {
        EdeaConfig::paper()
    }

    #[test]
    fn geometry_check_is_op_aware() {
        use edea_nn::workload::Padding;
        // A well-formed Dsc stage and a well-formed PwcOnly stage pass.
        let dsc = LayerShape::dsc(0, 16, 8, 16, 1, 3);
        check_layer_geometry(&dsc, &cfg()).unwrap();
        let pwc = LayerShape::pwc(1, 16, 8, 16);
        check_layer_geometry(&pwc, &cfg()).unwrap();

        // The generalized axes are schedule-space only: each one is
        // rejected with a typed error naming the constraint.
        let reject = |s: &LayerShape, needle: &str| {
            let err = check_layer_geometry(s, &cfg()).unwrap_err();
            match err {
                CoreError::UnsupportedShape { detail } => {
                    assert!(detail.contains(needle), "{detail:?} missing {needle:?}");
                }
                other => panic!("expected UnsupportedShape, got {other:?}"),
            }
        };
        let mut dilated = dsc;
        dilated.dilation = 2;
        reject(&dilated, "dilation");
        let mut multi = dsc;
        multi.depth_multiplier = 4;
        reject(&multi, "depth multiplier");
        let mut lopsided = dsc;
        lopsided.in_spatial = 15;
        lopsided.padding = Padding {
            before: 1,
            after: 0,
        };
        reject(&lopsided, "asymmetric padding");
        // A PwcOnly stage that is not 1×1 stride-1 unpadded is malformed.
        let mut strided = pwc;
        strided.in_spatial = 32;
        strided.stride = 2;
        reject(&strided, "PwcOnly");
    }

    #[test]
    fn pwc_only_param_fetch_skips_the_dwc_side() {
        // Dsc offline params cover both Non-Conv stages (6 bytes per
        // channel each side); a PwcOnly stage has no DWC-side Non-Conv.
        let dsc = LayerShape::dsc(0, 16, 8, 16, 1, 3);
        assert_eq!(layer_param_fetch_bytes(&dsc), 6 * (8 + 16));
        let pwc = LayerShape::pwc(1, 16, 8, 16);
        assert_eq!(layer_param_fetch_bytes(&pwc), 6 * 16);
    }

    #[test]
    fn portions_tile_the_plane_disjointly() {
        for n in [2usize, 4, 8, 16, 32] {
            let ps = portions(n, 8);
            let mut covered = vec![false; n * n];
            for p in &ps {
                for r in p.row0..p.row0 + p.rows {
                    for c in p.col0..p.col0 + p.cols {
                        assert!(!covered[r * n + c], "overlap at ({r},{c})");
                        covered[r * n + c] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&v| v), "n={n} not fully covered");
        }
    }

    #[test]
    fn portion_counts_match_timing_model() {
        use edea_nn::workload::mobilenet_v1_cifar10;
        for l in mobilenet_v1_cifar10() {
            let ps = portions(l.out_spatial(), cfg().portion_limit);
            let breakdown = crate::timing::layer_cycles(&l, &cfg());
            assert_eq!(ps.len() as u64, breakdown.portions, "layer {}", l.index);
            let tiles: u64 = ps
                .iter()
                .map(|p| spatial_tiles(p, &cfg()).len() as u64)
                .sum();
            assert_eq!(tiles, breakdown.spatial_tiles, "layer {}", l.index);
        }
    }

    #[test]
    fn spatial_tiles_are_2x2_anchored() {
        let p = Portion {
            row0: 8,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        let tiles = spatial_tiles(&p, &cfg());
        assert_eq!(tiles.len(), 16);
        assert_eq!(tiles[0], SpatialTile { row0: 8, col0: 0 });
        assert_eq!(tiles[1], SpatialTile { row0: 8, col0: 2 });
        assert_eq!(tiles[4], SpatialTile { row0: 10, col0: 0 });
    }

    #[test]
    fn input_region_stride1_includes_halo() {
        // 8×8 ofmap portion at origin, stride 1, 3×3 kernel, pad 1 on a
        // 32×32 map: reads rows −1..9 clipped to 0..9.
        let p = Portion {
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        let (r0, c0, rows, cols) = p.input_region(1, 3, 1, 32);
        assert_eq!((r0, c0), (0, 0));
        assert_eq!((rows, cols), (9, 9));
        // An interior portion sees the full 10×10 halo window.
        let p = Portion {
            row0: 8,
            col0: 8,
            rows: 8,
            cols: 8,
        };
        let (r0, c0, rows, cols) = p.input_region(1, 3, 1, 32);
        assert_eq!((r0, c0), (7, 7));
        assert_eq!((rows, cols), (10, 10));
    }

    #[test]
    fn input_region_stride2() {
        // 8×8 ofmap portion, stride 2: input window 17×17 (clipped at map
        // edges).
        let p = Portion {
            row0: 0,
            col0: 0,
            rows: 8,
            cols: 8,
        };
        let (_, _, rows, cols) = p.input_region(2, 3, 1, 32);
        assert_eq!((rows, cols), (16, 16)); // left/top clipped by pad
        let p = Portion {
            row0: 8,
            col0: 8,
            rows: 8,
            cols: 8,
        };
        let (r0, c0, rows, cols) = p.input_region(2, 3, 1, 32);
        assert_eq!((r0, c0), (15, 15));
        assert_eq!((rows, cols), (17, 17));
    }

    #[test]
    fn batched_weight_fetches_amortize_exactly() {
        use edea_nn::workload::mobilenet_v1_cifar10;
        for l in mobilenet_v1_cifar10() {
            let one = batch_weight_fetch_bytes(&l, &cfg(), 1, WeightResidency::PerBatch);
            for n in [1usize, 2, 4, 8, 16] {
                // Resident weights: independent of N.
                assert_eq!(
                    batch_weight_fetch_bytes(&l, &cfg(), n, WeightResidency::PerBatch),
                    one,
                    "layer {} n={n}",
                    l.index
                );
                // Baseline: exactly N×.
                assert_eq!(
                    batch_weight_fetch_bytes(&l, &cfg(), n, WeightResidency::PerImage),
                    n as u64 * one,
                    "layer {} n={n}",
                    l.index
                );
            }
        }
    }

    #[test]
    fn small_maps_are_single_portions() {
        let ps = portions(2, 8);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].pixels(), 4);
        assert_eq!(spatial_tiles(&ps[0], &cfg()).len(), 1);
    }
}
