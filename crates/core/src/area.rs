//! Area model (paper Fig. 8 dimensions, Fig. 9 left pie, Table III).
//!
//! Two parameterizations:
//!
//! * [`AreaBreakdown::paper`] — component areas transcribed from the die
//!   (825.032 µm × 699.52 µm = 0.577 mm²) and the Fig. 9 percentages; used
//!   when reproducing the paper's figures.
//! * [`UnitAreas`] + [`AreaBreakdown::from_unit_areas`] — first-principles
//!   areas per MAC / per byte, for scaling studies (e.g. "what if `Tk`
//!   doubles?"), calibrated so the paper configuration lands on the paper
//!   breakdown.

use crate::config::EdeaConfig;
use crate::paperdata;

/// Component areas in µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// PWC engine.
    pub pwc_um2: f64,
    /// DWC engine.
    pub dwc_um2: f64,
    /// Non-Conv units.
    pub nonconv_um2: f64,
    /// SRAM buffers (ifmap, weights, offline, psum).
    pub buffers_um2: f64,
    /// Intermediate buffer.
    pub intermediate_um2: f64,
    /// Control and everything else.
    pub control_um2: f64,
}

impl AreaBreakdown {
    /// The paper's silicon breakdown: Fig. 9 percentages applied to the
    /// Fig. 8 die (0.577 mm²).
    #[must_use]
    pub fn paper() -> Self {
        let die = paperdata::DIE_WIDTH_UM * paperdata::DIE_HEIGHT_UM;
        Self {
            pwc_um2: die * paperdata::area_pct::PWC / 100.0,
            dwc_um2: die * paperdata::area_pct::DWC / 100.0,
            nonconv_um2: die * paperdata::area_pct::NONCONV / 100.0,
            buffers_um2: die * paperdata::area_pct::BUFFERS / 100.0,
            intermediate_um2: die * paperdata::area_pct::INTERMEDIATE / 100.0,
            control_um2: die * paperdata::area_pct::CONTROL / 100.0,
        }
    }

    /// Derives the breakdown from unit areas and a configuration.
    #[must_use]
    pub fn from_unit_areas(cfg: &EdeaConfig, unit: &UnitAreas) -> Self {
        let sram_bytes = cfg.ifmap_buf_bytes
            + cfg.dwc_weight_buf_bytes
            + cfg.offline_buf_bytes
            + cfg.pwc_weight_buf_bytes
            + cfg.psum_buf_bytes;
        Self {
            pwc_um2: cfg.pwc_macs() as f64 * unit.mac_pwc_um2,
            dwc_um2: cfg.dwc_macs() as f64 * unit.mac_dwc_um2,
            nonconv_um2: cfg.tile.td as f64 * unit.nonconv_lane_um2,
            buffers_um2: sram_bytes as f64 * unit.sram_um2_byte,
            intermediate_um2: cfg.intermediate_buf_bytes as f64 * unit.rf_um2_byte,
            control_um2: unit.control_um2,
        }
    }

    /// Total area in µm².
    #[must_use]
    pub fn total_um2(&self) -> f64 {
        self.pwc_um2
            + self.dwc_um2
            + self.nonconv_um2
            + self.buffers_um2
            + self.intermediate_um2
            + self.control_um2
    }

    /// Total area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// Component shares as `(label, percent)` pairs, in Fig. 9 order.
    #[must_use]
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        let t = self.total_um2();
        vec![
            ("pwc", 100.0 * self.pwc_um2 / t),
            ("dwc", 100.0 * self.dwc_um2 / t),
            ("nonconv", 100.0 * self.nonconv_um2 / t),
            ("buffers", 100.0 * self.buffers_um2 / t),
            ("intermediate", 100.0 * self.intermediate_um2 / t),
            ("control", 100.0 * self.control_um2 / t),
        ]
    }

    /// PWC-to-DWC area ratio (paper: ≈1.7×, tracking the 1.78× PE ratio).
    #[must_use]
    pub fn pwc_to_dwc_ratio(&self) -> f64 {
        self.pwc_um2 / self.dwc_um2
    }

    /// Area efficiency in GOPS/mm² for a given throughput.
    #[must_use]
    pub fn area_efficiency(&self, gops: f64) -> f64 {
        gops / self.total_mm2()
    }
}

/// First-principles unit areas (µm²), 22 nm-calibrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitAreas {
    /// Per DWC MAC (multiplier + adder-tree share + pipeline registers).
    pub mac_dwc_um2: f64,
    /// Per PWC MAC.
    pub mac_pwc_um2: f64,
    /// Per Non-Conv lane (24×20-bit multiplier, adder, round/clip).
    pub nonconv_lane_um2: f64,
    /// Per SRAM byte (array + periphery).
    pub sram_um2_byte: f64,
    /// Per register-file byte.
    pub rf_um2_byte: f64,
    /// Fixed control overhead.
    pub control_um2: f64,
}

impl UnitAreas {
    /// Calibrated so that [`EdeaConfig::paper`] reproduces the paper's
    /// component areas.
    #[must_use]
    pub fn calibrated_22nm() -> Self {
        let paper = AreaBreakdown::paper();
        let cfg = EdeaConfig::paper();
        let sram_bytes = (cfg.ifmap_buf_bytes
            + cfg.dwc_weight_buf_bytes
            + cfg.offline_buf_bytes
            + cfg.pwc_weight_buf_bytes
            + cfg.psum_buf_bytes) as f64;
        Self {
            mac_dwc_um2: paper.dwc_um2 / cfg.dwc_macs() as f64,
            mac_pwc_um2: paper.pwc_um2 / cfg.pwc_macs() as f64,
            nonconv_lane_um2: paper.nonconv_um2 / cfg.tile.td as f64,
            sram_um2_byte: paper.buffers_um2 / sram_bytes,
            rf_um2_byte: paper.intermediate_um2 / cfg.intermediate_buf_bytes as f64,
            control_um2: paper.control_um2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_matches_die() {
        let a = AreaBreakdown::paper();
        assert!((a.total_mm2() - 0.577).abs() < 0.001, "{}", a.total_mm2());
        // The paper rounds to 0.58 mm².
        assert!((a.total_mm2() - paperdata::headline::AREA_MM2).abs() < 0.005);
    }

    #[test]
    fn paper_shares_match_fig9() {
        let a = AreaBreakdown::paper();
        let shares = a.shares();
        let want = [
            ("pwc", 47.90),
            ("dwc", 28.37),
            ("nonconv", 14.87),
            ("buffers", 5.38),
            ("intermediate", 2.48),
            ("control", 1.00),
        ];
        for ((name, got), (wname, wval)) in shares.iter().zip(want) {
            assert_eq!(*name, wname);
            assert!((got - wval).abs() < 0.01, "{name}: {got} vs {wval}");
        }
    }

    #[test]
    fn pwc_to_dwc_ratio_matches_paper() {
        // "The area ratio of PWC to DWC is approximately 1.7X."
        let a = AreaBreakdown::paper();
        assert!(
            (a.pwc_to_dwc_ratio() - 1.69).abs() < 0.02,
            "{}",
            a.pwc_to_dwc_ratio()
        );
    }

    #[test]
    fn area_efficiency_matches_table3() {
        // 973.55 GOPS / 0.58 mm² = 1678.53 GOPS/mm².
        let ae = paperdata::headline::PEAK_EE_GOPS / paperdata::headline::AREA_MM2;
        assert!((ae - paperdata::headline::AREA_EFF_GOPS_MM2).abs() < 1.0);
        let a = AreaBreakdown::paper();
        let got = a.area_efficiency(paperdata::headline::PEAK_EE_GOPS);
        assert!(
            (got - 1687.0).abs() < 5.0,
            "{got} (paper rounds area up to 0.58)"
        );
    }

    #[test]
    fn calibrated_unit_areas_round_trip() {
        let unit = UnitAreas::calibrated_22nm();
        let derived = AreaBreakdown::from_unit_areas(&EdeaConfig::paper(), &unit);
        let paper = AreaBreakdown::paper();
        assert!((derived.total_um2() - paper.total_um2()).abs() < 1.0);
        assert!((derived.pwc_um2 - paper.pwc_um2).abs() < 1.0);
        assert!((derived.buffers_um2 - paper.buffers_um2).abs() < 1.0);
    }

    #[test]
    fn scaling_pe_arrays_scales_area_linearly() {
        // Doubling Tk doubles the PWC array and grows the die accordingly —
        // the "friendly to scaling" claim, area side.
        let unit = UnitAreas::calibrated_22nm();
        let mut cfg = EdeaConfig::paper();
        cfg.tile = edea_dse::TileConfig::new(2, 2, 8, 32, 3);
        cfg.intermediate_buf_bytes = 128;
        let scaled = AreaBreakdown::from_unit_areas(&cfg, &unit);
        let base = AreaBreakdown::from_unit_areas(&EdeaConfig::paper(), &unit);
        assert!((scaled.pwc_um2 / base.pwc_um2 - 2.0).abs() < 1e-9);
        assert_eq!(scaled.dwc_um2, base.dwc_um2);
    }

    #[test]
    fn unit_areas_are_physically_plausible() {
        let unit = UnitAreas::calibrated_22nm();
        // An int8 MAC in 22 nm is a few hundred µm²; SRAM well under 1 µm²/b
        // would be implausible, above 5 µm²/B generous. These bounds catch
        // transcription errors rather than assert precision.
        assert!(
            unit.mac_dwc_um2 > 100.0 && unit.mac_dwc_um2 < 1000.0,
            "{unit:?}"
        );
        assert!(
            unit.mac_pwc_um2 > 100.0 && unit.mac_pwc_um2 < 1000.0,
            "{unit:?}"
        );
        assert!(
            unit.sram_um2_byte > 0.05 && unit.sram_um2_byte < 5.0,
            "{unit:?}"
        );
    }
}
