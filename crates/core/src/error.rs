//! Error type for the accelerator simulator.

use std::error::Error;
use std::fmt;

/// Error produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The layer/input presented to the accelerator does not match its
    /// configuration (e.g. channel count not a multiple of `Td`).
    UnsupportedShape {
        /// Human-readable description.
        detail: String,
    },
    /// An on-chip buffer would overflow its configured capacity.
    BufferOverflow {
        /// Which buffer.
        buffer: &'static str,
        /// Bytes required.
        required: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// A serving request is malformed (wrong input shape, duplicate id,
    /// mismatched stream lengths).
    InvalidRequest {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedShape { detail } => write!(f, "unsupported shape: {detail}"),
            CoreError::BufferOverflow {
                buffer,
                required,
                capacity,
            } => write!(
                f,
                "buffer {buffer} overflow: {required} bytes required, {capacity} available"
            ),
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            CoreError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::BufferOverflow {
            buffer: "psum",
            required: 10,
            capacity: 5,
        };
        let s = e.to_string();
        assert!(s.contains("psum") && s.contains("10") && s.contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
