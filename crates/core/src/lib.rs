//! # EDEA — Efficient Dual-Engine Accelerator for Depthwise Separable Convolution
//!
//! A faithful, bit-exact simulator of the EDEA accelerator (Chen et al.,
//! SOCC 2024): a 22 nm ASIC with **separate, parallel engines** for
//! depthwise (DWC) and pointwise (PWC) convolution, a **Non-Conv unit**
//! folding dequantization + batch norm + ReLU + requantization into one
//! Q8.16 multiply-add, and an **intermediate buffer** providing direct
//! DWC→PWC data transfer with no external-memory round trip.
//!
//! ## What this crate contains
//!
//! * [`config`] — the architecture parameters (Fig. 4/5: `Td = 8`,
//!   `Tk = 16`, `Tn = Tm = 2`, 288-MAC DWC engine, 512-MAC PWC engine,
//!   9-cycle initiation, 1 GHz @ 0.8 V).
//! * [`engine`] — bit-exact models of both PE arrays and their adder trees.
//! * [`nonconv`] — the Non-Conv unit (Fig. 6).
//! * [`buffer`] — the on-chip buffer set with access counting (Fig. 4).
//! * [`schedule`] — the tile/portion iteration of the chosen `La` dataflow,
//!   including the batched loop nest and its
//!   [`WeightResidency`](schedule::WeightResidency) accounting.
//! * [`accelerator`] — the functional simulator ([`Edea`]); verified
//!   bit-exact against `edea-nn`'s golden executor. [`Edea::run_batch`]
//!   holds weight tiles resident across a batch of images, cutting external
//!   weight traffic per image to `1/N` at the cost of one psum bank per
//!   in-flight image.
//! * [`plan`] / [`scratch`] — the hot-path support structures: pre-sliced
//!   weight plans ([`plan::NetworkPlan`], cached by long-lived sessions)
//!   and the reusable tile-buffer arena ([`scratch::TileScratch`]) that
//!   makes the steady-state tile loop allocation-free.
//! * [`timing`] — the analytic latency model (Eq. 1/Eq. 2) reproducing the
//!   paper's per-layer latency and throughput (Figs. 10, 13).
//! * [`pipeline`] — a cycle-accurate pipeline simulation (Fig. 7),
//!   cross-validated against [`timing`].
//! * [`power`] / [`area`] — calibrated energy and area models (Figs. 9,
//!   11, 12; layout dimensions of Fig. 8 via [`floorplan`]).
//! * [`scaling`] / [`compare`] — technology/voltage normalization and the
//!   state-of-the-art comparison (Table III).
//! * [`baseline`] — serial-dual and unified round-trip baselines for the
//!   ablation study.
//! * [`serve`] — the serving layer: a [`Backend`](serve::Backend) trait
//!   over the simulator / golden-reference / analytic execution paths and
//!   a deterministic batch-forming [`Scheduler`](serve::Scheduler)
//!   (max-batch + max-wait policy, simulated clock) that drains a request
//!   queue into [`Edea::run_batch`] and reports per-request latency and
//!   aggregate throughput/SLO statistics.
//! * [`par`] — the deterministic scoped thread pool: a host-`Parallelism`
//!   knob (default serial, `EDEA_THREADS` overridable) that fans
//!   independent portions of the tile loop and independent pool workers
//!   across `std::thread::scope` lanes under a strict static-partition /
//!   one-writer / fixed-order-reduction contract, so every simulated
//!   number stays bit-identical at every thread count.
//! * [`pool`] — the multi-accelerator pool: N backends, each with its own
//!   busy-until clock and weight residency, behind a
//!   [`Dispatcher`](pool::Dispatcher) routing requests by
//!   [`DispatchPolicy`](pool::DispatchPolicy) (round-robin, least-loaded,
//!   join-shortest-queue). The single-backend scheduler is the N = 1 case
//!   of its event loop; [`PoolReport`](pool::PoolReport) adds per-worker
//!   utilization, queue depth and the aggregate weight-DRAM-per-image
//!   replication cost.
//! * [`telemetry`] — deterministic observability on the simulated clock: a
//!   [`Telemetry`](telemetry::Telemetry) sink (ring-buffer
//!   [`Recorder`](telemetry::Recorder), zero-cost
//!   [`Disabled`](telemetry::Disabled)) recording the full request
//!   lifecycle as spans + events, a fixed-bucket metrics
//!   [`Registry`](telemetry::metrics::Registry), and Chrome-trace /
//!   Prometheus exporters — bit-identical at every thread count.
//!
//! ## Quickstart
//!
//! ```
//! use edea_core::accelerator::Edea;
//! use edea_core::config::EdeaConfig;
//! use edea_nn::mobilenet::MobileNetV1;
//! use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
//! use edea_nn::sparsity::SparsityProfile;
//! use edea_tensor::rng;
//!
//! // Build + quantize a (small) MobileNetV1, then run layer 0 on EDEA.
//! let mut model = MobileNetV1::synthetic(0.25, 7);
//! let calib = rng::synthetic_batch(2, 3, 32, 32, 9);
//! let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
//!     &mut model, &calib, &SparsityProfile::paper(), QuantStrategy::paper()).unwrap();
//! let edea = Edea::new(EdeaConfig::paper()).unwrap();
//! let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
//! let run = edea.run_layer(&qnet.layers()[0], &input).unwrap();
//! assert_eq!(run.stats.cycles, edea_core::timing::layer_cycles(
//!     &qnet.layers()[0].shape(), &EdeaConfig::paper()).total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod area;
pub mod baseline;
pub mod buffer;
pub mod compare;
pub mod config;
pub mod engine;
mod error;
pub mod floorplan;
pub mod nonconv;
pub mod paperdata;
pub mod par;
pub mod pipeline;
pub mod plan;
pub mod pool;
pub mod power;
pub mod scaling;
pub mod schedule;
pub mod scratch;
pub mod serve;
pub mod stats;
pub mod telemetry;
pub mod timing;
pub mod trace;

pub use accelerator::Edea;
pub use config::EdeaConfig;
pub use error::CoreError;
