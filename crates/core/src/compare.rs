//! State-of-the-art comparison (paper Table III).
//!
//! The published numbers of the four comparison designs, this work's
//! numbers (from the models in this crate), and the normalization to
//! 22 nm / 0.8 V / 8 bit. For each competitor both the paper's normalized
//! values and the values from our scaling rule are carried, so the bench
//! prints paper-vs-measured side by side.

use crate::paperdata;
use crate::scaling::{scale_area_efficiency, scale_energy_efficiency, OperatingPoint};

/// One Table III column.
#[derive(Debug, Clone, PartialEq)]
pub struct SotaEntry {
    /// Short citation label.
    pub name: &'static str,
    /// Venue/year as printed in Table III.
    pub venue: &'static str,
    /// Operating point.
    pub point: OperatingPoint,
    /// PE count.
    pub pe_count: u64,
    /// Benchmark network.
    pub benchmark: &'static str,
    /// Convolution types accelerated.
    pub conv_type: &'static str,
    /// Power in mW.
    pub power_mw: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Throughput in GOPS (8-bit-normalized where the paper does so).
    pub throughput_gops: f64,
    /// Energy efficiency in TOPS/W (8-bit-normalized).
    pub energy_eff: f64,
    /// Area efficiency in GOPS/mm² (8-bit-normalized).
    pub area_eff: f64,
    /// Paper's normalized energy efficiency (22 nm / 0.8 V).
    pub paper_norm_ee: f64,
    /// Paper's normalized area efficiency.
    pub paper_norm_ae: f64,
}

impl SotaEntry {
    /// Our normalization of the energy efficiency (already
    /// precision-normalized inputs, so only tech/voltage scale).
    #[must_use]
    pub fn our_norm_ee(&self) -> f64 {
        let mut from = self.point;
        from.precision_bits = 8; // energy_eff is stored 8-bit-normalized
        scale_energy_efficiency(self.energy_eff, &from, &OperatingPoint::edea())
    }

    /// Our normalization of the area efficiency.
    #[must_use]
    pub fn our_norm_ae(&self) -> f64 {
        let mut from = self.point;
        from.precision_bits = 8;
        scale_area_efficiency(self.area_eff, &from, &OperatingPoint::edea())
    }
}

/// The four comparison designs of Table III (with \[4\]'s two engines as
/// separate rows, as the paper prints them).
#[must_use]
pub fn sota_entries() -> Vec<SotaEntry> {
    vec![
        SotaEntry {
            name: "[16]",
            venue: "ISVLSI'19",
            point: OperatingPoint {
                tech_nm: 65.0,
                voltage: 1.08,
                precision_bits: 8,
            },
            pe_count: 256,
            benchmark: "MobileNetV1",
            conv_type: "DWC+PWC",
            power_mw: 55.4,
            freq_mhz: 100.0,
            area_mm2: 3.24,
            throughput_gops: 51.2,
            energy_eff: 0.92,
            area_eff: 15.8,
            paper_norm_ee: 7.73,
            paper_norm_ae: 266.86,
        },
        SotaEntry {
            name: "[17]",
            venue: "ICCE-TW'21",
            point: OperatingPoint {
                tech_nm: 40.0,
                voltage: 0.9,
                precision_bits: 16,
            },
            pe_count: 128,
            benchmark: "MobileNetV1",
            conv_type: "DWC+PWC",
            power_mw: 112.5,
            freq_mhz: 200.0,
            area_mm2: 2.168,
            // 8-bit-normalized values (paper: 38.8 GOPS → 155.2 with ‡).
            throughput_gops: 155.2,
            energy_eff: 1.36,
            area_eff: 71.6,
            paper_norm_ee: 4.32,
            paper_norm_ae: 290.12,
        },
        SotaEntry {
            name: "[18]",
            venue: "TCASI'24",
            point: OperatingPoint {
                tech_nm: 28.0,
                voltage: 0.9,
                precision_bits: 8,
            },
            pe_count: 288,
            benchmark: "DTN",
            conv_type: "SC+DSC",
            power_mw: 43.6,
            freq_mhz: 200.0,
            area_mm2: 1.485,
            throughput_gops: 215.6,
            energy_eff: 4.94,
            area_eff: 145.28,
            paper_norm_ee: 9.9,
            paper_norm_ae: 255.0,
        },
        SotaEntry {
            name: "[4] DWC",
            venue: "VLSI-SoC'23",
            point: OperatingPoint {
                tech_nm: 22.0,
                voltage: 0.8,
                precision_bits: 8,
            },
            pe_count: 72,
            benchmark: "MobileNetV1",
            conv_type: "DWC",
            power_mw: 25.6,
            freq_mhz: 1000.0,
            area_mm2: 0.25,
            throughput_gops: 129.8,
            energy_eff: 5.07,
            area_eff: 519.2,
            paper_norm_ee: 5.07,
            paper_norm_ae: 519.2,
        },
        SotaEntry {
            name: "[4] PWC",
            venue: "VLSI-SoC'23",
            point: OperatingPoint {
                tech_nm: 22.0,
                voltage: 0.8,
                precision_bits: 8,
            },
            pe_count: 72,
            benchmark: "MobileNetV1",
            conv_type: "PWC",
            power_mw: 29.16,
            freq_mhz: 1000.0,
            area_mm2: 0.25,
            throughput_gops: 115.38,
            energy_eff: 3.96,
            area_eff: 461.52,
            paper_norm_ee: 3.96,
            paper_norm_ae: 461.52,
        },
    ]
}

/// This work's Table III column, computed from the given measured values
/// (peak-efficiency point).
#[must_use]
pub fn this_work(power_mw: f64, throughput_gops: f64, area_mm2: f64) -> SotaEntry {
    let energy_eff = throughput_gops / power_mw; // GOPS/mW = TOPS/W
    SotaEntry {
        name: "This Work",
        venue: "SOCC'24",
        point: OperatingPoint::edea(),
        pe_count: 800,
        benchmark: "MobileNetV1",
        conv_type: "DWC+PWC",
        power_mw,
        freq_mhz: 1000.0,
        area_mm2,
        throughput_gops,
        energy_eff,
        area_eff: throughput_gops / area_mm2,
        paper_norm_ee: paperdata::headline::PEAK_TOPS_W,
        paper_norm_ae: paperdata::headline::AREA_EFF_GOPS_MM2,
    }
}

/// Display label for a batched "This Work" row.
#[must_use]
pub fn batch_label(n: usize) -> &'static str {
    match n {
        1 => "This Work (N=1)",
        2 => "This Work (N=2)",
        4 => "This Work (N=4)",
        8 => "This Work (N=8)",
        16 => "This Work (N=16)",
        _ => "This Work (batched)",
    }
}

/// This work's column under batched multi-image inference: the same
/// silicon and the same throughput (the schedule stays initiation-bound
/// per image), with `power_mw` lowered by the caller-computed interface
/// saving from weight-residency amortization.
///
/// The normalized columns equal the measured ones — the batched rows are
/// already at the 22 nm / 0.8 V / 8-bit reference point, and the paper has
/// no batched counterpart to quote.
#[must_use]
pub fn this_work_batched(
    n: usize,
    power_mw: f64,
    throughput_gops: f64,
    area_mm2: f64,
) -> SotaEntry {
    let base = this_work(power_mw, throughput_gops, area_mm2);
    SotaEntry {
        name: batch_label(n),
        venue: "SOCC'24 (ext.)",
        paper_norm_ee: base.energy_eff,
        paper_norm_ae: base.area_eff,
        ..base
    }
}

/// Speedup factors of this work over each competitor (normalized EE),
/// as quoted in the paper's Sec. IV-C.
#[must_use]
pub fn ee_advantages(ours: &SotaEntry, entries: &[SotaEntry]) -> Vec<(&'static str, f64)> {
    entries
        .iter()
        .map(|e| (e.name, ours.energy_eff / e.our_norm_ee()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_competitor_rows() {
        assert_eq!(sota_entries().len(), 5);
    }

    #[test]
    fn this_work_matches_paper_headline() {
        let w = this_work(72.5, 973.55, 0.58);
        assert!((w.energy_eff - 13.43).abs() < 0.01);
        assert!((w.area_eff - 1678.53).abs() < 0.5);
        assert_eq!(w.pe_count, 800);
    }

    #[test]
    fn batched_rows_monotonically_improve_efficiency() {
        // Lower interface power at the same throughput: EE must rise with
        // the batch, and every row keeps the silicon's area/throughput.
        let base = this_work(72.5, 973.55, 0.58);
        let mut last_ee = base.energy_eff;
        for (n, saving_mw) in [(2usize, 0.5), (4, 0.75), (8, 0.875), (16, 0.9375)] {
            let row = this_work_batched(n, 72.5 - saving_mw, 973.55, 0.58);
            assert!(row.energy_eff > last_ee, "N={n}");
            assert_eq!(row.throughput_gops, base.throughput_gops);
            assert_eq!(row.area_mm2, base.area_mm2);
            assert!(row.name.contains(&format!("N={n}")));
            last_ee = row.energy_eff;
        }
        assert_eq!(batch_label(3), "This Work (batched)");
    }

    #[test]
    fn pre_scaling_advantages_match_paper() {
        // "our work surpasses [16], [17], [18], [4] by 14.6X, 9.87X, 2.72X,
        // 2.65X in energy efficiency" (before technology scaling).
        let entries = sota_entries();
        let ours = this_work(72.5, 973.55, 0.58);
        let want = [14.6, 9.87, 2.72, 2.65];
        for (e, w) in entries.iter().zip(want) {
            let adv = ours.energy_eff / e.energy_eff;
            assert!((adv - w).abs() / w < 0.02, "{}: {adv} vs {w}", e.name);
        }
    }

    #[test]
    fn post_scaling_this_work_still_wins() {
        // "Post-scaling … our study maintains its advantage" — against both
        // the paper's normalized numbers and ours.
        let entries = sota_entries();
        let ours = this_work(72.5, 973.55, 0.58);
        for e in &entries {
            assert!(ours.energy_eff > e.paper_norm_ee, "{} paper-norm", e.name);
            assert!(ours.energy_eff > e.our_norm_ee(), "{} our-norm", e.name);
            assert!(ours.area_eff > e.paper_norm_ae, "{} paper-norm ae", e.name);
            assert!(ours.area_eff > e.our_norm_ae(), "{} our-norm ae", e.name);
        }
    }

    #[test]
    fn paper_post_scaling_factors_reproduced() {
        // "outperforming them by 1.74X, 3.11X, 1.37X, 2.65X in energy
        // efficiency" against the paper's normalized values.
        let entries = sota_entries();
        let ours = this_work(72.5, 973.55, 0.58);
        let want = [1.74, 3.11, 1.37, 2.65];
        for (e, w) in entries.iter().zip(want) {
            let adv = ours.energy_eff / e.paper_norm_ee;
            assert!((adv - w).abs() / w < 0.02, "{}: {adv} vs {w}", e.name);
        }
    }

    #[test]
    fn our_normalization_close_to_papers() {
        // The paper does not print its exact scaling rule; our
        // tech^1.5·V² (EE) / tech²·V² (AE) reproduces its normalized
        // numbers to ≈12 % / 20 %.
        for e in sota_entries() {
            let err = (e.our_norm_ee() - e.paper_norm_ee).abs() / e.paper_norm_ee;
            assert!(
                err < 0.12,
                "{}: our {} vs paper {}",
                e.name,
                e.our_norm_ee(),
                e.paper_norm_ee
            );
            let err_ae = (e.our_norm_ae() - e.paper_norm_ae).abs() / e.paper_norm_ae;
            assert!(
                err_ae < 0.20,
                "{}: ae our {} vs paper {}",
                e.name,
                e.our_norm_ae(),
                e.paper_norm_ae
            );
        }
    }

    #[test]
    fn area_efficiency_advantage_factors() {
        // "and by 6.29X, 7.79X, 6.58X, 3.23X in area efficiency" (paper
        // normalized values; [4] factor quoted against its DWC row).
        // Note: the [16]/[18]/[4] factors follow exactly from Table III's
        // normalized AEs (1678.53/266.86 = 6.29, /255 = 6.58, /519.2 =
        // 3.23), but the quoted 7.79× for [17] is inconsistent with its own
        // table value (1678.53/290.12 = 5.79) — we flag the discrepancy and
        // verify the self-consistent value.
        let entries = sota_entries();
        let ours = this_work(72.5, 973.55, 0.58);
        let want = [6.29, 5.79, 6.58, 3.23];
        for (e, w) in entries.iter().zip(want) {
            let adv = ours.area_eff / e.paper_norm_ae;
            assert!((adv - w).abs() / w < 0.03, "{}: {adv} vs {w}", e.name);
        }
    }
}
