//! Property tests of the portion geometry: `Portion::input_region` halo
//! clipping must never underflow, must hand every portion exactly the
//! (clipped) halo window its output pixels read, and the portions of a
//! layer must together read **every** ifmap pixel — for stride-1 and
//! stride-2 layers and for out_spatial values the portion limit does not
//! divide.

use edea_core::schedule::portions;
use proptest::prelude::*;

/// `out = (in + 2·pad − kernel) / stride + 1`, as the workload defines it.
fn out_dim(in_spatial: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (in_spatial + 2 * pad - kernel) / stride + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any map size, stride and portion limit: every portion's input
    /// region is a valid in-bounds rectangle (no index underflow), it is
    /// exactly the brute-force union of the halo windows of the portion's
    /// output pixels (clipped to the map), and the regions of all
    /// portions together cover the whole ifmap.
    #[test]
    fn input_region_is_exact_and_portions_cover_the_ifmap(
        in_spatial in 2usize..=64,
        stride in 1usize..=2,
        limit in 1usize..=8,
    ) {
        let (kernel, pad) = (3usize, 1usize);
        let out = out_dim(in_spatial, kernel, stride, pad);
        prop_assume!(out >= 1);
        let mut covered = vec![false; in_spatial * in_spatial];
        for p in portions(out, limit) {
            let (r0, c0, rows, cols) = p.input_region(stride, kernel, pad, in_spatial);
            // A valid sub-rectangle: non-empty, in bounds, no wrap-around
            // from the saturating arithmetic.
            prop_assert!(rows >= 1 && cols >= 1, "empty region for {p:?}");
            prop_assert!(r0 + rows <= in_spatial, "{p:?} rows overflow");
            prop_assert!(c0 + cols <= in_spatial, "{p:?} cols overflow");
            // Brute force the rows/cols the portion's output pixels read.
            let needed = |o0: usize, n: usize| {
                let lo = (o0 * stride).saturating_sub(pad);
                let hi = ((o0 + n - 1) * stride + kernel - pad).min(in_spatial);
                (lo, hi)
            };
            let (nr0, nr1) = needed(p.row0, p.rows);
            let (nc0, nc1) = needed(p.col0, p.cols);
            prop_assert_eq!((r0, r0 + rows), (nr0, nr1), "row window of {:?}", p);
            prop_assert_eq!((c0, c0 + cols), (nc0, nc1), "col window of {:?}", p);
            for r in r0..r0 + rows {
                for c in c0..c0 + cols {
                    covered[r * in_spatial + c] = true;
                }
            }
        }
        prop_assert!(
            covered.iter().all(|&v| v),
            "portions do not cover the {in_spatial}×{in_spatial} ifmap"
        );
    }

    /// Stride-2 layers on *even* input maps (the shape MobileNet actually
    /// uses: the halo window starts mid-pixel) still cover the last input
    /// row and column.
    #[test]
    fn stride2_even_maps_cover_the_bottom_right_halo(half in 1usize..=32, limit in 1usize..=8) {
        let in_spatial = 2 * half;
        let out = out_dim(in_spatial, 3, 2, 1);
        let last = portions(out, limit)
            .into_iter()
            .map(|p| p.input_region(2, 3, 1, in_spatial))
            .map(|(r0, _, rows, _)| r0 + rows)
            .max()
            .expect("at least one portion");
        prop_assert_eq!(last, in_spatial);
    }
}
