//! Property tests of the portion geometry: `Portion::input_region` halo
//! clipping must never underflow, must hand every portion exactly the
//! (clipped) halo window its output pixels read, and the portions of a
//! layer must together read **every** ifmap pixel — for stride-1 and
//! stride-2 layers and for out_spatial values the portion limit does not
//! divide.

use edea_core::schedule::portions;
use proptest::prelude::*;

/// `out = (in + 2·pad − kernel) / stride + 1`, as the workload defines it.
fn out_dim(in_spatial: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (in_spatial + 2 * pad - kernel) / stride + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any map size, stride and portion limit: every portion's input
    /// region is a valid in-bounds rectangle (no index underflow), it is
    /// exactly the brute-force union of the halo windows of the portion's
    /// output pixels (clipped to the map), and the regions of all
    /// portions together cover the whole ifmap.
    #[test]
    fn input_region_is_exact_and_portions_cover_the_ifmap(
        in_spatial in 2usize..=64,
        stride in 1usize..=2,
        limit in 1usize..=8,
    ) {
        let (kernel, pad) = (3usize, 1usize);
        let out = out_dim(in_spatial, kernel, stride, pad);
        prop_assume!(out >= 1);
        let mut covered = vec![false; in_spatial * in_spatial];
        for p in portions(out, limit) {
            let (r0, c0, rows, cols) = p.input_region(stride, kernel, pad, in_spatial);
            // A valid sub-rectangle: non-empty, in bounds, no wrap-around
            // from the saturating arithmetic.
            prop_assert!(rows >= 1 && cols >= 1, "empty region for {p:?}");
            prop_assert!(r0 + rows <= in_spatial, "{p:?} rows overflow");
            prop_assert!(c0 + cols <= in_spatial, "{p:?} cols overflow");
            // Brute force the rows/cols the portion's output pixels read.
            let needed = |o0: usize, n: usize| {
                let lo = (o0 * stride).saturating_sub(pad);
                let hi = ((o0 + n - 1) * stride + kernel - pad).min(in_spatial);
                (lo, hi)
            };
            let (nr0, nr1) = needed(p.row0, p.rows);
            let (nc0, nc1) = needed(p.col0, p.cols);
            prop_assert_eq!((r0, r0 + rows), (nr0, nr1), "row window of {:?}", p);
            prop_assert_eq!((c0, c0 + cols), (nc0, nc1), "col window of {:?}", p);
            for r in r0..r0 + rows {
                for c in c0..c0 + cols {
                    covered[r * in_spatial + c] = true;
                }
            }
        }
        prop_assert!(
            covered.iter().all(|&v| v),
            "portions do not cover the {in_spatial}×{in_spatial} ifmap"
        );
    }

    /// Stride-2 layers on *even* input maps (the shape MobileNet actually
    /// uses: the halo window starts mid-pixel) still cover the last input
    /// row and column.
    #[test]
    fn stride2_even_maps_cover_the_bottom_right_halo(half in 1usize..=32, limit in 1usize..=8) {
        let in_spatial = 2 * half;
        let out = out_dim(in_spatial, 3, 2, 1);
        let last = portions(out, limit)
            .into_iter()
            .map(|p| p.input_region(2, 3, 1, in_spatial))
            .map(|(r0, _, rows, _)| r0 + rows)
            .max()
            .expect("at least one portion");
        prop_assert_eq!(last, in_spatial);
    }

    /// The generalized window math: over dilation 1–2, asymmetric padding
    /// and kernels 1/3/5, every portion's input region stays an in-bounds
    /// (possibly empty only when it lies wholly in the trailing pad)
    /// rectangle — no index underflow from the saturating arithmetic —
    /// and matches the brute-force union of the dilated halo windows of
    /// the portion's output pixels.
    #[test]
    fn generalized_input_regions_never_underflow_and_are_exact(
        in_spatial in 4usize..=48,
        kernel_idx in 0usize..3,
        stride in 1usize..=2,
        dilation in 1usize..=2,
        before in 0usize..=3,
        after in 0usize..=3,
        limit in 1usize..=8,
    ) {
        let kernel = [1usize, 3, 5][kernel_idx];
        let eff = (kernel - 1) * dilation + 1;
        prop_assume!(in_spatial + before + after >= eff);
        let out = (in_spatial + before + after - eff) / stride + 1;
        for p in portions(out, limit) {
            let (r0, c0, rows, cols) =
                p.input_region_general(stride, kernel, dilation, before, in_spatial);
            // In bounds, no wrap-around.
            prop_assert!(r0 + rows <= in_spatial, "{p:?} rows overflow");
            prop_assert!(c0 + cols <= in_spatial, "{p:?} cols overflow");
            prop_assert!(r0 <= in_spatial && c0 <= in_spatial, "{p:?} origin escapes");
            // Brute-force the clipped union of the dilated windows.
            let needed = |o0: usize, n: usize| {
                let lo = (o0 * stride).saturating_sub(before).min(in_spatial);
                let hi = ((o0 + n - 1) * stride + eff)
                    .saturating_sub(before)
                    .min(in_spatial);
                (lo, hi.max(lo))
            };
            let (nr0, nr1) = needed(p.row0, p.rows);
            let (nc0, nc1) = needed(p.col0, p.cols);
            prop_assert_eq!((r0, r0 + rows), (nr0, nr1), "row window of {:?}", p);
            prop_assert_eq!((c0, c0 + cols), (nc0, nc1), "col window of {:?}", p);
        }
    }

    /// Portion geometry covers the generalized ofmap exactly — the portion
    /// edges partition `out × out` for any shape the generalized
    /// `LayerShape` can describe (dilation, depth multiplier, asymmetric
    /// pad). Depth multiplier scales the channel axis, never the spatial
    /// partition; the MAC/param model must scale with it linearly.
    #[test]
    fn generalized_shapes_partition_the_ofmap_and_scale_channels(
        in_spatial in 4usize..=48,
        stride in 1usize..=2,
        dilation in 1usize..=2,
        before in 0usize..=3,
        after in 0usize..=3,
        dm in 1usize..=4,
        limit in 1usize..=8,
    ) {
        use edea_nn::workload::{LayerShape, Padding};
        let mut s = LayerShape::dsc(0, in_spatial, 8, 16, stride, 3);
        s.padding = Padding { before, after };
        s.dilation = dilation;
        s.depth_multiplier = dm;
        let eff = (s.kernel - 1) * dilation + 1;
        prop_assume!(in_spatial + before + after >= eff);
        let out = s.out_spatial();
        prop_assert_eq!(out, (in_spatial + before + after - eff) / stride + 1);
        // Exact cover of the ofmap, no overlap.
        let mut covered = vec![false; out * out];
        for p in portions(out, limit) {
            for r in p.row0..p.row0 + p.rows {
                for c in p.col0..p.col0 + p.cols {
                    prop_assert!(!covered[r * out + c], "overlap at ({r},{c})");
                    covered[r * out + c] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&v| v), "portions miss ofmap pixels");
        // The channel axis: depth multiplier multiplies DWC kernels,
        // MACs and params but leaves the PWC input tiling untouched
        // relative to dwc_out_channels.
        prop_assert_eq!(s.dwc_out_channels(), 8 * dm);
        let base = {
            let mut b = s;
            b.depth_multiplier = 1;
            b
        };
        prop_assert_eq!(s.dwc_macs(), base.dwc_macs() * dm as u64);
        prop_assert_eq!(s.dwc_params(), base.dwc_params() * dm as u64);
        prop_assert_eq!(s.pwc_macs(), base.pwc_macs() * dm as u64);
    }
}
