//! Property tests of the `edea_core::par` primitives — the foundation the
//! parallel bit-identity suite stands on. Over arbitrary work sizes and
//! thread counts: `chunk_ranges` must be an exact ordered partition (every
//! index exactly once, contiguous, balanced, with oversubscription
//! degrading to trailing empty lanes, never a panic), and `map_lanes` must
//! return results in **lane order** regardless of completion order, so a
//! fixed-order reduction over its output equals the serial fold even for
//! non-commutative operations.

use std::ops::Range;

use edea_core::par::{chunk_ranges, map_lanes, Parallelism, MAX_THREADS};
use proptest::prelude::*;

/// A deliberately non-commutative, non-associative-under-reordering fold:
/// a 31-multiplier hash chain. Any deviation from strict left-to-right
/// order over the items changes the result, so it detects both
/// out-of-order joins and mis-partitioned chunks.
fn hash_chain(acc: u64, x: u64) -> u64 {
    acc.wrapping_mul(31).wrapping_add(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `chunk_ranges(n, lanes)` is an exact ordered partition of `0..n`:
    /// one range per lane, contiguous and ascending, sizes within one of
    /// each other, larger chunks first. Oversubscription (`lanes > n`)
    /// degrades to trailing empty ranges instead of panicking.
    #[test]
    fn chunk_ranges_is_an_exact_ordered_partition(
        n in 0usize..512,
        lanes in 1usize..40,
    ) {
        let ranges = chunk_ranges(n, lanes);
        prop_assert_eq!(ranges.len(), lanes, "one range per lane");

        // Contiguous cover: each range starts where the previous ended.
        let mut next = 0usize;
        for (i, r) in ranges.iter().enumerate() {
            prop_assert_eq!(r.start, next, "lane {} not contiguous", i);
            prop_assert!(r.end >= r.start, "lane {} inverted", i);
            next = r.end;
        }
        prop_assert_eq!(next, n, "partition must cover 0..n exactly");

        // Balance: no lane differs from another by more than one item,
        // and the longer lanes come first (the static schedule is
        // deterministic, not load-stolen).
        let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
        let max = *sizes.iter().max().expect("lanes >= 1");
        let min = *sizes.iter().min().expect("lanes >= 1");
        prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(&sizes, &sorted, "larger chunks must come first");

        // Oversubscription: lanes beyond the item count are empty, and
        // every item still appears exactly once (covered above).
        if lanes > n {
            for (i, r) in ranges.iter().enumerate().skip(n) {
                prop_assert!(r.is_empty(), "lane {} past n={} not empty", i, n);
            }
        }
    }

    /// Chunking arbitrary items across arbitrary lane counts and reducing
    /// the per-lane results in lane order reproduces the serial fold of a
    /// non-commutative operation bit for bit — the exact shape of every
    /// counter merge in the parallel tile loop and the oracle pool.
    #[test]
    fn fixed_order_reduction_equals_serial_fold(
        items in prop::collection::vec(0u64..u64::MAX, 0..96),
        lanes in 1usize..24,
    ) {
        let serial = items.iter().fold(7u64, |acc, &x| hash_chain(acc, x));

        let ranges = chunk_ranges(items.len(), lanes);
        let work: Vec<&[u64]> = ranges.iter().map(|r| &items[r.clone()]).collect();
        // Each lane folds its own chunk from 0 on a pool thread; the
        // combiner splices lane partials back with `acc·31^len + partial`,
        // which is only correct when partials arrive in lane order — any
        // completion-order leak through map_lanes changes the result.
        let partials = map_lanes(work, |_, chunk| {
            let partial = chunk.iter().fold(0u64, |acc, &x| hash_chain(acc, x));
            (partial, chunk.len())
        });
        prop_assert_eq!(partials.len(), lanes);
        let mut reduced = 7u64;
        for &(partial, len) in &partials {
            let shift = (0..len).fold(1u64, |p, _| p.wrapping_mul(31));
            reduced = reduced.wrapping_mul(shift).wrapping_add(partial);
        }
        prop_assert_eq!(reduced, serial, "lane-order reduction diverged");
    }

    /// Oversubscribed `map_lanes` (more lanes than items, or empty lanes
    /// mixed in) still returns one result per lane, in lane order, with
    /// empty lanes contributing their identity — thread counts beyond the
    /// work size degrade gracefully, never corrupt.
    #[test]
    fn oversubscription_degrades_to_identity_lanes(
        n in 0usize..8,
        lanes in 1usize..32,
    ) {
        let items: Vec<u64> = (0..n as u64).collect();
        let ranges = chunk_ranges(items.len(), lanes);
        let work: Vec<&[u64]> = ranges.iter().map(|r| &items[r.clone()]).collect();
        let sums = map_lanes(work, |lane, chunk| {
            (lane, chunk.iter().sum::<u64>(), chunk.len())
        });
        prop_assert_eq!(sums.len(), lanes);
        for (i, &(lane, _, _)) in sums.iter().enumerate() {
            prop_assert_eq!(lane, i, "results must arrive in lane order");
        }
        let total: u64 = sums.iter().map(|&(_, s, _)| s).sum();
        prop_assert_eq!(total, items.iter().sum::<u64>());
        let touched: usize = sums.iter().map(|&(_, _, l)| l).sum();
        prop_assert_eq!(touched, n, "every item processed exactly once");
        if lanes > n {
            for &(lane, s, l) in sums.iter().skip(n.max(1)) {
                prop_assert_eq!(l, 0, "lane {} should be empty", lane);
                prop_assert_eq!(s, 0, "empty lane {} must contribute identity", lane);
            }
        }
    }

    /// `Parallelism::new` accepts exactly `1..=MAX_THREADS`.
    #[test]
    fn parallelism_bounds(n in 0usize..600) {
        let p = Parallelism::new(n);
        if (1..=MAX_THREADS).contains(&n) {
            let p = p.expect("in range");
            prop_assert_eq!(p.threads(), n);
            prop_assert_eq!(p.is_serial(), n == 1);
        } else {
            prop_assert!(p.is_err(), "{} must be rejected", n);
        }
    }
}

/// Join order must be lane order even when lanes complete in the
/// *opposite* order: the last lane finishes first and the first lane
/// finishes last, yet the results come back `[0, 1, 2, 3]`. This is the
/// property that makes the oracle pool's batch assembly and the portion
/// paste phase deterministic on a real scheduler, not just on one core.
#[test]
fn join_order_is_lane_order_not_completion_order() {
    for _ in 0..3 {
        let lanes = 4usize;
        // Lane i sleeps (lanes - 1 - i) * 20 ms: lane 0 is the slowest,
        // lane 3 returns immediately.
        let delays: Vec<u64> = (0..lanes).map(|i| (lanes - 1 - i) as u64 * 20).collect();
        let out = map_lanes(delays, |lane, ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            lane
        });
        assert_eq!(out, vec![0, 1, 2, 3], "results must be in lane order");
    }
}

/// A panicking lane propagates to the caller (no hung or silently dropped
/// lanes), and the panic payload survives the join.
#[test]
fn lane_panics_propagate() {
    let caught = std::panic::catch_unwind(|| {
        map_lanes(vec![0usize, 1, 2], |_, x| {
            assert_ne!(x, 1, "lane boom");
            x
        })
    });
    let err = caught.expect_err("the panicking lane must propagate");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lane boom"), "payload lost: {msg}");
}
