//! Property-based tests: the engine datapaths against the golden reference
//! kernels, on arbitrary int8 tiles.

use edea_core::engine::{DwcEngine, PwcEngine};
use edea_core::nonconv::NonConvUnit;
use edea_core::{timing, EdeaConfig};
use edea_nn::fold::FoldedAffine;
use edea_tensor::conv::{depthwise_conv2d_i8, pointwise_conv2d_i8};
use edea_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;

fn i8_tensor3(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor3<i8>> {
    prop::collection::vec(any::<i8>(), c * h * w)
        .prop_map(move |v| Tensor3::from_vec(v, c, h, w).expect("sized"))
}

fn i8_tensor4(k: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor4<i8>> {
    prop::collection::vec(any::<i8>(), k * c * h * w)
        .prop_map(move |v| Tensor4::from_vec(v, k, c, h, w).expect("sized"))
}

proptest! {
    /// The DWC engine equals the reference depthwise convolution on any
    /// 4×4×8 tile (stride 1).
    #[test]
    fn dwc_engine_equals_reference_s1(ifmap in i8_tensor3(8, 4, 4),
                                      weights in i8_tensor4(8, 1, 3, 3)) {
        let engine = DwcEngine::new(&EdeaConfig::paper());
        let out = engine.compute_tile(&ifmap, &weights, 1).expect("tile");
        prop_assert_eq!(out.acc, depthwise_conv2d_i8(&ifmap, &weights, 1, 0));
    }

    /// The DWC engine equals the reference on any 5×5×8 tile (stride 2).
    #[test]
    fn dwc_engine_equals_reference_s2(ifmap in i8_tensor3(8, 5, 5),
                                      weights in i8_tensor4(8, 1, 3, 3)) {
        let engine = DwcEngine::new(&EdeaConfig::paper());
        let out = engine.compute_tile(&ifmap, &weights, 2).expect("tile");
        prop_assert_eq!(out.acc, depthwise_conv2d_i8(&ifmap, &weights, 2, 0));
    }

    /// The PWC engine equals the reference pointwise convolution on any
    /// 2×2×8 tile with a 16×8 kernel tile.
    #[test]
    fn pwc_engine_equals_reference(ifmap in i8_tensor3(8, 2, 2),
                                   weights in i8_tensor4(16, 8, 1, 1)) {
        let engine = PwcEngine::new(&EdeaConfig::paper());
        let out = engine.compute_tile(&ifmap, &weights).expect("tile");
        prop_assert_eq!(out.partial, pointwise_conv2d_i8(&ifmap, &weights));
    }

    /// Engine zero-activation counts are exact: each zero activation gates
    /// exactly the slots that consume it.
    #[test]
    fn pwc_gating_count_is_exact(ifmap in i8_tensor3(8, 2, 2),
                                 weights in i8_tensor4(16, 8, 1, 1)) {
        let engine = PwcEngine::new(&EdeaConfig::paper());
        let out = engine.compute_tile(&ifmap, &weights).expect("tile");
        let zeros = ifmap.as_slice().iter().filter(|&&v| v == 0).count() as u64;
        prop_assert_eq!(out.activity.zero_act_slots, zeros * 16);
    }

    /// The Non-Conv unit is elementwise-identical to the folded affine.
    #[test]
    fn nonconv_unit_matches_folded_affine(acc in prop::collection::vec(-200_000i32..200_000, 32),
                                          k in -2.0f64..2.0, b in -50.0f64..50.0) {
        let unit = NonConvUnit::new(&EdeaConfig::paper());
        let tile = Tensor3::from_vec(acc.clone(), 8, 2, 2).expect("sized");
        let f = FoldedAffine::fold(k, b, 0.05, 0.05, 0.1);
        let params = vec![f; 8];
        let (out, _) = unit.apply_tile(&tile, &params).expect("apply");
        for (i, &a) in acc.iter().enumerate() {
            prop_assert_eq!(out.as_slice()[i], f.apply_fixed(a, 0));
        }
    }

    /// Non-Conv outputs always land in [0, 127] (ReLU-folded clip).
    #[test]
    fn nonconv_outputs_in_relu_range(acc in prop::collection::vec(any::<i32>(), 32),
                                     k in -100.0f64..100.0, b in -100.0f64..100.0) {
        let unit = NonConvUnit::new(&EdeaConfig::paper());
        let tile = Tensor3::from_vec(acc, 8, 2, 2).expect("sized");
        let params = vec![FoldedAffine::fold(k, b, 1.0, 1.0, 1.0); 8];
        let (out, activity) = unit.apply_tile(&tile, &params).expect("apply");
        prop_assert!(out.as_slice().iter().all(|&v| (0..=127).contains(&v)));
        let zeros = out.as_slice().iter().filter(|&&v| v == 0).count() as u64;
        prop_assert_eq!(activity.zero_outputs, zeros);
    }

    /// Eq. 1/Eq. 2 cycles are monotone in every workload dimension.
    #[test]
    fn cycles_monotone_in_workload(d_mult in 1usize..6, k_mult in 1usize..6,
                                   sp in 1usize..6) {
        use edea_nn::workload::LayerShape;
        let cfg = EdeaConfig::paper();
        let mk = |d: usize, k: usize, s: usize| LayerShape::dsc(0, 2 * s, 8 * d, 16 * k, 1, 3);
        let base = timing::layer_cycles(&mk(d_mult, k_mult, sp), &cfg).total();
        prop_assert!(timing::layer_cycles(&mk(d_mult + 1, k_mult, sp), &cfg).total() > base);
        prop_assert!(timing::layer_cycles(&mk(d_mult, k_mult + 1, sp), &cfg).total() > base);
        prop_assert!(timing::layer_cycles(&mk(d_mult, k_mult, sp + 1), &cfg).total() > base);
    }
}
