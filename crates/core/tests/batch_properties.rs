//! Property tests of the batched weight-residency accounting.
//!
//! The invariant the batch extension rests on: under
//! [`WeightResidency::PerBatch`], external weight (and offline-parameter)
//! reads of a batch of any size equal the unbatched reads exactly — not
//! `N×` — while every per-image stream (ifmap reads, ofmap writes, engine
//! traffic, cycles) scales exactly `N×`. Checked both on the analytic
//! accounting over every full-size layer shape and on the functional
//! simulator over random deployments.

use edea_core::schedule::WeightResidency;
use edea_core::stats::synthetic_batch_layer_stats;
use edea_core::EdeaConfig;
use edea_nn::workload::mobilenet_v1_cifar10;
use edea_testutil::{batch_inputs, deploy, paper_edea};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Analytic accounting: for any layer shape of the workload and any
    /// batch size, resident weight reads equal the unbatched reads and
    /// per-image streams scale exactly N×.
    #[test]
    fn batched_weight_reads_equal_unbatched(layer in 0usize..13, n in 1usize..32) {
        let cfg = EdeaConfig::paper();
        let shape = mobilenet_v1_cifar10()[layer];
        let one = synthetic_batch_layer_stats(
            &shape, &cfg, 1, WeightResidency::PerBatch, 0.3, 0.5, 0.6);
        let batch = synthetic_batch_layer_stats(
            &shape, &cfg, n, WeightResidency::PerBatch, 0.3, 0.5, 0.6);
        prop_assert_eq!(batch.external.weight_reads, one.external.weight_reads);
        prop_assert_eq!(batch.external.param_reads, one.external.param_reads);
        prop_assert_eq!(batch.external.ifmap_reads, n as u64 * one.external.ifmap_reads);
        prop_assert_eq!(batch.external.writes, n as u64 * one.external.writes);
        prop_assert_eq!(batch.cycles, n as u64 * one.cycles);
        prop_assert_eq!(batch.intermediate.reads, n as u64 * one.intermediate.reads);
        prop_assert_eq!(batch.psum.writes, n as u64 * one.psum.writes);
    }

    /// The baseline residency really is the N× straw man the sweep
    /// compares against.
    #[test]
    fn per_image_residency_is_n_times(layer in 0usize..13, n in 1usize..32) {
        let cfg = EdeaConfig::paper();
        let shape = mobilenet_v1_cifar10()[layer];
        let one = synthetic_batch_layer_stats(
            &shape, &cfg, 1, WeightResidency::PerImage, 0.3, 0.5, 0.6);
        let batch = synthetic_batch_layer_stats(
            &shape, &cfg, n, WeightResidency::PerImage, 0.3, 0.5, 0.6);
        prop_assert_eq!(batch.external.weight_reads, n as u64 * one.external.weight_reads);
        prop_assert_eq!(batch.external.param_reads, n as u64 * one.external.param_reads);
        prop_assert_eq!(batch.external.total(), n as u64 * one.external.total());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Functional simulator: the property holds on real executions of
    /// randomly-seeded deployments, not just on the analytic model.
    #[test]
    fn functional_batched_weight_reads_equal_unbatched(seed in 0u64..10_000, n in 2usize..4) {
        let d = deploy(0.25, seed);
        let edea = paper_edea();
        let inputs = batch_inputs(&d, n, seed ^ 0xba7c);
        let batch = edea.run_batch(&d.qnet, &inputs).expect("batched run");
        let single = edea.run_network(&d.qnet, &inputs[0]).expect("single run");
        for (b, s) in batch.stats.layers.iter().zip(&single.stats.layers) {
            prop_assert_eq!(b.external.weight_reads, s.external.weight_reads);
            prop_assert_eq!(b.external.param_reads, s.external.param_reads);
            prop_assert_eq!(b.external.ifmap_reads, n as u64 * s.external.ifmap_reads);
            prop_assert_eq!(b.external.writes, n as u64 * s.external.writes);
        }
    }
}
