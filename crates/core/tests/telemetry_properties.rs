//! Property and cross-check tests of the telemetry subsystem.
//!
//! Three obligations, per the determinism contract in `edea_core::telemetry`:
//!
//! 1. **Structure** — over random pool loads, the emitted event stream is a
//!    well-formed span tree (every arrival enqueues and completes, batch
//!    form/dispatch/execute ticks agree, layer spans tile their batch,
//!    per-worker spans never overlap).
//! 2. **Two accounting paths, one truth** — the metrics registry folded
//!    from events must equal the independently computed
//!    `ServeReport`/`PoolReport` on every shared quantity, and the derived
//!    views (`telemetry::derive`) must reproduce `worker_utilization`,
//!    `max_queue_depth` and `mean_queue_depth` *exactly* (same integer
//!    arithmetic, same single float division — `==`, not approx).
//! 3. **Determinism** — the event stream, both exporters' renderings, and
//!    the underlying reports are bit-identical at every thread count, and
//!    attaching a recorder never changes the run it observes.

use edea_core::par::Parallelism;
use edea_core::pool::{DispatchPolicy, Dispatcher, Pool};
use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy, SimulatorBackend};
use edea_core::telemetry::{derive, export, metrics::Registry, Event, Recorder};
use edea_core::EdeaConfig;
use edea_nn::workload::{mobilenet_v1_cifar10, NetworkId};
use edea_testutil::{deploy, deploy_v2, mixed_requests, paper_edea_threads, zero_requests};
use proptest::prelude::*;

fn backend() -> AnalyticBackend {
    AnalyticBackend::new(&mobilenet_v1_cifar10(), &EdeaConfig::paper())
        .expect("paper workload maps")
}

fn dispatch_policy(idx: usize) -> DispatchPolicy {
    [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::JoinShortestQueue,
    ][idx % 3]
}

/// A seeded mixed-model simulator pool serve (v1 + v2, oracle-capable),
/// observed by a fresh recorder: returns the report and the events.
fn observed_mixed_serve(threads: usize, n: usize) -> (edea_core::pool::PoolReport, Vec<Event>) {
    let v1 = deploy(0.5, 31);
    let v2 = deploy_v2(0.25, 41);
    let sim = SimulatorBackend::new(paper_edea_threads(threads), v1.qnet.clone())
        .expect("backend builds")
        .with_model(NetworkId(1), v2.qnet.clone())
        .expect("v2 registers");
    let pool = Pool::replicate(sim, 2)
        .expect("pool builds")
        .with_parallelism(Parallelism::new(threads).expect("threads in range"));
    let ticks: Vec<u64> = (0..n as u64).map(|i| i * 400).collect();
    let requests = mixed_requests(
        &v1,
        &v2,
        &[NetworkId::PRIMARY, NetworkId(1), NetworkId::PRIMARY],
        &ticks,
        51,
    );
    let recorder = Recorder::with_capacity(1 << 12);
    let report = Dispatcher::new(
        Policy::new(2, 3_000).expect("policy"),
        DispatchPolicy::LeastLoaded,
    )
    .serve_with(&pool, requests, &recorder)
    .expect("mixed serve");
    assert_eq!(recorder.dropped(), 0, "capacity sized for the run");
    (report, recorder.events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// (a) Span trees are well-formed over random pool loads, and (b) the
    /// registry folded from the same events conserves request counts and
    /// every shared byte/cycle total against the report.
    #[test]
    fn span_trees_well_formed_and_registry_conserves_report(
        n in 1usize..40,
        workers in 1usize..5,
        max_batch in 1usize..8,
        wait_frac in 0.0f64..2.0,
        load in 0.2f64..4.0,
        seed in 0u64..1_000,
        dp in 0usize..3,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let policy = Policy::new(max_batch, (wait_frac * service as f64) as u64)
            .expect("policy");
        let ticks = arrivals::poisson(n, service as f64 / load, seed);
        let pool = Pool::replicate(b.clone(), workers).expect("pool");
        let recorder = Recorder::with_capacity(1 << 12);
        let report = Dispatcher::new(policy, dispatch_policy(dp))
            .serve_with(&pool, zero_requests(b.input_shape(), &ticks), &recorder)
            .expect("serve");
        let events = recorder.events();
        prop_assert_eq!(recorder.dropped(), 0);

        // (a) Structure.
        derive::check_well_formed(&events).expect("well-formed span tree");

        // (b) Registry vs report, every shared quantity.
        let reg = Registry::from_events(&events);
        prop_assert_eq!(reg.counter("requests_total"), Some(n as u64));
        prop_assert_eq!(reg.counter("requests_completed_total"), Some(n as u64));
        prop_assert_eq!(
            reg.counter("batches_total"),
            Some(report.serve.batches.len() as u64)
        );
        prop_assert_eq!(
            reg.counter("switch_bytes_total"),
            Some(report.serve.switch_bytes_total())
        );
        let weight: u64 = report.serve.batches.iter().map(|b| b.weight_bytes).sum();
        let external: u64 = report.serve.batches.iter().map(|b| b.external_bytes).sum();
        prop_assert_eq!(reg.counter("weight_bytes_total"), Some(weight));
        prop_assert_eq!(reg.counter("external_bytes_total"), Some(external));
        prop_assert_eq!(reg.gauge("makespan_ticks"), Some(report.serve.makespan()));

        // Histograms conserve counts: every request is one latency and one
        // queue-wait sample, every batch one size sample whose values sum
        // back to the request count.
        let lat = reg.histogram("latency_ticks").expect("latency histogram");
        prop_assert_eq!(lat.count(), n as u64);
        let lat_sum: u128 = report
            .serve
            .responses
            .iter()
            .map(|r| u128::from(r.latency()))
            .sum();
        prop_assert_eq!(lat.sum(), lat_sum);
        let qt = reg.histogram("queue_ticks").expect("queue histogram");
        prop_assert_eq!(qt.count(), n as u64);
        let bs = reg.histogram("batch_size").expect("batch-size histogram");
        prop_assert_eq!(bs.count(), report.serve.batches.len() as u64);
        prop_assert_eq!(bs.sum(), n as u128);

        // Per-worker counters partition the aggregate.
        let wr = reg.worker_counter("worker_requests_total").expect("series");
        prop_assert_eq!(wr.iter().sum::<u64>(), n as u64);
        for (w, r) in report.workers.iter().enumerate() {
            prop_assert_eq!(wr.get(w).copied().unwrap_or(0), r.requests as u64);
        }
    }

    /// The derived views reproduce the pool's own per-worker accounting
    /// exactly — busy cycles, utilization, max and mean queue depth.
    #[test]
    fn derived_views_equal_pool_report_exactly(
        n in 1usize..40,
        workers in 1usize..5,
        max_batch in 1usize..8,
        load in 0.2f64..4.0,
        seed in 0u64..1_000,
        dp in 0usize..3,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let policy = Policy::new(max_batch, service).expect("policy");
        let ticks = arrivals::poisson(n, service as f64 / load, seed);
        let pool = Pool::replicate(b.clone(), workers).expect("pool");
        let recorder = Recorder::with_capacity(1 << 12);
        let report = Dispatcher::new(policy, dispatch_policy(dp))
            .serve_with(&pool, zero_requests(b.input_shape(), &ticks), &recorder)
            .expect("serve");
        let events = recorder.events();

        // Worker count from events: the highest worker id that ever saw a
        // request (idle tail workers emit nothing).
        let touched = report
            .workers
            .iter()
            .rposition(|w| w.requests > 0)
            .map_or(0, |i| i + 1);
        prop_assert_eq!(derive::worker_count(&events), touched);
        let span = derive::makespan(&events);
        prop_assert_eq!(span, report.serve.makespan());

        let busy = derive::busy_cycles(&events, workers);
        let util = derive::utilization(&events, workers);
        for (w, r) in report.workers.iter().enumerate() {
            prop_assert_eq!(busy[w], r.busy_cycles, "worker {} busy", w);
            // Exact float equality: same ops, same order.
            prop_assert!(
                util[w] == report.worker_utilization(w),
                "worker {} utilization {} != {}", w, util[w], report.worker_utilization(w)
            );
            prop_assert_eq!(
                derive::max_queue_depth(&events, w),
                r.max_queue_depth,
                "worker {} max depth", w
            );
            let mean = derive::mean_queue_depth(&events, w, span);
            prop_assert!(
                mean == r.mean_queue_depth,
                "worker {} mean depth {} != {}", w, mean, r.mean_queue_depth
            );
        }

        // Busy intervals are exactly this worker's batch spans.
        let intervals = derive::busy_intervals(&events, workers);
        for (w, spans) in intervals.iter().enumerate() {
            let expect: Vec<(u64, u64)> = report
                .serve
                .batches
                .iter()
                .filter(|b| report.assignments[b.index] == w)
                .map(|b| (b.dispatched, b.completed))
                .collect();
            prop_assert_eq!(spans, &expect, "worker {} intervals", w);
        }
    }
}

#[test]
fn telemetry_is_bit_identical_across_thread_counts() {
    let (serial_report, serial_events) = observed_mixed_serve(1, 6);
    let (threaded_report, threaded_events) = observed_mixed_serve(4, 6);

    // The observed runs agree (PR-7 contract) …
    assert_eq!(
        serial_report.serve.responses,
        threaded_report.serve.responses
    );
    assert_eq!(serial_report.serve.batches, threaded_report.serve.batches);
    assert_eq!(serial_report.workers, threaded_report.workers);
    // … and so do the event streams and both exporters, character for
    // character — the golden `trace_export` fixture leans on this.
    assert_eq!(serial_events, threaded_events);
    assert_eq!(
        export::chrome_trace(&serial_events),
        export::chrome_trace(&threaded_events)
    );
    let reg_a = Registry::from_events(&serial_events);
    let reg_b = Registry::from_events(&threaded_events);
    assert_eq!(export::prometheus(&reg_a), export::prometheus(&reg_b));
}

#[test]
fn recorder_on_vs_off_leaves_the_underlying_run_unchanged() {
    let b = backend();
    let ticks = arrivals::poisson(24, b.cost().per_image_cycles() as f64, 7);
    let policy = Policy::new(4, b.cost().per_image_cycles()).expect("policy");
    let pool = Pool::replicate(b.clone(), 3).expect("pool");
    let dispatcher = Dispatcher::new(policy, DispatchPolicy::JoinShortestQueue);

    let plain = dispatcher
        .serve(&pool, zero_requests(b.input_shape(), &ticks))
        .expect("unobserved serve");
    let recorder = Recorder::with_capacity(1 << 12);
    let observed = dispatcher
        .serve_with(&pool, zero_requests(b.input_shape(), &ticks), &recorder)
        .expect("observed serve");

    assert_eq!(plain.serve.responses, observed.serve.responses);
    assert_eq!(plain.serve.batches, observed.serve.batches);
    assert_eq!(plain.workers, observed.workers);
    assert_eq!(plain.assignments, observed.assignments);
    assert!(!recorder.is_empty());
}

#[test]
fn mixed_simulator_run_emits_full_lifecycle_with_layer_spans() {
    let (report, events) = observed_mixed_serve(1, 6);
    derive::check_well_formed(&events).expect("well-formed");

    // Every lifecycle stage appears, stamped with stable ids.
    let has = |f: fn(&Event) -> bool| events.iter().any(f);
    assert!(has(|e| matches!(e, Event::RequestArrived { .. })));
    assert!(has(|e| matches!(e, Event::RequestEnqueued { .. })));
    assert!(has(|e| matches!(e, Event::BatchFormed { .. })));
    assert!(has(|e| matches!(e, Event::BatchDispatched { .. })));
    assert!(has(|e| matches!(e, Event::LayerExecuted { .. })));
    assert!(has(|e| matches!(e, Event::BatchExecuted { .. })));
    assert!(has(|e| matches!(e, Event::RequestCompleted { .. })));
    // The stream mixes models, so at least one dispatch switched.
    assert!(report.serve.switch_bytes_total() > 0);
    assert!(has(|e| matches!(e, Event::ModelSwitch { .. })));

    // Layer spans carry the simulator's sparsity counters (the run gates
    // slots on the shaped network), and the per-batch counter deltas sum
    // to the registry totals.
    let gated: u64 = events
        .iter()
        .filter_map(|e| match *e {
            Event::LayerExecuted { gated_slots, .. } => Some(gated_slots),
            _ => None,
        })
        .sum();
    assert!(gated > 0, "shaped run gates slots");
    let reg = Registry::from_events(&events);
    assert_eq!(reg.counter("gated_slots_total"), Some(gated));

    // Per-batch layer spans: 13 v1 stages or 17 v2 stages, exactly.
    for b in &report.serve.batches {
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::LayerExecuted { batch, .. } if *batch == b.index))
            .count();
        let expect = if b.network == NetworkId::PRIMARY {
            13
        } else {
            17
        };
        assert_eq!(spans, expect, "batch {} layer spans", b.index);
    }

    // The Chrome trace names every worker track and draws every span.
    let trace = export::chrome_trace(&events);
    assert!(trace.contains("worker 0 batches"));
    assert!(trace.contains("worker 1 layers"));
    assert!(trace.contains("\"name\":\"L0\""));
    assert!(trace.contains("switch net"));
}

#[test]
fn single_backend_scheduler_telemetry_matches_its_report() {
    use edea_core::serve::Scheduler;

    let b = backend();
    let ticks = arrivals::uniform(10, b.cost().per_image_cycles() / 2);
    let recorder = Recorder::with_capacity(1 << 10);
    let policy = Policy::new(3, b.cost().per_image_cycles()).expect("policy");
    let report = Scheduler::new(policy)
        .serve_with(&b, zero_requests(b.input_shape(), &ticks), &recorder)
        .expect("serve");
    let events = recorder.events();
    derive::check_well_formed(&events).expect("well-formed");
    assert_eq!(derive::worker_count(&events), 1);
    assert_eq!(derive::makespan(&events), report.makespan());
    let reg = Registry::from_events(&events);
    assert_eq!(reg.counter("requests_total"), Some(10));
    assert_eq!(
        reg.counter("batches_total"),
        Some(report.batches.len() as u64)
    );
}
