//! Dense-vs-sparse bit-identity suite for the zero-skipping engine
//! kernels.
//!
//! The engines elide multiplies whose activation (or weight) operand is
//! zero — bit-exact by the additive identity — while the
//! [`EngineActivity`] they report keeps counting the *modeled hardware*
//! slots (a clock-gated slot still fires in the silicon; the power model
//! must keep seeing it). This suite pins both halves of that contract:
//!
//! 1. skip-path outputs equal a per-slot dense reference on tiles at every
//!    sparsity level, including the shaped Fig.-11 profile end to end;
//! 2. skip-path activity counts equal a brute-force per-slot count that
//!    never skips anything.

use edea_core::engine::{DwcEngine, EngineActivity, LaneOccupancy, PwcEngine};
use edea_core::plan::NetworkPlan;
use edea_core::EdeaConfig;
use edea_nn::executor;
use edea_tensor::conv::{depthwise_conv2d_i8, pointwise_conv2d_i8};
use edea_tensor::rng;
use edea_tensor::{Tensor3, Tensor4};
use edea_testutil::{deploy, paper_edea};

/// Zeroes roughly `z` of a tensor's values, deterministically (an LCG on
/// the flat index — independent of the vendored RNG streams).
fn sparsify3(t: &mut Tensor3<i8>, z: f64, salt: u64) {
    let cut = (z * 65536.0) as u64;
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        let h = (i as u64 + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        if (h >> 16) & 0xffff < cut {
            *v = 0;
        }
    }
}

fn sparsify4(t: &mut Tensor4<i8>, z: f64, salt: u64) {
    let cut = (z * 65536.0) as u64;
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        let h = (i as u64 + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        if (h >> 16) & 0xffff < cut {
            *v = 0;
        }
    }
}

/// The pre-skip per-slot DWC loop: multiplies every slot and counts every
/// zero operand — the modeled hardware the engine must keep agreeing with.
fn dwc_reference(
    ifmap: &Tensor3<i8>,
    weights: &Tensor4<i8>,
    stride: usize,
    tn: usize,
    tm: usize,
    kernel: usize,
) -> (Tensor3<i32>, EngineActivity) {
    let (td, _, tc) = ifmap.shape();
    let mut acc = Tensor3::<i32>::zeros(td, tn, tm);
    let mut zero_act = 0u64;
    let mut zero_weight = 0u64;
    for c in 0..td {
        for kh in 0..kernel {
            for kw in 0..kernel {
                let w = i32::from(weights[(c, 0, kh, kw)]);
                zero_weight += u64::from(w == 0) * (tn * tm) as u64;
                for on in 0..tn {
                    for om in 0..tm {
                        let a = ifmap.as_slice()[c * ifmap.height() * tc
                            + (on * stride + kh) * tc
                            + (om * stride + kw)];
                        zero_act += u64::from(a == 0);
                        acc[(c, on, om)] += i32::from(a) * w;
                    }
                }
            }
        }
    }
    let activity = EngineActivity {
        mac_slots: (td * kernel * kernel * tn * tm) as u64,
        zero_act_slots: zero_act,
        zero_weight_slots: zero_weight,
    };
    (acc, activity)
}

/// The pre-skip per-slot PWC loop.
fn pwc_reference(ifmap: &Tensor3<i8>, weights: &Tensor4<i8>) -> (Tensor3<i32>, EngineActivity) {
    let (td, tn, tm) = ifmap.shape();
    let (tk, _, _, _) = weights.shape();
    let mut partial = Tensor3::<i32>::zeros(tk, tn, tm);
    for k in 0..tk {
        for c in 0..td {
            let w = i32::from(weights[(k, c, 0, 0)]);
            for n in 0..tn {
                for m in 0..tm {
                    partial[(k, n, m)] += i32::from(ifmap[(c, n, m)]) * w;
                }
            }
        }
    }
    let zero_act: u64 = ifmap.as_slice().iter().filter(|&&a| a == 0).count() as u64;
    let zero_weight: u64 = weights.as_slice().iter().filter(|&&w| w == 0).count() as u64;
    let activity = EngineActivity {
        mac_slots: (td * tk * tn * tm) as u64,
        zero_act_slots: zero_act * tk as u64,
        zero_weight_slots: zero_weight * (tn * tm) as u64,
    };
    (partial, activity)
}

#[test]
fn dwc_skip_is_bit_identical_to_per_slot_reference_at_every_sparsity() {
    let cfg = EdeaConfig::paper();
    let engine = DwcEngine::new(&cfg);
    for (case, z) in [0.0, 0.3, 0.6, 0.9, 0.974, 1.0].iter().enumerate() {
        for stride in [1usize, 2] {
            let side = stride + 3; // 4×4 at stride 1, 5×5 at stride 2
            let mut ifmap = rng::uniform_i8_tensor3(8, side, side, -128, 127, 100 + case as u64);
            let mut weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 200 + case as u64);
            sparsify3(&mut ifmap, *z, 7 * case as u64);
            sparsify4(&mut weights, 0.2, 11 * case as u64); // quantized weights have zeros too
            let out = engine.compute_tile(&ifmap, &weights, stride).unwrap();
            let (acc, activity) = dwc_reference(&ifmap, &weights, stride, 2, 2, 3);
            assert_eq!(out.acc, acc, "z={z} stride={stride}");
            assert_eq!(out.activity, activity, "z={z} stride={stride}");
            assert_eq!(out.acc, depthwise_conv2d_i8(&ifmap, &weights, stride, 0));
        }
    }
}

#[test]
fn dwc_uncached_stride_fallback_matches_reference() {
    // Stride 3 has no precomputed coverage map: the per-slot fallback must
    // still skip zeros bit-exactly and count identically.
    let cfg = EdeaConfig::paper();
    let engine = DwcEngine::new(&cfg);
    let mut ifmap = rng::uniform_i8_tensor3(8, 6, 6, -128, 127, 300);
    let weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 301);
    sparsify3(&mut ifmap, 0.8, 13);
    let out = engine.compute_tile(&ifmap, &weights, 3).unwrap();
    let (acc, activity) = dwc_reference(&ifmap, &weights, 3, 2, 2, 3);
    assert_eq!(out.acc, acc);
    assert_eq!(out.activity, activity);
    assert_eq!(out.acc, depthwise_conv2d_i8(&ifmap, &weights, 3, 0));
}

#[test]
fn pwc_gated_and_ungated_match_per_slot_reference_at_every_sparsity() {
    let cfg = EdeaConfig::paper();
    let engine = PwcEngine::new(&cfg);
    for (case, z) in [0.0, 0.5, 0.953, 1.0].iter().enumerate() {
        let mut ifmap = rng::uniform_i8_tensor3(8, 2, 2, -128, 127, 400 + case as u64);
        let mut weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 500 + case as u64);
        sparsify3(&mut ifmap, *z, 17 * case as u64);
        sparsify4(&mut weights, 0.25, 19 * case as u64);
        let (reference, activity) = pwc_reference(&ifmap, &weights);
        // Ungated (activation skip only).
        let out = engine.compute_tile(&ifmap, &weights).unwrap();
        assert_eq!(out.partial, reference, "z={z} ungated");
        assert_eq!(out.activity, activity, "z={z} ungated");
        // Gated by the plan-time weight occupancy.
        let occ = LaneOccupancy::of_weights(&weights).expect("td=8 fits the mask");
        let mut partial = Tensor3::<i32>::zeros(1, 1, 1);
        let act = engine
            .compute_tile_gated_into(&ifmap, &weights, Some(&occ), &mut partial)
            .unwrap();
        assert_eq!(partial, reference, "z={z} gated");
        assert_eq!(act, activity, "z={z} gated");
        assert_eq!(partial, pointwise_conv2d_i8(&ifmap, &weights));
    }
}

#[test]
fn activity_reports_modeled_slots_even_when_all_compute_is_skipped() {
    // An all-zero tile exercises every MAC slot in the modeled hardware —
    // all of them gated — even though the simulator multiplies nothing.
    let cfg = EdeaConfig::paper();
    let dwc = DwcEngine::new(&cfg);
    let pwc = PwcEngine::new(&cfg);
    let zeros3 = Tensor3::<i8>::zeros(8, 4, 4);
    let dwc_w = rng::uniform_i8_tensor4(8, 1, 3, 3, 1, 127, 600);
    let out = dwc.compute_tile(&zeros3, &dwc_w, 1).unwrap();
    assert_eq!(out.activity.mac_slots, 288);
    assert_eq!(out.activity.zero_act_slots, 288);
    assert!(out.acc.as_slice().iter().all(|&v| v == 0));
    let zeros_pwc = Tensor3::<i8>::zeros(8, 2, 2);
    let pwc_w = rng::uniform_i8_tensor4(16, 8, 1, 1, 1, 127, 601);
    let out = pwc.compute_tile(&zeros_pwc, &pwc_w).unwrap();
    assert_eq!(out.activity.mac_slots, 512);
    assert_eq!(out.activity.zero_act_slots, 512);
    assert!(out.partial.as_slice().iter().all(|&v| v == 0));
}

#[test]
fn lane_occupancy_recognizes_dense_and_sparse_tiles() {
    let dense = rng::uniform_i8_tensor4(16, 8, 1, 1, 1, 127, 700);
    let occ = LaneOccupancy::of_weights(&dense).unwrap();
    assert!(occ.all_full());
    for k in 0..16 {
        assert_eq!(occ.lane(k), 0xff);
    }
    let mut sparse = dense.clone();
    sparse.as_mut_slice()[3] = 0; // lane 0, channel 3
    let occ = LaneOccupancy::of_weights(&sparse).unwrap();
    assert!(!occ.all_full());
    assert_eq!(occ.lane(0), 0xff & !(1 << 3));
    assert_eq!(occ.lane(1), 0xff);
    // Depth beyond the mask word: no occupancy, engine runs unmasked.
    let deep = Tensor4::<i8>::zeros(2, 65, 1, 1);
    assert!(LaneOccupancy::of_weights(&deep).is_none());
    // More lanes than the inline mask array: same fallback.
    let wide = Tensor4::<i8>::zeros(LaneOccupancy::MAX_LANES + 1, 8, 1, 1);
    assert!(LaneOccupancy::of_weights(&wide).is_none());
}

#[test]
fn shaped_network_outputs_and_activity_are_bit_identical_across_paths() {
    // End to end on the Fig.-11-shaped deployment: the planned run (weight
    // occupancy active) and the unplanned run must agree with the golden
    // executor on outputs and with each other on every activity count —
    // the skip machinery changes wall-clock only.
    let d = deploy(0.25, 91);
    let edea = paper_edea();
    let plan = NetworkPlan::new(&d.qnet, edea.config()).unwrap();
    let planned = edea.run_network_planned(&d.qnet, &plan, &d.input).unwrap();
    let unplanned = edea.run_network(&d.qnet, &d.input).unwrap();
    let golden = executor::run_network(&d.qnet, &d.input);
    assert_eq!(planned.output, golden.output);
    assert_eq!(unplanned.output, golden.output);
    for (p, u) in planned.stats.layers.iter().zip(&unplanned.stats.layers) {
        assert_eq!(p.dwc_activity, u.dwc_activity, "layer {}", p.shape.index);
        assert_eq!(p.pwc_activity, u.pwc_activity, "layer {}", p.shape.index);
        // PWC slot accounting closes against the intermediate map: each
        // mid element feeds Tk adder trees per kernel tile = k_out slots,
        // so gated slots = (zero mid elements) × k_out.
        let mids = p.mid_zero * p.shape.intermediate_elems() as f64;
        assert_eq!(
            p.pwc_activity.zero_act_slots,
            (mids.round() as u64) * p.shape.k_out as u64,
            "layer {}",
            p.shape.index
        );
    }
}
