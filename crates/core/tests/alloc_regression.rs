//! Allocation-regression guard for the simulator's scratch-buffer tile
//! pipeline and the pool dispatch loop: the steady-state tile loop must
//! perform **zero** heap allocations, a warm layer run must allocate only
//! per-image output structures — never per tile — and the pool's
//! steady-state dispatch machinery must add only a small, stable,
//! per-batch constant on top of the backend run (never per tick or per
//! queue entry). Part 4 pins the scoped thread pool: a warm 2-lane layer
//! run allocates only a small, stable, per-region constant (the scoped
//! spawn plus per-lane buffers), never per tile. Part 5 pins telemetry:
//! a `Disabled` sink adds exactly zero allocations to the serve path,
//! and a warm enabled recorder settles to a stable per-batch constant.
//!
//! The whole guard lives in one `#[test]` because the counting allocator
//! is process-wide and the default harness runs tests of one binary
//! concurrently.

use edea_core::par::Parallelism;
use edea_core::plan::LayerPlan;
use edea_core::pool::{DispatchPolicy, Dispatcher, Pool};
use edea_core::schedule::WeightResidency;
use edea_core::scratch::TileScratch;
use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy};
use edea_core::EdeaConfig;
use edea_core::{
    engine::{DwcEngine, LaneOccupancy, PwcEngine},
    nonconv::NonConvUnit,
    Edea,
};
use edea_nn::workload::mobilenet_v1_cifar10;
use edea_tensor::Tensor3;
use edea_testutil::alloc::CountingAllocator;
use edea_testutil::{batch_inputs, deploy, zero_requests};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_tile_pipeline_does_not_allocate() {
    let cfg = EdeaConfig::paper();
    let d = deploy(0.25, 77);
    let layer = &d.qnet.layers()[0]; // d_in 8, k_out 16, 32×32 ofmap

    // Parts 1–3 measure the serial reference path, so pin it explicitly —
    // the per-tile/per-batch bounds below assume no scoped threads are
    // spawned (CI also runs this suite under EDEA_THREADS=4; part 4 covers
    // the parallel path with its own bound).
    let edea = Edea::new(cfg.clone())
        .unwrap()
        .with_parallelism(Parallelism::serial());

    // --- Part 1: the per-tile pipeline itself allocates exactly zero. ---
    // Drive the DWC → Non-Conv → PWC chain over warm scratch buffers, the
    // way execute_layer's innermost loop does.
    let dwc = DwcEngine::new(&cfg);
    let pwc = PwcEngine::new(&cfg);
    let nonconv = NonConvUnit::new(&cfg);
    let padded = d.input.zero_padded(1);
    let dw = d.qnet.layers()[0].dw_weights().values().kernel_slice(0, 8);
    let pw = d.qnet.layers()[0]
        .pw_weights()
        .values()
        .channel_slice(0, 8)
        .kernel_slice(0, 16);
    let mut window = Tensor3::<i8>::zeros(8, 4, 4);
    let mut acc = Tensor3::<i32>::zeros(1, 1, 1);
    let mut mid = Tensor3::<i8>::zeros(1, 1, 1);
    let mut partial = Tensor3::<i32>::zeros(1, 1, 1);
    let tile = |row0: usize,
                col0: usize,
                window: &mut Tensor3<i8>,
                acc: &mut Tensor3<i32>,
                mid: &mut Tensor3<i8>,
                partial: &mut Tensor3<i32>| {
        padded.copy_window_into(0, row0, col0, window);
        dwc.compute_tile_into(window, &dw, 1, acc).unwrap();
        nonconv
            .apply_tile_into(acc, d.qnet.layers()[0].nonconv1(), mid)
            .unwrap();
        pwc.compute_tile_into(mid, &pw, partial).unwrap();
    };
    // Warm-up grows every buffer to its steady-state shape.
    tile(0, 0, &mut window, &mut acc, &mut mid, &mut partial);
    let before = CountingAllocator::allocations();
    for i in 0..256usize {
        let (r, c) = ((i / 16) * 2, (i % 16) * 2);
        tile(r, c, &mut window, &mut acc, &mut mid, &mut partial);
    }
    let per_tile = CountingAllocator::allocations() - before;
    assert_eq!(
        per_tile, 0,
        "steady-state tile pipeline allocated {per_tile} times over 256 tiles"
    );

    // --- Part 1b: the zero-skipping path is just as allocation-free. ---
    // Sparse activations route the engines through the occupancy-masked
    // kernels (stack-resident masks and accumulators) and the plan-time
    // LaneOccupancy is built outside the loop, so a ~90 %-zero input must
    // still run the whole chain with zero per-tile allocations.
    let mut sparse_padded = padded.clone();
    for (i, v) in sparse_padded.as_mut_slice().iter_mut().enumerate() {
        if i % 8 != 0 {
            *v = 0;
        }
    }
    let mut pw_sparse = pw.clone();
    for (i, v) in pw_sparse.as_mut_slice().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0;
        }
    }
    let occ = LaneOccupancy::of_weights(&pw_sparse).expect("Td = 8 fits the mask word");
    let sparse_tile = |row0: usize,
                       col0: usize,
                       window: &mut Tensor3<i8>,
                       acc: &mut Tensor3<i32>,
                       mid: &mut Tensor3<i8>,
                       partial: &mut Tensor3<i32>| {
        sparse_padded.copy_window_into(0, row0, col0, window);
        dwc.compute_tile_into(window, &dw, 1, acc).unwrap();
        nonconv
            .apply_tile_into(acc, d.qnet.layers()[0].nonconv1(), mid)
            .unwrap();
        pwc.compute_tile_gated_into(mid, &pw_sparse, Some(&occ), partial)
            .unwrap();
    };
    sparse_tile(0, 0, &mut window, &mut acc, &mut mid, &mut partial);
    let before = CountingAllocator::allocations();
    for i in 0..256usize {
        let (r, c) = ((i / 16) * 2, (i % 16) * 2);
        sparse_tile(r, c, &mut window, &mut acc, &mut mid, &mut partial);
    }
    let per_tile = CountingAllocator::allocations() - before;
    assert_eq!(
        per_tile, 0,
        "zero-skipping tile pipeline allocated {per_tile} times over 256 tiles"
    );

    // --- Part 2: a warm planned layer run allocates only a small, stable,
    // per-image set of output structures — not one per tile. ---
    let plan = LayerPlan::new(layer, &cfg).unwrap();
    let mut scratch = TileScratch::new();
    let inputs = batch_inputs(&d, 2, 79);
    let run = |n: usize, scratch: &mut TileScratch| {
        edea.run_layer_planned(
            layer,
            &plan,
            &inputs.images()[..n],
            WeightResidency::PerBatch,
            scratch,
        )
        .unwrap()
    };
    // Warm the scratch for the larger batch first.
    let _ = run(2, &mut scratch);
    let count_allocs = |n: usize, scratch: &mut TileScratch| {
        let before = CountingAllocator::allocations();
        let out = run(n, scratch);
        let allocs = CountingAllocator::allocations() - before;
        drop(out);
        allocs
    };
    let one_a = count_allocs(1, &mut scratch);
    let one_b = count_allocs(1, &mut scratch);
    let two = count_allocs(2, &mut scratch);
    assert_eq!(
        one_a, one_b,
        "warm runs must have a stable allocation count"
    );
    // Layer 0 at width 0.25 runs 256 spatial tiles per image: if even one
    // allocation per tile slipped back in, the count would exceed 256.
    assert!(
        one_a < 64,
        "warm single-image layer run allocated {one_a} times (256 tiles)"
    );
    // Doubling the batch doubles the tile work; the allocation count may
    // grow only by the per-image output set.
    assert!(
        two - one_a < 32,
        "batch of 2 allocated {two}, batch of 1 {one_a}: per-tile allocation crept back in"
    );

    // --- Part 3: the pool dispatch loop in steady state adds only a
    // small, stable, per-batch constant on top of the backend run. ---
    // The analytic backend's run is a handful of allocations (one
    // placeholder tensor per image plus the batch), so driving it through
    // a 2-worker pool isolates the dispatcher's own footprint: routing
    // decisions, queue moves and clock advances must allocate nothing —
    // only the per-batch record/response structures and the backend's
    // outputs may. With batch-of-1 dispatches, anything per-tick or
    // per-queue-entry would blow the per-batch bound immediately.
    let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &cfg).unwrap();
    let pool = Pool::replicate(backend.clone(), 2)
        .unwrap()
        .with_parallelism(Parallelism::serial());
    let dispatcher = Dispatcher::new(
        Policy::new(1, 0).unwrap(),
        DispatchPolicy::JoinShortestQueue,
    );
    let shape = backend.input_shape();
    let serve_allocs = |n_requests: usize| {
        // Build the request stream outside the measured window.
        let ticks = arrivals::uniform(n_requests, 1_000);
        let requests = zero_requests(shape, &ticks);
        let before = CountingAllocator::allocations();
        let report = dispatcher.serve(&pool, requests).unwrap();
        let allocs = CountingAllocator::allocations() - before;
        assert_eq!(report.serve.batches.len(), n_requests, "batch-of-1 policy");
        drop(report);
        allocs
    };
    // Warm-up, then measure: identical streams must allocate identically
    // (the dispatch loop holds no hidden growing state)…
    let _ = serve_allocs(8);
    let eight_a = serve_allocs(8);
    let eight_b = serve_allocs(8);
    assert_eq!(
        eight_a, eight_b,
        "pool serve must have a stable allocation count"
    );
    // …and doubling the batches at most doubles the count: the marginal
    // cost of 8 more single-request dispatches is bounded by a small
    // per-batch constant (response + batch record + assignment + the
    // backend's placeholder output), nowhere near a per-tick loop.
    let sixteen = serve_allocs(16);
    let per_batch = (sixteen - eight_a) / 8;
    assert!(
        per_batch <= 16,
        "pool dispatch allocates {per_batch} per batch ({eight_a} for 8, {sixteen} for 16)"
    );

    // --- Part 4: the scoped thread pool in steady state adds only a
    // small, stable, per-region constant — never per tile. ---
    // A 2-lane planned layer run spawns one scoped thread per region and
    // gives each lane a warm lane-private scratch and its own portion
    // slots, so after warm-up the only allocations left are the spawn
    // itself, the per-lane batch buffers and the per-image output set.
    // Per-tile allocation creeping into the *parallel* loop would clear
    // the 256-tile bound immediately; instability across identical warm
    // runs would betray hidden growing state in the lane machinery.
    let threaded = Edea::new(cfg.clone())
        .unwrap()
        .with_parallelism(Parallelism::new(2).unwrap());
    let mut par_scratch = TileScratch::new();
    let par_run = |n: usize, scratch: &mut TileScratch| {
        threaded
            .run_layer_planned(
                layer,
                &plan,
                &inputs.images()[..n],
                WeightResidency::PerBatch,
                scratch,
            )
            .unwrap()
    };
    // Warm twice: the first run grows the lane scratches and portion
    // slots, the second settles any thread-runtime one-offs (TLS, stack
    // caches) so the measured window sees only the steady state.
    let _ = par_run(2, &mut par_scratch);
    let _ = par_run(2, &mut par_scratch);
    let count_par = |n: usize, scratch: &mut TileScratch| {
        let before = CountingAllocator::allocations();
        let out = par_run(n, scratch);
        let allocs = CountingAllocator::allocations() - before;
        drop(out);
        allocs
    };
    let warm_a = count_par(2, &mut par_scratch);
    let warm_b = count_par(2, &mut par_scratch);
    assert_eq!(
        warm_a, warm_b,
        "warm 2-lane runs must have a stable allocation count"
    );
    // 2 images × 256 tiles each: a single per-tile allocation in the lane
    // loop would cost 512+. The steady-state budget is the scoped spawn,
    // two lane-local BufferSets and the per-image outputs.
    assert!(
        warm_a < 128,
        "warm 2-lane batch run allocated {warm_a} times (512 tiles)"
    );

    // --- Part 5: telemetry discipline — a Disabled sink adds exactly
    // zero allocations to the serve path, and an enabled ring-buffer
    // recorder settles to a stable steady-state count. ---
    // The drive loop's side-record vectors are gated on `enabled()`, so
    // the explicit Disabled path must count identically to the default
    // (no-sink) path measured in part 3.
    let serve_with_allocs = |n_requests: usize, tel: &dyn edea_core::telemetry::Telemetry| {
        let ticks = arrivals::uniform(n_requests, 1_000);
        let requests = zero_requests(shape, &ticks);
        let before = CountingAllocator::allocations();
        let report = dispatcher.serve_with(&pool, requests, tel).unwrap();
        let allocs = CountingAllocator::allocations() - before;
        drop(report);
        allocs
    };
    let disabled = edea_core::telemetry::Disabled;
    let _ = serve_with_allocs(8, &disabled);
    let off_a = serve_with_allocs(8, &disabled);
    assert_eq!(
        off_a, eight_b,
        "Disabled telemetry changed the serve allocation count \
         ({off_a} observed vs {eight_b} unobserved)"
    );

    // Enabled recorder: warm it (ring buffer + side-record vectors grow
    // to steady state), then identical runs must allocate identically —
    // the per-event record path itself pushes into preallocated storage.
    let recorder = edea_core::telemetry::Recorder::with_capacity(1 << 10);
    let _ = serve_with_allocs(8, &recorder);
    recorder.clear();
    let on_a = serve_with_allocs(8, &recorder);
    recorder.clear();
    let on_b = serve_with_allocs(8, &recorder);
    assert_eq!(
        on_a, on_b,
        "warm enabled-recorder serves must have a stable allocation count"
    );
    // The recorder's marginal footprint per batch is a small constant:
    // the route records, layer vectors and ring-buffer pushes — nothing
    // per tick or per queue entry.
    let on_margin = (on_a - off_a) / 8;
    assert!(
        on_margin <= 16,
        "enabled recorder adds {on_margin} allocations per batch \
         ({on_a} observed vs {off_a} disabled for 8 batches)"
    );
}
