//! Parallel bit-identity suite: every thread count must reproduce the
//! serial simulation **exactly** — outputs, engine activity, external
//! traffic, cycle timelines, batch records — because the scoped thread
//! pool only parallelizes host work that is independent by construction
//! (portions of a tile loop, workers of a pool), never the simulated
//! machine. Each configuration runs three times, so run-to-run stability
//! (no scheduling-order leak into results) is pinned alongside the
//! cross-thread-count identity.
//!
//! This suite is the enforcement arm of the determinism contract in
//! `edea_core::par`: static partition, one writer per element, fixed-order
//! reduction. `tests/determinism.rs` at the workspace root guards the
//! whole deploy flow at 1 and 4 threads; this file sweeps the thread axis
//! itself ({1, 2, 3, 8} — odd, even and oversubscribed) over all four
//! execution paths: full network, batched schedule, single-backend
//! serving, and the multi-worker pool.

use edea_core::par::Parallelism;
use edea_core::pool::{DispatchPolicy, Dispatcher, Pool, PoolReport};
use edea_core::serve::{arrivals, Policy, Scheduler, ServeReport, SimulatorBackend};
use edea_testutil::{batch_inputs, deploy, paper_edea_threads, serve_requests, TestDeployment};

/// The sweep: serial reference, even and odd lane counts (3 does not
/// divide most portion counts, so chunk boundaries land unevenly), and an
/// oversubscribed count beyond the portion/worker counts in play.
const THREADS: [usize; 4] = [1, 2, 3, 8];
const REPS: usize = 3;

fn fixture() -> TestDeployment {
    deploy(0.25, 501)
}

#[test]
fn network_forward_is_bit_identical_at_every_thread_count() {
    let d = fixture();
    let baseline = paper_edea_threads(1)
        .run_network(&d.qnet, &d.input)
        .expect("serial network run");
    for threads in THREADS {
        let edea = paper_edea_threads(threads);
        for rep in 0..REPS {
            let run = edea
                .run_network(&d.qnet, &d.input)
                .expect("threaded network run");
            assert_eq!(
                run.output, baseline.output,
                "{threads}-thread rep {rep}: output diverged"
            );
            // NetworkStats equality covers per-layer cycles, MACs, engine
            // activity (busy/idle/stall) and the external-traffic split.
            assert_eq!(
                run.stats, baseline.stats,
                "{threads}-thread rep {rep}: stats diverged"
            );
        }
    }
}

#[test]
fn batched_forward_is_bit_identical_at_every_thread_count() {
    let d = fixture();
    let inputs = batch_inputs(&d, 3, 503);
    let baseline = paper_edea_threads(1)
        .run_batch(&d.qnet, &inputs)
        .expect("serial batch run");
    for threads in THREADS {
        let edea = paper_edea_threads(threads);
        for rep in 0..REPS {
            let run = edea
                .run_batch(&d.qnet, &inputs)
                .expect("threaded batch run");
            assert_eq!(
                run.outputs, baseline.outputs,
                "{threads}-thread rep {rep}: batch outputs diverged"
            );
            // BatchNetworkStats equality covers the amortized external
            // traffic, per-layer engine activity and the residency split.
            assert_eq!(
                run.stats, baseline.stats,
                "{threads}-thread rep {rep}: batch stats diverged"
            );
        }
    }
}

fn assert_serve_identical(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(a.responses, b.responses, "{what}: responses diverged");
    assert_eq!(a.batches, b.batches, "{what}: batch records diverged");
    assert_eq!(a.policy, b.policy, "{what}: policy diverged");
    assert_eq!(a.backend, b.backend, "{what}: backend name diverged");
}

#[test]
fn serving_is_bit_identical_at_every_thread_count() {
    let d = fixture();
    let requests = serve_requests(&d, &arrivals::bursts(6, 2, 40_000_000), 505);
    let scheduler = Scheduler::new(Policy::new(2, 0).expect("valid policy"));
    let serve = |threads: usize| -> ServeReport {
        let backend = SimulatorBackend::new(paper_edea_threads(threads), d.qnet.clone())
            .expect("backend builds");
        scheduler
            .serve(&backend, requests.clone())
            .expect("serve runs")
    };
    let baseline = serve(1);
    for threads in THREADS {
        for rep in 0..REPS {
            let report = serve(threads);
            assert_serve_identical(&report, &baseline, &format!("{threads}-thread rep {rep}"));
        }
    }
}

#[test]
fn pool_serve_is_bit_identical_at_every_thread_count() {
    let d = fixture();
    // A burst of 8 single-request batches across 3 workers: several
    // batches run on independent workers in the same simulated window, so
    // the oracle-mode worker fan-out actually engages at threads > 1.
    let requests = serve_requests(&d, &arrivals::uniform(8, 1_000), 507);
    let dispatcher = Dispatcher::new(
        Policy::new(1, 0).expect("valid policy"),
        DispatchPolicy::LeastLoaded,
    );
    let serve = |threads: usize| -> PoolReport {
        let backend = SimulatorBackend::new(paper_edea_threads(threads), d.qnet.clone())
            .expect("backend builds");
        let pool = Pool::replicate(backend, 3)
            .expect("pool builds")
            .with_parallelism(Parallelism::new(threads).expect("in range"));
        dispatcher
            .serve(&pool, requests.clone())
            .expect("pool serve runs")
    };
    let baseline = serve(1);
    for threads in THREADS {
        for rep in 0..REPS {
            let what = format!("{threads}-thread rep {rep}");
            let report = serve(threads);
            assert_serve_identical(&report.serve, &baseline.serve, &what);
            assert_eq!(
                report.assignments, baseline.assignments,
                "{what}: batch → worker assignments diverged"
            );
            assert_eq!(
                report.workers, baseline.workers,
                "{what}: per-worker accounting diverged"
            );
            assert_eq!(report.dispatch, baseline.dispatch, "{what}: policy");
        }
    }
}
