//! Property tests of the accelerator pool's dispatch loop.
//!
//! Over random arrival patterns, batch policies, pool sizes and routing
//! policies (driven by the fast analytic backend so hundreds of pool runs
//! cost nothing), the dispatcher must: conserve requests across workers,
//! keep every formed batch within `max_batch`, keep each worker's batches
//! FIFO and non-overlapping, stay within the round-robin makespan bound
//! when routing least-loaded, and stay a pure function of its inputs.

use edea_core::pool::{DispatchPolicy, Dispatcher, Pool};
use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy, Scheduler};
use edea_core::EdeaConfig;
use edea_nn::workload::mobilenet_v1_cifar10;
use edea_testutil::zero_requests;
use proptest::prelude::*;

fn backend() -> AnalyticBackend {
    AnalyticBackend::new(&mobilenet_v1_cifar10(), &EdeaConfig::paper())
        .expect("paper workload maps")
}

fn dispatch_policy(idx: usize) -> DispatchPolicy {
    [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::JoinShortestQueue,
    ][idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation across workers, per-worker FIFO, the `max_batch`
    /// bound, per-worker non-overlap, and aggregate/per-worker accounting
    /// consistency — under every routing policy.
    #[test]
    fn pool_invariants_hold_under_random_load(
        n in 1usize..48,
        workers in 1usize..6,
        max_batch in 1usize..9,
        wait_frac in 0.0f64..2.0,
        load in 0.1f64..4.0,
        seed in 0u64..1_000,
        dp in 0usize..3,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let policy = Policy::new(max_batch, (wait_frac * service as f64) as u64)
            .expect("policy");
        let ticks = arrivals::poisson(n, service as f64 / load, seed);
        let pool = Pool::replicate(b.clone(), workers).expect("pool");
        let report = Dispatcher::new(policy, dispatch_policy(dp))
            .serve(&pool, zero_requests(b.input_shape(), &ticks))
            .expect("serve");

        // Conservation: each of the n requests answered exactly once, and
        // the per-worker request counts partition them.
        prop_assert_eq!(report.serve.responses.len(), n);
        let mut ids: Vec<u64> = report.serve.responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(
            report.workers.iter().map(|w| w.requests).sum::<usize>(),
            n
        );
        prop_assert_eq!(
            report.serve.batches.iter().map(|b| b.size).sum::<usize>(),
            n
        );
        prop_assert_eq!(report.assignments.len(), report.serve.batches.len());

        // Size bound: no worker ever runs a batch beyond max_batch.
        for batch in &report.serve.batches {
            prop_assert!(batch.size >= 1 && batch.size <= max_batch,
                "batch {} size {}", batch.index, batch.size);
            prop_assert_eq!(batch.completed, batch.dispatched + batch.cycles);
            prop_assert!(batch.dispatched >= batch.oldest_arrival);
        }

        // Per-worker: batches never overlap, requests stay FIFO by
        // (arrival, id), and the report's accounting matches the batches
        // this worker actually ran.
        for w in 0..workers {
            let batch_ids: Vec<usize> = report.assignments.iter().enumerate()
                .filter(|(_, &a)| a == w)
                .map(|(i, _)| i)
                .collect();
            let mut prev_completed = 0u64;
            let mut busy = 0u64;
            let mut weight = 0u64;
            let mut served = 0usize;
            let mut keys: Vec<(u64, u64)> = Vec::new();
            for &bi in &batch_ids {
                let batch = &report.serve.batches[bi];
                prop_assert!(batch.dispatched >= prev_completed,
                    "worker {w} batch {bi} overlaps its predecessor");
                prev_completed = batch.completed;
                busy += batch.cycles;
                weight += batch.weight_bytes;
                served += batch.size;
                keys.extend(
                    report.serve.responses.iter()
                        .filter(|r| r.batch == bi)
                        .map(|r| (r.arrival, r.id)),
                );
            }
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&keys, &sorted, "worker {} served out of FIFO order", w);
            let wr = &report.workers[w];
            prop_assert_eq!(wr.batches, batch_ids.len());
            prop_assert_eq!(wr.requests, served);
            prop_assert_eq!(wr.busy_cycles, busy);
            prop_assert_eq!(wr.weight_bytes, weight);
            let util = report.worker_utilization(w);
            prop_assert!((0.0..=1.0).contains(&util), "worker {} util {}", w, util);
        }
    }

    /// Least-loaded routing stays within round-robin's makespan bound:
    /// its makespan never exceeds round-robin's by more than one dispatch
    /// quantum (`max_batch` service times + the waiting deadline). Exact
    /// dominance is *not* a law — greedy routing has classic
    /// list-scheduling anomalies — but the quantum bound held with ≥ 2×
    /// margin over 12 960 sampled scenarios when this test was written.
    #[test]
    fn least_loaded_stays_within_round_robin_makespan_bound(
        n in 1usize..40,
        workers in 2usize..5,
        max_batch in 1usize..9,
        wait_frac in 0.0f64..1.5,
        load in 0.25f64..4.0,
        seed in 0u64..1_000,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let max_wait = (wait_frac * service as f64) as u64;
        let policy = Policy::new(max_batch, max_wait).expect("policy");
        let ticks = arrivals::poisson(n, service as f64 / load, seed);
        let pool = Pool::replicate(b.clone(), workers).expect("pool");
        let ll = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
            .serve(&pool, zero_requests(b.input_shape(), &ticks))
            .expect("serve");
        let rr = Dispatcher::new(policy, DispatchPolicy::RoundRobin)
            .serve(&pool, zero_requests(b.input_shape(), &ticks))
            .expect("serve");
        let quantum = max_batch as u64 * service + max_wait;
        prop_assert!(
            ll.serve.makespan() <= rr.serve.makespan() + quantum,
            "least-loaded makespan {} > round-robin {} + quantum {}",
            ll.serve.makespan(), rr.serve.makespan(), quantum
        );
    }

    /// A pool of one is the single-backend scheduler, bit for bit, under
    /// every routing policy and random batch policies.
    #[test]
    fn pool_of_one_is_the_scheduler(
        n in 1usize..32,
        max_batch in 1usize..9,
        wait_frac in 0.0f64..2.0,
        seed in 0u64..1_000,
        dp in 0usize..3,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let policy = Policy::new(max_batch, (wait_frac * service as f64) as u64)
            .expect("policy");
        let ticks = arrivals::poisson(n, service as f64 / 2.0, seed);
        let single = Scheduler::new(policy)
            .serve(&b, zero_requests(b.input_shape(), &ticks))
            .expect("serve");
        let pool = Pool::replicate(b.clone(), 1).expect("pool");
        let pooled = Dispatcher::new(policy, dispatch_policy(dp))
            .serve(&pool, zero_requests(b.input_shape(), &ticks))
            .expect("serve");
        prop_assert_eq!(&pooled.serve.batches, &single.batches);
        prop_assert_eq!(&pooled.serve.responses, &single.responses);
        prop_assert_eq!(&pooled.serve.backend, &single.backend);
    }

    /// The pool run is a pure function of
    /// (requests, policy, dispatch policy, pool): identical inputs give
    /// identical reports under a fixed seed.
    #[test]
    fn pool_serve_is_deterministic(
        n in 1usize..32,
        workers in 1usize..5,
        max_batch in 1usize..9,
        seed in 0u64..1_000,
        dp in 0usize..3,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let policy = Policy::new(max_batch, service).expect("policy");
        let ticks = arrivals::poisson(n, service as f64, seed);
        let pool = Pool::replicate(b.clone(), workers).expect("pool");
        let d = Dispatcher::new(policy, dispatch_policy(dp));
        let r1 = d.serve(&pool, zero_requests(b.input_shape(), &ticks)).expect("serve");
        let r2 = d.serve(&pool, zero_requests(b.input_shape(), &ticks)).expect("serve");
        prop_assert_eq!(r1.serve.batches, r2.serve.batches);
        prop_assert_eq!(r1.serve.responses, r2.serve.responses);
        prop_assert_eq!(r1.assignments, r2.assignments);
        prop_assert_eq!(r1.workers, r2.workers);
    }
}
