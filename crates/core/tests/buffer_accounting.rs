//! Property and exhaustive tests of the DWC→PWC direct-transfer buffer
//! accounting: the intermediate buffer is the paper's headline structural
//! feature, so its byte counters must follow exactly from the schedule
//! arithmetic, and no intermediate activation may ever touch external
//! memory.

use edea_core::baseline::roundtrip_external_traffic;
use edea_nn::executor;
use edea_testutil::{deploy, paper_edea, TestDeployment};
use proptest::prelude::*;

/// Every invariant the direct-transfer accounting must satisfy for one
/// deployed network, checked layer by layer.
fn check_network_accounting(width: f64, seed: u64) {
    let TestDeployment { qnet, input, .. } = deploy(width, seed);
    let edea = paper_edea();
    let t = edea.config().tile;
    let tile_bytes = (t.tn * t.tm * t.td) as u64;

    let mut x = input;
    for layer in qnet.layers() {
        let s = layer.shape();
        let run = edea.run_layer(layer, &x).expect("layer runs");
        let stats = &run.stats;

        // 1. The intermediate buffer is written exactly once per DWC engine
        //    invocation (one Tn×Tm×Td tile per busy cycle), and read exactly
        //    once per PWC invocation.
        assert_eq!(
            stats.intermediate.writes,
            stats.breakdown.dwc_busy * tile_bytes,
            "layer {}: intermediate writes != dwc_busy × tile",
            s.index
        );
        assert_eq!(
            stats.intermediate.reads,
            stats.breakdown.pwc_busy * tile_bytes,
            "layer {}: intermediate reads != pwc_busy × tile",
            s.index
        );

        // 2. The La dataflow re-reads each written tile once per kernel
        //    tile: reads = Kt × writes.
        let kernel_tiles = (s.k_out / t.tk) as u64;
        assert_eq!(
            stats.intermediate.reads,
            kernel_tiles * stats.intermediate.writes,
            "layer {}: reads != Kt × writes",
            s.index
        );

        // 3. The spatial tiles partition the output exactly, so the bytes
        //    written equal the intermediate map size (D × out²) — nothing is
        //    double-buffered or recomputed on the DWC side.
        let mid_bytes = (s.d_in * s.out_spatial() * s.out_spatial()) as u64;
        assert_eq!(
            stats.intermediate.writes, mid_bytes,
            "layer {}: writes != |mid|",
            s.index
        );

        // 4. Direct data transfer: the ONLY external writes are the final
        //    layer outputs. The intermediate map never leaves the chip.
        let out_bytes = (s.k_out * s.out_spatial() * s.out_spatial()) as u64;
        assert_eq!(
            stats.external.writes, out_bytes,
            "layer {}: external writes must be the ofmap alone",
            s.index
        );

        // 5. Removing the buffer would cost `roundtrip_external_traffic`
        //    extra external bytes — and that figure is exactly the traffic
        //    the buffer absorbed on-chip.
        let roundtrip = roundtrip_external_traffic(&s);
        assert_eq!(
            roundtrip,
            stats.intermediate.writes + stats.intermediate.reads,
            "layer {}: baseline round-trip must equal absorbed traffic",
            s.index
        );

        // 6. The simulator's intermediate map is bit-exact with the golden
        //    executor's (the data the accounting describes is also correct).
        let golden = executor::run_layer(layer, &x);
        assert_eq!(
            run.pwc_input, golden.pwc_input,
            "layer {}: mid map mismatch",
            s.index
        );
        assert_eq!(
            run.output, golden.output,
            "layer {}: output mismatch",
            s.index
        );

        x = run.output;
    }
}

#[test]
fn intermediate_accounting_exact_over_all_13_layers() {
    check_network_accounting(0.25, 11);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The accounting identities are properties of the schedule, not of one
    /// particular network: they must hold for any deployed network.
    #[test]
    fn intermediate_accounting_holds_for_random_deployments(seed in 0u64..10_000) {
        check_network_accounting(0.25, seed);
    }
}
