//! Property tests of the batch-forming scheduler.
//!
//! Over random arrival patterns, policies and loads (driven by the fast
//! analytic backend so hundreds of serve runs cost nothing), the scheduler
//! must: conserve requests, keep every formed batch within `max_batch`,
//! never hold a queue head past its waiting deadline while the accelerator
//! is free, keep batches FIFO and non-overlapping, and stay a pure
//! function of its inputs.

use edea_core::serve::{arrivals, AnalyticBackend, Backend, Policy, Request, Scheduler};
use edea_core::EdeaConfig;
use edea_nn::workload::mobilenet_v1_cifar10;
use edea_tensor::Tensor3;
use proptest::prelude::*;

fn backend() -> AnalyticBackend {
    AnalyticBackend::new(&mobilenet_v1_cifar10(), &EdeaConfig::paper())
        .expect("paper workload maps")
}

fn zero_requests(b: &AnalyticBackend, ticks: &[u64]) -> Vec<Request> {
    let (d, h, w) = b.input_shape();
    Request::stream(
        ticks,
        (0..ticks.len())
            .map(|_| Tensor3::<i8>::zeros(d, h, w))
            .collect(),
    )
    .expect("one tick per input")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Formed batches never exceed `max_batch`; no queue head is held past
    /// its deadline while the accelerator is free; batches are FIFO and
    /// never overlap; every request is served exactly once.
    #[test]
    fn scheduler_invariants_hold_under_random_load(
        n in 1usize..48,
        max_batch in 1usize..9,
        wait_frac in 0.0f64..2.0,
        load in 0.1f64..3.0,
        seed in 0u64..1_000,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let max_wait = (wait_frac * service as f64) as u64;
        let mean_gap = service as f64 / load;
        let ticks = arrivals::poisson(n, mean_gap, seed);
        let report = Scheduler::new(Policy::new(max_batch, max_wait).expect("policy"))
            .serve(&b, zero_requests(&b, &ticks))
            .expect("serve");

        // Conservation: each of the n requests answered exactly once.
        prop_assert_eq!(report.responses.len(), n);
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(
            report.batches.iter().map(|b| b.size).sum::<usize>(),
            n
        );

        let mut prev_completed = 0u64;
        for batch in &report.batches {
            // Size bound.
            prop_assert!(batch.size >= 1 && batch.size <= max_batch,
                "batch {} size {}", batch.index, batch.size);
            // Wait bound: dispatch no later than the head's deadline,
            // unless the accelerator was still busy (then immediately on
            // completion of the previous batch).
            let deadline = batch.oldest_arrival.saturating_add(max_wait);
            prop_assert!(batch.dispatched <= deadline.max(prev_completed),
                "batch {} dispatched {} > max(deadline {}, prev {})",
                batch.index, batch.dispatched, deadline, prev_completed);
            // Non-overlap and causality.
            prop_assert!(batch.dispatched >= prev_completed);
            prop_assert!(batch.dispatched >= batch.oldest_arrival);
            prop_assert_eq!(batch.completed, batch.dispatched + batch.cycles);
            prev_completed = batch.completed;
        }

        // FIFO: responses in dispatch order are sorted by (arrival, id).
        let keys: Vec<_> = report.responses.iter().map(|r| (r.arrival, r.id)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);

        // Amortization: any multi-image batch pulls weight bytes per image
        // below the single-image baseline (each dispatch pays the weight
        // fetch once, whatever its size).
        let baseline = b.cost().weight_bytes() as f64;
        if report.batches.iter().any(|batch| batch.size > 1) {
            prop_assert!(report.weight_bytes_per_image() < baseline);
        } else {
            prop_assert!((report.weight_bytes_per_image() - baseline).abs() < 1e-9);
        }
    }

    /// The serve run is a pure function of (requests, policy, backend):
    /// identical inputs give identical batch boundaries and statistics.
    #[test]
    fn scheduler_is_deterministic(
        n in 1usize..32,
        max_batch in 1usize..9,
        seed in 0u64..1_000,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let ticks = arrivals::poisson(n, service as f64, seed);
        let sched = Scheduler::new(Policy::new(max_batch, service).expect("policy"));
        let r1 = sched.serve(&b, zero_requests(&b, &ticks)).expect("serve");
        let r2 = sched.serve(&b, zero_requests(&b, &ticks)).expect("serve");
        prop_assert_eq!(r1.batches, r2.batches);
        prop_assert_eq!(r1.responses, r2.responses);
    }

    /// Request order does not matter: a shuffled stream serves identically
    /// to the sorted one (the scheduler orders by (arrival, id) itself).
    #[test]
    fn arrival_order_of_the_input_vec_is_irrelevant(
        n in 2usize..24,
        seed in 0u64..1_000,
    ) {
        let b = backend();
        let service = b.cost().per_image_cycles();
        let ticks = arrivals::poisson(n, service as f64 / 2.0, seed);
        let sched = Scheduler::new(Policy::new(4, service).expect("policy"));
        let forward = sched.serve(&b, zero_requests(&b, &ticks)).expect("serve");
        let mut reversed = zero_requests(&b, &ticks);
        reversed.reverse();
        let backward = sched.serve(&b, reversed).expect("serve");
        prop_assert_eq!(forward.batches, backward.batches);
        prop_assert_eq!(forward.responses, backward.responses);
    }
}
