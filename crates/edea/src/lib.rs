//! # EDEA — Efficient Dual-Engine Accelerator for Depthwise Separable Convolution
//!
//! Facade crate for the full reproduction of *"EDEA: Efficient Dual-Engine
//! Accelerator for Depthwise Separable Convolution with Direct Data
//! Transfer"* (Chen et al., SOCC 2024). Re-exports the workspace crates
//! under one roof:
//!
//! * [`fixed`] — fixed-point arithmetic (Q8.16 Non-Conv constants).
//! * [`tensor`] — tensors, batches, int8 quantization, reference
//!   convolutions.
//! * [`nn`] — MobileNetV1-CIFAR10, LSQ-style quantization, BN folding,
//!   sparsity shaping, golden int8 executor (per image and per batch).
//! * [`dse`] — the design-space exploration of the paper's Sec. II.
//! * [`core`] — the accelerator itself: engines, Non-Conv unit, buffers,
//!   cycle-accurate pipeline, power/area models, scaling, baselines, and
//!   batched multi-image inference with weight residency
//!   ([`Edea::run_batch`]).
//!
//! The most common entry points are re-exported at the top level. See
//! ARCHITECTURE.md for the crate/module → paper-section map. The workspace
//! builds offline: `rand`, `proptest` and `criterion` are vendored
//! API-subset stand-ins whose deterministic streams the golden fixtures
//! depend on (see `vendor/*/src/lib.rs` for each one's caveats).
//!
//! # Example
//!
//! ```
//! use edea::{Edea, EdeaConfig};
//! use edea::nn::mobilenet::MobileNetV1;
//! use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
//! use edea::nn::sparsity::SparsityProfile;
//! use edea::tensor::rng;
//!
//! let mut model = MobileNetV1::synthetic(0.25, 1);
//! let calib = rng::synthetic_batch(2, 3, 32, 32, 2);
//! let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
//!     &mut model, &calib, &SparsityProfile::paper(), QuantStrategy::paper())?;
//! let edea = Edea::new(EdeaConfig::paper());
//! let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
//! let run = edea.run_network(&qnet, &input)?;
//! println!("total cycles: {}", run.stats.total_cycles());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use edea_core as core;
pub use edea_dse as dse;
pub use edea_fixed as fixed;
pub use edea_nn as nn;
pub use edea_tensor as tensor;

pub use edea_core::{Edea, EdeaConfig};
pub use edea_nn::workload::mobilenet_v1_cifar10;
