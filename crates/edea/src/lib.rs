//! # EDEA — Efficient Dual-Engine Accelerator for Depthwise Separable Convolution
//!
//! Facade crate for the full reproduction of *"EDEA: Efficient Dual-Engine
//! Accelerator for Depthwise Separable Convolution with Direct Data
//! Transfer"* (Chen et al., SOCC 2024). Re-exports the workspace crates
//! under one roof:
//!
//! * [`fixed`] — fixed-point arithmetic (Q8.16 Non-Conv constants).
//! * [`tensor`] — tensors, batches, int8 quantization, reference
//!   convolutions.
//! * [`nn`] — MobileNetV1-CIFAR10, LSQ-style quantization, BN folding,
//!   sparsity shaping, golden int8 executor (per image and per batch).
//! * [`dse`] — the design-space exploration of the paper's Sec. II.
//! * [`core`] — the accelerator itself: engines, Non-Conv unit, buffers,
//!   cycle-accurate pipeline, power/area models, scaling, baselines,
//!   batched multi-image inference with weight residency
//!   ([`Edea::run_batch`]), and the serving layer ([`serve`]).
//!
//! The serving entry point is the [`Deployment`] builder: one session
//! object owning the calibrated network and a [`pool::Pool`] of validated
//! accelerator replicas (`.replicas(n)`, default 1), from which the
//! simulator/golden [`serve::Backend`]s, the batch-forming
//! [`serve::Scheduler`] and the multi-instance [`pool::Dispatcher`]
//! (round-robin / least-loaded / join-shortest-queue routing) hang. Every fallible path returns
//! the unified [`Error`]. The workspace builds offline: `rand`,
//! `proptest` and `criterion` are vendored API-subset stand-ins whose
//! deterministic streams the golden fixtures depend on (see
//! `vendor/*/src/lib.rs` for each one's caveats). See ARCHITECTURE.md for
//! the crate/module → paper-section map.
//!
//! # Example
//!
//! ```
//! use edea::{Deployment, EdeaConfig};
//! use edea::nn::mobilenet::MobileNetV1;
//! use edea::serve::{arrivals, Policy, Request};
//! use edea::tensor::rng;
//!
//! // One session object: model + calibration in, serving session out.
//! let deployment = Deployment::builder()
//!     .model(MobileNetV1::synthetic(0.25, 1))
//!     .calibration(rng::synthetic_batch(2, 3, 32, 32, 2))
//!     .config(EdeaConfig::paper())
//!     .build()?;
//!
//! // One-shot inference…
//! let input = deployment.prepare(&rng::synthetic_image(3, 32, 32, 3));
//! let run = deployment.run(&input)?;
//! println!("total cycles: {}", run.stats.total_cycles());
//!
//! // …or a served request stream through the batch-forming scheduler.
//! let ticks = arrivals::bursts(4, 2, 1_000_000);
//! let inputs = (0..4).map(|i| deployment.prepare(&rng::synthetic_image(3, 32, 32, i))).collect();
//! let report = deployment.serve(Policy::new(4, 0)?, Request::stream(&ticks, inputs)?)?;
//! assert_eq!(report.responses.len(), 4);
//! # Ok::<(), edea::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deploy;
mod error;

pub use edea_core as core;
pub use edea_dse as dse;
pub use edea_fixed as fixed;
pub use edea_nn as nn;
pub use edea_tensor as tensor;

pub use deploy::{Deployment, DeploymentBuilder};
pub use edea_core::pool;
pub use edea_core::serve;
pub use edea_core::telemetry;
pub use edea_core::{Edea, EdeaConfig};
pub use edea_nn::workload::mobilenet_v1_cifar10;
pub use error::Error;
