//! Session-based deployment: the one-stop entry point for serving.
//!
//! [`Deployment`] owns everything a long-lived serving session needs — the
//! float model, the calibrated [`QuantizedDscNetwork`] and a [`Pool`] of
//! validated [`Edea`] replicas (one by default; scale out with
//! [`DeploymentBuilder::replicas`]) — and hands out serving backends, a
//! scheduler ([`Deployment::serve`]) and the multi-instance dispatcher
//! ([`Deployment::serve_pool`]) on top. Build one with
//! [`Deployment::builder`]:
//!
//! ```
//! use edea::{Deployment, EdeaConfig};
//! use edea::nn::mobilenet::MobileNetV1;
//! use edea::tensor::rng;
//!
//! let deployment = Deployment::builder()
//!     .model(MobileNetV1::synthetic(0.25, 1))
//!     .calibration(rng::synthetic_batch(2, 3, 32, 32, 2))
//!     .config(EdeaConfig::paper())
//!     .build()?;
//! let input = deployment.prepare(&rng::synthetic_image(3, 32, 32, 3));
//! let run = deployment.run(&input)?;
//! assert_eq!(run.stats.layers.len(), 13);
//! # Ok::<(), edea::Error>(())
//! ```
//!
//! Construction is fallible end to end — a missing ingredient, a failed
//! calibration or an invalid configuration all surface as one
//! [`Error`](crate::Error) — and nothing panics on the serving path.

use edea_core::accelerator::{BatchRun, Edea, NetworkRun};
use edea_core::config::EdeaConfig;
use edea_core::par::Parallelism;
use edea_core::plan::NetworkPlan;
use edea_core::pool::{DispatchPolicy, Dispatcher, Pool, PoolReport};
use edea_core::serve::{GoldenBackend, Policy, Request, ServeReport, SimulatorBackend};
use edea_core::telemetry::{Disabled, Telemetry};
use edea_nn::mobilenet::{MobileNetV1, MobileNetV2};
use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea_nn::sparsity::{ShapingReport, SparsityProfile};
use edea_nn::workload::NetworkId;
use edea_tensor::{Batch, Tensor3};

use crate::Error;

/// A calibrated, validated, long-lived serving session: the float model,
/// its quantized DSC network and the accelerator pool, owned together.
#[derive(Debug, Clone)]
pub struct Deployment {
    model: MobileNetV1,
    /// Secondary float models, in registration order: entry `i` serves
    /// `NetworkId(1 + i)`. Empty for a single-model deployment.
    models_v2: Vec<MobileNetV2>,
    report: ShapingReport,
    // The single owner of the calibrated network and the accelerator
    // replicas, built once at build() time so serve() never re-clones
    // either. Worker 0 doubles as the one-shot `run`/`run_batch` engine.
    pool: Pool<SimulatorBackend>,
    telemetry: Option<std::sync::Arc<dyn Telemetry>>,
}

/// Step-by-step construction of a [`Deployment`].
///
/// Defaults: the paper's sparsity profile, quantization strategy and
/// accelerator configuration. A model and at least one calibration image
/// are required.
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    model: Option<MobileNetV1>,
    models_v2: Vec<MobileNetV2>,
    calibration: Vec<Tensor3<f32>>,
    sparsity: SparsityProfile,
    quant: QuantStrategy,
    config: EdeaConfig,
    replicas: usize,
    threads: Option<usize>,
    telemetry: Option<std::sync::Arc<dyn Telemetry>>,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        Self {
            model: None,
            models_v2: Vec::new(),
            calibration: Vec::new(),
            sparsity: SparsityProfile::paper(),
            quant: QuantStrategy::paper(),
            config: EdeaConfig::paper(),
            replicas: 1,
            threads: None,
            telemetry: None,
        }
    }
}

impl DeploymentBuilder {
    /// The float MobileNetV1 to deploy (required). It serves
    /// [`NetworkId::PRIMARY`] and every pool worker boots with its
    /// weights resident.
    #[must_use]
    pub fn model(mut self, model: MobileNetV1) -> Self {
        self.model = Some(model);
        self
    }

    /// Registers a secondary MobileNetV2 for mixed-model serving. The
    /// `i`-th registration serves `NetworkId(1 + i)`; it is calibrated on
    /// the same image set as the primary and must share its stem output
    /// shape. Requests opt in per network
    /// ([`Request::for_network`] / [`Request::stream_mixed`]); dispatching
    /// a batch to a worker whose resident network differs pays the
    /// incoming network's full weight refetch as model-switch traffic.
    #[must_use]
    pub fn model_v2(mut self, model: MobileNetV2) -> Self {
        self.models_v2.push(model);
        self
    }

    /// The calibration images (required, at least one): used to learn the
    /// int8 step sizes and shape the activation sparsity.
    #[must_use]
    pub fn calibration(mut self, images: Vec<Tensor3<f32>>) -> Self {
        self.calibration = images;
        self
    }

    /// The sparsity profile to shape toward (default: paper's).
    #[must_use]
    pub fn sparsity(mut self, profile: SparsityProfile) -> Self {
        self.sparsity = profile;
        self
    }

    /// The quantization strategy (default: paper's).
    #[must_use]
    pub fn quant(mut self, strategy: QuantStrategy) -> Self {
        self.quant = strategy;
        self
    }

    /// The accelerator configuration (default: [`EdeaConfig::paper`]).
    #[must_use]
    pub fn config(mut self, cfg: EdeaConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Number of simulated accelerator instances behind the serving pool
    /// (default: 1 — the single-backend scheduler path). Each replica
    /// owns its own weight plan and busy-until clock; `serve` dispatches
    /// across all of them.
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Number of host threads the simulation may use (default: the
    /// `EDEA_THREADS` environment variable, falling back to 1). `1` is the
    /// serial reference path; any `n` produces bit-identical results — the
    /// thread pool only parallelizes independent portions of the tile loop
    /// and independent pool workers, never the simulated clock (see the
    /// `edea_core::par` module docs for the determinism contract).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// A telemetry sink observing every serve through this deployment
    /// (default: none — the zero-cost
    /// [`Disabled`](edea_core::telemetry::Disabled) path). The sink
    /// receives the canonical sim-clock event stream (see
    /// [`edea_core::telemetry`]), bit-identical at every thread count;
    /// pass an `Arc<Recorder>` and keep a clone to read events back.
    #[must_use]
    pub fn telemetry(mut self, sink: std::sync::Arc<dyn Telemetry>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Calibrates the network and builds the validated accelerator.
    ///
    /// # Errors
    ///
    /// * [`Error::Builder`] if the model or calibration images are
    ///   missing, or `replicas` is zero.
    /// * [`Error::Nn`] if calibration fails.
    /// * [`Error::Core`] if the configuration is invalid, `threads` is out
    ///   of range, or the calibrated network does not map onto its engine
    ///   geometry.
    pub fn build(self) -> Result<Deployment, Error> {
        let mut model = self.model.ok_or_else(|| Error::Builder {
            detail: "a model is required: call .model(...)".into(),
        })?;
        if self.calibration.is_empty() {
            return Err(Error::Builder {
                detail: "calibration images are required: call .calibration(...)".into(),
            });
        }
        if self.replicas == 0 {
            return Err(Error::Builder {
                detail: "a deployment needs at least one replica: call .replicas(n >= 1)".into(),
            });
        }
        let (qnet, report) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &self.calibration,
            &self.sparsity,
            self.quant,
        )?;
        let par = match self.threads {
            None => Parallelism::from_env(),
            Some(n) => Parallelism::new(n)?,
        };
        let edea = Edea::new(self.config)?.with_parallelism(par);
        let mut simulator = SimulatorBackend::new(edea, qnet)?;
        for (i, m) in self.models_v2.iter().enumerate() {
            let q = QuantizedDscNetwork::calibrate_v2(m, &self.calibration, self.quant)?;
            simulator = simulator.with_model(NetworkId(1 + i as u32), q)?;
        }
        let pool = Pool::replicate(simulator, self.replicas)?.with_parallelism(par);
        Ok(Deployment {
            model,
            models_v2: self.models_v2,
            report,
            pool,
            telemetry: self.telemetry,
        })
    }
}

impl Deployment {
    /// Starts building a deployment.
    #[must_use]
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// The float model the quantization was derived from (BN parameters
    /// reflect the sparsity shaping applied during calibration).
    #[must_use]
    pub fn model(&self) -> &MobileNetV1 {
        &self.model
    }

    /// Worker 0 of the pool: the engine behind the one-shot `run` paths.
    fn simulator(&self) -> &SimulatorBackend {
        &self.pool.workers()[0]
    }

    /// The calibrated quantized DSC network.
    #[must_use]
    pub fn qnet(&self) -> &QuantizedDscNetwork {
        self.simulator().qnet()
    }

    /// The accelerator instance (worker 0 of the pool).
    #[must_use]
    pub fn accelerator(&self) -> &Edea {
        self.simulator().accelerator()
    }

    /// The accelerator pool serving this deployment: `replicas` clones of
    /// the simulator backend, each owning its weight plan and scratch.
    #[must_use]
    pub fn pool(&self) -> &Pool<SimulatorBackend> {
        &self.pool
    }

    /// Number of accelerator replicas behind [`Deployment::serve`].
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.pool.len()
    }

    /// The host-thread budget of this deployment (shared by the tile
    /// pipeline of every replica and the pool's worker fan-out).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.pool.parallelism()
    }

    /// The accelerator configuration.
    #[must_use]
    pub fn config(&self) -> &EdeaConfig {
        self.accelerator().config()
    }

    /// The sparsity achieved during calibration.
    #[must_use]
    pub fn shaping_report(&self) -> &ShapingReport {
        &self.report
    }

    /// The network ids this deployment serves, primary first.
    #[must_use]
    pub fn networks(&self) -> Vec<NetworkId> {
        self.simulator().networks()
    }

    /// The secondary float models, in registration order (entry `i`
    /// serves `NetworkId(1 + i)`).
    #[must_use]
    pub fn models_v2(&self) -> &[MobileNetV2] {
        &self.models_v2
    }

    /// The calibrated quantized network of a registered secondary model
    /// (`None` for an unknown id; use [`Deployment::qnet`] for the
    /// primary).
    #[must_use]
    pub fn qnet_of(&self, network: NetworkId) -> Option<&QuantizedDscNetwork> {
        self.simulator().qnet_of(network)
    }

    /// Turns a float image into the quantized layer-0 input the
    /// accelerator consumes: float stem forward, then int8 quantization.
    #[must_use]
    pub fn prepare(&self, image: &Tensor3<f32>) -> Tensor3<i8> {
        self.qnet().quantize_input(&self.model.forward_stem(image))
    }

    /// [`Deployment::prepare`] against a registered network: the float
    /// stem of *that* network's model feeds its own quantizer (`None`
    /// for an unknown id).
    #[must_use]
    pub fn prepare_for(&self, network: NetworkId, image: &Tensor3<f32>) -> Option<Tensor3<i8>> {
        if network == NetworkId::PRIMARY {
            return Some(self.prepare(image));
        }
        let model = self.models_v2.get(network.0.checked_sub(1)? as usize)?;
        let qnet = self.qnet_of(network)?;
        Some(qnet.quantize_input(&model.forward_stem(image)))
    }

    /// The pre-sliced weight plan of this deployment, built once at
    /// [`DeploymentBuilder::build`] time and reused by every run — repeated
    /// serving requests never re-slice weights.
    #[must_use]
    pub fn plan(&self) -> &NetworkPlan {
        self.simulator().plan()
    }

    /// Runs one prepared input through the whole network on the simulator,
    /// through the session's cached weight plan and reused scratch (no
    /// per-call plan re-validation: plan and network are owned together by
    /// the session).
    ///
    /// # Errors
    ///
    /// [`Error::Core`] on shape or buffer-capacity errors.
    pub fn run(&self, input: &Tensor3<i8>) -> Result<NetworkRun, Error> {
        Ok(self.simulator().run_network(input)?)
    }

    /// Runs a batch through the weight-residency schedule, through the
    /// session's cached weight plan and reused scratch.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] on shape or buffer-capacity errors.
    pub fn run_batch(&self, inputs: &Batch<i8>) -> Result<BatchRun, Error> {
        Ok(self.simulator().run_batch(inputs)?)
    }

    /// [`Deployment::run`] against a registered network.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] — `InvalidRequest` for an unknown id, else as
    /// [`Deployment::run`].
    pub fn run_for(&self, network: NetworkId, input: &Tensor3<i8>) -> Result<NetworkRun, Error> {
        Ok(self.simulator().run_network_for(network, input)?)
    }

    /// The cycle-accurate serving backend over this deployment (worker 0
    /// of the pool), built once at [`DeploymentBuilder::build`] time
    /// (clone it to move it elsewhere).
    #[must_use]
    pub fn simulator_backend(&self) -> &SimulatorBackend {
        self.simulator()
    }

    /// A golden-reference serving backend over this deployment: bit-exact
    /// reference outputs, analytic service cost of the same configuration.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] if the network does not map onto the configuration.
    pub fn golden_backend(&self) -> Result<GoldenBackend, Error> {
        Ok(GoldenBackend::new(
            self.qnet().clone(),
            self.config().clone(),
        )?)
    }

    /// Serves a request stream across the deployment's accelerator pool
    /// under `policy` — the one-call serving path. With the default
    /// single replica this is exactly the single-backend
    /// [`Scheduler`](edea_core::serve::Scheduler) path (bit-identical
    /// report); with
    /// [`replicas(n)`](DeploymentBuilder::replicas) the stream is
    /// dispatched [least-loaded](DispatchPolicy::LeastLoaded) across the
    /// n instances (use [`Deployment::serve_pool`] to choose the policy
    /// and see per-worker statistics).
    ///
    /// # Errors
    ///
    /// [`Error::Core`] on an invalid policy, malformed requests, or an
    /// execution error in a dispatched batch.
    pub fn serve(&self, policy: Policy, requests: Vec<Request>) -> Result<ServeReport, Error> {
        // One replica makes every dispatch policy the identity, so this is
        // exactly the single-backend Scheduler path (pinned bit-identical
        // in tests/pool.rs).
        Ok(self
            .serve_pool(policy, DispatchPolicy::LeastLoaded, requests)?
            .serve)
    }

    /// Serves a request stream across the pool under an explicit
    /// [`DispatchPolicy`], returning the full [`PoolReport`] (per-worker
    /// utilization, queue depth, batch → worker assignments) on top of
    /// the aggregate serve statistics.
    ///
    /// # Errors
    ///
    /// [`Error::Core`] on an invalid policy, malformed requests, or an
    /// execution error in a dispatched batch.
    pub fn serve_pool(
        &self,
        policy: Policy,
        dispatch: DispatchPolicy,
        requests: Vec<Request>,
    ) -> Result<PoolReport, Error> {
        let tel: &dyn Telemetry = self.telemetry.as_deref().unwrap_or(&Disabled);
        Ok(Dispatcher::new(policy, dispatch).serve_with(&self.pool, requests, tel)?)
    }

    /// The telemetry sink configured at build time, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&dyn Telemetry> {
        self.telemetry.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::rng;

    fn built() -> Deployment {
        Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .build()
            .expect("synthetic deployment builds")
    }

    #[test]
    fn builder_requires_model_and_calibration() {
        let e = Deployment::builder().build().unwrap_err();
        assert!(matches!(e, Error::Builder { .. }), "{e}");
        let e = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("calibration"), "{e}");
    }

    #[test]
    fn builder_surfaces_invalid_configs_as_core_errors() {
        let mut cfg = EdeaConfig::paper();
        cfg.clock_mhz = 0;
        let e = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(1, 3, 32, 32, 12))
            .config(cfg)
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::Core(_)), "{e}");
    }

    #[test]
    fn deployment_runs_and_matches_direct_simulator_use() {
        let d = built();
        let input = d.prepare(&rng::synthetic_image(3, 32, 32, 13));
        let run = d.run(&input).unwrap();
        let direct = d
            .accelerator()
            .run_network(d.qnet(), &input)
            .expect("direct run");
        assert_eq!(run.output, direct.output);
        assert_eq!(d.shaping_report().dwc_zero.len(), 13);
    }

    #[test]
    fn backends_share_the_deployment_cost_model() {
        let d = built();
        let golden = d.golden_backend().unwrap();
        assert_eq!(d.simulator_backend().cost(), golden.cost());
    }

    #[test]
    fn builder_rejects_zero_replicas() {
        let e = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .replicas(0)
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::Builder { .. }), "{e}");
        assert!(e.to_string().contains("replica"), "{e}");
    }

    #[test]
    fn builder_threads_knob_reaches_accelerator_and_pool() {
        let d = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .threads(3)
            .build()
            .expect("threaded deployment builds");
        assert_eq!(d.parallelism().threads(), 3);
        assert_eq!(d.accelerator().parallelism().threads(), 3);
        assert_eq!(d.pool().parallelism().threads(), 3);

        // threads(0) is rejected at build time, as a core config error.
        let e = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .threads(0)
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::Core(_)), "{e}");
        assert!(e.to_string().contains("thread"), "{e}");
    }

    #[test]
    fn threaded_deployment_matches_serial_bit_for_bit() {
        let serial = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .threads(1)
            .build()
            .expect("serial deployment builds");
        let threaded = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .threads(4)
            .build()
            .expect("threaded deployment builds");
        let input = serial.prepare(&rng::synthetic_image(3, 32, 32, 13));
        let a = serial.run(&input).expect("serial run");
        let b = threaded.run(&input).expect("threaded run");
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats, b.stats);
    }

    fn built_mixed(replicas: usize, threads: usize) -> Deployment {
        // v1 at width 0.5 and v2 at width 0.25 share the (16, 32, 32)
        // stem output shape — the mixed-model precondition.
        Deployment::builder()
            .model(MobileNetV1::synthetic(0.5, 11))
            .model_v2(MobileNetV2::synthetic(0.25, 21))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .replicas(replicas)
            .threads(threads)
            .build()
            .expect("mixed deployment builds")
    }

    #[test]
    fn mixed_deployment_serves_both_networks_bit_exactly() {
        let d = built_mixed(2, 1);
        assert_eq!(d.networks(), vec![NetworkId::PRIMARY, NetworkId(1)]);
        assert_eq!(d.models_v2().len(), 1);

        // Per-network preparation routes through the right float stem
        // and quantizer.
        let image = rng::synthetic_image(3, 32, 32, 33);
        let p1 = d.prepare_for(NetworkId::PRIMARY, &image).unwrap();
        let p2 = d.prepare_for(NetworkId(1), &image).unwrap();
        assert_eq!(p1, d.prepare(&image));
        assert_eq!(d.prepare_for(NetworkId(9), &image), None);

        // The v2 serving path is bit-exact against the golden executor.
        let direct = d.run_for(NetworkId(1), &p2).expect("v2 run");
        let golden = edea_nn::executor::run_network(d.qnet_of(NetworkId(1)).unwrap(), &p2);
        assert_eq!(direct.output, golden.output);

        // A mixed stream over the pool: responses carry the right
        // network and match the one-shot paths image for image.
        let requests = Request::stream_mixed(
            &[0, 0, 0, 0],
            &[
                NetworkId::PRIMARY,
                NetworkId(1),
                NetworkId::PRIMARY,
                NetworkId(1),
            ],
            vec![p1.clone(), p2.clone(), p1.clone(), p2.clone()],
        )
        .unwrap();
        let report = d
            .serve_pool(
                Policy::new(2, 1_000).unwrap(),
                DispatchPolicy::RoundRobin,
                requests,
            )
            .expect("mixed serve");
        assert_eq!(report.serve.responses.len(), 4);
        for r in &report.serve.responses {
            let expect = if r.network == NetworkId(1) {
                &golden.output
            } else {
                &d.run(&p1).expect("v1 run").output
            };
            assert_eq!(&r.output, expect, "request {}", r.id);
        }
        // The stream switched models somewhere, and the traffic shows it.
        assert!(report.serve.switch_bytes_total() > 0);
        // An unknown network id is rejected naming the request.
        let bad = vec![Request::for_network(9, 0, NetworkId(4), p1)];
        let err = d
            .serve(Policy::new(1, 0).unwrap(), bad)
            .expect_err("unknown id");
        assert!(err.to_string().contains("net4"), "{err}");
    }

    #[test]
    fn mixed_deployment_is_bit_identical_across_thread_counts() {
        let serve = |threads: usize| {
            let d = built_mixed(2, threads);
            let image = rng::synthetic_image(3, 32, 32, 35);
            let p1 = d.prepare_for(NetworkId::PRIMARY, &image).unwrap();
            let p2 = d.prepare_for(NetworkId(1), &image).unwrap();
            let nets: Vec<NetworkId> = (0..6)
                .map(|i| {
                    if i % 3 == 0 {
                        NetworkId(1)
                    } else {
                        NetworkId::PRIMARY
                    }
                })
                .collect();
            let inputs = nets
                .iter()
                .map(|&n| {
                    if n == NetworkId(1) {
                        p2.clone()
                    } else {
                        p1.clone()
                    }
                })
                .collect();
            let requests =
                Request::stream_mixed(&[0, 500, 1_000, 1_500, 2_000, 2_500], &nets, inputs)
                    .unwrap();
            d.serve_pool(
                Policy::new(2, 2_000).unwrap(),
                DispatchPolicy::LeastLoaded,
                requests,
            )
            .expect("mixed serve")
        };
        let serial = serve(1);
        let threaded = serve(4);
        assert_eq!(serial.serve.responses, threaded.serve.responses);
        assert_eq!(serial.serve.batches, threaded.serve.batches);
        assert_eq!(serial.workers, threaded.workers);
        assert_eq!(
            serial.serve.switch_bytes_total(),
            threaded.serve.switch_bytes_total()
        );
    }

    #[test]
    fn replicated_deployment_spreads_a_burst_and_stays_bit_exact() {
        let d = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 11))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 12))
            .replicas(2)
            .build()
            .expect("replicated deployment builds");
        assert_eq!(d.replicas(), 2);
        assert_eq!(d.pool().len(), 2);

        // Two simultaneous batch-of-1 requests land on different workers.
        let inputs: Vec<_> = (0..2)
            .map(|i| d.prepare(&rng::synthetic_image(3, 32, 32, 40 + i)))
            .collect();
        let report = d
            .serve_pool(
                Policy::new(1, 0).unwrap(),
                DispatchPolicy::LeastLoaded,
                Request::stream(&[0, 0], inputs.clone()).unwrap(),
            )
            .expect("pool serve");
        assert_eq!(report.assignments, vec![0, 1]);
        // Both dispatch at t = 0 — the replicas run in parallel.
        assert_eq!(report.serve.batches[0].dispatched, 0);
        assert_eq!(report.serve.batches[1].dispatched, 0);
        // Outputs stay bit-identical to the one-shot path.
        for (id, input) in inputs.iter().enumerate() {
            let single = d.run(input).expect("run");
            assert_eq!(
                report.serve.response(id as u64).unwrap().output,
                single.output,
                "request {id}"
            );
        }
        // The aggregate-only path agrees with the pool path.
        let inputs2: Vec<_> = (0..2)
            .map(|i| d.prepare(&rng::synthetic_image(3, 32, 32, 40 + i)))
            .collect();
        let agg = d
            .serve(
                Policy::new(1, 0).unwrap(),
                Request::stream(&[0, 0], inputs2).unwrap(),
            )
            .expect("serve");
        assert_eq!(agg.batches, report.serve.batches);
    }
}
