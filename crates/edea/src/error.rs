//! The unified error type of the facade.
//!
//! Every fallible entry point of the workspace surfaces here: accelerator
//! and serving errors ([`CoreError`]), calibration/quantization errors
//! ([`NnError`]), tensor-shape errors ([`TensorError`]) and deployment
//! builder misuse — so facade users write `Result<_, edea::Error>` and `?`
//! instead of juggling `Box<dyn Error>`.

use std::fmt;

use edea_core::CoreError;
use edea_nn::NnError;
use edea_tensor::TensorError;

/// Any error the EDEA facade can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Accelerator-side error: unsupported shapes, buffer overflows,
    /// invalid configurations (including malformed pools — empty or
    /// mismatched workers), malformed serving requests.
    Core(CoreError),
    /// Network-side error: calibration, quantization, shape mismatches in
    /// the golden execution path.
    Nn(NnError),
    /// Tensor substrate error (e.g. building a batch from non-uniform
    /// images).
    Tensor(TensorError),
    /// The [`Deployment`](crate::Deployment) builder was driven without a
    /// required ingredient.
    Builder {
        /// What was missing or inconsistent.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "accelerator: {e}"),
            Error::Nn(e) => write!(f, "network: {e}"),
            Error::Tensor(e) => write!(f, "tensor: {e}"),
            Error::Builder { detail } => write!(f, "deployment builder: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Tensor(e) => Some(e),
            Error::Builder { .. } => None,
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<NnError> for Error {
    fn from(e: NnError) -> Self {
        Error::Nn(e)
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_source_and_display() {
        let core: Error = CoreError::InvalidConfig {
            detail: "bad".into(),
        }
        .into();
        assert!(core.to_string().contains("accelerator"));
        assert!(std::error::Error::source(&core).is_some());

        let nn: Error = NnError::EmptyCalibrationSet.into();
        assert!(nn.to_string().contains("network"));
        assert!(std::error::Error::source(&nn).is_some());

        let builder = Error::Builder {
            detail: "a model is required".into(),
        };
        assert!(builder.to_string().contains("a model is required"));
        assert!(std::error::Error::source(&builder).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<Error>();
    }
}
