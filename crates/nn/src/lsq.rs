//! LSQ-style learned step size quantization.
//!
//! The paper quantizes weights and activations to 8 bits "using the LSQ
//! technique" (Esser et al., paper ref \[14\]). Full LSQ learns each step size
//! jointly with the network weights during training; what survives to
//! inference — and all the accelerator ever sees — is one learned positive
//! step per tensor. We reproduce the *learning rule* faithfully on the
//! quantization objective itself: gradient descent on the reconstruction
//! error using LSQ's straight-through step-size gradient, including its
//! gradient scaling factor `1/sqrt(N·Qp)`.

use crate::NnError;

/// Configuration for step-size learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsqConfig {
    /// Lower quantization bound (e.g. `-128` for signed int8, `0` for
    /// post-ReLU activations).
    pub qn: i32,
    /// Upper quantization bound (e.g. `127`).
    pub qp: i32,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate on the step size.
    pub lr: f64,
}

impl LsqConfig {
    /// Signed int8 weights: `[-128, 127]`.
    #[must_use]
    pub fn weight_int8() -> Self {
        Self {
            qn: -128,
            qp: 127,
            iters: 60,
            lr: 0.02,
        }
    }

    /// Unsigned-range int8 activations (post-ReLU): `[0, 127]`.
    #[must_use]
    pub fn activation_int8() -> Self {
        Self {
            qn: 0,
            qp: 127,
            iters: 60,
            lr: 0.02,
        }
    }

    /// Validates bounds and hyper-parameters.
    ///
    /// # Errors
    ///
    /// [`NnError::InvalidConfig`] when `qn >= qp`, `lr <= 0`, or `iters == 0`.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.qn >= self.qp {
            return Err(NnError::InvalidConfig {
                detail: format!("qn {} must be below qp {}", self.qn, self.qp),
            });
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(NnError::InvalidConfig {
                detail: "lr must be positive".into(),
            });
        }
        if self.iters == 0 {
            return Err(NnError::InvalidConfig {
                detail: "iters must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Quantize-dequantize one value with step `s`:
/// `clip(round(v/s), qn, qp) * s`.
#[must_use]
pub fn fake_quantize(v: f64, s: f64, qn: i32, qp: i32) -> f64 {
    let q = (v / s).round().clamp(f64::from(qn), f64::from(qp));
    q * s
}

/// LSQ gradient of the quantize-dequantize output with respect to the step
/// size, for one value (Esser et al., Eq. 3):
///
/// * inside the range: `-v/s + round(v/s)`
/// * clipped low: `qn`
/// * clipped high: `qp`
#[must_use]
pub fn step_gradient(v: f64, s: f64, qn: i32, qp: i32) -> f64 {
    let ratio = v / s;
    if ratio <= f64::from(qn) {
        f64::from(qn)
    } else if ratio >= f64::from(qp) {
        f64::from(qp)
    } else {
        -ratio + ratio.round()
    }
}

/// Learns a step size minimizing `Σ (fake_quantize(v) − v)²` by gradient
/// descent with LSQ's gradient scale `g = 1/sqrt(N·Qp)`.
///
/// Returns the learned positive step.
///
/// # Panics
///
/// Panics if `values` is empty, `init` is not positive, or `cfg` is invalid.
#[must_use]
pub fn learn_step(values: &[f32], init: f32, cfg: &LsqConfig) -> f32 {
    assert!(!values.is_empty(), "cannot learn a step from no values");
    assert!(
        init > 0.0 && init.is_finite(),
        "initial step must be positive"
    );
    cfg.validate().expect("invalid LSQ config");
    let n = values.len() as f64;
    let grad_scale = 1.0 / (n * f64::from(cfg.qp.max(1))).sqrt();
    let mut s = f64::from(init);
    for _ in 0..cfg.iters {
        let mut grad = 0.0f64;
        for &v in values {
            let v = f64::from(v);
            let vq = fake_quantize(v, s, cfg.qn, cfg.qp);
            // dL/ds = 2(v̂ - v) * dv̂/ds, with LSQ gradient scaling.
            grad += 2.0 * (vq - v) * step_gradient(v, s, cfg.qn, cfg.qp);
        }
        grad *= grad_scale / n;
        s -= cfg.lr * grad;
        // Step sizes must stay positive; LSQ clamps implicitly via its
        // parameterization, we clamp explicitly.
        if s < 1e-12 {
            s = 1e-12;
        }
    }
    s as f32
}

/// Mean squared reconstruction error of quantizing `values` with step `s`.
#[must_use]
pub fn reconstruction_mse(values: &[f32], s: f32, qn: i32, qp: i32) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values
        .iter()
        .map(|&v| {
            let e = fake_quantize(f64::from(v), f64::from(s), qn, qp) - f64::from(v);
            e * e
        })
        .sum::<f64>()
        / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::rng::Normal;

    fn normal_pool(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut g = Normal::new(seed);
        (0..n).map(|_| g.sample() as f32 * scale).collect()
    }

    #[test]
    fn gradient_zero_for_exactly_representable() {
        // v = 3*s inside range: round(v/s) == v/s, gradient 0.
        assert_eq!(step_gradient(3.0, 1.0, -128, 127), 0.0);
    }

    #[test]
    fn gradient_is_clip_bound_outside_range() {
        assert_eq!(step_gradient(1e6, 1.0, -128, 127), 127.0);
        assert_eq!(step_gradient(-1e6, 1.0, -128, 127), -128.0);
    }

    #[test]
    fn fake_quantize_clamps() {
        assert_eq!(fake_quantize(1000.0, 1.0, -128, 127), 127.0);
        assert_eq!(fake_quantize(-1000.0, 1.0, -128, 127), -128.0);
        assert_eq!(fake_quantize(2.4, 1.0, -128, 127), 2.0);
    }

    #[test]
    fn learning_reduces_mse() {
        let vals = normal_pool(4000, 5, 1.0);
        let cfg = LsqConfig::weight_int8();
        // Deliberately bad init: 4x too large.
        let init = 4.0 * 1.0 / 127.0 * 3.0;
        let before = reconstruction_mse(&vals, init, cfg.qn, cfg.qp);
        let s = learn_step(&vals, init, &cfg);
        let after = reconstruction_mse(&vals, s, cfg.qn, cfg.qp);
        assert!(after < before, "LSQ must improve: {before} -> {after}");
    }

    #[test]
    fn learned_step_is_near_grid_optimum() {
        let vals = normal_pool(3000, 6, 0.5);
        let cfg = LsqConfig {
            iters: 300,
            lr: 0.05,
            ..LsqConfig::weight_int8()
        };
        let init = vals.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
        let s = learn_step(&vals, init, &cfg);
        // Dense grid search for the reference optimum:
        let mut best = f64::INFINITY;
        for i in 1..400 {
            let cand = init * (0.2 + i as f32 * 0.005);
            best = best.min(reconstruction_mse(&vals, cand, cfg.qn, cfg.qp));
        }
        let got = reconstruction_mse(&vals, s, cfg.qn, cfg.qp);
        assert!(got <= best * 1.10, "LSQ {got} vs grid {best}");
    }

    #[test]
    fn activation_range_ignores_negative_tail() {
        // Post-ReLU pools are non-negative; qn = 0 config must handle them.
        let vals: Vec<f32> = normal_pool(2000, 7, 1.0).iter().map(|v| v.abs()).collect();
        let cfg = LsqConfig::activation_int8();
        let s = learn_step(&vals, 0.05, &cfg);
        assert!(s > 0.0);
        let mse = reconstruction_mse(&vals, s, cfg.qn, cfg.qp);
        assert!(mse < 1e-3);
    }

    #[test]
    fn step_stays_positive_under_adversarial_lr() {
        let vals = vec![0.001f32; 100];
        let cfg = LsqConfig {
            qn: -128,
            qp: 127,
            iters: 500,
            lr: 10.0,
        };
        let s = learn_step(&vals, 1.0, &cfg);
        assert!(s > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(LsqConfig::weight_int8().validate().is_ok());
        assert!(LsqConfig {
            qn: 5,
            qp: 5,
            iters: 1,
            lr: 0.1
        }
        .validate()
        .is_err());
        assert!(LsqConfig {
            qn: 0,
            qp: 127,
            iters: 0,
            lr: 0.1
        }
        .validate()
        .is_err());
        assert!(LsqConfig {
            qn: 0,
            qp: 127,
            iters: 1,
            lr: -0.1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn learning_is_deterministic() {
        let vals = normal_pool(500, 9, 1.0);
        let cfg = LsqConfig::weight_int8();
        assert_eq!(learn_step(&vals, 0.02, &cfg), learn_step(&vals, 0.02, &cfg));
    }
}
