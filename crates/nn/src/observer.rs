//! Activation-range observers for post-training quantization.
//!
//! An observer watches a pool of calibration values and proposes the int8
//! step size (scale). The paper uses LSQ (learned step size); observers
//! provide the initialization LSQ starts from, and are useful baselines when
//! comparing quantization strategies (the "appropriate quantization
//! strategies" design-space axis of the paper's introduction).

use edea_tensor::ops::{quantile, Stats};
use edea_tensor::QuantParams;

/// Strategy for deriving a quantization scale from calibration values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observer {
    /// Scale from the absolute maximum (no clipping, widest step).
    MinMax,
    /// Scale from the given quantile of |x| (clips outliers), e.g. `0.999`.
    Percentile(f64),
    /// Grid search over candidate scales minimizing quantization MSE.
    MseSearch {
        /// Number of grid points between 0.2× and 1.2× the max-abs scale.
        steps: usize,
    },
}

impl Observer {
    /// Derives quantization parameters from a pool of calibration values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or all-zero (no range to calibrate).
    #[must_use]
    pub fn scale_for(&self, values: &[f32]) -> QuantParams {
        assert!(!values.is_empty(), "observer needs calibration values");
        let stats = Stats::compute(values);
        let max_abs = stats.max_abs();
        assert!(max_abs > 0.0, "observer needs at least one non-zero value");
        match *self {
            Observer::MinMax => QuantParams::from_max_abs(max_abs),
            Observer::Percentile(q) => {
                assert!((0.0..=1.0).contains(&q), "percentile out of range");
                let abs: Vec<f32> = values.iter().map(|v| v.abs()).collect();
                let clip = quantile(&abs, q).max(max_abs * 1e-3);
                QuantParams::from_max_abs(clip)
            }
            Observer::MseSearch { steps } => {
                assert!(steps >= 2, "mse search needs at least 2 steps");
                let base = max_abs / 127.0;
                let mut best = QuantParams::from_max_abs(max_abs);
                let mut best_mse = best.mse(values);
                for i in 0..steps {
                    let factor = 0.2 + i as f32 / (steps - 1) as f32;
                    let cand = QuantParams::new(base * factor).expect("positive scale");
                    let mse = cand.mse(values);
                    if mse < best_mse {
                        best_mse = mse;
                        best = cand;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::rng::Normal;

    fn normal_pool(n: usize, seed: u64) -> Vec<f32> {
        let mut g = Normal::new(seed);
        (0..n).map(|_| g.sample() as f32).collect()
    }

    #[test]
    fn minmax_maps_extreme_to_127() {
        let vals = vec![-3.0f32, 1.0, 2.0];
        let q = Observer::MinMax.scale_for(&vals);
        assert_eq!(q.quantize(-3.0), -127);
    }

    #[test]
    fn percentile_clips_outliers() {
        let mut vals = normal_pool(10_000, 1);
        vals.push(1000.0); // a wild outlier
        let minmax = Observer::MinMax.scale_for(&vals);
        let pct = Observer::Percentile(0.999).scale_for(&vals);
        assert!(
            pct.scale() < minmax.scale() / 50.0,
            "outlier should be clipped"
        );
    }

    #[test]
    fn mse_search_never_worse_than_minmax() {
        // Note: with 127 int8 levels, the max-abs scale is already close to
        // MSE-optimal for unimodal data (clipping an outlier costs more than
        // the finer step saves) — the search must simply never do worse, and
        // must pick a slightly tighter scale when the data allows it.
        let mut vals = normal_pool(5_000, 2);
        vals.push(100.0);
        let minmax = Observer::MinMax.scale_for(&vals);
        let mse = Observer::MseSearch { steps: 64 }.scale_for(&vals);
        assert!(mse.mse(&vals) <= minmax.mse(&vals));
    }

    #[test]
    fn mse_search_tightens_scale_on_clean_gaussian() {
        // For a pure Gaussian the optimum is at or just below max-abs; the
        // search must return a scale ≤ the max-abs scale.
        let vals = normal_pool(5_000, 8);
        let minmax = Observer::MinMax.scale_for(&vals);
        let mse = Observer::MseSearch { steps: 101 }.scale_for(&vals);
        assert!(mse.scale() <= minmax.scale() * 1.0 + 1e-9);
        assert!(mse.mse(&vals) <= minmax.mse(&vals));
    }

    #[test]
    fn mse_search_matches_minmax_on_uniform_grid() {
        // Values exactly on a 127-step grid: max-abs scale is optimal (zero
        // error); the search must not do worse.
        let vals: Vec<f32> = (-127..=127).map(|i| i as f32 * 0.5).collect();
        let q = Observer::MseSearch { steps: 101 }.scale_for(&vals);
        assert!(q.mse(&vals) <= 1e-9);
    }

    #[test]
    #[should_panic(expected = "calibration values")]
    fn empty_pool_rejected() {
        let _ = Observer::MinMax.scale_for(&[]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_pool_rejected() {
        let _ = Observer::MinMax.scale_for(&[0.0, 0.0]);
    }

    #[test]
    fn scales_are_positive_and_finite() {
        for obs in [
            Observer::MinMax,
            Observer::Percentile(0.99),
            Observer::MseSearch { steps: 16 },
        ] {
            let q = obs.scale_for(&normal_pool(1000, 3));
            assert!(q.scale().is_finite() && q.scale() > 0.0, "{obs:?}");
        }
    }
}
