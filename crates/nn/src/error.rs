//! Error type for the network substrate.

use std::error::Error;
use std::fmt;

/// Error produced by network construction, calibration, or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer received an input whose shape does not match its definition.
    ShapeMismatch {
        /// Which layer complained.
        layer: usize,
        /// Human-readable description.
        detail: String,
    },
    /// Calibration was attempted with no calibration images.
    EmptyCalibrationSet,
    /// A configuration value was out of its valid range.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch at layer {layer}: {detail}")
            }
            NnError::EmptyCalibrationSet => write!(f, "calibration set must not be empty"),
            NnError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ShapeMismatch {
            layer: 3,
            detail: "bad channels".into(),
        };
        assert!(e.to_string().contains("layer 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
