//! The MobileNetV1-CIFAR10 workload database.
//!
//! Every experiment in the paper iterates over "all DSC layers of
//! MobileNetV1" on CIFAR-10 (32×32 inputs, stem convolution with stride 1).
//! That yields the 13 depthwise-separable layers below, with stride-2
//! down-sampling at layers 1, 3, 5 and 11 — exactly the layers the paper
//! singles out in Fig. 10 ("layers 1, 3, 5 and 11 exhibit a reduced number
//! of MAC operations due to the stride of 2") — and 2×2 feature maps in the
//! last two layers ("later layers such as layers 11 and 12 with an ifmap
//! size of 2").

use edea_tensor::conv::out_dim;

/// Shape of one depthwise-separable layer: DWC (3×3, per-channel) followed
/// by PWC (1×1, `d_in → k_out`).
///
/// # Example
///
/// ```
/// use edea_nn::workload::mobilenet_v1_cifar10;
///
/// let layers = mobilenet_v1_cifar10();
/// assert_eq!(layers.len(), 13);
/// assert_eq!(layers[12].d_in, 1024);
/// assert_eq!(layers[12].out_spatial(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Layer index within the DSC stack (0-based, as in the paper's plots).
    pub index: usize,
    /// Input feature-map spatial size (`R = C`, square maps).
    pub in_spatial: usize,
    /// Input channels `D`.
    pub d_in: usize,
    /// Output channels `K` (PWC kernel count).
    pub k_out: usize,
    /// DWC stride (1 or 2).
    pub stride: usize,
    /// DWC kernel height/width (`H = W = 3` for MobileNetV1).
    pub kernel: usize,
}

impl LayerShape {
    /// Spatial padding used by the DWC (same-padding: `kernel / 2`).
    #[must_use]
    pub fn pad(&self) -> usize {
        self.kernel / 2
    }

    /// Output spatial size (`N = M`).
    #[must_use]
    pub fn out_spatial(&self) -> usize {
        out_dim(self.in_spatial, self.kernel, self.stride, self.pad())
    }

    /// MAC operations in the DWC: `N·M·D·H·W`.
    #[must_use]
    pub fn dwc_macs(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.d_in as u64 * (self.kernel * self.kernel) as u64
    }

    /// MAC operations in the PWC: `N·M·D·K`.
    #[must_use]
    pub fn pwc_macs(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.d_in as u64 * self.k_out as u64
    }

    /// Total DSC MACs (`dwc_macs + pwc_macs`).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.dwc_macs() + self.pwc_macs()
    }

    /// Total operations, counting each MAC as 2 ops (multiply + add), the
    /// convention behind the paper's GOPS numbers.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// DWC weight parameter count: `H·W·D`.
    #[must_use]
    pub fn dwc_params(&self) -> u64 {
        (self.kernel * self.kernel * self.d_in) as u64
    }

    /// PWC weight parameter count: `D·K`.
    #[must_use]
    pub fn pwc_params(&self) -> u64 {
        (self.d_in * self.k_out) as u64
    }

    /// Elements in the DWC input feature map: `R·C·D`.
    #[must_use]
    pub fn ifmap_elems(&self) -> u64 {
        (self.in_spatial * self.in_spatial * self.d_in) as u64
    }

    /// Elements in the intermediate (DWC output = PWC input) map: `N·M·D`.
    #[must_use]
    pub fn intermediate_elems(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.d_in as u64
    }

    /// Elements in the PWC output feature map: `N·M·K`.
    #[must_use]
    pub fn ofmap_elems(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.k_out as u64
    }
}

/// The 13 DSC layers of MobileNetV1 adapted to CIFAR-10 (stem stride 1, so
/// DSC layer 0 sees 32×32×32).
#[must_use]
pub fn mobilenet_v1_cifar10() -> Vec<LayerShape> {
    // (in_spatial, d_in, k_out, stride)
    const SPEC: [(usize, usize, usize, usize); 13] = [
        (32, 32, 64, 1),
        (32, 64, 128, 2),
        (16, 128, 128, 1),
        (16, 128, 256, 2),
        (8, 256, 256, 1),
        (8, 256, 512, 2),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 1024, 2),
        (2, 1024, 1024, 1),
    ];
    SPEC.iter()
        .enumerate()
        .map(|(index, &(in_spatial, d_in, k_out, stride))| LayerShape {
            index,
            in_spatial,
            d_in,
            k_out,
            stride,
            kernel: 3,
        })
        .collect()
}

/// Scales a layer stack by a MobileNet width multiplier (channel counts are
/// multiplied and rounded up to a multiple of `round_to`). Used to build
/// small models for fast tests while preserving the layer structure.
///
/// # Panics
///
/// Panics if `width <= 0` or `round_to == 0`.
#[must_use]
pub fn scale_width(layers: &[LayerShape], width: f64, round_to: usize) -> Vec<LayerShape> {
    assert!(width > 0.0, "width multiplier must be positive");
    assert!(round_to > 0, "round_to must be positive");
    let scale = |c: usize| -> usize {
        let scaled = (c as f64 * width).round().max(1.0) as usize;
        scaled.div_ceil(round_to) * round_to
    };
    layers
        .iter()
        .map(|l| LayerShape {
            d_in: scale(l.d_in),
            k_out: scale(l.k_out),
            ..*l
        })
        .collect()
}

/// Stem (first) layer of MobileNetV1-CIFAR10: a standard 3×3 convolution,
/// 3 → 32 channels, stride 1 — run on the host, not on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StemShape {
    /// Input spatial size (CIFAR-10: 32).
    pub in_spatial: usize,
    /// Input channels (RGB: 3).
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Stride.
    pub stride: usize,
}

impl StemShape {
    /// The CIFAR-10 stem: 32×32×3 → 32×32×32.
    #[must_use]
    pub fn cifar10() -> Self {
        Self {
            in_spatial: 32,
            c_in: 3,
            c_out: 32,
            stride: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_layers_with_strides_at_1_3_5_11() {
        let layers = mobilenet_v1_cifar10();
        assert_eq!(layers.len(), 13);
        let strided: Vec<usize> = layers
            .iter()
            .filter(|l| l.stride == 2)
            .map(|l| l.index)
            .collect();
        assert_eq!(strided, vec![1, 3, 5, 11]);
    }

    #[test]
    fn spatial_chain_is_consistent() {
        // Each layer's output spatial size must equal the next layer's input.
        let layers = mobilenet_v1_cifar10();
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_spatial(),
                pair[1].in_spatial,
                "layer {} -> {}",
                pair[0].index,
                pair[1].index
            );
        }
        assert_eq!(layers[12].out_spatial(), 2);
    }

    #[test]
    fn channel_chain_is_consistent() {
        let layers = mobilenet_v1_cifar10();
        for pair in layers.windows(2) {
            assert_eq!(pair[0].k_out, pair[1].d_in);
        }
    }

    #[test]
    fn mac_counts_match_paper_fig10_scale() {
        // Derived analytically from the layer shapes; Fig. 10's MAC axis
        // tops out just below 5e6 with layer 2 the largest.
        let layers = mobilenet_v1_cifar10();
        let macs: Vec<u64> = layers.iter().map(LayerShape::total_macs).collect();
        assert_eq!(macs[0], 2_392_064);
        assert_eq!(macs[1], 2_244_608);
        assert_eq!(macs[2], 4_489_216);
        assert_eq!(macs[3], 2_170_880);
        assert_eq!(macs[4], 4_341_760);
        assert_eq!(macs[5], 2_134_016);
        assert_eq!(macs[6], 4_268_032);
        assert_eq!(macs[11], 2_115_584);
        assert_eq!(macs[12], 4_231_168);
        let max = *macs.iter().max().unwrap();
        assert_eq!(max, 4_489_216); // layer 2
        assert!(max < 5_000_000);
    }

    #[test]
    fn strided_layers_have_reduced_macs() {
        // Paper Fig. 10: layers 1, 3, 5, 11 have ~half the MACs of their
        // dense neighbours.
        let layers = mobilenet_v1_cifar10();
        for &i in &[1usize, 3, 5, 11] {
            assert!(
                (layers[i].total_macs() as f64) < 0.6 * layers[i + 1].total_macs() as f64,
                "layer {i}"
            );
        }
    }

    #[test]
    fn parameter_total_matches_mobilenet_conv_body() {
        // Sum of DSC parameters (without stem/classifier) for CIFAR
        // MobileNetV1 is about 3.2M, dominated by PWC.
        let layers = mobilenet_v1_cifar10();
        let dwc: u64 = layers.iter().map(LayerShape::dwc_params).sum();
        let pwc: u64 = layers.iter().map(LayerShape::pwc_params).sum();
        assert_eq!(
            dwc,
            9 * (32 + 64 + 128 + 128 + 256 + 256 + 512 * 5 + 512 + 1024)
        );
        assert_eq!(pwc, 3_139_584);
        assert!(pwc > 50 * dwc, "PWC parameters must dominate");
    }

    #[test]
    fn ops_are_twice_macs() {
        for l in mobilenet_v1_cifar10() {
            assert_eq!(l.total_ops(), 2 * l.total_macs());
        }
    }

    #[test]
    fn scale_width_preserves_structure() {
        let layers = mobilenet_v1_cifar10();
        let small = scale_width(&layers, 0.25, 8);
        assert_eq!(small.len(), 13);
        assert_eq!(small[0].d_in, 8);
        assert_eq!(small[0].k_out, 16);
        assert_eq!(small[12].d_in, 256);
        for (a, b) in layers.iter().zip(&small) {
            assert_eq!(a.stride, b.stride);
            assert_eq!(a.in_spatial, b.in_spatial);
            assert_eq!(b.d_in % 8, 0);
        }
    }

    #[test]
    fn scale_width_rounds_up_to_multiple() {
        let layers = mobilenet_v1_cifar10();
        let odd = scale_width(&layers, 0.1, 16);
        assert!(odd.iter().all(|l| l.d_in % 16 == 0 && l.k_out % 16 == 0));
    }

    #[test]
    fn intermediate_elems_match_dwc_output() {
        let l = mobilenet_v1_cifar10()[1]; // stride 2: 32 -> 16
        assert_eq!(l.intermediate_elems(), 16 * 16 * 64);
        assert_eq!(l.ofmap_elems(), 16 * 16 * 128);
        assert_eq!(l.ifmap_elems(), 32 * 32 * 64);
    }

    #[test]
    fn stem_is_cifar_shaped() {
        let s = StemShape::cifar10();
        assert_eq!((s.in_spatial, s.c_in, s.c_out, s.stride), (32, 3, 32, 1));
    }
}
