//! The workload database: generalized DSC stages and the networks built
//! from them.
//!
//! Every experiment in the paper iterates over "all DSC layers of
//! MobileNetV1" on CIFAR-10 (32×32 inputs, stem convolution with stride 1).
//! That yields the 13 depthwise-separable layers of
//! [`mobilenet_v1_cifar10`], with stride-2 down-sampling at layers 1, 3, 5
//! and 11 — exactly the layers the paper singles out in Fig. 10 ("layers
//! 1, 3, 5 and 11 exhibit a reduced number of MAC operations due to the
//! stride of 2") — and 2×2 feature maps in the last two layers.
//!
//! The block structure is **data, not code**: a [`LayerShape`] carries
//! explicit padding, dilation, a depth multiplier (`kernels_per_layer`),
//! the stage operator ([`StageOp`]) and residual markers, so the same
//! representation expresses the paper's plain DSC block (the degenerate
//! case: depth multiplier 1, dilation 1, same-padding, no residual) and
//! the MobileNetV2 inverted residual (expand-PWC → DWC → project-PWC with
//! a requantized skip connection) of [`mobilenet_v2_cifar10`].

use edea_tensor::conv::out_dim;

use crate::error::NnError;

/// Spatial zero-padding of a convolution, allowed to be asymmetric
/// (`before` = top/left, `after` = bottom/right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Padding {
    /// Rows/columns of zeros before the map (top and left edges).
    pub before: usize,
    /// Rows/columns of zeros after the map (bottom and right edges).
    pub after: usize,
}

impl Padding {
    /// Same-padding for an odd `kernel`: `kernel / 2` on both edges.
    #[must_use]
    pub fn same(kernel: usize) -> Self {
        Self {
            before: kernel / 2,
            after: kernel / 2,
        }
    }

    /// Symmetric padding of `p` on every edge.
    #[must_use]
    pub fn symmetric(p: usize) -> Self {
        Self {
            before: p,
            after: p,
        }
    }

    /// Total padded rows/columns added to one spatial dimension.
    #[must_use]
    pub fn total(&self) -> usize {
        self.before + self.after
    }

    /// Whether both edges carry the same padding.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.before == self.after
    }
}

/// The operator a stage runs on the dual-engine datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageOp {
    /// The paper's depthwise-separable block: DWC (`kernel×kernel`,
    /// per-channel) → Non-Conv → PWC (1×1, direct transfer).
    Dsc,
    /// A lone pointwise convolution (the MobileNetV2 *expand* stage): the
    /// PWC engine at a different channel count — no new MAC loop, the DWC
    /// engine idles. `kernel = stride = 1`, no padding.
    PwcOnly,
}

/// Shape of one accelerator stage. For [`StageOp::Dsc`] this is a DWC
/// (`kernel×kernel`, per-input-channel, `depth_multiplier` kernels each)
/// followed by a PWC (1×1, `d_in·depth_multiplier → k_out`); for
/// [`StageOp::PwcOnly`] it is the PWC alone (`d_in → k_out`).
///
/// # Example
///
/// ```
/// use edea_nn::workload::mobilenet_v1_cifar10;
///
/// let layers = mobilenet_v1_cifar10();
/// assert_eq!(layers.len(), 13);
/// assert_eq!(layers[12].d_in, 1024);
/// assert_eq!(layers[12].out_spatial(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Stage index within the stack (0-based, as in the paper's plots).
    pub index: usize,
    /// Input feature-map spatial size (`R = C`, square maps).
    pub in_spatial: usize,
    /// Input channels `D`.
    pub d_in: usize,
    /// Output channels `K` (PWC kernel count).
    pub k_out: usize,
    /// DWC stride (1 or 2).
    pub stride: usize,
    /// DWC kernel height/width (`H = W = 3` for MobileNet; 1 for
    /// [`StageOp::PwcOnly`]).
    pub kernel: usize,
    /// Spatial zero-padding (v1: same-padding `kernel / 2`).
    pub padding: Padding,
    /// DWC dilation (v1/v2: 1).
    pub dilation: usize,
    /// Depthwise kernels per input channel (`kernels_per_layer`; v1/v2: 1).
    pub depth_multiplier: usize,
    /// Which engines the stage occupies.
    pub op: StageOp,
    /// This stage's *input* is the residual source of its block (it must
    /// stay resident in external memory until the matching
    /// [`residual_add`](LayerShape::residual_add) stage drains).
    pub residual_save: bool,
    /// The saved residual is requantized and added to this stage's output
    /// on the Non-Conv drain path (inverted-residual skip connection).
    pub residual_add: bool,
}

impl Default for LayerShape {
    /// A degenerate v1-style stage: 3×3 DSC, stride 1, same-padding,
    /// dilation 1, depth multiplier 1, no residual.
    fn default() -> Self {
        Self {
            index: 0,
            in_spatial: 1,
            d_in: 1,
            k_out: 1,
            stride: 1,
            kernel: 3,
            padding: Padding::same(3),
            dilation: 1,
            depth_multiplier: 1,
            op: StageOp::Dsc,
            residual_save: false,
            residual_add: false,
        }
    }
}

impl LayerShape {
    /// A plain DSC stage with v1 defaults (same-padding, dilation 1, depth
    /// multiplier 1, no residual).
    #[must_use]
    pub fn dsc(
        index: usize,
        in_spatial: usize,
        d_in: usize,
        k_out: usize,
        stride: usize,
        kernel: usize,
    ) -> Self {
        Self {
            index,
            in_spatial,
            d_in,
            k_out,
            stride,
            kernel,
            padding: Padding::same(kernel),
            ..Self::default()
        }
    }

    /// A lone pointwise (expand/project) stage: 1×1, stride 1, no padding.
    #[must_use]
    pub fn pwc(index: usize, in_spatial: usize, d_in: usize, k_out: usize) -> Self {
        Self {
            index,
            in_spatial,
            d_in,
            k_out,
            stride: 1,
            kernel: 1,
            padding: Padding::symmetric(0),
            op: StageOp::PwcOnly,
            ..Self::default()
        }
    }

    /// Leading (top/left) spatial padding — what the halo math consumes.
    /// Equals `kernel / 2` for the v1 same-padding case.
    #[must_use]
    pub fn pad(&self) -> usize {
        self.padding.before
    }

    /// Effective kernel extent under dilation:
    /// `(kernel − 1)·dilation + 1`.
    #[must_use]
    pub fn effective_kernel(&self) -> usize {
        (self.kernel - 1) * self.dilation + 1
    }

    /// Output spatial size (`N = M`):
    /// `(R + pad_before + pad_after − effective_kernel)/stride + 1`.
    #[must_use]
    pub fn out_spatial(&self) -> usize {
        if self.dilation == 1 && self.padding.is_symmetric() {
            return out_dim(self.in_spatial, self.kernel, self.stride, self.pad());
        }
        (self.in_spatial + self.padding.total() - self.effective_kernel()) / self.stride + 1
    }

    /// Channels leaving the DWC stage (= entering the PWC):
    /// `D·depth_multiplier` for a DSC stage, `D` for a lone PWC.
    #[must_use]
    pub fn dwc_out_channels(&self) -> usize {
        match self.op {
            StageOp::Dsc => self.d_in * self.depth_multiplier,
            StageOp::PwcOnly => self.d_in,
        }
    }

    /// MAC operations in the DWC: `N·M·D·dm·H·W` (0 for a lone PWC).
    #[must_use]
    pub fn dwc_macs(&self) -> u64 {
        if self.op == StageOp::PwcOnly {
            return 0;
        }
        let n = self.out_spatial() as u64;
        n * n * self.dwc_out_channels() as u64 * (self.kernel * self.kernel) as u64
    }

    /// MAC operations in the PWC: `N·M·(D·dm)·K`.
    #[must_use]
    pub fn pwc_macs(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.dwc_out_channels() as u64 * self.k_out as u64
    }

    /// Total stage MACs (`dwc_macs + pwc_macs`).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.dwc_macs() + self.pwc_macs()
    }

    /// Total operations, counting each MAC as 2 ops (multiply + add), the
    /// convention behind the paper's GOPS numbers.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// DWC weight parameter count: `H·W·D·dm` (0 for a lone PWC).
    #[must_use]
    pub fn dwc_params(&self) -> u64 {
        if self.op == StageOp::PwcOnly {
            return 0;
        }
        (self.kernel * self.kernel * self.dwc_out_channels()) as u64
    }

    /// PWC weight parameter count: `(D·dm)·K`.
    #[must_use]
    pub fn pwc_params(&self) -> u64 {
        (self.dwc_out_channels() * self.k_out) as u64
    }

    /// Elements in the DWC input feature map: `R·C·D`.
    #[must_use]
    pub fn ifmap_elems(&self) -> u64 {
        (self.in_spatial * self.in_spatial * self.d_in) as u64
    }

    /// Elements in the intermediate (DWC output = PWC input) map:
    /// `N·M·D·dm` — 0 for a lone PWC, which feeds the engine straight from
    /// the ifmap buffer.
    #[must_use]
    pub fn intermediate_elems(&self) -> u64 {
        if self.op == StageOp::PwcOnly {
            return 0;
        }
        let n = self.out_spatial() as u64;
        n * n * self.dwc_out_channels() as u64
    }

    /// Elements in the PWC output feature map: `N·M·K`.
    #[must_use]
    pub fn ofmap_elems(&self) -> u64 {
        let n = self.out_spatial() as u64;
        n * n * self.k_out as u64
    }
}

/// The 13 DSC layers of MobileNetV1 adapted to CIFAR-10 (stem stride 1, so
/// DSC layer 0 sees 32×32×32).
#[must_use]
pub fn mobilenet_v1_cifar10() -> Vec<LayerShape> {
    // (in_spatial, d_in, k_out, stride)
    const SPEC: [(usize, usize, usize, usize); 13] = [
        (32, 32, 64, 1),
        (32, 64, 128, 2),
        (16, 128, 128, 1),
        (16, 128, 256, 2),
        (8, 256, 256, 1),
        (8, 256, 512, 2),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 512, 1),
        (4, 512, 1024, 2),
        (2, 1024, 1024, 1),
    ];
    SPEC.iter()
        .enumerate()
        .map(|(index, &(in_spatial, d_in, k_out, stride))| {
            LayerShape::dsc(index, in_spatial, d_in, k_out, stride, 3)
        })
        .collect()
}

/// One MobileNetV2 inverted-residual block spec:
/// `(expansion t, c_out, stride, residual)`.
type V2Block = (usize, usize, usize, bool);

/// The MobileNetV2 inverted-residual stack adapted to CIFAR-10 and to the
/// engine geometry (channel counts rounded to multiples of `Tk = 16`,
/// spatial sizes kept even), flattened into accelerator stages: each block
/// with expansion `t > 1` becomes a [`StageOp::PwcOnly`] expand stage
/// (marked [`residual_save`](LayerShape::residual_save) when the block has
/// a skip connection) followed by a [`StageOp::Dsc`] stage fusing the DWC
/// with the *project* PWC (marked
/// [`residual_add`](LayerShape::residual_add) on residual blocks); `t = 1`
/// blocks are a single DSC stage. The stem is shared with v1
/// ([`StemShape::cifar10`]), so both networks accept the same layer-0
/// input — what lets one pool serve mixed v1+v2 traffic.
#[must_use]
pub fn mobilenet_v2_cifar10() -> Vec<LayerShape> {
    // (t, c_out, stride, residual); input channels start at the stem's 32.
    const BLOCKS: [V2Block; 9] = [
        (1, 16, 1, false),
        (6, 32, 2, false),
        (6, 32, 1, true),
        (6, 64, 2, false),
        (6, 64, 1, true),
        (6, 96, 1, false),
        (6, 160, 2, false),
        (6, 160, 1, true),
        (6, 320, 1, false),
    ];
    let mut layers = Vec::new();
    let mut spatial = 32usize;
    let mut c_in = StemShape::cifar10().c_out;
    for &(t, c_out, stride, residual) in &BLOCKS {
        debug_assert!(!residual || (stride == 1 && c_in == c_out));
        if t > 1 {
            let mut expand = LayerShape::pwc(layers.len(), spatial, c_in, t * c_in);
            expand.residual_save = residual;
            layers.push(expand);
            let mut dsc = LayerShape::dsc(layers.len(), spatial, t * c_in, c_out, stride, 3);
            dsc.residual_add = residual;
            layers.push(dsc);
        } else {
            let mut dsc = LayerShape::dsc(layers.len(), spatial, c_in, c_out, stride, 3);
            dsc.residual_save = residual;
            dsc.residual_add = residual;
            layers.push(dsc);
        }
        spatial = layers[layers.len() - 1].out_spatial();
        c_in = c_out;
    }
    layers
}

/// Identifies a network within a serving deployment (requests carry one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub u32);

impl NetworkId {
    /// The primary network of a deployment (the first registered model).
    pub const PRIMARY: Self = Self(0);
}

impl std::fmt::Display for NetworkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// A complete network descriptor: identity, host-side stem, accelerator
/// stage list and classifier head width. The stage list is the part the
/// accelerator consumes; the rest routes requests and sizes the host-side
/// pre/post-processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkDescriptor {
    /// Identity within a deployment.
    pub id: NetworkId,
    /// Human-readable name.
    pub name: &'static str,
    /// The host-run stem convolution feeding stage 0.
    pub stem: StemShape,
    /// The accelerator stage list.
    pub layers: Vec<LayerShape>,
    /// Classifier head width (CIFAR-10: 10).
    pub num_classes: usize,
}

impl NetworkDescriptor {
    /// MobileNetV1-CIFAR10 as the primary network.
    #[must_use]
    pub fn mobilenet_v1() -> Self {
        Self {
            id: NetworkId::PRIMARY,
            name: "mobilenet-v1-cifar10",
            stem: StemShape::cifar10(),
            layers: mobilenet_v1_cifar10(),
            num_classes: 10,
        }
    }

    /// MobileNetV2-CIFAR10 as a secondary network (id 1).
    #[must_use]
    pub fn mobilenet_v2() -> Self {
        Self {
            id: NetworkId(1),
            name: "mobilenet-v2-cifar10",
            stem: StemShape::cifar10(),
            layers: mobilenet_v2_cifar10(),
            num_classes: 10,
        }
    }
}

/// Scales a layer stack by a MobileNet width multiplier (channel counts are
/// multiplied and rounded up to a multiple of `round_to`). Used to build
/// small models for fast tests while preserving the layer structure.
///
/// # Errors
///
/// [`NnError::InvalidConfig`] if `round_to` is zero or `width` is
/// non-positive or non-finite (a NaN or infinite multiplier would
/// silently produce nonsense channel counts).
pub fn scale_width(
    layers: &[LayerShape],
    width: f64,
    round_to: usize,
) -> Result<Vec<LayerShape>, NnError> {
    if !width.is_finite() || width <= 0.0 {
        return Err(NnError::InvalidConfig {
            detail: format!("width multiplier must be positive and finite, got {width}"),
        });
    }
    if round_to == 0 {
        return Err(NnError::InvalidConfig {
            detail: "round_to must be positive".into(),
        });
    }
    let scale = |c: usize| -> usize {
        let scaled = (c as f64 * width).round().max(1.0) as usize;
        scaled.div_ceil(round_to) * round_to
    };
    Ok(layers
        .iter()
        .map(|l| LayerShape {
            d_in: scale(l.d_in),
            k_out: scale(l.k_out),
            ..*l
        })
        .collect())
}

/// Stem (first) layer of MobileNetV1-CIFAR10: a standard 3×3 convolution,
/// 3 → 32 channels, stride 1 — run on the host, not on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StemShape {
    /// Input spatial size (CIFAR-10: 32).
    pub in_spatial: usize,
    /// Input channels (RGB: 3).
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Stride.
    pub stride: usize,
}

impl StemShape {
    /// The CIFAR-10 stem: 32×32×3 → 32×32×32.
    #[must_use]
    pub fn cifar10() -> Self {
        Self {
            in_spatial: 32,
            c_in: 3,
            c_out: 32,
            stride: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_layers_with_strides_at_1_3_5_11() {
        let layers = mobilenet_v1_cifar10();
        assert_eq!(layers.len(), 13);
        let strided: Vec<usize> = layers
            .iter()
            .filter(|l| l.stride == 2)
            .map(|l| l.index)
            .collect();
        assert_eq!(strided, vec![1, 3, 5, 11]);
    }

    #[test]
    fn v1_layers_are_the_degenerate_generalized_case() {
        for l in mobilenet_v1_cifar10() {
            assert_eq!(l.padding, Padding::same(3));
            assert_eq!(l.dilation, 1);
            assert_eq!(l.depth_multiplier, 1);
            assert_eq!(l.op, StageOp::Dsc);
            assert!(!l.residual_save && !l.residual_add);
            assert_eq!(l.dwc_out_channels(), l.d_in);
            assert_eq!(l.effective_kernel(), l.kernel);
        }
    }

    #[test]
    fn spatial_chain_is_consistent() {
        // Each layer's output spatial size must equal the next layer's input.
        let layers = mobilenet_v1_cifar10();
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_spatial(),
                pair[1].in_spatial,
                "layer {} -> {}",
                pair[0].index,
                pair[1].index
            );
        }
        assert_eq!(layers[12].out_spatial(), 2);
    }

    #[test]
    fn channel_chain_is_consistent() {
        let layers = mobilenet_v1_cifar10();
        for pair in layers.windows(2) {
            assert_eq!(pair[0].k_out, pair[1].d_in);
        }
    }

    #[test]
    fn mac_counts_match_paper_fig10_scale() {
        // Derived analytically from the layer shapes; Fig. 10's MAC axis
        // tops out just below 5e6 with layer 2 the largest.
        let layers = mobilenet_v1_cifar10();
        let macs: Vec<u64> = layers.iter().map(LayerShape::total_macs).collect();
        assert_eq!(macs[0], 2_392_064);
        assert_eq!(macs[1], 2_244_608);
        assert_eq!(macs[2], 4_489_216);
        assert_eq!(macs[3], 2_170_880);
        assert_eq!(macs[4], 4_341_760);
        assert_eq!(macs[5], 2_134_016);
        assert_eq!(macs[6], 4_268_032);
        assert_eq!(macs[11], 2_115_584);
        assert_eq!(macs[12], 4_231_168);
        let max = *macs.iter().max().unwrap();
        assert_eq!(max, 4_489_216); // layer 2
        assert!(max < 5_000_000);
    }

    #[test]
    fn strided_layers_have_reduced_macs() {
        // Paper Fig. 10: layers 1, 3, 5, 11 have ~half the MACs of their
        // dense neighbours.
        let layers = mobilenet_v1_cifar10();
        for &i in &[1usize, 3, 5, 11] {
            assert!(
                (layers[i].total_macs() as f64) < 0.6 * layers[i + 1].total_macs() as f64,
                "layer {i}"
            );
        }
    }

    #[test]
    fn parameter_total_matches_mobilenet_conv_body() {
        // Sum of DSC parameters (without stem/classifier) for CIFAR
        // MobileNetV1 is about 3.2M, dominated by PWC.
        let layers = mobilenet_v1_cifar10();
        let dwc: u64 = layers.iter().map(LayerShape::dwc_params).sum();
        let pwc: u64 = layers.iter().map(LayerShape::pwc_params).sum();
        assert_eq!(
            dwc,
            9 * (32 + 64 + 128 + 128 + 256 + 256 + 512 * 5 + 512 + 1024)
        );
        assert_eq!(pwc, 3_139_584);
        assert!(pwc > 50 * dwc, "PWC parameters must dominate");
    }

    #[test]
    fn ops_are_twice_macs() {
        for l in mobilenet_v1_cifar10() {
            assert_eq!(l.total_ops(), 2 * l.total_macs());
        }
    }

    #[test]
    fn scale_width_preserves_structure() {
        let layers = mobilenet_v1_cifar10();
        let small = scale_width(&layers, 0.25, 8).unwrap();
        assert_eq!(small.len(), 13);
        assert_eq!(small[0].d_in, 8);
        assert_eq!(small[0].k_out, 16);
        assert_eq!(small[12].d_in, 256);
        for (a, b) in layers.iter().zip(&small) {
            assert_eq!(a.stride, b.stride);
            assert_eq!(a.in_spatial, b.in_spatial);
            assert_eq!(b.d_in % 8, 0);
        }
    }

    #[test]
    fn scale_width_rounds_up_to_multiple() {
        let layers = mobilenet_v1_cifar10();
        let odd = scale_width(&layers, 0.1, 16).unwrap();
        assert!(odd.iter().all(|l| l.d_in % 16 == 0 && l.k_out % 16 == 0));
    }

    #[test]
    fn scale_width_rejects_bad_width() {
        let layers = mobilenet_v1_cifar10();
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    scale_width(&layers, w, 8),
                    Err(NnError::InvalidConfig { .. })
                ),
                "width {w} must be rejected"
            );
        }
    }

    #[test]
    fn scale_width_rejects_zero_round_to() {
        let layers = mobilenet_v1_cifar10();
        assert!(matches!(
            scale_width(&layers, 1.0, 0),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn intermediate_elems_match_dwc_output() {
        let l = mobilenet_v1_cifar10()[1]; // stride 2: 32 -> 16
        assert_eq!(l.intermediate_elems(), 16 * 16 * 64);
        assert_eq!(l.ofmap_elems(), 16 * 16 * 128);
        assert_eq!(l.ifmap_elems(), 32 * 32 * 64);
    }

    #[test]
    fn stem_is_cifar_shaped() {
        let s = StemShape::cifar10();
        assert_eq!((s.in_spatial, s.c_in, s.c_out, s.stride), (32, 3, 32, 1));
    }

    #[test]
    fn v2_stack_chains_and_maps_onto_engine_geometry() {
        let layers = mobilenet_v2_cifar10();
        assert_eq!(layers.len(), 17); // 8 expanded blocks × 2 + 1 t=1 block
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.index, i);
            assert_eq!(l.d_in % 8, 0, "stage {i} d_in {}", l.d_in);
            assert_eq!(l.k_out % 16, 0, "stage {i} k_out {}", l.k_out);
            assert_eq!(l.out_spatial() % 2, 0, "stage {i}");
            match l.op {
                StageOp::Dsc => assert_eq!(l.kernel, 3),
                StageOp::PwcOnly => {
                    assert_eq!((l.kernel, l.stride, l.padding.total()), (1, 1, 0));
                }
            }
        }
        for pair in layers.windows(2) {
            assert_eq!(pair[0].k_out, pair[1].d_in);
            assert_eq!(pair[0].out_spatial(), pair[1].in_spatial);
        }
        // The network ends at 4×4×320 after three stride-2 blocks.
        let last = layers.last().unwrap();
        assert_eq!((last.k_out, last.out_spatial()), (320, 4));
    }

    #[test]
    fn v2_residual_markers_pair_up_inside_blocks() {
        let layers = mobilenet_v2_cifar10();
        let saves: Vec<usize> = layers
            .iter()
            .filter(|l| l.residual_save)
            .map(|l| l.index)
            .collect();
        let adds: Vec<usize> = layers
            .iter()
            .filter(|l| l.residual_add)
            .map(|l| l.index)
            .collect();
        assert_eq!(saves.len(), 3);
        assert_eq!(adds.len(), 3);
        for (&s, &a) in saves.iter().zip(&adds) {
            // Save on the expand stage, add on the very next DSC stage.
            assert_eq!(a, s + 1);
            let (expand, dsc) = (&layers[s], &layers[a]);
            assert_eq!(expand.op, StageOp::PwcOnly);
            assert_eq!(dsc.op, StageOp::Dsc);
            // A residual needs stride 1 and matched channels end to end.
            assert_eq!(dsc.stride, 1);
            assert_eq!(expand.d_in, dsc.k_out);
        }
    }

    #[test]
    fn effective_kernel_and_asymmetric_padding_generalize_out_spatial() {
        // Dilation 2 over a 3-wide kernel spans 5 input columns.
        let mut l = LayerShape::dsc(0, 16, 8, 16, 1, 3);
        l.dilation = 2;
        l.padding = Padding::symmetric(2);
        assert_eq!(l.effective_kernel(), 5);
        assert_eq!(l.out_spatial(), 16);
        // Asymmetric padding: (16 + 1 + 0 − 3)/1 + 1 = 15 columns.
        let mut a = LayerShape::dsc(0, 16, 8, 16, 1, 3);
        a.padding = Padding {
            before: 1,
            after: 0,
        };
        assert_eq!(a.out_spatial(), 15);
        // Depth multiplier scales DWC outputs, params and PWC inputs.
        let mut m = LayerShape::dsc(0, 8, 8, 16, 1, 3);
        m.depth_multiplier = 3;
        assert_eq!(m.dwc_out_channels(), 24);
        assert_eq!(m.dwc_params(), 9 * 24);
        assert_eq!(m.pwc_params(), 24 * 16);
        assert_eq!(m.intermediate_elems(), 64 * 24);
    }

    #[test]
    fn network_descriptors_identify_and_wrap_the_stacks() {
        let v1 = NetworkDescriptor::mobilenet_v1();
        let v2 = NetworkDescriptor::mobilenet_v2();
        assert_eq!(v1.id, NetworkId::PRIMARY);
        assert_ne!(v1.id, v2.id);
        assert_eq!(v1.layers, mobilenet_v1_cifar10());
        assert_eq!(v2.layers, mobilenet_v2_cifar10());
        // The shared stem is what allows one pool to serve both networks.
        assert_eq!(v1.stem, v2.stem);
        assert_eq!(format!("{}", v2.id), "net1");
    }
}
