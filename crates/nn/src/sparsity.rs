//! Sparsity shaping: imposing the trained network's activation statistics.
//!
//! The paper's power results (Fig. 11) depend on the per-layer activation
//! zero percentages of the *trained* MobileNetV1 — e.g. layer 12 reaches
//! 97.4 % (DWC) / 95.3 % (PWC) zeros, and the overall profile grows with
//! depth. Since the trained checkpoint is unavailable, this module makes the
//! synthetic model reproduce a given zero-percentage profile exactly (on the
//! calibration set) by choosing batch-norm parameters so that the desired
//! quantile of every pre-activation distribution sits at zero:
//!
//! For a target zero fraction `z`, set `μ_c = quantile_c(x, z)`,
//! `σ²_c = Var_c(x)`, `γ_c = 1`, `β_c = 0`; then
//! `P(bn(x) ≤ 0) = P(x ≤ μ_c) = z` and ReLU zeroes exactly that fraction.
//! This is a *faithful* substitution: a trained network also realizes its
//! sparsity through the (learned) location/scale of its BN parameters.

use edea_tensor::ops::quantile;
use edea_tensor::Tensor3;

use crate::mobilenet::MobileNetV1;
use crate::NnError;

/// Per-layer target zero fractions for the DWC and PWC activations.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityProfile {
    /// Target zero fraction of each layer's DWC activation (PWC input).
    pub dwc_zero: Vec<f64>,
    /// Target zero fraction of each layer's PWC activation (next input).
    pub pwc_zero: Vec<f64>,
}

impl SparsityProfile {
    /// The 13-layer profile used for the paper reproduction.
    ///
    /// Anchors from the paper: layer 12 is 97.4 % (DWC) / 95.3 % (PWC);
    /// layer 1 has the lowest sparsity (it has the highest power in
    /// Fig. 11); sparsity generally grows with depth; layer 10 is high
    /// (peak energy efficiency in Fig. 12). Intermediate values
    /// interpolate those anchors; see EXPERIMENTS.md for the comparison
    /// of resulting power numbers against the paper.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            dwc_zero: vec![
                0.58, 0.42, 0.47, 0.52, 0.57, 0.62, 0.64, 0.76, 0.82, 0.84, 0.90, 0.80, 0.974,
            ],
            pwc_zero: vec![
                0.52, 0.38, 0.44, 0.49, 0.54, 0.59, 0.61, 0.73, 0.79, 0.81, 0.87, 0.77, 0.953,
            ],
        }
    }

    /// A uniform profile (every layer the same `z`), for ablations.
    ///
    /// # Panics
    ///
    /// Panics if `z` is outside `(0, 1)`.
    #[must_use]
    pub fn uniform(z: f64, layers: usize) -> Self {
        assert!(z > 0.0 && z < 1.0, "zero fraction must be in (0,1)");
        Self {
            dwc_zero: vec![z; layers],
            pwc_zero: vec![z; layers],
        }
    }

    /// A near-dense profile (5 % zeros everywhere): the dense control for
    /// sparsity experiments. Exactly 0 is unreachable — the shaper places a
    /// quantile of each pre-activation distribution at zero, and ReLU on a
    /// continuous distribution always clips *some* mass — so this is the
    /// densest profile the calibration flow can realize.
    #[must_use]
    pub fn near_dense(layers: usize) -> Self {
        Self::uniform(0.05, layers)
    }

    /// Number of layers covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dwc_zero.len()
    }

    /// Whether the profile is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dwc_zero.is_empty()
    }

    /// Validates the profile against a layer count.
    ///
    /// # Errors
    ///
    /// [`NnError::InvalidConfig`] on length mismatch or out-of-range values.
    pub fn validate(&self, layers: usize) -> Result<(), NnError> {
        if self.dwc_zero.len() != layers || self.pwc_zero.len() != layers {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "profile covers {}/{} layers, expected {layers}",
                    self.dwc_zero.len(),
                    self.pwc_zero.len()
                ),
            });
        }
        let ok = |v: &f64| *v > 0.0 && *v < 1.0;
        if !self.dwc_zero.iter().all(ok) || !self.pwc_zero.iter().all(ok) {
            return Err(NnError::InvalidConfig {
                detail: "zero fractions must be strictly inside (0,1)".into(),
            });
        }
        Ok(())
    }
}

/// Gathers per-channel values of a set of feature maps into pools.
fn per_channel_pools(maps: &[Tensor3<f32>]) -> Vec<Vec<f32>> {
    let c = maps[0].channels();
    let mut pools = vec![Vec::new(); c];
    for m in maps {
        let (mc, h, w) = m.shape();
        debug_assert_eq!(mc, c);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    pools[ci].push(m[(ci, hi, wi)]);
                }
            }
        }
    }
    pools
}

/// Sets BN parameters so a `z` fraction of the layer's pre-activations map
/// to ≤ 0 (and are zeroed by ReLU). Returns the fraction of calibration
/// values that will be zeroed (= `z` up to quantile discreteness).
///
/// The threshold is chosen *globally over the layer* on per-channel
/// standardized values: each channel is standardized by its own mean and
/// deviation (`γ = 1`, `μ_c`, `σ̂_c`), then a single shift `β = −τ` places
/// the layer-wide `z`-quantile at zero. Low-mean channels go entirely dead —
/// exactly what trained networks exhibit at the very sparse late layers —
/// and the layer-wide fraction hits the target even when per-channel pools
/// are tiny (layer 12 has only 2×2 pixels per channel).
fn shape_bn(bn: &mut edea_tensor::ops::BatchNorm, pre_activation: &[Tensor3<f32>], z: f64) -> f64 {
    let pools = per_channel_pools(pre_activation);
    shape_bn_from_pools(bn, &pools, z)
}

/// Pool-based variant of the BN shaper: `pools[c]` holds the pre-activation
/// values of channel `c` (in real units). Used both by the float-path shaper
/// and by the joint int-path calibration in [`crate::quantize`].
///
/// # Panics
///
/// Panics if `pools` does not match the BN channel count or any pool is
/// empty.
pub fn shape_bn_from_pools(
    bn: &mut edea_tensor::ops::BatchNorm,
    pools: &[Vec<f32>],
    z: f64,
) -> f64 {
    let c_total = pools.len();
    assert_eq!(c_total, bn.channels(), "pool count must match BN channels");
    assert!(pools.iter().all(|p| !p.is_empty()), "empty channel pool");
    let mut standardized: Vec<f32> = Vec::new();
    for (c, pool) in pools.iter().enumerate() {
        let mean = pool.iter().map(|&v| f64::from(v)).sum::<f64>() / pool.len() as f64;
        let var = pool
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / pool.len() as f64;
        let var = if var > 1e-12 { var } else { 1.0 };
        bn.gamma[c] = 1.0;
        bn.mean[c] = mean as f32;
        bn.var[c] = var as f32;
        let s = (var + f64::from(bn.eps)).sqrt();
        standardized.extend(pool.iter().map(|&v| ((f64::from(v) - mean) / s) as f32));
    }
    let mut tau = f64::from(quantile(&standardized, z));
    // Keep at least one value positive per layer: if the threshold reached
    // the maximum (degenerate distributions), back it off just below.
    let max_u = standardized
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    if tau >= f64::from(max_u) {
        let second = standardized
            .iter()
            .copied()
            .filter(|&u| u < max_u)
            .fold(f32::NEG_INFINITY, f32::max);
        tau = if second.is_finite() {
            f64::from((second + max_u) / 2.0)
        } else {
            f64::from(max_u) - 1.0
        };
    }
    for c in 0..c_total {
        bn.beta[c] = (-tau) as f32;
    }
    let zeroed = standardized
        .iter()
        .filter(|&&u| f64::from(u) <= tau)
        .count();
    zeroed as f64 / standardized.len() as f64
}

/// Achieved zero fractions after shaping, per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapingReport {
    /// Achieved DWC-activation zero fraction per layer (on calibration data).
    pub dwc_zero: Vec<f64>,
    /// Achieved PWC-activation zero fraction per layer.
    pub pwc_zero: Vec<f64>,
}

/// Shapes every DSC block's batch norms so that the float forward pass on
/// `calib` realizes `profile`'s zero fractions. Proceeds layer by layer so
/// downstream statistics reflect upstream shaping.
///
/// # Errors
///
/// [`NnError::EmptyCalibrationSet`] if `calib` is empty;
/// [`NnError::InvalidConfig`] if `profile` does not match the model.
pub fn shape_network_sparsity(
    model: &mut MobileNetV1,
    calib: &[Tensor3<f32>],
    profile: &SparsityProfile,
) -> Result<ShapingReport, NnError> {
    if calib.is_empty() {
        return Err(NnError::EmptyCalibrationSet);
    }
    profile.validate(model.blocks().len())?;
    let mut inputs: Vec<Tensor3<f32>> = calib.iter().map(|img| model.forward_stem(img)).collect();
    let mut report = ShapingReport {
        dwc_zero: Vec::new(),
        pwc_zero: Vec::new(),
    };
    for i in 0..model.blocks().len() {
        // DWC pre-activations with current weights:
        let dwc_raw: Vec<Tensor3<f32>> = inputs
            .iter()
            .map(|x| {
                let b = &model.blocks()[i];
                edea_tensor::conv::depthwise_conv2d_f32(
                    x,
                    &b.dw_weights,
                    b.shape.stride,
                    b.shape.pad(),
                )
            })
            .collect();
        let z1 = shape_bn(
            &mut model.blocks_mut()[i].bn1,
            &dwc_raw,
            profile.dwc_zero[i],
        );
        report.dwc_zero.push(z1);
        // PWC pre-activations with the freshly shaped bn1:
        let pwc_raw: Vec<Tensor3<f32>> = dwc_raw
            .iter()
            .map(|raw| {
                let b = &model.blocks()[i];
                let act = edea_tensor::ops::relu(&b.bn1.apply(raw));
                edea_tensor::conv::pointwise_conv2d_f32(&act, &b.pw_weights)
            })
            .collect();
        let z2 = shape_bn(
            &mut model.blocks_mut()[i].bn2,
            &pwc_raw,
            profile.pwc_zero[i],
        );
        report.pwc_zero.push(z2);
        // Advance the calibration activations to this block's output:
        inputs = inputs
            .iter()
            .map(|x| model.forward_block(i, x).pwc_act)
            .collect();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_tensor::rng;

    #[test]
    fn paper_profile_is_valid_and_anchored() {
        let p = SparsityProfile::paper();
        p.validate(13).unwrap();
        assert_eq!(p.len(), 13);
        assert!((p.dwc_zero[12] - 0.974).abs() < 1e-9);
        assert!((p.pwc_zero[12] - 0.953).abs() < 1e-9);
        // Layer 1 is the sparsity minimum (highest power in Fig. 11):
        let min = p
            .dwc_zero
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min, 1);
    }

    #[test]
    fn uniform_profile() {
        let p = SparsityProfile::uniform(0.5, 4);
        assert_eq!(p.len(), 4);
        assert!(p.validate(4).is_ok());
        assert!(p.validate(5).is_err());
    }

    #[test]
    fn near_dense_profile() {
        let p = SparsityProfile::near_dense(13);
        assert!(p.validate(13).is_ok());
        assert!(p.dwc_zero.iter().all(|&z| z == 0.05));
        assert!(p.pwc_zero.iter().all(|&z| z == 0.05));
    }

    #[test]
    fn profile_rejects_out_of_range() {
        let mut p = SparsityProfile::uniform(0.5, 3);
        p.dwc_zero[1] = 1.0;
        assert!(p.validate(3).is_err());
    }

    #[test]
    fn shaping_hits_targets_on_calibration_data() {
        let mut model = MobileNetV1::synthetic(0.25, 3);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 4);
        let profile = SparsityProfile::paper();
        let report = shape_network_sparsity(&mut model, &calib, &profile).unwrap();
        for i in 0..13 {
            assert!(
                (report.dwc_zero[i] - profile.dwc_zero[i]).abs() < 0.02,
                "dwc layer {i}: {} vs {}",
                report.dwc_zero[i],
                profile.dwc_zero[i]
            );
            assert!(
                (report.pwc_zero[i] - profile.pwc_zero[i]).abs() < 0.02,
                "pwc layer {i}: {} vs {}",
                report.pwc_zero[i],
                profile.pwc_zero[i]
            );
        }
    }

    #[test]
    fn shaped_model_generalizes_to_held_out_images() {
        // Sparsity targets are hit exactly on the calibration set; a held-out
        // image sees compounding distribution drift through 13 layers, so the
        // expectation is looser: clearly sparse, in the right band. (The
        // experiments measure statistics on the calibration path, like the
        // paper measures on its dataset.)
        let mut model = MobileNetV1::synthetic(0.25, 5);
        let calib = rng::synthetic_batch(6, 3, 32, 32, 6);
        shape_network_sparsity(&mut model, &calib, &SparsityProfile::paper()).unwrap();
        let img = rng::synthetic_image(3, 32, 32, 999);
        let t = model.forward(&img);
        // Mid-network layer: target 0.62, expect the same ballpark.
        let mid = &t.blocks[5].dwc_act;
        let zeros_mid =
            mid.as_slice().iter().filter(|&&v| v == 0.0).count() as f64 / mid.len() as f64;
        assert!(
            zeros_mid > 0.40 && zeros_mid < 0.85,
            "layer 5 DWC sparsity {zeros_mid} out of band (target 0.62)"
        );
        // Late layer: must be clearly sparse.
        let last = &t.blocks[12].dwc_act;
        let zeros =
            last.as_slice().iter().filter(|&&v| v == 0.0).count() as f64 / last.len() as f64;
        assert!(
            zeros > 0.60,
            "layer 12 DWC sparsity {zeros} not clearly sparse"
        );
    }

    #[test]
    fn empty_calibration_rejected() {
        let mut model = MobileNetV1::synthetic(0.25, 1);
        let e = shape_network_sparsity(&mut model, &[], &SparsityProfile::paper());
        assert_eq!(e.unwrap_err(), NnError::EmptyCalibrationSet);
    }

    #[test]
    fn wrong_profile_length_rejected() {
        let mut model = MobileNetV1::synthetic(0.25, 1);
        let calib = rng::synthetic_batch(1, 3, 32, 32, 1);
        let e = shape_network_sparsity(&mut model, &calib, &SparsityProfile::uniform(0.5, 5));
        assert!(matches!(e, Err(NnError::InvalidConfig { .. })));
    }
}
