//! Assembling a fully-quantized DSC network from the float model.
//!
//! The deployment flow of the paper: train (PyTorch) → quantize weights and
//! activations to 8 bits with LSQ → pre-compute per-channel Non-Conv
//! constants (k, b) offline → load onto the accelerator. This module is that
//! offline step, in two variants:
//!
//! * [`QuantizedDscNetwork::calibrate_with`] — classic post-training
//!   calibration on the float forward pass.
//! * [`QuantizedDscNetwork::calibrate_shaped`] — **joint** sparsity shaping
//!   and calibration performed layer-by-layer *on the int8 path*, so the
//!   quantized network realizes the target zero-percentage profile exactly
//!   where the accelerator measures it (paper Fig. 11). This is the variant
//!   the experiments use.
//!
//! Both variants fit activation step sizes to the **Q8.16 fold envelope**:
//! the folded offset `b` is the ReLU dead-zone width measured in output
//! LSBs, so a layer with 97 % zeros needs a step size large enough that
//! `|b| ≤ 127` — the same constraint the paper's trained network satisfies
//! by construction ("to cover all possible ranges of the values for k and
//! b"). Without this fit, extreme layers would need per-channel slope
//! compression (handled as a fallback in [`crate::fold::fold_boundary`]).

use edea_tensor::conv::{depthwise_conv2d_i8, pointwise_conv2d_i8};
use edea_tensor::ops::BatchNorm;
use edea_tensor::{QTensor4, QuantParams, Tensor3, Tensor4};

use edea_fixed::Q8x16;

use crate::fold::{fold_boundary, FoldedAffine};
use crate::lsq::{learn_step, LsqConfig};
use crate::mobilenet::{MobileNetV1, MobileNetV2};
use crate::observer::Observer;
use crate::sparsity::{shape_bn_from_pools, ShapingReport, SparsityProfile};
use crate::workload::{LayerShape, StageOp};
use crate::NnError;

/// How step sizes are chosen during calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantStrategy {
    /// Pure observer (no learning).
    Observer(Observer),
    /// Observer initialization refined by LSQ gradient descent — the paper's
    /// configuration.
    Lsq {
        /// Observer supplying the initial step.
        init: Observer,
        /// LSQ hyper-parameters for weights.
        weights: LsqConfig,
        /// LSQ hyper-parameters for activations.
        activations: LsqConfig,
    },
}

impl QuantStrategy {
    /// The paper's configuration: max-abs init + LSQ refinement.
    #[must_use]
    pub fn paper() -> Self {
        QuantStrategy::Lsq {
            init: Observer::MinMax,
            weights: LsqConfig::weight_int8(),
            activations: LsqConfig::activation_int8(),
        }
    }

    fn scale_for(&self, values: &[f32], is_weight: bool) -> QuantParams {
        match self {
            QuantStrategy::Observer(obs) => obs.scale_for(values),
            QuantStrategy::Lsq {
                init,
                weights,
                activations,
            } => {
                let cfg = if is_weight { weights } else { activations };
                let start = init.scale_for(values).scale();
                let s = learn_step(values, start, cfg);
                QuantParams::new(s).expect("LSQ step is positive")
            }
        }
    }
}

/// One quantized DSC layer, ready for the accelerator.
#[derive(Debug, Clone)]
pub struct QuantizedDscLayer {
    shape: LayerShape,
    dw_weights: QTensor4,
    pw_weights: QTensor4,
    nonconv1: Vec<FoldedAffine>,
    nonconv2: Vec<FoldedAffine>,
    s_in: f32,
    s_mid: f32,
    s_out: f32,
    /// Low clip of the output-side Non-Conv: 0 with ReLU folded in (v1),
    /// −128 for a linear stage (the v2 project PWC).
    out_lo: i8,
    /// Residual rescale `s_res / s_out` in Q8.16 for a
    /// [`residual_add`](LayerShape::residual_add) stage.
    residual_scale: Option<Q8x16>,
}

impl QuantizedDscLayer {
    /// Reassembles a layer from its parts (used by the deployment-artifact
    /// loader in [`crate::artifact`]).
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes or Non-Conv parameter counts do not match
    /// `shape`.
    #[allow(clippy::too_many_arguments)] // mirrors the artifact layout 1:1
    #[must_use]
    pub fn from_parts(
        shape: LayerShape,
        dw_weights: QTensor4,
        pw_weights: QTensor4,
        nonconv1: Vec<FoldedAffine>,
        nonconv2: Vec<FoldedAffine>,
        s_in: f32,
        s_mid: f32,
        s_out: f32,
    ) -> Self {
        let dwc_out = shape.dwc_out_channels();
        assert_eq!(
            dw_weights.values().shape(),
            (dwc_out, 1, shape.kernel, shape.kernel),
            "dw weight shape"
        );
        assert_eq!(
            pw_weights.values().shape(),
            (shape.k_out, dwc_out, 1, 1),
            "pw weight shape"
        );
        assert_eq!(nonconv1.len(), dwc_out, "nonconv1 channel count");
        assert_eq!(nonconv2.len(), shape.k_out, "nonconv2 channel count");
        Self {
            shape,
            dw_weights,
            pw_weights,
            nonconv1,
            nonconv2,
            s_in,
            s_mid,
            s_out,
            out_lo: 0,
            residual_scale: None,
        }
    }

    /// Sets the output-side Non-Conv low clip (−128 for a linear stage,
    /// e.g. the v2 project PWC; the default 0 folds the ReLU).
    #[must_use]
    pub fn with_out_lo(mut self, lo: i8) -> Self {
        self.out_lo = lo;
        self
    }

    /// Attaches the residual rescale `s_res / s_out` (Q8.16) of a
    /// [`residual_add`](LayerShape::residual_add) stage.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not mark a residual add.
    #[must_use]
    pub fn with_residual_scale(mut self, r: Q8x16) -> Self {
        assert!(
            self.shape.residual_add,
            "residual scale on a non-residual stage"
        );
        self.residual_scale = Some(r);
        self
    }

    /// Layer shape.
    #[must_use]
    pub fn shape(&self) -> LayerShape {
        self.shape
    }

    /// Quantized depthwise weights (`D×1×3×3`).
    #[must_use]
    pub fn dw_weights(&self) -> &QTensor4 {
        &self.dw_weights
    }

    /// Quantized pointwise weights (`K×D×1×1`).
    #[must_use]
    pub fn pw_weights(&self) -> &QTensor4 {
        &self.pw_weights
    }

    /// Per-channel Non-Conv constants between DWC and PWC (`D` entries).
    #[must_use]
    pub fn nonconv1(&self) -> &[FoldedAffine] {
        &self.nonconv1
    }

    /// Per-channel Non-Conv constants after the PWC (`K` entries).
    #[must_use]
    pub fn nonconv2(&self) -> &[FoldedAffine] {
        &self.nonconv2
    }

    /// Input activation step size.
    #[must_use]
    pub fn s_in(&self) -> f32 {
        self.s_in
    }

    /// Intermediate (PWC input) activation step size.
    #[must_use]
    pub fn s_mid(&self) -> f32 {
        self.s_mid
    }

    /// Output activation step size.
    #[must_use]
    pub fn s_out(&self) -> f32 {
        self.s_out
    }

    /// Low clip of the output-side Non-Conv (0 = folded ReLU, −128 =
    /// linear stage).
    #[must_use]
    pub fn out_lo(&self) -> i8 {
        self.out_lo
    }

    /// Residual rescale `s_res / s_out` (Q8.16) of a residual-add stage.
    #[must_use]
    pub fn residual_scale(&self) -> Option<Q8x16> {
        self.residual_scale
    }
}

/// The quantized 13-layer DSC stack plus the input quantizer.
#[derive(Debug, Clone)]
pub struct QuantizedDscNetwork {
    input_params: QuantParams,
    layers: Vec<QuantizedDscLayer>,
}

/// Cap on per-pool calibration samples fed to LSQ / MSE search (full pools
/// are used for min/max). Subsampling is deterministic (fixed stride).
const MAX_POOL_SAMPLES: usize = 16_384;

fn subsample(pool: &[f32]) -> Vec<f32> {
    if pool.len() <= MAX_POOL_SAMPLES {
        return pool.to_vec();
    }
    let stride = pool.len() / MAX_POOL_SAMPLES + 1;
    pool.iter().step_by(stride).copied().collect()
}

/// Widens an activation step until the folded constants of `bn` fit the
/// Q8.16 envelope with one LSB of headroom. Returns the adjusted step.
fn fit_scale_to_fold(bn: &BatchNorm, s_in: f64, s_w: f64, s_out: f64) -> f64 {
    let limit = 127.0;
    let mut required = s_out;
    for (bn_k, bn_b) in bn.affine_coefficients() {
        // |k| = |bn_k|·s_in·s_w/s_out ≤ limit  and  |b| = |bn_b|/s_out ≤ limit
        required = required.max(f64::from(bn_k.abs()) * s_in * s_w / limit);
        required = required.max(f64::from(bn_b.abs()) / limit);
    }
    required
}

/// Per-channel pools (in real units) of an int accumulator tensor set.
fn acc_pools(accs: &[Tensor3<i32>], unit: f64) -> Vec<Vec<f32>> {
    let c = accs[0].channels();
    let mut pools = vec![Vec::new(); c];
    for t in accs {
        let (tc, h, w) = t.shape();
        debug_assert_eq!(tc, c);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    pools[ci].push((f64::from(t[(ci, hi, wi)]) * unit) as f32);
                }
            }
        }
    }
    pools
}

fn zero_fraction_i8(tensors: &[Tensor3<i8>]) -> f64 {
    let zeros: usize = tensors
        .iter()
        .map(|t| t.as_slice().iter().filter(|&&v| v == 0).count())
        .sum();
    let total: usize = tensors.iter().map(Tensor3::len).sum();
    zeros as f64 / total as f64
}

impl QuantizedDscNetwork {
    /// Reassembles a network from its parts (used by the deployment-artifact
    /// loader in [`crate::artifact`]).
    #[must_use]
    pub fn from_parts(input_params: QuantParams, layers: Vec<QuantizedDscLayer>) -> Self {
        Self {
            input_params,
            layers,
        }
    }

    /// Calibrates with the paper's strategy (max-abs init + LSQ) on the
    /// float path.
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty (use [`QuantizedDscNetwork::calibrate_with`]
    /// for a fallible API).
    #[must_use]
    pub fn calibrate(model: &MobileNetV1, calib: &[Tensor3<f32>]) -> Self {
        Self::calibrate_with(model, calib, QuantStrategy::paper()).expect("valid calibration")
    }

    /// Calibrates on the float forward pass with an explicit strategy.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyCalibrationSet`] if `calib` is empty.
    /// * [`NnError::InvalidConfig`] if BN parameters are non-finite.
    pub fn calibrate_with(
        model: &MobileNetV1,
        calib: &[Tensor3<f32>],
        strategy: QuantStrategy,
    ) -> Result<Self, NnError> {
        if calib.is_empty() {
            return Err(NnError::EmptyCalibrationSet);
        }
        // One float forward pass per calibration image, recording all
        // intermediate activations.
        let traces: Vec<_> = calib.iter().map(|img| model.forward(img)).collect();

        let input_pool: Vec<f32> = traces
            .iter()
            .flat_map(|t| t.stem_act.as_slice().iter().copied())
            .collect();
        let input_params = strategy.scale_for(&subsample(&input_pool), false);

        let n_layers = model.blocks().len();
        let mut layers = Vec::with_capacity(n_layers);
        let mut s_in = f64::from(input_params.scale());
        for (i, block) in model.blocks().iter().enumerate() {
            let mid_pool: Vec<f32> = traces
                .iter()
                .flat_map(|t| t.blocks[i].dwc_act.as_slice().iter().copied())
                .collect();
            let out_pool: Vec<f32> = traces
                .iter()
                .flat_map(|t| t.blocks[i].pwc_act.as_slice().iter().copied())
                .collect();

            let dw_params = strategy.scale_for(&subsample(block.dw_weights.as_slice()), true);
            let pw_params = strategy.scale_for(&subsample(block.pw_weights.as_slice()), true);
            let s_dw = f64::from(dw_params.scale());
            let s_pw = f64::from(pw_params.scale());

            let s_mid_raw = f64::from(strategy.scale_for(&subsample(&mid_pool), false).scale());
            let s_mid = fit_scale_to_fold(&block.bn1, s_in, s_dw, s_mid_raw);
            let s_out_raw = f64::from(strategy.scale_for(&subsample(&out_pool), false).scale());
            let s_out = fit_scale_to_fold(&block.bn2, s_mid, s_pw, s_out_raw);

            let nonconv1 = fold_boundary(&block.bn1, s_in, s_dw, s_mid)?;
            let nonconv2 = fold_boundary(&block.bn2, s_mid, s_pw, s_out)?;
            layers.push(QuantizedDscLayer {
                shape: block.shape,
                dw_weights: dw_params.quantize_tensor4(&block.dw_weights),
                pw_weights: pw_params.quantize_tensor4(&block.pw_weights),
                nonconv1,
                nonconv2,
                s_in: s_in as f32,
                s_mid: s_mid as f32,
                s_out: s_out as f32,
                out_lo: 0,
                residual_scale: None,
            });
            s_in = s_out;
        }
        Ok(Self {
            input_params,
            layers,
        })
    }

    /// Joint sparsity shaping + calibration **on the int8 path** — the
    /// variant the paper-reproduction experiments use.
    ///
    /// Proceeds layer by layer: quantize weights, run the int8 DWC on the
    /// current int8 calibration activations, shape `bn1` on the resulting
    /// (real-unit) accumulator pools to hit `profile.dwc_zero[i]`, choose and
    /// envelope-fit `s_mid`, fold, apply the Non-Conv to produce the int8
    /// intermediates; same again for the PWC. The model's BN parameters are
    /// updated in place, and the achieved int8 zero fractions are returned.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyCalibrationSet`] if `calib` is empty.
    /// * [`NnError::InvalidConfig`] if `profile` does not match the model.
    pub fn calibrate_shaped(
        model: &mut MobileNetV1,
        calib: &[Tensor3<f32>],
        profile: &SparsityProfile,
        strategy: QuantStrategy,
    ) -> Result<(Self, ShapingReport), NnError> {
        if calib.is_empty() {
            return Err(NnError::EmptyCalibrationSet);
        }
        profile.validate(model.blocks().len())?;

        let stem_acts: Vec<Tensor3<f32>> =
            calib.iter().map(|img| model.forward_stem(img)).collect();
        let input_pool: Vec<f32> = stem_acts
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();
        let input_params = strategy.scale_for(&subsample(&input_pool), false);
        let mut xs: Vec<Tensor3<i8>> = stem_acts
            .iter()
            .map(|t| t.map(|&v| input_params.quantize(v)))
            .collect();

        let mut layers = Vec::with_capacity(model.blocks().len());
        let mut report = ShapingReport {
            dwc_zero: Vec::new(),
            pwc_zero: Vec::new(),
        };
        let mut s_in = f64::from(input_params.scale());
        for i in 0..model.blocks().len() {
            let (shape, dw_params, pw_params, dw_q, pw_q) = {
                let block = &model.blocks()[i];
                let dw_params = strategy.scale_for(&subsample(block.dw_weights.as_slice()), true);
                let pw_params = strategy.scale_for(&subsample(block.pw_weights.as_slice()), true);
                (
                    block.shape,
                    dw_params,
                    pw_params,
                    dw_params.quantize_tensor4(&block.dw_weights),
                    pw_params.quantize_tensor4(&block.pw_weights),
                )
            };
            let s_dw = f64::from(dw_params.scale());
            let s_pw = f64::from(pw_params.scale());

            // --- DWC + Non-Conv #1 ---
            let dwc_accs: Vec<Tensor3<i32>> = xs
                .iter()
                .map(|x| depthwise_conv2d_i8(x, dw_q.values(), shape.stride, shape.pad()))
                .collect();
            let pools = acc_pools(&dwc_accs, s_in * s_dw);
            shape_bn_from_pools(&mut model.blocks_mut()[i].bn1, &pools, profile.dwc_zero[i]);
            let bn1 = model.blocks()[i].bn1.clone();
            // Post-BN+ReLU values for the step-size pool:
            let mid_pool: Vec<f32> = {
                let coeffs = bn1.affine_coefficients();
                pools
                    .iter()
                    .enumerate()
                    .flat_map(|(c, pool)| {
                        let (k, b) = coeffs[c];
                        pool.iter().map(move |&v| (k * v + b).max(0.0))
                    })
                    .filter(|&v| v > 0.0)
                    .collect()
            };
            let s_mid_raw = f64::from(strategy.scale_for(&subsample(&mid_pool), false).scale());
            let s_mid = fit_scale_to_fold(&bn1, s_in, s_dw, s_mid_raw);
            let nonconv1 = fold_boundary(&bn1, s_in, s_dw, s_mid)?;
            let mids: Vec<Tensor3<i8>> = dwc_accs
                .iter()
                .map(|acc| {
                    let (c, h, w) = acc.shape();
                    Tensor3::from_fn(c, h, w, |ci, hi, wi| {
                        nonconv1[ci].apply_fixed(acc[(ci, hi, wi)], 0)
                    })
                })
                .collect();
            report.dwc_zero.push(zero_fraction_i8(&mids));

            // --- PWC + Non-Conv #2 ---
            let pwc_accs: Vec<Tensor3<i32>> = mids
                .iter()
                .map(|m| pointwise_conv2d_i8(m, pw_q.values()))
                .collect();
            let pools2 = acc_pools(&pwc_accs, s_mid * s_pw);
            shape_bn_from_pools(&mut model.blocks_mut()[i].bn2, &pools2, profile.pwc_zero[i]);
            let bn2 = model.blocks()[i].bn2.clone();
            let out_pool: Vec<f32> = {
                let coeffs = bn2.affine_coefficients();
                pools2
                    .iter()
                    .enumerate()
                    .flat_map(|(c, pool)| {
                        let (k, b) = coeffs[c];
                        pool.iter().map(move |&v| (k * v + b).max(0.0))
                    })
                    .filter(|&v| v > 0.0)
                    .collect()
            };
            let s_out_raw = f64::from(strategy.scale_for(&subsample(&out_pool), false).scale());
            let s_out = fit_scale_to_fold(&bn2, s_mid, s_pw, s_out_raw);
            let nonconv2 = fold_boundary(&bn2, s_mid, s_pw, s_out)?;
            let outs: Vec<Tensor3<i8>> = pwc_accs
                .iter()
                .map(|acc| {
                    let (c, h, w) = acc.shape();
                    Tensor3::from_fn(c, h, w, |ci, hi, wi| {
                        nonconv2[ci].apply_fixed(acc[(ci, hi, wi)], 0)
                    })
                })
                .collect();
            report.pwc_zero.push(zero_fraction_i8(&outs));

            layers.push(QuantizedDscLayer {
                shape,
                dw_weights: dw_q,
                pw_weights: pw_q,
                nonconv1,
                nonconv2,
                s_in: s_in as f32,
                s_mid: s_mid as f32,
                s_out: s_out as f32,
                out_lo: 0,
                residual_scale: None,
            });
            xs = outs;
            s_in = s_out;
        }
        Ok((
            Self {
                input_params,
                layers,
            },
            report,
        ))
    }

    /// Calibrates a quantized MobileNetV2 stack **on the int8 path**: stage
    /// by stage, weights are quantized, the int8 engine ops run on the
    /// calibration activations, step sizes are envelope-fitted and folded,
    /// and the resulting int8 activations feed the next stage — so the
    /// Non-Conv constants describe exactly the tensors the accelerator will
    /// see. Expand ([`StageOp::PwcOnly`]) stages fold a ReLU
    /// (`out_lo = 0`); project stages are linear (`out_lo = −128`) and, on
    /// residual blocks, carry the Q8.16 requantized residual scale
    /// `s_res / s_out`.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyCalibrationSet`] if `calib` is empty.
    /// * [`NnError::ShapeMismatch`] if a DSC stage lacks depthwise
    ///   parameters.
    /// * [`NnError::InvalidConfig`] if BN parameters are non-finite or a
    ///   residual-add stage has no matching save.
    pub fn calibrate_v2(
        model: &MobileNetV2,
        calib: &[Tensor3<f32>],
        strategy: QuantStrategy,
    ) -> Result<Self, NnError> {
        if calib.is_empty() {
            return Err(NnError::EmptyCalibrationSet);
        }
        let stem_acts: Vec<Tensor3<f32>> =
            calib.iter().map(|img| model.forward_stem(img)).collect();
        let input_pool: Vec<f32> = stem_acts
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();
        let input_params = strategy.scale_for(&subsample(&input_pool), false);
        let mut xs: Vec<Tensor3<i8>> = stem_acts
            .iter()
            .map(|t| t.map(|&v| input_params.quantize(v)))
            .collect();

        let mut layers = Vec::with_capacity(model.stages().len());
        let mut s_in = f64::from(input_params.scale());
        // Residual source: the int8 block input plus its step size, held
        // from the save stage to the matching add stage.
        let mut saved: Option<(Vec<Tensor3<i8>>, f64)> = None;
        for stage in model.stages() {
            let shape = stage.shape;
            let missing = |what: &str| NnError::ShapeMismatch {
                layer: shape.index,
                detail: format!("DSC stage without {what}"),
            };
            if shape.residual_save {
                saved = Some((xs.clone(), s_in));
            }
            let pw_params = strategy.scale_for(&subsample(stage.pw_weights.as_slice()), true);
            let pw_q = pw_params.quantize_tensor4(&stage.pw_weights);
            let s_pw = f64::from(pw_params.scale());

            // --- DWC + Non-Conv #1 (DSC stages; expand stages feed the
            // PWC straight from the ifmap) ---
            let (dw_q, nonconv1, mids, s_mid) = match shape.op {
                StageOp::Dsc => {
                    let dw = stage
                        .dw_weights
                        .as_ref()
                        .ok_or_else(|| missing("depthwise weights"))?;
                    let bn1 = stage.bn1.as_ref().ok_or_else(|| missing("bn1"))?;
                    let dw_params = strategy.scale_for(&subsample(dw.as_slice()), true);
                    let dw_q = dw_params.quantize_tensor4(dw);
                    let s_dw = f64::from(dw_params.scale());
                    let dwc_accs: Vec<Tensor3<i32>> = xs
                        .iter()
                        .map(|x| depthwise_conv2d_i8(x, dw_q.values(), shape.stride, shape.pad()))
                        .collect();
                    let pools = acc_pools(&dwc_accs, s_in * s_dw);
                    let coeffs = bn1.affine_coefficients();
                    let mid_pool: Vec<f32> = pools
                        .iter()
                        .enumerate()
                        .flat_map(|(c, pool)| {
                            let (k, b) = coeffs[c];
                            pool.iter().map(move |&v| (k * v + b).max(0.0))
                        })
                        .filter(|&v| v > 0.0)
                        .collect();
                    let s_mid_raw =
                        f64::from(strategy.scale_for(&subsample(&mid_pool), false).scale());
                    let s_mid = fit_scale_to_fold(bn1, s_in, s_dw, s_mid_raw);
                    let nonconv1 = fold_boundary(bn1, s_in, s_dw, s_mid)?;
                    let mids: Vec<Tensor3<i8>> = dwc_accs
                        .iter()
                        .map(|acc| {
                            let (c, h, w) = acc.shape();
                            Tensor3::from_fn(c, h, w, |ci, hi, wi| {
                                nonconv1[ci].apply_fixed(acc[(ci, hi, wi)], 0)
                            })
                        })
                        .collect();
                    (dw_q, nonconv1, mids, s_mid)
                }
                StageOp::PwcOnly => {
                    // Placeholder depthwise parameters keep the layer layout
                    // uniform; the engine skips them (zero 1×1 kernels,
                    // identity Non-Conv #1).
                    let unit = QuantParams::new(1.0)
                        .map_err(|e| NnError::InvalidConfig {
                            detail: e.to_string(),
                        })?
                        .quantize_tensor4(&Tensor4::zeros(shape.d_in, 1, 1, 1));
                    let identity = vec![FoldedAffine::fold(1.0, 0.0, 1.0, 1.0, 1.0); shape.d_in];
                    (unit, identity, xs.clone(), s_in)
                }
            };

            // --- PWC + Non-Conv #2 ---
            let pwc_accs: Vec<Tensor3<i32>> = mids
                .iter()
                .map(|m| pointwise_conv2d_i8(m, pw_q.values()))
                .collect();
            let res = if shape.residual_add {
                Some(saved.take().ok_or_else(|| NnError::InvalidConfig {
                    detail: format!(
                        "stage {}: residual add without a preceding save",
                        shape.index
                    ),
                })?)
            } else {
                None
            };
            let relu_out = stage.relu_out();
            let coeffs = stage.bn2.affine_coefficients();
            let unit = (s_mid * s_pw) as f32;
            // Real-unit output pool, including the residual contribution on
            // skip-connected blocks, so s_out covers the summed range.
            let mut out_pool: Vec<f32> = Vec::new();
            for (img, acc) in pwc_accs.iter().enumerate() {
                let (c, h, w) = acc.shape();
                for ci in 0..c {
                    let (k, b) = coeffs[ci];
                    for hi in 0..h {
                        for wi in 0..w {
                            let mut v = k * (acc[(ci, hi, wi)] as f32 * unit) + b;
                            if let Some((res_xs, s_res)) = &res {
                                v += f32::from(res_xs[img][(ci, hi, wi)]) * *s_res as f32;
                            }
                            if relu_out {
                                v = v.max(0.0);
                            }
                            out_pool.push(v);
                        }
                    }
                }
            }
            if relu_out {
                out_pool.retain(|&v| v > 0.0);
            }
            let s_out_raw = f64::from(strategy.scale_for(&subsample(&out_pool), false).scale());
            let mut s_out = fit_scale_to_fold(&stage.bn2, s_mid, s_pw, s_out_raw);
            if let Some((_, s_res)) = &res {
                // The residual coefficient r = s_res/s_out must itself fit
                // the Q8.16 envelope (|r| ≤ 127).
                s_out = s_out.max(s_res / 127.0);
            }
            let nonconv2 = fold_boundary(&stage.bn2, s_mid, s_pw, s_out)?;
            let out_lo: i8 = if relu_out { 0 } else { -128 };
            let r_scale = res
                .as_ref()
                .map(|(_, s_res)| Q8x16::from_f64(s_res / s_out));
            let outs: Vec<Tensor3<i8>> = pwc_accs
                .iter()
                .enumerate()
                .map(|(img, acc)| {
                    let (c, h, w) = acc.shape();
                    Tensor3::from_fn(c, h, w, |ci, hi, wi| match (&res, r_scale) {
                        (Some((res_xs, _)), Some(r)) => nonconv2[ci].apply_fixed_residual(
                            acc[(ci, hi, wi)],
                            res_xs[img][(ci, hi, wi)],
                            r,
                            out_lo,
                        ),
                        _ => nonconv2[ci].apply_fixed(acc[(ci, hi, wi)], out_lo),
                    })
                })
                .collect();

            layers.push(QuantizedDscLayer {
                shape,
                dw_weights: dw_q,
                pw_weights: pw_q,
                nonconv1,
                nonconv2,
                s_in: s_in as f32,
                s_mid: s_mid as f32,
                s_out: s_out as f32,
                out_lo,
                residual_scale: r_scale,
            });
            xs = outs;
            s_in = s_out;
        }
        Ok(Self {
            input_params,
            layers,
        })
    }

    /// Quantization parameters for the network input (the stem activation).
    #[must_use]
    pub fn input_params(&self) -> QuantParams {
        self.input_params
    }

    /// The quantized layers.
    #[must_use]
    pub fn layers(&self) -> &[QuantizedDscLayer] {
        &self.layers
    }

    /// Quantizes a float stem activation into the layer-0 input tensor.
    #[must_use]
    pub fn quantize_input(&self, stem_act: &Tensor3<f32>) -> Tensor3<i8> {
        stem_act.map(|&v| self.input_params.quantize(v))
    }

    /// Quantizes a batch of float stem activations into a layer-0 input
    /// batch. Each image is quantized exactly as [`Self::quantize_input`]
    /// would — batching never changes values.
    #[must_use]
    pub fn quantize_input_batch(
        &self,
        stem_acts: &edea_tensor::Batch<f32>,
    ) -> edea_tensor::Batch<i8> {
        stem_acts.map_images(|img| self.quantize_input(img))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::SparsityProfile;
    use edea_tensor::rng;

    fn calibrated_tiny() -> (MobileNetV1, QuantizedDscNetwork, ShapingReport) {
        let mut model = MobileNetV1::synthetic(0.25, 11);
        let calib = rng::synthetic_batch(4, 3, 32, 32, 12);
        let (qnet, report) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        (model, qnet, report)
    }

    fn calibrated_v2() -> (MobileNetV2, QuantizedDscNetwork) {
        let model = MobileNetV2::synthetic(0.25, 31);
        let calib = rng::synthetic_batch(3, 3, 32, 32, 32);
        let qnet =
            QuantizedDscNetwork::calibrate_v2(&model, &calib, QuantStrategy::paper()).unwrap();
        (model, qnet)
    }

    #[test]
    fn v2_calibration_matches_stage_structure() {
        let (model, qnet) = calibrated_v2();
        assert_eq!(qnet.layers().len(), 17);
        for (layer, stage) in qnet.layers().iter().zip(model.stages()) {
            assert_eq!(layer.shape(), stage.shape);
            match layer.shape().op {
                // Expand stages fold a ReLU; project stages are linear.
                StageOp::PwcOnly => assert_eq!(layer.out_lo(), 0),
                StageOp::Dsc => assert_eq!(layer.out_lo(), -128),
            }
            assert_eq!(
                layer.residual_scale().is_some(),
                layer.shape().residual_add,
                "stage {}",
                layer.shape().index
            );
        }
        assert_eq!(
            qnet.layers()
                .iter()
                .filter(|l| l.residual_scale().is_some())
                .count(),
            3
        );
    }

    #[test]
    fn v2_scales_chain_across_stages() {
        let (_, qnet) = calibrated_v2();
        for pair in qnet.layers().windows(2) {
            assert_eq!(pair[0].s_out(), pair[1].s_in());
        }
    }

    #[test]
    fn v2_expand_stages_carry_inert_placeholder_dwc() {
        // A lone PWC still slots into the uniform layer layout: zero 1×1
        // depthwise kernels and an identity Non-Conv #1 the engine skips.
        let (_, qnet) = calibrated_v2();
        let expand = qnet
            .layers()
            .iter()
            .find(|l| l.shape().op == StageOp::PwcOnly)
            .unwrap();
        let s = expand.shape();
        assert_eq!(expand.dw_weights().values().shape(), (s.d_in, 1, 1, 1));
        assert!(expand
            .dw_weights()
            .values()
            .as_slice()
            .iter()
            .all(|&v| v == 0));
        assert_eq!(expand.nonconv1().len(), s.d_in);
        for f in expand.nonconv1() {
            assert_eq!(f.apply_fixed(37, -128), 37);
        }
        assert_eq!(expand.s_in(), expand.s_mid());
    }

    #[test]
    fn v2_residual_scale_is_the_save_to_out_ratio() {
        // The residual source is the *expand* stage's input, so
        // r = expand.s_in / project.s_out, rounded to Q8.16.
        let (_, qnet) = calibrated_v2();
        let mut checked = 0;
        for (i, l) in qnet.layers().iter().enumerate() {
            if let Some(r) = l.residual_scale() {
                let s_res = f64::from(qnet.layers()[i - 1].s_in());
                let want = s_res / f64::from(l.s_out());
                assert!((r.to_f64() - want).abs() < 1e-4, "stage {i}");
                assert!(want <= 127.0, "stage {i}: envelope");
                checked += 1;
            }
        }
        assert_eq!(checked, 3);
    }

    #[test]
    fn calibration_produces_thirteen_layers() {
        let (_, qnet, _) = calibrated_tiny();
        assert_eq!(qnet.layers().len(), 13);
    }

    #[test]
    fn scales_chain_between_layers() {
        let (_, qnet, _) = calibrated_tiny();
        for pair in qnet.layers().windows(2) {
            assert_eq!(pair[0].s_out(), pair[1].s_in());
        }
        assert_eq!(qnet.input_params().scale(), qnet.layers()[0].s_in());
    }

    #[test]
    fn shaped_calibration_hits_sparsity_targets_on_int_path() {
        let (_, _, report) = calibrated_tiny();
        let profile = SparsityProfile::paper();
        for i in 0..13 {
            // Int8 rounding can only add zeros (small positives round to 0),
            // so achieved ≥ target − ε and within a few percent above.
            assert!(
                report.dwc_zero[i] >= profile.dwc_zero[i] - 0.02,
                "dwc layer {i}: {} vs {}",
                report.dwc_zero[i],
                profile.dwc_zero[i]
            );
            assert!(
                report.dwc_zero[i] <= profile.dwc_zero[i] + 0.12,
                "dwc layer {i} oversparse: {}",
                report.dwc_zero[i]
            );
            assert!(
                report.pwc_zero[i] >= profile.pwc_zero[i] - 0.02,
                "pwc layer {i}"
            );
        }
        // Layer-12 anchors from the paper: 97.4 % / 95.3 %.
        assert!(report.dwc_zero[12] >= 0.954);
        assert!(report.pwc_zero[12] >= 0.933);
    }

    #[test]
    fn nonconv_channel_counts_match_shapes() {
        let (_, qnet, _) = calibrated_tiny();
        for l in qnet.layers() {
            assert_eq!(l.nonconv1().len(), l.shape().d_in);
            assert_eq!(l.nonconv2().len(), l.shape().k_out);
            assert_eq!(l.dw_weights().values().shape(), (l.shape().d_in, 1, 3, 3));
            assert_eq!(
                l.pw_weights().values().shape(),
                (l.shape().k_out, l.shape().d_in, 1, 1)
            );
        }
    }

    #[test]
    fn folded_constants_inside_q8_16_range_without_rescaling() {
        // The envelope fit must place every folded constant inside Q8.16 so
        // the rescale fallback never fires.
        let (model, qnet, _) = calibrated_tiny();
        for (l, b) in qnet.layers().iter().zip(model.blocks()) {
            let coeffs = b.bn1.affine_coefficients();
            for (c, f) in l.nonconv1().iter().enumerate() {
                assert!(f.k_exact.abs() < 128.0 && f.b_exact.abs() < 128.0);
                let unscaled_k = f64::from(coeffs[c].0)
                    * f64::from(l.s_in())
                    * f64::from(l.dw_weights().params().scale())
                    / f64::from(l.s_mid());
                // Tolerance covers f32 round-trips of the stored scales; an
                // actual rescale changes k by ≥ ~0.1 %.
                assert!(
                    (f.k_exact - unscaled_k).abs() <= 1e-4 * unscaled_k.abs().max(1e-6),
                    "layer {} channel {c} was rescaled: {} vs {}",
                    l.shape().index,
                    f.k_exact,
                    unscaled_k
                );
            }
        }
    }

    #[test]
    fn empty_calibration_is_an_error() {
        let model = MobileNetV1::synthetic(0.25, 1);
        let r = QuantizedDscNetwork::calibrate_with(&model, &[], QuantStrategy::paper());
        assert_eq!(r.unwrap_err(), NnError::EmptyCalibrationSet);
        let mut m2 = MobileNetV1::synthetic(0.25, 1);
        let r2 = QuantizedDscNetwork::calibrate_shaped(
            &mut m2,
            &[],
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        );
        assert!(r2.is_err());
    }

    #[test]
    fn observer_only_strategy_works() {
        let mut model = MobileNetV1::synthetic(0.25, 2);
        let calib = rng::synthetic_batch(2, 3, 32, 32, 3);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::Observer(Observer::MinMax),
        )
        .unwrap();
        assert_eq!(qnet.layers().len(), 13);
    }

    #[test]
    fn float_path_calibration_also_works() {
        let (model, _, _) = calibrated_tiny();
        let calib = rng::synthetic_batch(2, 3, 32, 32, 3);
        let qnet = QuantizedDscNetwork::calibrate(&model, &calib);
        assert_eq!(qnet.layers().len(), 13);
        for l in qnet.layers() {
            for f in l.nonconv1().iter().chain(l.nonconv2()) {
                assert!(f.k_exact.abs() < 128.0 && f.b_exact.abs() < 128.0);
            }
        }
    }

    #[test]
    fn quantize_input_respects_scale() {
        let (model, qnet, _) = calibrated_tiny();
        let img = rng::synthetic_image(3, 32, 32, 77);
        let stem = model.forward_stem(&img);
        let q = qnet.quantize_input(&stem);
        // Post-ReLU stem activations are non-negative, so int8 codes are too.
        assert!(q.as_slice().iter().all(|&v| v >= 0));
    }

    #[test]
    fn fit_scale_widens_until_envelope_holds() {
        let bn = BatchNorm {
            gamma: vec![1.0],
            beta: vec![-5.0],
            mean: vec![0.0],
            var: vec![1.0],
            eps: 0.0,
        };
        // |b̂| = 5 ⇒ s_out must be at least 5/127.
        let s = fit_scale_to_fold(&bn, 0.01, 0.01, 0.001);
        assert!(s >= 5.0 / 127.0 - 1e-12);
        // Already-wide scales are untouched:
        let s2 = fit_scale_to_fold(&bn, 0.01, 0.01, 1.0);
        assert_eq!(s2, 1.0);
    }
}
