//! Deployment artifact: the binary blob the accelerator consumes.
//!
//! The paper's flow ends with pre-computed int8 weights and Q8.16 Non-Conv
//! constants being loaded into the accelerator's buffers from external
//! memory. This module defines that artifact: a deterministic, versioned,
//! checksummed binary serialization of a [`QuantizedDscNetwork`] — what a
//! driver would DMA to the device — with a strict round-trip guarantee.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "EDEA"  | u32 version | u32 layer count | f32 input scale
//! per layer:
//!   u32×5 shape (in_spatial, d_in, k_out, stride, kernel)
//!   u32×6 generalized axes (pad_before, pad_after, dilation,
//!         depth_multiplier, op, residual flags)
//!   i32 out_lo | u32 residual-scale presence | [i32 raw Q8.16 scale]
//!   f32×3 scales (s_in, s_mid, s_out)
//!   f32 dw weight scale, i8[k²·D·dm] dw weights
//!   f32 pw weight scale, i8[D·dm·K] pw weights
//!   i32[2·D·dm] nonconv1 (k, b) raw Q8.16 words
//!   i32[2·K] nonconv2 (k, b) raw Q8.16 words
//! u32 FNV-1a checksum of everything above
//! ```
//!
//! Version 2 generalized the per-layer shape record (the `u32×6` axes
//! row and the residual/out-lo words) so the MobileNetV2 inverted
//! residual round-trips exactly; version-1 blobs predate that row and
//! are rejected by the version check.

use edea_fixed::Q8x16;
use edea_tensor::{QTensor4, QuantParams, Tensor4};

use crate::fold::FoldedAffine;
use crate::quantize::{QuantizedDscLayer, QuantizedDscNetwork};
use crate::workload::{LayerShape, Padding, StageOp};
use crate::NnError;

const MAGIC: &[u8; 4] = b"EDEA";
/// Artifact format version.
pub const ARTIFACT_VERSION: u32 = 2;

/// FNV-1a, the checksum of the artifact body.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i8s(&mut self, vs: &[i8]) {
        self.buf.extend(vs.iter().map(|&v| v as u8));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.buf.len() {
            return Err(NnError::InvalidConfig {
                detail: format!("artifact truncated at byte {}", self.pos),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, NnError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn i32(&mut self) -> Result<i32, NnError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn f32(&mut self) -> Result<f32, NnError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn i8s(&mut self, n: usize) -> Result<Vec<i8>, NnError> {
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }
}

/// Serializes a quantized network into the deployment blob.
#[must_use]
pub fn serialize(net: &QuantizedDscNetwork) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(ARTIFACT_VERSION);
    w.u32(net.layers().len() as u32);
    w.f32(net.input_params().scale());
    for l in net.layers() {
        let s = l.shape();
        for v in [s.in_spatial, s.d_in, s.k_out, s.stride, s.kernel] {
            w.u32(v as u32);
        }
        let op = match s.op {
            StageOp::Dsc => 0,
            StageOp::PwcOnly => 1,
        };
        let flags = u32::from(s.residual_save) | (u32::from(s.residual_add) << 1);
        for v in [
            s.padding.before as u32,
            s.padding.after as u32,
            s.dilation as u32,
            s.depth_multiplier as u32,
            op,
            flags,
        ] {
            w.u32(v);
        }
        w.i32(i32::from(l.out_lo()));
        match l.residual_scale() {
            Some(r) => {
                w.u32(1);
                w.i32(r.raw());
            }
            None => w.u32(0),
        }
        w.f32(l.s_in());
        w.f32(l.s_mid());
        w.f32(l.s_out());
        w.f32(l.dw_weights().params().scale());
        w.i8s(l.dw_weights().values().as_slice());
        w.f32(l.pw_weights().params().scale());
        w.i8s(l.pw_weights().values().as_slice());
        for f in l.nonconv1() {
            w.i32(f.k.raw());
            w.i32(f.b.raw());
        }
        for f in l.nonconv2() {
            w.i32(f.k.raw());
            w.i32(f.b.raw());
        }
    }
    let checksum = fnv1a(&w.buf);
    w.u32(checksum);
    w.buf
}

fn affine_from_raw(k_raw: i32, b_raw: i32) -> FoldedAffine {
    let k = Q8x16::from_raw(k_raw);
    let b = Q8x16::from_raw(b_raw);
    FoldedAffine {
        k_exact: k.to_f64(),
        b_exact: b.to_f64(),
        k,
        b,
    }
}

/// Deserializes a deployment blob.
///
/// # Errors
///
/// [`NnError::InvalidConfig`] on bad magic, unsupported version, truncation,
/// or checksum mismatch.
pub fn deserialize(bytes: &[u8]) -> Result<QuantizedDscNetwork, NnError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(NnError::InvalidConfig {
            detail: "not an EDEA artifact".into(),
        });
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if fnv1a(body) != stored {
        return Err(NnError::InvalidConfig {
            detail: "artifact checksum mismatch".into(),
        });
    }
    let mut r = Reader { buf: body, pos: 4 };
    let version = r.u32()?;
    if version != ARTIFACT_VERSION {
        return Err(NnError::InvalidConfig {
            detail: format!("unsupported artifact version {version}"),
        });
    }
    let n_layers = r.u32()? as usize;
    if n_layers > 1024 {
        return Err(NnError::InvalidConfig {
            detail: "implausible layer count".into(),
        });
    }
    let input_scale = r.f32()?;
    let input_params = QuantParams::new(input_scale).map_err(|e| NnError::InvalidConfig {
        detail: e.to_string(),
    })?;
    let mut layers = Vec::with_capacity(n_layers);
    for index in 0..n_layers {
        let in_spatial = r.u32()? as usize;
        let d_in = r.u32()? as usize;
        let k_out = r.u32()? as usize;
        let stride = r.u32()? as usize;
        let kernel = r.u32()? as usize;
        if d_in == 0 || k_out == 0 || stride == 0 || kernel == 0 || in_spatial == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("layer {index}: zero dimension"),
            });
        }
        let pad_before = r.u32()? as usize;
        let pad_after = r.u32()? as usize;
        let dilation = r.u32()? as usize;
        let depth_multiplier = r.u32()? as usize;
        let op = match r.u32()? {
            0 => StageOp::Dsc,
            1 => StageOp::PwcOnly,
            other => {
                return Err(NnError::InvalidConfig {
                    detail: format!("layer {index}: unknown stage op {other}"),
                })
            }
        };
        let flags = r.u32()?;
        if flags > 0b11 || dilation == 0 || depth_multiplier == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("layer {index}: malformed generalized-axes record"),
            });
        }
        let shape = LayerShape {
            index,
            in_spatial,
            d_in,
            k_out,
            stride,
            kernel,
            padding: Padding {
                before: pad_before,
                after: pad_after,
            },
            dilation,
            depth_multiplier,
            op,
            residual_save: flags & 1 != 0,
            residual_add: flags & 2 != 0,
        };
        let out_lo = r.i32()?;
        let out_lo = i8::try_from(out_lo).map_err(|_| NnError::InvalidConfig {
            detail: format!("layer {index}: out_lo {out_lo} outside i8"),
        })?;
        let residual_scale = match r.u32()? {
            0 => None,
            1 => Some(Q8x16::from_raw(r.i32()?)),
            other => {
                return Err(NnError::InvalidConfig {
                    detail: format!("layer {index}: bad residual-scale flag {other}"),
                })
            }
        };
        if residual_scale.is_some() && !shape.residual_add {
            return Err(NnError::InvalidConfig {
                detail: format!("layer {index}: residual scale on a non-residual stage"),
            });
        }
        let dwc_out = shape.dwc_out_channels();
        let s_in = r.f32()?;
        let s_mid = r.f32()?;
        let s_out = r.f32()?;
        let dw_scale = r.f32()?;
        let dw = r.i8s(kernel * kernel * dwc_out)?;
        let pw_scale = r.f32()?;
        let pw = r.i8s(dwc_out * k_out)?;
        let mut nonconv1 = Vec::with_capacity(dwc_out);
        for _ in 0..dwc_out {
            let k = r.i32()?;
            let b = r.i32()?;
            nonconv1.push(affine_from_raw(k, b));
        }
        let mut nonconv2 = Vec::with_capacity(k_out);
        for _ in 0..k_out {
            let k = r.i32()?;
            let b = r.i32()?;
            nonconv2.push(affine_from_raw(k, b));
        }
        let dw_t = Tensor4::from_vec(dw, dwc_out, 1, kernel, kernel).map_err(|e| {
            NnError::InvalidConfig {
                detail: e.to_string(),
            }
        })?;
        let pw_t =
            Tensor4::from_vec(pw, k_out, dwc_out, 1, 1).map_err(|e| NnError::InvalidConfig {
                detail: e.to_string(),
            })?;
        let dw_params = QuantParams::new(dw_scale).map_err(|e| NnError::InvalidConfig {
            detail: e.to_string(),
        })?;
        let pw_params = QuantParams::new(pw_scale).map_err(|e| NnError::InvalidConfig {
            detail: e.to_string(),
        })?;
        let mut layer = QuantizedDscLayer::from_parts(
            shape,
            QTensor4::new(dw_t, dw_params),
            QTensor4::new(pw_t, pw_params),
            nonconv1,
            nonconv2,
            s_in,
            s_mid,
            s_out,
        )
        .with_out_lo(out_lo);
        if let Some(r) = residual_scale {
            layer = layer.with_residual_scale(r);
        }
        layers.push(layer);
    }
    if r.pos != body.len() {
        return Err(NnError::InvalidConfig {
            detail: format!("{} trailing bytes in artifact", body.len() - r.pos),
        });
    }
    Ok(QuantizedDscNetwork::from_parts(input_params, layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor;
    use crate::mobilenet::{MobileNetV1, MobileNetV2};
    use crate::quantize::QuantStrategy;
    use crate::sparsity::SparsityProfile;
    use edea_tensor::rng;

    fn network() -> (MobileNetV1, QuantizedDscNetwork) {
        let mut model = MobileNetV1::synthetic(0.25, 91);
        let calib = rng::synthetic_batch(1, 3, 32, 32, 92);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        (model, qnet)
    }

    #[test]
    fn round_trip_preserves_execution_bit_exactly() {
        let (model, qnet) = network();
        let blob = serialize(&qnet);
        let restored = deserialize(&blob).expect("valid artifact");
        // The restored network must execute identically.
        let img = rng::synthetic_image(3, 32, 32, 93);
        let input = qnet.quantize_input(&model.forward_stem(&img));
        let a = executor::run_network(&qnet, &input);
        let b = executor::run_network(&restored, &input);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn round_trip_preserves_all_parameters() {
        let (_, qnet) = network();
        let restored = deserialize(&serialize(&qnet)).unwrap();
        assert_eq!(restored.layers().len(), qnet.layers().len());
        for (a, b) in qnet.layers().iter().zip(restored.layers()) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.dw_weights().values(), b.dw_weights().values());
            assert_eq!(a.pw_weights().values(), b.pw_weights().values());
            assert_eq!(a.s_in(), b.s_in());
            assert_eq!(a.s_mid(), b.s_mid());
            assert_eq!(a.s_out(), b.s_out());
            assert_eq!(a.out_lo(), b.out_lo());
            assert_eq!(a.residual_scale(), b.residual_scale());
            for (fa, fb) in a.nonconv1().iter().zip(b.nonconv1()) {
                assert_eq!(fa.k, fb.k);
                assert_eq!(fa.b, fb.b);
            }
        }
    }

    #[test]
    fn v2_inverted_residuals_round_trip_bit_exactly() {
        // The generalized record is the point of format version 2: stage
        // ops, residual markers, out_lo and the residual rescale must all
        // survive the blob, proven by bit-exact re-execution.
        let model = MobileNetV2::synthetic(0.25, 94);
        let calib = rng::synthetic_batch(1, 3, 32, 32, 95);
        let qnet =
            QuantizedDscNetwork::calibrate_v2(&model, &calib, QuantStrategy::paper()).unwrap();
        let restored = deserialize(&serialize(&qnet)).expect("valid v2 artifact");
        assert!(qnet.layers().iter().any(|l| l.shape().residual_add));
        for (a, b) in qnet.layers().iter().zip(restored.layers()) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.out_lo(), b.out_lo());
            assert_eq!(a.residual_scale(), b.residual_scale());
        }
        let img = rng::synthetic_image(3, 32, 32, 96);
        let input = qnet.quantize_input(&model.forward_stem(&img));
        assert_eq!(
            executor::run_network(&qnet, &input).output,
            executor::run_network(&restored, &input).output
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let (_, qnet) = network();
        assert_eq!(serialize(&qnet), serialize(&qnet));
    }

    #[test]
    fn rejects_bad_magic() {
        let (_, qnet) = network();
        let mut blob = serialize(&qnet);
        blob[0] = b'X';
        assert!(deserialize(&blob).is_err());
    }

    #[test]
    fn rejects_corruption_anywhere() {
        let (_, qnet) = network();
        let blob = serialize(&qnet);
        // Flip one byte in several places spread over the blob.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let mut bad = blob.clone();
            let idx = (blob.len() as f64 * frac) as usize;
            bad[idx] ^= 0x55;
            assert!(deserialize(&bad).is_err(), "corruption at {idx} not caught");
        }
    }

    #[test]
    fn rejects_truncation() {
        let (_, qnet) = network();
        let blob = serialize(&qnet);
        assert!(deserialize(&blob[..blob.len() / 2]).is_err());
        assert!(deserialize(&blob[..3]).is_err());
        assert!(deserialize(&[]).is_err());
    }

    #[test]
    fn artifact_size_tracks_parameter_count() {
        let (_, qnet) = network();
        let blob = serialize(&qnet);
        let params: usize = qnet
            .layers()
            .iter()
            .map(|l| l.dw_weights().values().len() + l.pw_weights().values().len())
            .sum();
        // Weights dominate; overhead is scales + nonconv words + header.
        assert!(blob.len() > params);
        assert!(
            blob.len() < params + 64 * params.max(4096),
            "{}",
            blob.len()
        );
    }

    #[test]
    fn version_mismatch_rejected() {
        let (_, qnet) = network();
        let mut blob = serialize(&qnet);
        // Bump the version field (bytes 4..8) and fix up the checksum.
        blob[4] = 99;
        let body_len = blob.len() - 4;
        let sum = super::fnv1a(&blob[..body_len]);
        blob[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = deserialize(&blob).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
