//! The Non-Conv fold: dequantization + BN + ReLU + requantization collapsed
//! into `y = k·x + b`.
//!
//! Paper Sec. III-C / Fig. 6: between DWC and PWC the network requires
//! dequantization (int accumulator → real), batch normalization, ReLU, and
//! requantization back to int8. "In inference, all BN parameters (γ, β, μ,
//! σ, ε) and quantization scaling factors (s_a, s_w) are fixed and can be
//! pre-computed. … these parameters and scaling factors can be simplified
//! into a multiplication and addition: y = k·x + b."
//!
//! Derivation (per output channel `c`):
//!
//! ```text
//! real value of accumulator X:   x = X · s_in · s_w
//! batch norm:                    y = γ_c (x − μ_c)/√(σ²_c + ε) + β_c  =  k̂_c·x + b̂_c
//! requantize to step s_out:      q = clip(round(y / s_out), 0, 127)    (ReLU ⇒ low clip 0)
//! ⇒  q = clip(round(k_c·X + b_c), 0, 127)
//!    with  k_c = k̂_c · s_in · s_w / s_out   and   b_c = b̂_c / s_out.
//! ```
//!
//! `k` and `b` are then rounded to Q8.16 — this module also quantifies the
//! precision impact of that rounding, backing the paper's claim that Q8.16
//! "covers all possible ranges of the values for k and b without losing
//! precision".

use edea_fixed::{Q8x16, Round};
use edea_tensor::ops::BatchNorm;

use crate::NnError;

/// One channel's folded affine transform, kept in both exact (f64) and
/// hardware (Q8.16) form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedAffine {
    /// Exact multiplier before Q8.16 rounding.
    pub k_exact: f64,
    /// Exact offset before Q8.16 rounding.
    pub b_exact: f64,
    /// Hardware multiplier (Q8.16).
    pub k: Q8x16,
    /// Hardware offset (Q8.16).
    pub b: Q8x16,
}

impl FoldedAffine {
    /// Folds one channel: BN affine coefficients `(bn_k, bn_b)`, input
    /// activation step `s_in`, weight step `s_w`, output activation step
    /// `s_out`.
    ///
    /// # Panics
    ///
    /// Panics if any step size is not finite-positive.
    #[must_use]
    pub fn fold(bn_k: f64, bn_b: f64, s_in: f64, s_w: f64, s_out: f64) -> Self {
        assert!(
            s_in > 0.0 && s_w > 0.0 && s_out > 0.0,
            "step sizes must be positive"
        );
        let k_exact = bn_k * s_in * s_w / s_out;
        let b_exact = bn_b / s_out;
        Self {
            k_exact,
            b_exact,
            k: Q8x16::from_f64(k_exact),
            b: Q8x16::from_f64(b_exact),
        }
    }

    /// Applies the *hardware* path: Q8.16 multiply-add, round, clip.
    /// `lo` is `0` when ReLU is folded in (the DSC case) or `-128` otherwise.
    #[must_use]
    pub fn apply_fixed(&self, acc: i32, lo: i8) -> i8 {
        self.k
            .mul_int_add(acc, self.b)
            .round_clip_i8(Round::HalfAwayFromZero, lo, 127)
    }

    /// Applies the folded transform with a requantized residual summed onto
    /// the wide bus before the round stage:
    /// `clip(round(k·acc + b + r·res), lo, 127)` — the inverted-residual
    /// skip connection as a natural extension of the Non-Conv fold. `r` is
    /// the residual rescale `s_res / s_out` in Q8.16; the add happens at
    /// wide (pre-round) precision, so folding the add into the affine and
    /// adding after the fold are bit-identical (property-tested).
    #[must_use]
    pub fn apply_fixed_residual(&self, acc: i32, residual: i8, r: Q8x16, lo: i8) -> i8 {
        self.k
            .mul_int_add(acc, self.b)
            .saturating_add(r.mul_int_add(i32::from(residual), Q8x16::ZERO))
            .round_clip_i8(Round::HalfAwayFromZero, lo, 127)
    }

    /// Applies the *reference* path in f64: `clip(round(k·x + b))` with the
    /// exact (unrounded) constants. Used to bound the Q8.16 rounding impact.
    #[must_use]
    pub fn apply_exact(&self, acc: i32, lo: i8) -> i8 {
        let y = self.k_exact * f64::from(acc) + self.b_exact;
        let r = Round::HalfAwayFromZero.round_f64(y.clamp(-1e15, 1e15));
        r.clamp(i128::from(lo), 127) as i8
    }

    /// Worst-case absolute error of the Q8.16 representation of `k` and `b`
    /// propagated through an accumulator of magnitude `max_acc` — if this is
    /// well below 0.5, hardware and exact paths agree except on exact
    /// rounding boundaries.
    #[must_use]
    pub fn q8_16_error_bound(&self, max_acc: i32) -> f64 {
        let dk = (self.k_exact - self.k.to_f64()).abs();
        let db = (self.b_exact - self.b.to_f64()).abs();
        dk * f64::from(max_acc.abs()) + db
    }

    /// Rescales both constants by `factor`, preserving the zero crossing
    /// `x* = −b/k` (and therefore the post-ReLU sparsity pattern) while
    /// shrinking the channel's output slope. Used by [`fold_boundary`] to
    /// range-normalize channels whose shift exceeds the Q8.16 range — the
    /// per-channel equalization step a real deployment flow performs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn rescaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "rescale factor must be in (0,1]"
        );
        let k_exact = self.k_exact * factor;
        let b_exact = self.b_exact * factor;
        Self {
            k_exact,
            b_exact,
            k: Q8x16::from_f64(k_exact),
            b: Q8x16::from_f64(b_exact),
        }
    }
}

/// Folds a whole layer boundary: per-channel BN + the three step sizes.
///
/// Channels whose folded constants exceed the Q8.16 range (a constant shift
/// larger than the whole int8 output range — channels that are pinned dead
/// or saturated) are **range-normalized**: `k` and `b` are scaled down
/// together, preserving the zero crossing and sign structure exactly while
/// compressing that channel's output slope. The paper chose Q8.16 to cover
/// "all possible ranges of the values for k and b" of its trained network;
/// range normalization is what a deployment flow does when a user-supplied
/// network violates that envelope.
///
/// # Errors
///
/// [`NnError::InvalidConfig`] if a BN coefficient is non-finite.
pub fn fold_boundary(
    bn: &BatchNorm,
    s_in: f64,
    s_w: f64,
    s_out: f64,
) -> Result<Vec<FoldedAffine>, NnError> {
    let coeffs = bn.affine_coefficients();
    let mut out = Vec::with_capacity(coeffs.len());
    // Leave one LSB of headroom below the absolute Q8.16 maximum.
    let limit = 127.9;
    for (c, (bn_k, bn_b)) in coeffs.into_iter().enumerate() {
        if !(bn_k.is_finite() && bn_b.is_finite()) {
            return Err(NnError::InvalidConfig {
                detail: format!("channel {c}: non-finite batch-norm coefficients"),
            });
        }
        let mut folded = FoldedAffine::fold(f64::from(bn_k), f64::from(bn_b), s_in, s_w, s_out);
        let mag = folded.k_exact.abs().max(folded.b_exact.abs());
        if mag >= limit {
            folded = folded.rescaled(limit / mag);
        }
        out.push(folded);
    }
    Ok(out)
}

/// Operation counts per activation element before and after the fold,
/// quantifying the paper's "reduces the overall number of operations" claim.
///
/// Before: dequant multiply, BN multiply, BN add, ReLU compare, requant
/// multiply, round, clip = 7 elementary ops.
/// After: one multiply, one add, round, clip = 4 — and, critically, a single
/// fused unit instead of four pipelined ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldOpCounts {
    /// Elementary ops per element without folding.
    pub unfused_ops: u32,
    /// Elementary ops per element with the Non-Conv fold.
    pub fused_ops: u32,
    /// Parameter words per channel without folding (γ, β, μ, σ², s_a, s_w).
    pub unfused_params: u32,
    /// Parameter words per channel with folding (k, b).
    pub fused_params: u32,
}

impl FoldOpCounts {
    /// The counts for the EDEA Non-Conv unit.
    #[must_use]
    pub fn edea() -> Self {
        Self {
            unfused_ops: 7,
            fused_ops: 4,
            unfused_params: 6,
            fused_params: 2,
        }
    }

    /// Multiplicative reduction in per-channel parameter storage.
    #[must_use]
    pub fn param_reduction(&self) -> f64 {
        f64::from(self.unfused_params) / f64::from(self.fused_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_bn() -> BatchNorm {
        BatchNorm {
            gamma: vec![1.2, -0.8, 0.5],
            beta: vec![0.1, 0.0, -0.2],
            mean: vec![0.05, -0.1, 0.2],
            var: vec![0.9, 1.5, 0.3],
            eps: 1e-5,
        }
    }

    #[test]
    fn fold_matches_manual_derivation() {
        let f = FoldedAffine::fold(2.0, -1.0, 0.01, 0.02, 0.05);
        assert!((f.k_exact - 2.0 * 0.01 * 0.02 / 0.05).abs() < 1e-12);
        assert!((f.b_exact - (-1.0 / 0.05)).abs() < 1e-12);
    }

    #[test]
    fn fixed_path_matches_full_reference_chain() {
        // Full chain: dequant -> BN -> ReLU -> requant, vs the folded fixed
        // path, across a sweep of accumulator values.
        let bn = example_bn();
        let (s_in, s_w, s_out) = (0.02, 0.004, 0.015);
        let folded = fold_boundary(&bn, s_in, s_w, s_out).unwrap();
        let coeffs = bn.affine_coefficients();
        for c in 0..3 {
            let (bk, bb) = coeffs[c];
            for acc in (-30_000i32..30_000).step_by(997) {
                // Reference chain:
                let x = f64::from(acc) * s_in * s_w; // dequantize
                let y = f64::from(bk) * x + f64::from(bb); // batch norm
                let y = y.max(0.0); // ReLU
                let q = (y / s_out).round().clamp(0.0, 127.0) as i8; // requantize
                let hw = folded[c].apply_fixed(acc, 0);
                // Q8.16 rounding may flip values exactly on a .5 boundary;
                // allow a 1-LSB difference, require exactness elsewhere.
                assert!(
                    (i32::from(hw) - i32::from(q)).abs() <= 1,
                    "c={c} acc={acc} hw={hw} ref={q}"
                );
            }
        }
    }

    #[test]
    fn exact_and_fixed_paths_agree_within_error_bound() {
        // Accumulator magnitudes are bounded by the DWC adder tree width in
        // practice (well under 2^15 for real layers).
        let folded = fold_boundary(&example_bn(), 0.01, 0.005, 0.02).unwrap();
        for f in &folded {
            assert!(
                f.q8_16_error_bound(30_000) < 0.5,
                "bound {}",
                f.q8_16_error_bound(30_000)
            );
            for acc in [-30_000, -1, 0, 1, 12_345, 29_999] {
                let d = (i32::from(f.apply_fixed(acc, 0)) - i32::from(f.apply_exact(acc, 0))).abs();
                assert!(d <= 1, "acc={acc}");
            }
        }
    }

    #[test]
    fn relu_fold_clips_low_at_zero() {
        let f = FoldedAffine::fold(1.0, 0.0, 1.0, 1.0, 1.0);
        assert_eq!(f.apply_fixed(-5, 0), 0);
        assert_eq!(f.apply_fixed(-5, -128), -5);
        assert_eq!(f.apply_fixed(300, 0), 127);
    }

    #[test]
    fn fold_boundary_range_normalizes_extreme_channels() {
        let bn = BatchNorm {
            gamma: vec![1.0],
            beta: vec![1000.0], // huge shift: way past the Q8.16 range
            mean: vec![0.0],
            var: vec![1.0],
            eps: 0.0,
        };
        let folded = fold_boundary(&bn, 0.01, 0.01, 0.001).unwrap();
        let f = &folded[0];
        // Constants now fit the hardware range…
        assert!(f.k_exact.abs() < 128.0 && f.b_exact.abs() < 128.0);
        // …and the zero crossing is preserved: x* = -b/k = -(1000/0.001)/(0.0001/0.001)
        let unscaled = FoldedAffine::fold(1.0, 1000.0, 0.01, 0.01, 0.001);
        let crossing_scaled = -f.b_exact / f.k_exact;
        let crossing_unscaled = -unscaled.b_exact / unscaled.k_exact;
        assert!((crossing_scaled - crossing_unscaled).abs() / crossing_unscaled.abs() < 1e-9);
    }

    #[test]
    fn rescaled_preserves_sign_structure() {
        let f = FoldedAffine::fold(2.0, -3.0, 1.0, 1.0, 1.0);
        let r = f.rescaled(0.25);
        assert!((r.k_exact - 0.5).abs() < 1e-12);
        assert!((r.b_exact + 0.75).abs() < 1e-12);
        for acc in -10..10 {
            let a = f.k_exact * f64::from(acc) + f.b_exact;
            let b = r.k_exact * f64::from(acc) + r.b_exact;
            assert_eq!(a > 0.0, b > 0.0, "acc={acc}");
        }
    }

    #[test]
    fn q8_16_loses_no_precision_for_realistic_constants() {
        // Realistic folded constants live in roughly [1e-3, 10] and real DWC
        // accumulators stay within ~2^15 (19-bit worst case, but values that
        // large saturate the int8 clip anyway). The Q8.16 error bound must
        // stay below half an LSB of the int8 output in that domain.
        for &k in &[0.001f64, 0.01, 0.1, 1.0, 5.0] {
            let f = FoldedAffine::fold(k, 0.3, 0.02, 0.01, 0.02);
            assert!(
                f.q8_16_error_bound(1 << 15) < 0.5,
                "k={k}: {}",
                f.q8_16_error_bound(1 << 15)
            );
        }
    }

    #[test]
    fn op_counts_reduce() {
        let c = FoldOpCounts::edea();
        assert!(c.fused_ops < c.unfused_ops);
        assert_eq!(c.param_reduction(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fold_rejects_zero_scale() {
        let _ = FoldedAffine::fold(1.0, 0.0, 0.0, 1.0, 1.0);
    }
}
