//! Golden int8 executor for the quantized DSC stack.
//!
//! This is the **reference semantics** of the accelerator: plain loop-nest
//! int8 convolutions plus the Q8.16 Non-Conv transform, with no tiling, no
//! pipelining, no buffers. The EDEA simulator in `edea-core` must reproduce
//! these outputs *bit-exactly* — that equivalence (checked in the
//! integration tests) is what makes the performance model trustworthy.
//!
//! The executor also records the activity statistics (zero fractions,
//! accumulator ranges) that drive the power model of paper Fig. 11.

use edea_tensor::conv::{depthwise_conv2d_i8, pointwise_conv2d_i8};
use edea_tensor::{Batch, Tensor3};

use crate::quantize::{QuantizedDscLayer, QuantizedDscNetwork};
use crate::workload::StageOp;
use crate::NnError;

/// Activity statistics of one executed DSC layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerActivity {
    /// Zero fraction of the (int8) layer input.
    pub input_zero: f64,
    /// Zero fraction of the quantized DWC activation (PWC input) — the
    /// "DWC zero percentage" of paper Fig. 11.
    pub dwc_out_zero: f64,
    /// Zero fraction of the quantized PWC activation — the "PWC zero
    /// percentage" of Fig. 11.
    pub pwc_out_zero: f64,
    /// Observed DWC accumulator range (min, max).
    pub dwc_acc_range: (i32, i32),
    /// Observed PWC accumulator range (min, max).
    pub pwc_acc_range: (i32, i32),
}

/// Result of executing one DSC layer.
#[derive(Debug, Clone)]
pub struct LayerExecution {
    /// Quantized intermediate map (DWC → Non-Conv output, the PWC input).
    pub pwc_input: Tensor3<i8>,
    /// Quantized layer output (PWC → Non-Conv output).
    pub output: Tensor3<i8>,
    /// Activity statistics.
    pub activity: LayerActivity,
}

fn zero_fraction(t: &Tensor3<i8>) -> f64 {
    t.as_slice().iter().filter(|&&v| v == 0).count() as f64 / t.len() as f64
}

fn acc_range(t: &Tensor3<i32>) -> (i32, i32) {
    let mut lo = i32::MAX;
    let mut hi = i32::MIN;
    for &v in t.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Executes one quantized DSC layer on an int8 input.
///
/// # Panics
///
/// Panics if `input` does not match the layer's input shape; use
/// [`try_run_layer`] for a fallible variant.
#[must_use]
pub fn run_layer(layer: &QuantizedDscLayer, input: &Tensor3<i8>) -> LayerExecution {
    try_run_layer(layer, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Executes one quantized DSC layer on an int8 input, rejecting shape
/// mismatches instead of panicking — the entry point the serving backends
/// use.
///
/// # Errors
///
/// [`NnError::ShapeMismatch`] if `input` does not match the layer's input
/// shape.
pub fn try_run_layer(
    layer: &QuantizedDscLayer,
    input: &Tensor3<i8>,
) -> Result<LayerExecution, NnError> {
    try_run_layer_with(layer, input, None)
}

/// Executes one quantized stage with an optional residual source — the
/// int8 block input preserved at a `residual_save` stage. The residual is
/// requantized by the layer's Q8.16
/// residual scale and summed onto the Non-Conv #2 bus *before* the round
/// stage (see `FoldedAffine::apply_fixed_residual`).
///
/// # Errors
///
/// * [`NnError::ShapeMismatch`] if `input` (or the residual) does not match
///   the layer's shapes.
/// * [`NnError::InvalidConfig`] if the residual presence disagrees with the
///   layer shape's `residual_add` marker, or the layer lacks a residual
///   scale.
pub fn try_run_layer_with(
    layer: &QuantizedDscLayer,
    input: &Tensor3<i8>,
    residual: Option<&Tensor3<i8>>,
) -> Result<LayerExecution, NnError> {
    let s = layer.shape();
    if input.shape() != (s.d_in, s.in_spatial, s.in_spatial) {
        return Err(NnError::ShapeMismatch {
            layer: s.index,
            detail: format!(
                "input shape mismatch: expected ({}, {}, {}), got {:?}",
                s.d_in,
                s.in_spatial,
                s.in_spatial,
                input.shape()
            ),
        });
    }
    if s.residual_add != residual.is_some() {
        return Err(NnError::InvalidConfig {
            detail: format!(
                "layer {}: residual_add={} but residual {}",
                s.index,
                s.residual_add,
                if residual.is_some() {
                    "provided"
                } else {
                    "missing"
                }
            ),
        });
    }
    // DWC + Non-Conv #1 — skipped by a lone PWC, whose engine input is the
    // ifmap itself.
    let (dwc_acc, pwc_input) = match s.op {
        StageOp::Dsc => {
            let acc = depthwise_conv2d_i8(input, layer.dw_weights().values(), s.stride, s.pad());
            let (d, oh, ow) = acc.shape();
            let mid = Tensor3::from_fn(d, oh, ow, |c, h, w| {
                layer.nonconv1()[c].apply_fixed(acc[(c, h, w)], 0)
            });
            (Some(acc), mid)
        }
        StageOp::PwcOnly => (None, input.clone()),
    };
    let (_, oh, ow) = pwc_input.shape();
    // PWC: int8 conv to i32 accumulators.
    let pwc_acc = pointwise_conv2d_i8(&pwc_input, layer.pw_weights().values());
    // Non-Conv #2 (same hardware, used at the layer output boundary): low
    // clip 0 with a folded ReLU, −128 for a linear (project) stage.
    let (k, _, _) = pwc_acc.shape();
    let lo = layer.out_lo();
    let output = match residual {
        Some(res) => {
            if res.shape() != (k, oh, ow) {
                return Err(NnError::ShapeMismatch {
                    layer: s.index,
                    detail: format!(
                        "residual shape mismatch: expected ({k}, {oh}, {ow}), got {:?}",
                        res.shape()
                    ),
                });
            }
            let r = layer
                .residual_scale()
                .ok_or_else(|| NnError::InvalidConfig {
                    detail: format!(
                        "layer {}: residual-add layer without a residual scale",
                        s.index
                    ),
                })?;
            Tensor3::from_fn(k, oh, ow, |c, h, w| {
                layer.nonconv2()[c].apply_fixed_residual(pwc_acc[(c, h, w)], res[(c, h, w)], r, lo)
            })
        }
        None => Tensor3::from_fn(k, oh, ow, |c, h, w| {
            layer.nonconv2()[c].apply_fixed(pwc_acc[(c, h, w)], lo)
        }),
    };
    let activity = LayerActivity {
        input_zero: zero_fraction(input),
        dwc_out_zero: zero_fraction(&pwc_input),
        pwc_out_zero: zero_fraction(&output),
        dwc_acc_range: dwc_acc.as_ref().map_or((0, 0), acc_range),
        pwc_acc_range: acc_range(&pwc_acc),
    };
    Ok(LayerExecution {
        pwc_input,
        output,
        activity,
    })
}

/// Result of executing the full quantized DSC stack.
#[derive(Debug, Clone)]
pub struct NetworkExecution {
    /// Per-layer activity statistics.
    pub activities: Vec<LayerActivity>,
    /// Final int8 feature map (after layer 12's Non-Conv).
    pub output: Tensor3<i8>,
}

/// Executes all DSC layers on a quantized layer-0 input.
///
/// # Panics
///
/// Panics if `input` does not match layer 0's input shape; use
/// [`try_run_network`] for a fallible variant.
#[must_use]
pub fn run_network(net: &QuantizedDscNetwork, input: &Tensor3<i8>) -> NetworkExecution {
    try_run_network(net, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Executes all DSC layers on a quantized layer-0 input, rejecting shape
/// mismatches instead of panicking.
///
/// # Errors
///
/// [`NnError::ShapeMismatch`] from the first layer whose input does not
/// match (for a well-formed network only layer 0 can reject).
pub fn try_run_network(
    net: &QuantizedDscNetwork,
    input: &Tensor3<i8>,
) -> Result<NetworkExecution, NnError> {
    let mut x = input.clone();
    let mut activities = Vec::with_capacity(net.layers().len());
    let mut saved: Option<Tensor3<i8>> = None;
    for layer in net.layers() {
        let s = layer.shape();
        if s.residual_save {
            saved = Some(x.clone());
        }
        let residual = if s.residual_add {
            Some(saved.take().ok_or_else(|| NnError::InvalidConfig {
                detail: format!("layer {}: residual add without a preceding save", s.index),
            })?)
        } else {
            None
        };
        let exec = try_run_layer_with(layer, &x, residual.as_ref())?;
        activities.push(exec.activity);
        x = exec.output;
    }
    Ok(NetworkExecution {
        activities,
        output: x,
    })
}

/// Result of executing the quantized DSC stack over a whole batch.
#[derive(Debug, Clone)]
pub struct BatchExecution {
    /// Per-image executions, in batch order.
    pub per_image: Vec<NetworkExecution>,
}

impl BatchExecution {
    /// Batch size `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_image.len()
    }

    /// Whether the batch was empty (never true for a [`Batch`]-driven run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_image.is_empty()
    }

    /// The final feature maps as a batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch was empty.
    #[must_use]
    pub fn outputs(&self) -> Batch<i8> {
        Batch::new(self.per_image.iter().map(|e| e.output.clone()).collect())
            .expect("uniform outputs from a uniform batch")
    }

    /// Mean activity over the batch for layer `layer`: the per-image zero
    /// fractions averaged, the accumulator ranges widened to cover every
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or `layer` is out of range.
    #[must_use]
    pub fn mean_activity(&self, layer: usize) -> LayerActivity {
        assert!(!self.per_image.is_empty(), "empty batch");
        let n = self.per_image.len() as f64;
        let mut acc = self.per_image[0].activities[layer];
        for e in &self.per_image[1..] {
            let a = e.activities[layer];
            acc.input_zero += a.input_zero;
            acc.dwc_out_zero += a.dwc_out_zero;
            acc.pwc_out_zero += a.pwc_out_zero;
            acc.dwc_acc_range.0 = acc.dwc_acc_range.0.min(a.dwc_acc_range.0);
            acc.dwc_acc_range.1 = acc.dwc_acc_range.1.max(a.dwc_acc_range.1);
            acc.pwc_acc_range.0 = acc.pwc_acc_range.0.min(a.pwc_acc_range.0);
            acc.pwc_acc_range.1 = acc.pwc_acc_range.1.max(a.pwc_acc_range.1);
        }
        acc.input_zero /= n;
        acc.dwc_out_zero /= n;
        acc.pwc_out_zero /= n;
        acc
    }
}

/// Executes all DSC layers over a batch of quantized layer-0 inputs.
///
/// The reference semantics of batched inference: each image runs through
/// [`run_network`] independently, so batching can never change a single
/// output bit. The accelerator's batched schedule (`edea-core`) is verified
/// against this function; what batching changes there is only *when weight
/// tiles are fetched*, never what is computed.
#[must_use]
pub fn run_batch(net: &QuantizedDscNetwork, inputs: &Batch<i8>) -> BatchExecution {
    try_run_batch(net, inputs).unwrap_or_else(|e| panic!("{e}"))
}

/// Executes all DSC layers over a batch of quantized layer-0 inputs,
/// rejecting shape mismatches instead of panicking — the entry point the
/// golden serving backend uses.
///
/// # Errors
///
/// [`NnError::ShapeMismatch`] if the batch's image shape does not match
/// layer 0's input shape.
pub fn try_run_batch(
    net: &QuantizedDscNetwork,
    inputs: &Batch<i8>,
) -> Result<BatchExecution, NnError> {
    let per_image = inputs
        .iter()
        .map(|img| try_run_network(net, img))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BatchExecution { per_image })
}

/// Classification-level agreement between the float model and the int8
/// network: the fraction of `images` whose pooled-feature argmax matches
/// between the two paths. With the trained checkpoint unavailable, this is
/// the reproduction's accuracy proxy for quantization quality (a lossless
/// quantization has agreement 1.0 by construction).
///
/// # Panics
///
/// Panics if `images` is empty.
#[must_use]
pub fn classification_agreement(
    model: &crate::mobilenet::MobileNetV1,
    net: &QuantizedDscNetwork,
    images: &[Tensor3<f32>],
) -> f64 {
    assert!(!images.is_empty(), "agreement over an empty batch");
    let argmax = |v: &[f32]| -> usize {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    let mut agree = 0usize;
    for img in images {
        let trace = model.forward(img);
        let float_class = argmax(&trace.pooled);
        let input = net.quantize_input(&trace.stem_act);
        let exec = run_network(net, &input);
        // Pool the int8 features (dequantized by a constant scale, which
        // does not change the argmax).
        let (c, h, w) = exec.output.shape();
        let mut pooled = vec![0.0f32; c];
        for (ci, p) in pooled.iter_mut().enumerate() {
            for hi in 0..h {
                for wi in 0..w {
                    *p += f32::from(exec.output[(ci, hi, wi)]);
                }
            }
        }
        if argmax(&pooled) == float_class {
            agree += 1;
        }
    }
    agree as f64 / images.len() as f64
}

/// Cosine similarity between two equal-length value collections — the
/// fidelity metric comparing quantized against float execution.
///
/// # Panics
///
/// Panics if lengths differ or either vector is all-zero.
#[must_use]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine similarity needs equal lengths");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    assert!(na > 0.0 && nb > 0.0, "cosine similarity of a zero vector");
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobilenet::MobileNetV1;
    use crate::quantize::{QuantStrategy, QuantizedDscNetwork};
    use crate::sparsity::SparsityProfile;
    use edea_fixed::sat::fits_in_bits;
    use edea_tensor::rng;

    fn setup() -> (MobileNetV1, QuantizedDscNetwork, Vec<Tensor3<f32>>) {
        let mut model = MobileNetV1::synthetic(0.25, 21);
        let calib = rng::synthetic_batch(4, 3, 32, 32, 22);
        let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
            &mut model,
            &calib,
            &SparsityProfile::paper(),
            QuantStrategy::paper(),
        )
        .unwrap();
        (model, qnet, calib)
    }

    #[test]
    fn network_executes_and_produces_nonnegative_codes() {
        let (model, qnet, calib) = setup();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        let exec = run_network(&qnet, &input);
        assert_eq!(exec.activities.len(), 13);
        assert!(
            exec.output.as_slice().iter().all(|&v| v >= 0),
            "post-ReLU codes"
        );
        let s12 = qnet.layers()[12].shape();
        assert_eq!(exec.output.shape(), (s12.k_out, 2, 2));
    }

    #[test]
    fn execution_is_deterministic() {
        let (model, qnet, calib) = setup();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        let a = run_network(&qnet, &input);
        let b = run_network(&qnet, &input);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn executor_reproduces_calibration_statistics() {
        // Running the executor over the calibration images must reproduce
        // the shaped zero-percentage profile (this is the exact data path
        // calibration used).
        let (model, qnet, calib) = setup();
        let profile = SparsityProfile::paper();
        let mut dwc_zeros = [0.0f64; 13];
        for img in &calib {
            let input = qnet.quantize_input(&model.forward_stem(img));
            let exec = run_network(&qnet, &input);
            for (i, a) in exec.activities.iter().enumerate() {
                dwc_zeros[i] += a.dwc_out_zero / calib.len() as f64;
            }
        }
        for (i, (&got, &target)) in dwc_zeros.iter().zip(&profile.dwc_zero).enumerate() {
            assert!(got >= target - 0.03, "layer {i}: {got} vs target {target}");
            assert!(
                dwc_zeros[i] <= profile.dwc_zero[i] + 0.15,
                "layer {i} oversparse: {}",
                dwc_zeros[i]
            );
        }
        assert!(dwc_zeros[12] > 0.95, "layer-12 anchor: {}", dwc_zeros[12]);
    }

    #[test]
    fn accumulators_fit_hardware_widths() {
        // DWC accumulators must fit the 19-bit adder-tree bound; PWC
        // accumulators the 26-bit full-depth bound (both well inside i32).
        let (model, qnet, calib) = setup();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        let exec = run_network(&qnet, &input);
        for act in &exec.activities {
            for v in [act.dwc_acc_range.0, act.dwc_acc_range.1] {
                assert!(fits_in_bits(i64::from(v), 19));
            }
            for v in [act.pwc_acc_range.0, act.pwc_acc_range.1] {
                assert!(fits_in_bits(i64::from(v), 26));
            }
        }
    }

    #[test]
    fn layer_zero_tracks_float_reference() {
        // Single-layer fidelity: feeding the float stem activation through
        // layer 0 must track the float DSC block closely. (Whole-network
        // trajectory fidelity is not a meaningful criterion for a synthetic
        // random network — deep random nets amplify perturbations — and the
        // accelerator's correctness criterion is bit-exactness against THIS
        // executor, checked in the integration tests.)
        let (model, qnet, _) = setup();
        let img = rng::synthetic_image(3, 32, 32, 31);
        let stem = model.forward_stem(&img);
        let input = qnet.quantize_input(&stem);
        let exec = run_layer(&qnet.layers()[0], &input);
        let deq: Vec<f32> = exec
            .pwc_input
            .as_slice()
            .iter()
            .map(|&v| f32::from(v) * qnet.layers()[0].s_mid())
            .collect();
        let float_block = model.forward_block(0, &stem);
        let sim = cosine_similarity(&deq, float_block.dwc_act.as_slice());
        assert!(sim > 0.97, "layer-0 cosine {sim}");
        let deq_out: Vec<f32> = exec
            .output
            .as_slice()
            .iter()
            .map(|&v| f32::from(v) * qnet.layers()[0].s_out())
            .collect();
        let sim_out = cosine_similarity(&deq_out, float_block.pwc_act.as_slice());
        assert!(sim_out > 0.95, "layer-0 output cosine {sim_out}");
    }

    #[test]
    fn classification_agreement_is_well_defined_and_deterministic() {
        // On the *synthetic random* network, 13 layers of trajectory
        // divergence make deep-feature argmax agreement near chance (see
        // ARCHITECTURE.md — trained networks are well-conditioned, random
        // ones are chaotic); the metric itself must be in range and
        // reproducible.
        let (model, qnet, calib) = setup();
        let a = classification_agreement(&model, &qnet, &calib);
        assert!((0.0..=1.0).contains(&a), "{a}");
        assert_eq!(a, classification_agreement(&model, &qnet, &calib));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn classification_agreement_rejects_empty() {
        let (model, qnet, _) = setup();
        let _ = classification_agreement(&model, &qnet, &[]);
    }

    #[test]
    fn batched_execution_is_per_image_identical() {
        // The batched reference path must be a pure per-image map: running
        // N seeded CIFAR-10 images as a batch gives bit-identical outputs
        // to running each image alone.
        let (model, qnet, calib) = setup();
        let stems = Batch::new(calib.iter().map(|img| model.forward_stem(img)).collect()).unwrap();
        let inputs = qnet.quantize_input_batch(&stems);
        let batch = run_batch(&qnet, &inputs);
        assert_eq!(batch.len(), calib.len());
        assert!(!batch.is_empty());
        for (i, img) in calib.iter().enumerate() {
            let single = run_network(&qnet, &qnet.quantize_input(&model.forward_stem(img)));
            assert_eq!(batch.per_image[i].output, single.output, "image {i}");
            assert_eq!(batch.outputs()[i], single.output, "image {i}");
        }
    }

    #[test]
    fn mean_activity_averages_zero_fractions() {
        let (model, qnet, calib) = setup();
        let stems = Batch::new(calib.iter().map(|img| model.forward_stem(img)).collect()).unwrap();
        let batch = run_batch(&qnet, &qnet.quantize_input_batch(&stems));
        let mean = batch.mean_activity(0);
        let by_hand: f64 = batch
            .per_image
            .iter()
            .map(|e| e.activities[0].dwc_out_zero)
            .sum::<f64>()
            / batch.len() as f64;
        assert!((mean.dwc_out_zero - by_hand).abs() < 1e-12);
        // The widened range covers every per-image range.
        for e in &batch.per_image {
            assert!(mean.dwc_acc_range.0 <= e.activities[0].dwc_acc_range.0);
            assert!(mean.pwc_acc_range.1 >= e.activities[0].pwc_acc_range.1);
        }
    }

    #[test]
    fn cosine_similarity_reference_values() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn cosine_rejects_length_mismatch() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn run_layer_rejects_wrong_shape() {
        let (_, qnet, _) = setup();
        let bad = Tensor3::<i8>::zeros(3, 32, 32);
        let _ = run_layer(&qnet.layers()[0], &bad);
    }

    #[test]
    fn try_variants_error_instead_of_panicking() {
        let (_, qnet, _) = setup();
        let bad = Tensor3::<i8>::zeros(3, 32, 32);
        assert!(matches!(
            try_run_layer(&qnet.layers()[0], &bad),
            Err(NnError::ShapeMismatch { layer: 0, .. })
        ));
        assert!(matches!(
            try_run_network(&qnet, &bad),
            Err(NnError::ShapeMismatch { layer: 0, .. })
        ));
        let batch = Batch::new(vec![bad]).unwrap();
        assert!(try_run_batch(&qnet, &batch).is_err());
    }

    #[test]
    fn try_variants_match_panicking_paths_on_good_input() {
        let (model, qnet, calib) = setup();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        let a = try_run_network(&qnet, &input).unwrap();
        let b = run_network(&qnet, &input);
        assert_eq!(a.output, b.output);
    }

    fn setup_v2() -> (
        crate::mobilenet::MobileNetV2,
        QuantizedDscNetwork,
        Vec<Tensor3<f32>>,
    ) {
        let model = crate::mobilenet::MobileNetV2::synthetic(0.25, 41);
        let calib = rng::synthetic_batch(3, 3, 32, 32, 42);
        let qnet =
            QuantizedDscNetwork::calibrate_v2(&model, &calib, QuantStrategy::paper()).unwrap();
        (model, qnet, calib)
    }

    #[test]
    fn v2_network_executes_through_the_generalized_path() {
        let (model, qnet, calib) = setup_v2();
        let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
        let exec = run_network(&qnet, &input);
        assert_eq!(exec.activities.len(), 17);
        let last = qnet.layers().last().unwrap().shape();
        assert_eq!(exec.output.shape(), (last.k_out, 4, 4));
        // Project stages are linear: the final map carries both signs.
        assert!(exec.output.as_slice().iter().any(|&v| v < 0));
        // Determinism.
        assert_eq!(run_network(&qnet, &input).output, exec.output);
    }

    #[test]
    fn v2_residual_layers_reject_missing_or_spurious_residuals() {
        let (_, qnet, _) = setup_v2();
        let add_layer = qnet
            .layers()
            .iter()
            .find(|l| l.shape().residual_add)
            .unwrap();
        let s = add_layer.shape();
        let input = Tensor3::<i8>::zeros(s.d_in, s.in_spatial, s.in_spatial);
        assert!(matches!(
            try_run_layer_with(add_layer, &input, None),
            Err(NnError::InvalidConfig { .. })
        ));
        let plain = &qnet.layers()[0];
        let s0 = plain.shape();
        let in0 = Tensor3::<i8>::zeros(s0.d_in, s0.in_spatial, s0.in_spatial);
        let res = Tensor3::<i8>::zeros(s0.k_out, s0.out_spatial(), s0.out_spatial());
        assert!(matches!(
            try_run_layer_with(plain, &in0, Some(&res)),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn v2_batched_execution_is_per_image_identical() {
        let (model, qnet, calib) = setup_v2();
        let stems = Batch::new(calib.iter().map(|img| model.forward_stem(img)).collect()).unwrap();
        let batch = run_batch(&qnet, &qnet.quantize_input_batch(&stems));
        for (i, img) in calib.iter().enumerate() {
            let single = run_network(&qnet, &qnet.quantize_input(&model.forward_stem(img)));
            assert_eq!(batch.per_image[i].output, single.output, "image {i}");
        }
    }
}
