//! Float MobileNetV1 model with deterministic synthetic parameters.
//!
//! The paper trains MobileNetV1 on CIFAR-10 in PyTorch. The trained
//! checkpoint is not available, so [`MobileNetV1::synthetic`] builds the same
//! graph with Kaiming-initialized weights and identity batch norm; the
//! trained network's *activation statistics* — the only property of the
//! checkpoint the hardware results depend on — are then imposed by
//! [`crate::sparsity::shape_network_sparsity`] (see ARCHITECTURE.md's
//! substitution notes).

use edea_tensor::conv::{conv2d_f32, depthwise_conv2d_f32, pointwise_conv2d_f32};
use edea_tensor::ops::{global_avg_pool, linear, relu, BatchNorm};
use edea_tensor::{rng, Tensor3, Tensor4};

use crate::workload::{
    mobilenet_v1_cifar10, mobilenet_v2_cifar10, scale_width, LayerShape, StageOp, StemShape,
};
use crate::NnError;

/// Number of CIFAR-10 classes.
pub const NUM_CLASSES: usize = 10;

/// Parameters of one depthwise-separable block:
/// `DWC(3×3) → BN → ReLU → PWC(1×1) → BN → ReLU`.
#[derive(Debug, Clone)]
pub struct DscBlockParams {
    /// Layer shape (spatial size, channels, stride).
    pub shape: LayerShape,
    /// Depthwise weights, `D×1×3×3`.
    pub dw_weights: Tensor4<f32>,
    /// Batch norm between DWC and PWC (`D` channels).
    pub bn1: BatchNorm,
    /// Pointwise weights, `K×D×1×1`.
    pub pw_weights: Tensor4<f32>,
    /// Batch norm after the PWC (`K` channels).
    pub bn2: BatchNorm,
}

impl DscBlockParams {
    /// Validates weight/BN shapes against `self.shape`.
    ///
    /// # Errors
    ///
    /// [`NnError::ShapeMismatch`] naming the offending tensor.
    pub fn validate(&self) -> Result<(), NnError> {
        let s = &self.shape;
        let err = |detail: String| NnError::ShapeMismatch {
            layer: s.index,
            detail,
        };
        if self.dw_weights.shape() != (s.d_in, 1, s.kernel, s.kernel) {
            return Err(err(format!(
                "dw weights {:?}, expected ({}, 1, {}, {})",
                self.dw_weights.shape(),
                s.d_in,
                s.kernel,
                s.kernel
            )));
        }
        if self.pw_weights.shape() != (s.k_out, s.d_in, 1, 1) {
            return Err(err(format!(
                "pw weights {:?}, expected ({}, {}, 1, 1)",
                self.pw_weights.shape(),
                s.k_out,
                s.d_in
            )));
        }
        self.bn1.validate(s.d_in).map_err(|e| err(e.to_string()))?;
        self.bn2.validate(s.k_out).map_err(|e| err(e.to_string()))?;
        Ok(())
    }
}

/// Intermediate activations of one DSC block during a float forward pass.
#[derive(Debug, Clone)]
pub struct DscTrace {
    /// Raw DWC convolution output (before BN1).
    pub dwc_raw: Tensor3<f32>,
    /// DWC activation after BN1 + ReLU — the PWC input.
    pub dwc_act: Tensor3<f32>,
    /// Raw PWC convolution output (before BN2).
    pub pwc_raw: Tensor3<f32>,
    /// PWC activation after BN2 + ReLU — the next block's input.
    pub pwc_act: Tensor3<f32>,
}

/// Complete float forward-pass record.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Stem output (post BN + ReLU) — DSC layer 0's input.
    pub stem_act: Tensor3<f32>,
    /// Per-DSC-block intermediates.
    pub blocks: Vec<DscTrace>,
    /// Globally-pooled features.
    pub pooled: Vec<f32>,
    /// Classifier logits.
    pub logits: Vec<f32>,
}

/// A float MobileNetV1 for CIFAR-10: stem conv, 13 DSC blocks, global
/// average pooling, linear classifier.
///
/// # Example
///
/// ```
/// use edea_nn::mobilenet::MobileNetV1;
/// use edea_tensor::rng;
///
/// let model = MobileNetV1::synthetic(0.25, 1);
/// let image = rng::synthetic_image(3, 32, 32, 2);
/// let trace = model.forward(&image);
/// assert_eq!(trace.logits.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct MobileNetV1 {
    stem: StemShape,
    stem_weights: Tensor4<f32>,
    stem_bn: BatchNorm,
    blocks: Vec<DscBlockParams>,
    fc_weights: Vec<f32>,
    fc_bias: Vec<f32>,
}

impl MobileNetV1 {
    /// Builds a model with deterministic Kaiming-initialized weights and
    /// identity batch norm, at the given width multiplier (1.0 = the paper's
    /// network; smaller values shrink channel counts for fast tests).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    #[must_use]
    pub fn synthetic(width: f64, seed: u64) -> Self {
        let shapes = scale_width(&mobilenet_v1_cifar10(), width, 8)
            .expect("width multiplier must be positive and finite");
        let stem = StemShape {
            c_out: shapes[0].d_in,
            ..StemShape::cifar10()
        };
        let stem_weights = rng::kaiming_weights(stem.c_out, stem.c_in, 3, 3, seed ^ 0xa11ce);
        let stem_bn = BatchNorm::identity(stem.c_out);
        let blocks = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| DscBlockParams {
                shape,
                dw_weights: rng::kaiming_weights(
                    shape.d_in,
                    1,
                    shape.kernel,
                    shape.kernel,
                    seed.wrapping_add(1000 + i as u64),
                ),
                bn1: BatchNorm::identity(shape.d_in),
                pw_weights: rng::kaiming_weights(
                    shape.k_out,
                    shape.d_in,
                    1,
                    1,
                    seed.wrapping_add(2000 + i as u64),
                ),
                bn2: BatchNorm::identity(shape.k_out),
            })
            .collect::<Vec<_>>();
        let c_last = blocks.last().expect("13 blocks").shape.k_out;
        let fc = rng::kaiming_weights(NUM_CLASSES, c_last, 1, 1, seed ^ 0xfc);
        let fc_weights = fc.as_slice().to_vec();
        let fc_bias = vec![0.0; NUM_CLASSES];
        Self {
            stem,
            stem_weights,
            stem_bn,
            blocks,
            fc_weights,
            fc_bias,
        }
    }

    /// The stem shape.
    #[must_use]
    pub fn stem(&self) -> StemShape {
        self.stem
    }

    /// The DSC blocks (13 for MobileNetV1).
    #[must_use]
    pub fn blocks(&self) -> &[DscBlockParams] {
        &self.blocks
    }

    /// Mutable access to the DSC blocks — used by the sparsity shaper.
    pub fn blocks_mut(&mut self) -> &mut [DscBlockParams] {
        &mut self.blocks
    }

    /// The layer shapes of all DSC blocks.
    #[must_use]
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        self.blocks.iter().map(|b| b.shape).collect()
    }

    /// Runs the stem only: `conv → BN → ReLU`.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the stem input shape.
    #[must_use]
    pub fn forward_stem(&self, image: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(
            image.shape(),
            (self.stem.c_in, self.stem.in_spatial, self.stem.in_spatial),
            "stem input shape mismatch"
        );
        let conv = conv2d_f32(image, &self.stem_weights, self.stem.stride, 1);
        relu(&self.stem_bn.apply(&conv))
    }

    /// Runs one DSC block, returning all intermediates.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the block's input shape.
    #[must_use]
    pub fn forward_block(&self, index: usize, input: &Tensor3<f32>) -> DscTrace {
        let block = &self.blocks[index];
        let s = &block.shape;
        assert_eq!(
            input.shape(),
            (s.d_in, s.in_spatial, s.in_spatial),
            "block {index} input shape mismatch"
        );
        let dwc_raw = depthwise_conv2d_f32(input, &block.dw_weights, s.stride, s.pad());
        let dwc_act = relu(&block.bn1.apply(&dwc_raw));
        let pwc_raw = pointwise_conv2d_f32(&dwc_act, &block.pw_weights);
        let pwc_act = relu(&block.bn2.apply(&pwc_raw));
        DscTrace {
            dwc_raw,
            dwc_act,
            pwc_raw,
            pwc_act,
        }
    }

    /// Full forward pass with all intermediates recorded.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the stem input shape.
    #[must_use]
    pub fn forward(&self, image: &Tensor3<f32>) -> ForwardTrace {
        let stem_act = self.forward_stem(image);
        let mut blocks = Vec::with_capacity(self.blocks.len());
        let mut x = stem_act.clone();
        for i in 0..self.blocks.len() {
            let trace = self.forward_block(i, &x);
            x = trace.pwc_act.clone();
            blocks.push(trace);
        }
        let pooled = global_avg_pool(&x);
        let logits = linear(&pooled, &self.fc_weights, &self.fc_bias, NUM_CLASSES);
        ForwardTrace {
            stem_act,
            blocks,
            pooled,
            logits,
        }
    }

    /// Validates every block's parameter shapes.
    ///
    /// # Errors
    ///
    /// The first [`NnError::ShapeMismatch`] found.
    pub fn validate(&self) -> Result<(), NnError> {
        for b in &self.blocks {
            b.validate()?;
        }
        Ok(())
    }
}

/// Parameters of one flattened MobileNetV2 stage (see
/// [`mobilenet_v2_cifar10`]): a [`StageOp::PwcOnly`] *expand* stage carries
/// only the pointwise weights plus BN (with ReLU); a [`StageOp::Dsc`] stage
/// carries the depthwise kernel with its BN (ReLU) and the linear *project*
/// pointwise with its BN — the inverted bottleneck keeps the block output
/// linear so the residual add happens in the full signed range.
#[derive(Debug, Clone)]
pub struct V2StageParams {
    /// Generalized stage shape (op, stride, residual markers).
    pub shape: LayerShape,
    /// Depthwise weights `D×1×3×3` — `None` for an expand stage.
    pub dw_weights: Option<Tensor4<f32>>,
    /// Batch norm between DWC and PWC — `None` for an expand stage.
    pub bn1: Option<BatchNorm>,
    /// Pointwise weights `K×D×1×1`.
    pub pw_weights: Tensor4<f32>,
    /// Batch norm after the PWC.
    pub bn2: BatchNorm,
}

impl V2StageParams {
    /// Whether the PWC output passes a ReLU: expand stages do, project
    /// stages are linear.
    #[must_use]
    pub fn relu_out(&self) -> bool {
        self.shape.op == StageOp::PwcOnly
    }

    /// Validates weight/BN shapes against `self.shape`.
    ///
    /// # Errors
    ///
    /// [`NnError::ShapeMismatch`] naming the offending tensor.
    pub fn validate(&self) -> Result<(), NnError> {
        let s = &self.shape;
        let err = |detail: String| NnError::ShapeMismatch {
            layer: s.index,
            detail,
        };
        match s.op {
            StageOp::Dsc => {
                let dw = self
                    .dw_weights
                    .as_ref()
                    .ok_or_else(|| err("DSC stage without depthwise weights".into()))?;
                if dw.shape() != (s.d_in, 1, s.kernel, s.kernel) {
                    return Err(err(format!(
                        "dw weights {:?}, expected ({}, 1, {}, {})",
                        dw.shape(),
                        s.d_in,
                        s.kernel,
                        s.kernel
                    )));
                }
                let bn1 = self
                    .bn1
                    .as_ref()
                    .ok_or_else(|| err("DSC stage without bn1".into()))?;
                bn1.validate(s.d_in).map_err(|e| err(e.to_string()))?;
            }
            StageOp::PwcOnly => {
                if self.dw_weights.is_some() || self.bn1.is_some() {
                    return Err(err("expand stage carries depthwise parameters".into()));
                }
            }
        }
        if self.pw_weights.shape() != (s.k_out, s.d_in, 1, 1) {
            return Err(err(format!(
                "pw weights {:?}, expected ({}, {}, 1, 1)",
                self.pw_weights.shape(),
                s.k_out,
                s.d_in
            )));
        }
        self.bn2.validate(s.k_out).map_err(|e| err(e.to_string()))?;
        Ok(())
    }
}

/// Intermediate activations of one v2 stage during a float forward pass.
#[derive(Debug, Clone)]
pub struct V2StageTrace {
    /// PWC input: the DWC activation for a DSC stage, the stage input for
    /// an expand stage.
    pub mid_act: Tensor3<f32>,
    /// Raw PWC convolution output (before BN2).
    pub pwc_raw: Tensor3<f32>,
    /// Stage output: BN2 (+ ReLU on expand stages) (+ residual on
    /// [`residual_add`](LayerShape::residual_add) stages).
    pub act: Tensor3<f32>,
}

/// Complete MobileNetV2 float forward-pass record.
#[derive(Debug, Clone)]
pub struct V2ForwardTrace {
    /// Stem output (post BN + ReLU) — stage 0's input.
    pub stem_act: Tensor3<f32>,
    /// Per-stage intermediates.
    pub stages: Vec<V2StageTrace>,
    /// Globally-pooled features.
    pub pooled: Vec<f32>,
    /// Classifier logits.
    pub logits: Vec<f32>,
}

/// A float MobileNetV2 for CIFAR-10: the same stem as
/// [`MobileNetV1`], inverted-residual blocks flattened into accelerator
/// stages (see [`mobilenet_v2_cifar10`]), global average pooling, linear
/// classifier.
#[derive(Debug, Clone)]
pub struct MobileNetV2 {
    stem: StemShape,
    stem_weights: Tensor4<f32>,
    stem_bn: BatchNorm,
    stages: Vec<V2StageParams>,
    fc_weights: Vec<f32>,
    fc_bias: Vec<f32>,
}

impl MobileNetV2 {
    /// Builds a model with deterministic Kaiming-initialized weights and
    /// identity batch norm at the given width multiplier. Channel counts
    /// round to multiples of 16 (`Tk`) so every width keeps the stack on
    /// the engine geometry.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    #[must_use]
    pub fn synthetic(width: f64, seed: u64) -> Self {
        let shapes = scale_width(&mobilenet_v2_cifar10(), width, 16)
            .expect("width multiplier must be positive and finite");
        let stem = StemShape {
            c_out: shapes[0].d_in,
            ..StemShape::cifar10()
        };
        let stem_weights = rng::kaiming_weights(stem.c_out, stem.c_in, 3, 3, seed ^ 0xb22ce);
        let stem_bn = BatchNorm::identity(stem.c_out);
        let stages = shapes
            .iter()
            .enumerate()
            .map(|(i, &shape)| {
                let (dw_weights, bn1) = match shape.op {
                    StageOp::Dsc => (
                        Some(rng::kaiming_weights(
                            shape.d_in,
                            1,
                            shape.kernel,
                            shape.kernel,
                            seed.wrapping_add(5000 + i as u64),
                        )),
                        Some(BatchNorm::identity(shape.d_in)),
                    ),
                    StageOp::PwcOnly => (None, None),
                };
                V2StageParams {
                    shape,
                    dw_weights,
                    bn1,
                    pw_weights: rng::kaiming_weights(
                        shape.k_out,
                        shape.d_in,
                        1,
                        1,
                        seed.wrapping_add(6000 + i as u64),
                    ),
                    bn2: BatchNorm::identity(shape.k_out),
                }
            })
            .collect::<Vec<_>>();
        let c_last = stages.last().expect("17 stages").shape.k_out;
        let fc = rng::kaiming_weights(NUM_CLASSES, c_last, 1, 1, seed ^ 0xfc2);
        Self {
            stem,
            stem_weights,
            stem_bn,
            stages,
            fc_weights: fc.as_slice().to_vec(),
            fc_bias: vec![0.0; NUM_CLASSES],
        }
    }

    /// The stem shape (shared with v1: `StemShape::cifar10()` scaled).
    #[must_use]
    pub fn stem(&self) -> StemShape {
        self.stem
    }

    /// The flattened accelerator stages.
    #[must_use]
    pub fn stages(&self) -> &[V2StageParams] {
        &self.stages
    }

    /// The layer shapes of all stages.
    #[must_use]
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        self.stages.iter().map(|s| s.shape).collect()
    }

    /// Runs the stem only: `conv → BN → ReLU`.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the stem input shape.
    #[must_use]
    pub fn forward_stem(&self, image: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(
            image.shape(),
            (self.stem.c_in, self.stem.in_spatial, self.stem.in_spatial),
            "stem input shape mismatch"
        );
        let conv = conv2d_f32(image, &self.stem_weights, self.stem.stride, 1);
        relu(&self.stem_bn.apply(&conv))
    }

    /// Runs one stage, adding `residual` (a block input saved at the
    /// matching [`residual_save`](LayerShape::residual_save) stage) onto
    /// the linear project output when the shape requests it.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the stage's input shape, or if a
    /// residual is required but missing (and vice versa).
    #[must_use]
    pub fn forward_stage(
        &self,
        index: usize,
        input: &Tensor3<f32>,
        residual: Option<&Tensor3<f32>>,
    ) -> V2StageTrace {
        let stage = &self.stages[index];
        let s = &stage.shape;
        assert_eq!(
            input.shape(),
            (s.d_in, s.in_spatial, s.in_spatial),
            "stage {index} input shape mismatch"
        );
        assert_eq!(
            s.residual_add,
            residual.is_some(),
            "stage {index} residual presence mismatch"
        );
        let mid_act = match s.op {
            StageOp::Dsc => {
                let dw = stage.dw_weights.as_ref().expect("validated DSC stage");
                let bn1 = stage.bn1.as_ref().expect("validated DSC stage");
                let dwc_raw = depthwise_conv2d_f32(input, dw, s.stride, s.pad());
                relu(&bn1.apply(&dwc_raw))
            }
            StageOp::PwcOnly => input.clone(),
        };
        let pwc_raw = pointwise_conv2d_f32(&mid_act, &stage.pw_weights);
        let post = stage.bn2.apply(&pwc_raw);
        let act = match residual {
            Some(res) => {
                assert_eq!(res.shape(), post.shape(), "stage {index} residual shape");
                Tensor3::from_fn(post.shape().0, post.shape().1, post.shape().2, |c, h, w| {
                    post[(c, h, w)] + res[(c, h, w)]
                })
            }
            None if stage.relu_out() => relu(&post),
            None => post,
        };
        V2StageTrace {
            mid_act,
            pwc_raw,
            act,
        }
    }

    /// Full forward pass with all intermediates recorded.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the stem input shape.
    #[must_use]
    pub fn forward(&self, image: &Tensor3<f32>) -> V2ForwardTrace {
        let stem_act = self.forward_stem(image);
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut x = stem_act.clone();
        let mut saved: Option<Tensor3<f32>> = None;
        for i in 0..self.stages.len() {
            let s = self.stages[i].shape;
            if s.residual_save {
                saved = Some(x.clone());
            }
            let residual = if s.residual_add { saved.take() } else { None };
            let trace = self.forward_stage(i, &x, residual.as_ref());
            x = trace.act.clone();
            stages.push(trace);
        }
        let pooled = global_avg_pool(&x);
        let logits = linear(&pooled, &self.fc_weights, &self.fc_bias, NUM_CLASSES);
        V2ForwardTrace {
            stem_act,
            stages,
            pooled,
            logits,
        }
    }

    /// Validates every stage's parameter shapes.
    ///
    /// # Errors
    ///
    /// The first [`NnError::ShapeMismatch`] found.
    pub fn validate(&self) -> Result<(), NnError> {
        for s in &self.stages {
            s.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MobileNetV1 {
        MobileNetV1::synthetic(0.25, 42)
    }

    #[test]
    fn synthetic_model_validates() {
        tiny().validate().unwrap();
        MobileNetV1::synthetic(0.5, 7).validate().unwrap();
    }

    #[test]
    fn forward_shapes_chain_correctly() {
        let m = tiny();
        let img = rng::synthetic_image(3, 32, 32, 3);
        let t = m.forward(&img);
        assert_eq!(t.blocks.len(), 13);
        // Stem output feeds block 0:
        let s0 = m.blocks()[0].shape;
        assert_eq!(t.stem_act.shape(), (s0.d_in, 32, 32));
        for (i, b) in m.blocks().iter().enumerate() {
            let o = b.shape.out_spatial();
            assert_eq!(
                t.blocks[i].dwc_act.shape(),
                (b.shape.d_in, o, o),
                "layer {i}"
            );
            assert_eq!(
                t.blocks[i].pwc_act.shape(),
                (b.shape.k_out, o, o),
                "layer {i}"
            );
        }
        assert_eq!(t.pooled.len(), m.blocks().last().unwrap().shape.k_out);
        assert_eq!(t.logits.len(), NUM_CLASSES);
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny();
        let img = rng::synthetic_image(3, 32, 32, 9);
        let a = m.forward(&img);
        let b = m.forward(&img);
        assert_eq!(a.logits, b.logits);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let img = rng::synthetic_image(3, 32, 32, 1);
        let a = MobileNetV1::synthetic(0.25, 1).forward(&img);
        let b = MobileNetV1::synthetic(0.25, 2).forward(&img);
        assert_ne!(a.logits, b.logits);
    }

    #[test]
    fn activations_are_nonnegative_after_relu() {
        let m = tiny();
        let img = rng::synthetic_image(3, 32, 32, 5);
        let t = m.forward(&img);
        for b in &t.blocks {
            assert!(b.dwc_act.as_slice().iter().all(|&v| v >= 0.0));
            assert!(b.pwc_act.as_slice().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn raw_outputs_contain_negatives() {
        // With identity BN and random weights, pre-activation maps must have
        // both signs — otherwise ReLU and the sparsity story are vacuous.
        let m = tiny();
        let img = rng::synthetic_image(3, 32, 32, 5);
        let t = m.forward(&img);
        assert!(t.blocks[0].dwc_raw.as_slice().iter().any(|&v| v < 0.0));
        assert!(t.blocks[0].pwc_raw.as_slice().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn forward_block_matches_full_forward() {
        let m = tiny();
        let img = rng::synthetic_image(3, 32, 32, 11);
        let t = m.forward(&img);
        let b0 = m.forward_block(0, &t.stem_act);
        assert_eq!(b0.pwc_act, t.blocks[0].pwc_act);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn forward_rejects_wrong_input() {
        let m = tiny();
        let img = rng::synthetic_image(3, 16, 16, 1);
        let _ = m.forward(&img);
    }

    #[test]
    fn block_validate_catches_swapped_weights() {
        let m = tiny();
        let mut b = m.blocks()[0].clone();
        std::mem::swap(&mut b.dw_weights, &mut b.pw_weights);
        assert!(b.validate().is_err());
    }

    #[test]
    fn full_width_model_has_paper_channels() {
        let m = MobileNetV1::synthetic(1.0, 0);
        let shapes = m.layer_shapes();
        assert_eq!(shapes[0].d_in, 32);
        assert_eq!(shapes[12].d_in, 1024);
        assert_eq!(shapes[12].k_out, 1024);
    }

    fn tiny_v2() -> MobileNetV2 {
        MobileNetV2::synthetic(0.25, 42)
    }

    #[test]
    fn v2_synthetic_model_validates() {
        tiny_v2().validate().unwrap();
        MobileNetV2::synthetic(1.0, 7).validate().unwrap();
    }

    #[test]
    fn v2_forward_shapes_chain_correctly() {
        let m = tiny_v2();
        let img = rng::synthetic_image(3, 32, 32, 3);
        let t = m.forward(&img);
        assert_eq!(t.stages.len(), 17);
        let s0 = m.stages()[0].shape;
        assert_eq!(t.stem_act.shape(), (s0.d_in, 32, 32));
        for (i, s) in m.stages().iter().enumerate() {
            let o = s.shape.out_spatial();
            assert_eq!(t.stages[i].act.shape(), (s.shape.k_out, o, o), "stage {i}");
        }
        assert_eq!(t.logits.len(), NUM_CLASSES);
    }

    #[test]
    fn v2_forward_is_deterministic() {
        let m = tiny_v2();
        let img = rng::synthetic_image(3, 32, 32, 9);
        assert_eq!(m.forward(&img).logits, m.forward(&img).logits);
    }

    #[test]
    fn v2_residual_actually_feeds_forward() {
        // Zeroing the saved residual input must change a residual block's
        // output — the skip connection is load-bearing, not decorative.
        let m = tiny_v2();
        let img = rng::synthetic_image(3, 32, 32, 5);
        let t = m.forward(&img);
        let add_idx = m
            .layer_shapes()
            .iter()
            .position(|s| s.residual_add)
            .expect("v2 has residual stages");
        let input = &t.stages[add_idx - 1].act;
        let save_input = &t.stages[add_idx - 2].act;
        let with_res = m.forward_stage(add_idx, input, Some(save_input));
        assert_eq!(with_res.act, t.stages[add_idx].act);
        let zeros = Tensor3::zeros(
            save_input.shape().0,
            save_input.shape().1,
            save_input.shape().2,
        );
        let without = m.forward_stage(add_idx, input, Some(&zeros));
        assert_ne!(without.act, with_res.act);
    }

    #[test]
    fn v2_project_outputs_are_signed() {
        // The project stage is linear: unlike v1's post-ReLU maps, block
        // outputs must carry both signs.
        let m = tiny_v2();
        let img = rng::synthetic_image(3, 32, 32, 6);
        let t = m.forward(&img);
        let last = t.stages.last().unwrap();
        assert!(last.act.as_slice().iter().any(|&v| v < 0.0));
        // Expand stages stay non-negative (ReLU).
        let expand_idx = m
            .layer_shapes()
            .iter()
            .position(|s| s.op == StageOp::PwcOnly)
            .unwrap();
        assert!(t.stages[expand_idx]
            .act
            .as_slice()
            .iter()
            .all(|&v| v >= 0.0));
    }

    #[test]
    fn v2_shares_the_v1_stem_geometry() {
        let v1 = MobileNetV1::synthetic(1.0, 1);
        let v2 = MobileNetV2::synthetic(1.0, 1);
        assert_eq!(v1.stem(), v2.stem());
    }
}
