//! Neural-network substrate for the EDEA accelerator simulator.
//!
//! The EDEA paper (SOCC 2024) evaluates its dual-engine depthwise-separable
//! convolution (DSC) accelerator on **MobileNetV1 trained on CIFAR-10 and
//! quantized to 8 bits with LSQ**. This crate supplies everything the
//! accelerator simulator needs from that software stack, built from scratch:
//!
//! * [`workload`] — the 13 DSC layer shapes of MobileNetV1-CIFAR10 and their
//!   MAC/parameter counts (the workload database every experiment iterates
//!   over).
//! * [`mobilenet`] — a full float MobileNetV1 model (stem + 13 DSC blocks +
//!   classifier) with deterministic synthetic parameters.
//! * [`observer`] / [`lsq`] — activation-range observers and an LSQ-style
//!   learned-step-size quantizer (gradient descent on the quantization
//!   objective, the inference-time essence of paper ref \[14\]).
//! * [`fold`] — the Non-Conv fold: dequantization + batch norm + ReLU +
//!   requantization collapsed into `y = k·x + b` with Q8.16 constants
//!   (paper Fig. 6).
//! * [`sparsity`] — shapes per-layer BN parameters so the post-ReLU zero
//!   fraction matches the trained-network profile of paper Fig. 11 (the
//!   substitution for the unavailable trained checkpoint).
//! * [`quantize`] — assembles a fully-quantized DSC network from the float
//!   model plus a calibration batch.
//! * [`executor`] — the bit-exact int8 golden executor the accelerator
//!   simulator is verified against, with per-layer activity statistics.
//!   [`executor::run_batch`] defines the reference semantics of batched
//!   inference: a pure per-image map, so the accelerator's weight-residency
//!   batching can never change an output bit.
//!
//! # Example
//!
//! ```
//! use edea_nn::mobilenet::MobileNetV1;
//! use edea_nn::quantize::QuantizedDscNetwork;
//! use edea_tensor::rng;
//!
//! // A width-0.25 model keeps doc tests fast; the experiments use 1.0.
//! let model = MobileNetV1::synthetic(0.25, 42);
//! let calib = rng::synthetic_batch(2, 3, 32, 32, 7);
//! let qnet = QuantizedDscNetwork::calibrate(&model, &calib);
//! assert_eq!(qnet.layers().len(), 13);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
mod error;
pub mod executor;
pub mod fold;
pub mod lsq;
pub mod mobilenet;
pub mod observer;
pub mod quantize;
pub mod sparsity;
pub mod workload;

pub use error::NnError;
