//! Property tests for the residual extension of the Q8.16 Non-Conv fold:
//! the requantized skip connection is summed onto the `k·x + b` bus at wide
//! precision *before* the round stage, so folding the residual term into
//! the offset (`b' = b + r·res`) and adding it after the fold are the same
//! bits — `fold(add) == add∘fold` exactly, never "close".

use edea_fixed::{Q8x16, WideQ16};
use edea_nn::fold::FoldedAffine;
use proptest::prelude::*;

/// A `FoldedAffine` with the given fixed constants (the exact-float mirror
/// fields are irrelevant to the hardware path under test).
fn affine(k: Q8x16, b: Q8x16) -> FoldedAffine {
    FoldedAffine {
        k_exact: k.to_f64(),
        b_exact: b.to_f64(),
        k,
        b,
    }
}

proptest! {
    /// fold(add) == add∘fold, bit-exactly: applying the residual through
    /// `apply_fixed_residual` equals pre-folding `r·res` into the offset
    /// and running the plain fold — whenever the merged offset is
    /// representable in Q8.16 (the hardware adds at wide precision, so it
    /// has no such restriction; the fold-side comparison does).
    #[test]
    fn residual_add_commutes_with_the_fold(
        k_raw in -8_000_000i32..8_000_000,
        b_raw in -8_000_000i32..8_000_000,
        r_raw in -8_000_000i32..8_000_000,
        res in any::<i8>(),
        acc in -100_000i32..100_000,
        relu in any::<bool>(),
    ) {
        let (k, b, r) = (Q8x16::from_raw(k_raw), Q8x16::from_raw(b_raw), Q8x16::from_raw(r_raw));
        let lo: i8 = if relu { 0 } else { -128 };
        let merged_raw = i64::from(b_raw) + i64::from(r_raw) * i64::from(res);
        prop_assume!(Q8x16::from_raw_saturating(merged_raw).raw() as i64 == merged_raw);
        let added = affine(k, b).apply_fixed_residual(acc, res, r, lo);
        let folded = affine(k, Q8x16::from_raw(merged_raw as i32)).apply_fixed(acc, lo);
        prop_assert_eq!(added, folded, "acc={} res={}", acc, res);
    }

    /// A zero residual (or a zero residual scale) degenerates to the plain
    /// fold — v1 layers pay nothing for the generalized path.
    #[test]
    fn zero_residual_is_the_plain_fold(
        k_raw in -8_000_000i32..8_000_000,
        b_raw in -8_000_000i32..8_000_000,
        r_raw in -8_000_000i32..8_000_000,
        res in any::<i8>(),
        acc in -100_000i32..100_000,
    ) {
        let f = affine(Q8x16::from_raw(k_raw), Q8x16::from_raw(b_raw));
        let r = Q8x16::from_raw(r_raw);
        prop_assert_eq!(f.apply_fixed_residual(acc, 0, r, 0), f.apply_fixed(acc, 0));
        prop_assert_eq!(
            f.apply_fixed_residual(acc, res, Q8x16::ZERO, -128),
            f.apply_fixed(acc, -128)
        );
    }

    /// The residual path clips like the plain path: outputs never escape
    /// `[lo, 127]`, for any accumulator, residual, or scale.
    #[test]
    fn residual_output_always_clipped(
        acc in any::<i32>(),
        res in any::<i8>(),
        relu in any::<bool>(),
    ) {
        let f = affine(Q8x16::MAX, Q8x16::MIN);
        let lo: i8 = if relu { 0 } else { -128 };
        let y = f.apply_fixed_residual(acc, res, Q8x16::MAX, lo);
        prop_assert!(y >= lo, "y={} lo={}", y, lo);
    }
}

#[test]
fn residual_bus_is_exact_at_wide_extremes() {
    // The wide accumulation `k·acc + b + r·res` saturates instead of
    // wrapping at the i64 boundary, and matches i128 reference arithmetic
    // everywhere it does not saturate.
    for k in [Q8x16::MIN, Q8x16::MAX] {
        for acc in [i32::MIN, i32::MAX] {
            for r in [Q8x16::MIN, Q8x16::MAX] {
                for res in [i8::MIN, i8::MAX] {
                    let w = k
                        .mul_int_add(acc, Q8x16::ZERO)
                        .saturating_add(r.mul_int_add(i32::from(res), Q8x16::ZERO));
                    let want = i128::from(k.raw()) * i128::from(acc)
                        + i128::from(r.raw()) * i128::from(res);
                    assert_eq!(
                        i128::from(w.raw()),
                        want,
                        "no saturation at these magnitudes"
                    );
                    let _ = WideQ16::saturating_add(w, w); // still inside i64
                }
            }
        }
    }
}
