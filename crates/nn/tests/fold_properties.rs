//! Property tests for the Q8.16 Non-Conv fold: saturation, rounding, and
//! the dequant → batch-norm → ReLU → requant equivalence the paper's Fig. 6
//! unit relies on.

use edea_fixed::{Q8x16, Round};
use edea_nn::fold::{fold_boundary, FoldedAffine};
use edea_tensor::ops::BatchNorm;
use proptest::prelude::*;

/// The reference chain the fold replaces, in f64 with *unrounded* constants:
/// dequantize, batch-normalize, ReLU, requantize.
fn reference_chain(acc: i32, bn_k: f64, bn_b: f64, s_in: f64, s_w: f64, s_out: f64) -> i8 {
    let x = f64::from(acc) * s_in * s_w; // dequantize
    let y = bn_k * x + bn_b; // batch norm (affine form)
    let y = y.max(0.0); // ReLU
    (y / s_out).round().clamp(0.0, 127.0) as i8 // requantize (round half away)
}

proptest! {
    /// The folded hardware path agrees with the four-stage floating-point
    /// reference chain to within one output LSB (the slack Q8.16 rounding
    /// is allowed on exact .5 boundaries), across random BN parameters,
    /// step sizes and accumulator values.
    #[test]
    fn fixed_fold_matches_reference_chain(
        bn_k in -4.0f64..4.0,
        bn_b in -8.0f64..8.0,
        s_in in 0.001f64..0.1,
        s_w in 0.001f64..0.1,
        s_out in 0.005f64..0.1,
        acc in -60_000i32..60_000,
    ) {
        let f = FoldedAffine::fold(bn_k, bn_b, s_in, s_w, s_out);
        // Only meaningful when the constants are representable without
        // range normalization.
        prop_assume!(f.k_exact.abs() < 127.9 && f.b_exact.abs() < 127.9);
        let hw = f.apply_fixed(acc, 0);
        let want = reference_chain(acc, bn_k, bn_b, s_in, s_w, s_out);
        // The Q8.16 constant rounding can perturb the pre-round value by at
        // most the documented bound; when that bound is far from a rounding
        // boundary the paths must agree exactly, and they may never drift by
        // more than one LSB.
        prop_assert!(
            (i32::from(hw) - i32::from(want)).abs() <= 1,
            "acc={acc} hw={hw} ref={want} k={} b={}", f.k_exact, f.b_exact
        );
    }

    /// apply_fixed == apply_exact whenever the Q8.16 error bound keeps the
    /// value away from a rounding boundary — the precise sense in which the
    /// paper's "without losing precision" claim holds.
    #[test]
    fn fixed_equals_exact_away_from_boundaries(
        bn_k in -2.0f64..2.0,
        bn_b in -4.0f64..4.0,
        acc in -30_000i32..30_000,
    ) {
        let f = FoldedAffine::fold(bn_k, bn_b, 0.02, 0.01, 0.02);
        prop_assume!(f.k_exact.abs() < 127.9 && f.b_exact.abs() < 127.9);
        let pre = f.k_exact * f64::from(acc) + f.b_exact;
        // Rounding decision boundaries sit at half-integers m + 0.5.
        let frac = (pre - 0.5).rem_euclid(1.0);
        let dist_to_boundary = frac.min(1.0 - frac);
        prop_assume!(dist_to_boundary > f.q8_16_error_bound(acc.abs().max(1)) + 1e-9);
        prop_assert_eq!(f.apply_fixed(acc, 0), f.apply_exact(acc, 0));
    }

    /// The hardware output is always inside the clip range, for *any*
    /// accumulator — saturation can never be escaped.
    #[test]
    fn fold_output_always_clipped(
        bn_k in -100.0f64..100.0,
        bn_b in -100.0f64..100.0,
        acc in any::<i32>(),
        relu in any::<bool>(),
    ) {
        let f = FoldedAffine::fold(bn_k, bn_b, 0.5, 0.5, 0.5);
        let lo: i8 = if relu { 0 } else { -128 };
        let y = f.apply_fixed(acc, lo);
        // (The high clip at 127 is the i8 type bound itself.)
        prop_assert!(y >= lo, "y={y} lo={lo}");
    }

    /// Q8.16 constant construction saturates instead of wrapping: folds whose
    /// exact constants exceed the representable range produce MAX/MIN, with
    /// the sign preserved.
    #[test]
    fn fold_constants_saturate_with_sign(scale in 130.0f64..1e6, pos in any::<bool>()) {
        let k_exact = if pos { scale } else { -scale };
        let f = FoldedAffine::fold(k_exact, 0.0, 1.0, 1.0, 1.0);
        prop_assert_eq!(f.k, if pos { Q8x16::MAX } else { Q8x16::MIN });
        prop_assert_eq!(f.b, Q8x16::ZERO);
    }

    /// fold_boundary never emits constants outside the Q8.16 envelope (range
    /// normalization), and preserves each channel's zero crossing when it
    /// rescales.
    #[test]
    fn fold_boundary_respects_envelope(
        gamma in prop::collection::vec(-50.0f32..50.0, 4),
        beta in prop::collection::vec(-500.0f32..500.0, 4),
        mean in prop::collection::vec(-2.0f32..2.0, 4),
        var in prop::collection::vec(0.01f32..9.0, 4),
    ) {
        let bn = BatchNorm { gamma, beta, mean, var, eps: 1e-5 };
        let folded = fold_boundary(&bn, 0.02, 0.01, 0.01).expect("finite BN folds");
        let coeffs = bn.affine_coefficients();
        for (c, f) in folded.iter().enumerate() {
            prop_assert!(f.k_exact.abs() < 128.0 && f.b_exact.abs() < 128.0, "channel {c}");
            // Where rescaling applied, the zero crossing must be unchanged.
            let (bk, bb) = coeffs[c];
            let raw = FoldedAffine::fold(f64::from(bk), f64::from(bb), 0.02, 0.01, 0.01);
            prop_assume!(raw.k_exact.abs() > 1e-9);
            let want = -raw.b_exact / raw.k_exact;
            let got = -f.b_exact / f.k_exact;
            prop_assert!(
                (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                "channel {c}: crossing {got} vs {want}"
            );
        }
    }

    /// The fold commutes with the hardware rounding mode on integers: for
    /// k = 1, b integer, the unit is exact (no rounding error at all).
    #[test]
    fn identity_slope_integer_offset_is_exact(b_int in -100i32..100, acc in -200i32..200) {
        let f = FoldedAffine::fold(1.0, f64::from(b_int), 1.0, 1.0, 1.0);
        let want = (acc + b_int).clamp(0, 127) as i8;
        prop_assert_eq!(f.apply_fixed(acc, 0), want);
    }

    /// Rounding in the Non-Conv unit is half-away-from-zero: the .5 boundary
    /// always moves away from zero, like the RTL's add-half-then-shift.
    #[test]
    fn fold_rounds_half_away(acc in -126i32..126) {
        // k = 1, b = 0.5 exactly representable in Q8.16.
        let f = FoldedAffine::fold(1.0, 0.5, 1.0, 1.0, 1.0);
        let pre = f64::from(acc) + 0.5;
        let want = if pre >= 0.0 { pre.floor() + 1.0 } else { pre.floor() }; // ties away
        let want = want.clamp(-128.0, 127.0) as i8;
        prop_assert_eq!(f.apply_fixed(acc, -128), want, "acc={}", acc);
    }
}

#[test]
fn wide_mul_int_add_never_overflows_at_extremes() {
    // The widest possible multiply-add the unit can see: |k| = 128, |x| =
    // i32::MAX, |b| = 128 — still far inside i64; the rounded result then
    // clips to int8.
    for k in [Q8x16::MIN, Q8x16::MAX] {
        for x in [i32::MIN, i32::MAX] {
            for b in [Q8x16::MIN, Q8x16::MAX] {
                let w = k.mul_int_add(x, b);
                let y = w.round_clip_i8(Round::HalfAwayFromZero, -128, 127);
                assert!((-128..=127).contains(&i32::from(y)));
                // And the wide raw value matches i128 reference arithmetic.
                let want = i128::from(k.raw()) * i128::from(x) + i128::from(b.raw());
                assert_eq!(i128::from(w.raw()), want);
            }
        }
    }
}
