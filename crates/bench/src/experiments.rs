//! One experiment per table/figure of the paper's evaluation.
//!
//! Every function regenerates the corresponding artifact's rows/series and
//! prints the paper's published values next to the reproduction's, so the
//! output doubles as the source for EXPERIMENTS.md.

use edea::core::area::AreaBreakdown;
use edea::core::baseline::{roundtrip_external_traffic, serial_dual};
use edea::core::power::{paper_layer_stats, EnergyModel};
use edea::core::{compare, floorplan, paperdata, pipeline, timing};
use edea::dse::intermediate::{AccessPolicy, IntermediateAnalysis};
use edea::dse::sweep::{full_sweep, select_optimal};
use edea::dse::tiling::{exploration_groups, table1_cases};
use edea::mobilenet_v1_cifar10;
use edea::EdeaConfig;

use crate::report::{fmt, Table};

fn cfg() -> EdeaConfig {
    EdeaConfig::paper()
}

fn calibrated_energy() -> (Vec<edea::core::stats::LayerStats>, EnergyModel) {
    let stats = paper_layer_stats(&cfg());
    let model = EnergyModel::calibrate(&stats, &cfg(), &paperdata::power_mw());
    (stats, model)
}

/// Table I: the six selected tiling cases.
#[must_use]
pub fn table1() -> String {
    let mut t = Table::new(vec!["Case", "Td", "Tk"]);
    for c in table1_cases() {
        t.row(vec![c.name.to_owned(), c.td.to_string(), c.tk.to_string()]);
    }
    format!("== Table I: selected tiling sizes ==\n{}", t.render())
}

/// Table II: the access/PE equations for La, Tn=Tm=2, evaluated per layer.
#[must_use]
pub fn table2() -> String {
    use edea::dse::access::layer_access;
    use edea::dse::{LoopOrder, TileConfig};
    let cfgt = TileConfig::edea();
    let mut t = Table::new(vec![
        "layer", "DWC PE", "PWC PE", "DWC act", "DWC wgt", "PWC act", "PWC wgt",
    ]);
    for l in mobilenet_v1_cifar10() {
        let a = layer_access(&l, &cfgt, LoopOrder::La);
        t.row(vec![
            l.index.to_string(),
            edea::dse::pe_array::dwc_macs(&cfgt).to_string(),
            edea::dse::pe_array::pwc_macs(&cfgt).to_string(),
            a.dwc_act.to_string(),
            a.dwc_weight.to_string(),
            a.pwc_act.to_string(),
            a.pwc_weight.to_string(),
        ]);
    }
    format!(
        "== Table II: La / Tn=Tm=2 equations per layer (elements) ==\n\
         (DWC PE = Td·H·W·Tn·Tm = 288, PWC PE = Td·Tk·Tn·Tm = 512, as in Fig. 5)\n{}",
        t.render()
    )
}

/// Fig. 2a: PE array size per exploration group and case.
#[must_use]
pub fn fig2a() -> String {
    let mut t = Table::new(vec![
        "group", "Case1", "Case2", "Case3", "Case4", "Case5", "Case6",
    ]);
    for g in exploration_groups() {
        let mut row = vec![format!("{} Tn=Tm={}", g.order, g.tn)];
        for c in table1_cases() {
            row.push(edea::dse::pe_array::total_macs(&g.config(c)).to_string());
        }
        t.row(row);
    }
    format!(
        "== Fig. 2a: PE array size (MACs) ==\n{}\n\
         paper axis: 0..800; maximum 800 at Case6 Tn=Tm=2 (the chosen design).\n",
        t.render()
    )
}

/// Fig. 2b: activation and weight access counts per group and case, summed
/// over all 13 DSC layers.
#[must_use]
pub fn fig2b() -> String {
    let layers = mobilenet_v1_cifar10();
    let rows = full_sweep(&layers);
    let mut t = Table::new(vec!["group", "case", "activation", "weight", "total"]);
    for r in &rows {
        t.row(vec![
            format!("{} Tn=Tm={}", r.group.order, r.group.tn),
            r.case.name.to_owned(),
            r.access.act_total().to_string(),
            r.access.weight_total().to_string(),
            r.access.total().to_string(),
        ]);
    }
    let best = select_optimal(&rows).expect("sweep");
    format!(
        "== Fig. 2b: access counts over all DSC layers ==\n{}\n\
         optimum: {} Tn=Tm={} {} (paper: La, Tn=Tm=2, Case6)\n\
         paper observations reproduced: La has the higher activation counts,\n\
         Lb the higher weight counts; weights dominate for MobileNetV1.\n",
        t.render(),
        best.group.order,
        best.group.tn,
        best.case.name
    )
}

/// Fig. 3: activation access count, baseline vs direct transfer.
#[must_use]
pub fn fig3() -> String {
    let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
    let mut t = Table::new(vec!["layer", "baseline", "w/o inter.", "reduction %"]);
    for l in &a.layers {
        t.row(vec![
            l.index.to_string(),
            l.baseline.to_string(),
            l.optimized.to_string(),
            fmt(l.reduction_pct(), 1),
        ]);
    }
    let (lo, hi) = a.reduction_range();
    let (plo, phi, ptot) = paperdata::FIG3_REDUCTION;
    format!(
        "== Fig. 3: eliminating the intermediate data access ==\n{}\n\
         measured: {lo:.1}%–{hi:.1}% per layer, total {:.1}%\n\
         paper   : {plo}%–{phi}% per layer, total {ptot}%\n\
         (counting-policy delta documented in EXPERIMENTS.md; shape matches:\n\
         every layer benefits, stride-2 layers least, ≈⅓ overall)\n",
        t.render(),
        a.total_reduction_pct()
    )
}

/// Fig. 7: pipeline timing diagram (first 40 cycles of layer 0).
#[must_use]
pub fn fig7() -> String {
    let layers = mobilenet_v1_cifar10();
    let sim = pipeline::simulate_layer(&layers[0], &cfg(), 100_000);
    let analytic = timing::layer_cycles(&layers[0], &cfg());
    format!(
        "== Fig. 7: pipeline timing of the dual engines (layer 0) ==\n\n{}\n\
         initiation: {} cycles before the first PWC output (paper: 9)\n\
         layer total: {} cycles (clocked) = {} (Eq. 1 × Eq. 2)\n",
        pipeline::render_gantt(&sim.events, 40),
        cfg().init_cycles,
        sim.total_cycles,
        analytic.total()
    )
}

/// Fig. 8: layout view — dimensions and floorplan; returns `(report, svg)`.
#[must_use]
pub fn fig8() -> (String, String) {
    let area = AreaBreakdown::paper();
    let fp = floorplan::floorplan(&area);
    let svg = floorplan::to_svg(&fp);
    let mut t = Table::new(vec!["block", "x µm", "y µm", "w µm", "h µm", "area µm²"]);
    for b in &fp.blocks {
        t.row(vec![
            b.name.to_owned(),
            fmt(b.x, 1),
            fmt(b.y, 1),
            fmt(b.w, 1),
            fmt(b.h, 1),
            fmt(b.area(), 0),
        ]);
    }
    let report = format!(
        "== Fig. 8: layout view ==\n\
         die: {:.3} µm × {:.2} µm = {:.3} mm² (paper: 825.032 × 699.52 = 0.58 mm²)\n\
         PWC:DWC area ratio {:.2}× (paper: ≈1.7×, PE ratio 1.78×)\n{}",
        fp.width_um,
        fp.height_um,
        area.total_mm2(),
        area.pwc_to_dwc_ratio(),
        t.render()
    );
    (report, svg)
}

/// Fig. 9: area and power breakdowns.
#[must_use]
pub fn fig9() -> String {
    let area = AreaBreakdown::paper();
    let mut ta = Table::new(vec!["component", "measured %", "paper %"]);
    let paper_area = [
        ("pwc", paperdata::area_pct::PWC),
        ("dwc", paperdata::area_pct::DWC),
        ("nonconv", paperdata::area_pct::NONCONV),
        ("buffers", paperdata::area_pct::BUFFERS),
        ("intermediate", paperdata::area_pct::INTERMEDIATE),
        ("control", paperdata::area_pct::CONTROL),
    ];
    for ((name, got), (_, want)) in area.shares().iter().zip(paper_area) {
        ta.row(vec![(*name).to_owned(), fmt(*got, 2), fmt(want, 2)]);
    }
    let (stats, model) = calibrated_energy();
    let b = model.layer_power(&stats[10], &cfg());
    let mut tp = Table::new(vec!["component", "measured %", "paper %"]);
    let paper_power = [
        ("pwc", paperdata::power_pct::PWC),
        ("dwc", paperdata::power_pct::DWC),
        ("clock", paperdata::power_pct::CLOCK),
        ("nonconv", paperdata::power_pct::NONCONV),
        ("buffers", paperdata::power_pct::BUFFERS),
        ("io", paperdata::power_pct::IO),
        ("static", paperdata::power_pct::CONTROL),
    ];
    for ((name, got), (_, want)) in b.shares().iter().zip(paper_power) {
        tp.row(vec![(*name).to_owned(), fmt(*got, 2), fmt(want, 2)]);
    }
    format!(
        "== Fig. 9 left: area breakdown ==\n{}\n\
         == Fig. 9 right: power breakdown at the peak-efficiency layer ==\n{}\n\
         note: the calibrated model carries clocking/register overhead in the\n\
         constant term, so engine shares run below the paper's block-level\n\
         attribution; ordering (PWC ≫ DWC > rest) is preserved.\n",
        ta.render(),
        tp.render()
    )
}

/// Fig. 10: MAC operations and latency per layer.
#[must_use]
pub fn fig10() -> String {
    let mut t = Table::new(vec!["layer", "MACs", "latency ns", "init %"]);
    for l in mobilenet_v1_cifar10() {
        let b = timing::layer_cycles(&l, &cfg());
        t.row(vec![
            l.index.to_string(),
            l.total_macs().to_string(),
            fmt(timing::layer_latency_ns(&l, &cfg()), 0),
            fmt(100.0 * b.init_fraction(), 2),
        ]);
    }
    format!(
        "== Fig. 10: MAC operations and latency ==\n{}\n\
         paper observations reproduced: strided layers (1, 3, 5, 11) have\n\
         roughly half the MACs and latency; the initiation share grows for\n\
         the small late layers, nudging their latency up.\n",
        t.render()
    )
}

/// Fig. 11: power and activation zero percentage per layer.
#[must_use]
pub fn fig11() -> String {
    let (stats, model) = calibrated_energy();
    let targets = paperdata::power_mw();
    let mut t = Table::new(vec![
        "layer",
        "DWC zero %",
        "PWC zero %",
        "power mW",
        "paper mW",
    ]);
    for (s, &want) in stats.iter().zip(&targets) {
        t.row(vec![
            s.shape.index.to_string(),
            fmt(100.0 * s.mid_zero, 1),
            fmt(100.0 * s.out_zero, 1),
            fmt(model.layer_power_mw(s, &cfg()), 1),
            fmt(want, 1),
        ]);
    }
    format!(
        "== Fig. 11: power and zero percentage ==\n{}\n\
         anchors: layer 12 zeros {:.1}%/{:.1}% (paper: 97.4%/95.3%);\n\
         layer 1 is the power maximum, layer 12 the minimum, as in the paper.\n",
        t.render(),
        100.0 * stats[12].mid_zero,
        100.0 * stats[12].out_zero
    )
}

/// Fig. 12: energy efficiency per layer.
#[must_use]
pub fn fig12() -> String {
    let (stats, model) = calibrated_energy();
    let mut t = Table::new(vec!["layer", "TOPS/W", "paper TOPS/W"]);
    let mut peak = (0usize, 0.0f64);
    let mut sum = 0.0;
    for (s, &want) in stats.iter().zip(&paperdata::ENERGY_EFFICIENCY_TOPS_W) {
        let ee = model.layer_efficiency_tops_w(s, &cfg());
        sum += ee;
        if ee > peak.1 {
            peak = (s.shape.index, ee);
        }
        t.row(vec![s.shape.index.to_string(), fmt(ee, 2), fmt(want, 2)]);
    }
    format!(
        "== Fig. 12: energy efficiency ==\n{}\n\
         peak {:.2} TOPS/W at layer {} (paper: 13.43 at layer 10);\n\
         average {:.2} TOPS/W (paper: 11.13)\n",
        t.render(),
        peak.1,
        peak.0,
        sum / stats.len() as f64
    )
}

/// Fig. 13: throughput per layer.
#[must_use]
pub fn fig13() -> String {
    let mut t = Table::new(vec!["layer", "GOPS", "paper GOPS"]);
    for (l, &want) in mobilenet_v1_cifar10()
        .iter()
        .zip(&paperdata::THROUGHPUT_GOPS)
    {
        t.row(vec![
            l.index.to_string(),
            fmt(timing::layer_throughput_gops(l, &cfg()), 1),
            fmt(want, 1),
        ]);
    }
    let nt = timing::network_timing(&mobilenet_v1_cifar10(), &cfg());
    format!(
        "== Fig. 13: throughput ==\n{}\n\
         peak {:.1} GOPS (paper 1024), average {:.1} GOPS (paper 981.42)\n",
        t.render(),
        nt.peak_gops,
        nt.average_gops
    )
}

/// Table III: comparison with state-of-the-art works.
#[must_use]
pub fn table3() -> String {
    let (stats, model) = calibrated_energy();
    // This work's measured peak point: layer 10.
    let power = model.layer_power_mw(&stats[10], &cfg());
    let tp = timing::layer_throughput_gops(&mobilenet_v1_cifar10()[10], &cfg());
    let ours = compare::this_work(power, tp, AreaBreakdown::paper().total_mm2());
    let mut t = Table::new(vec![
        "design",
        "tech",
        "V",
        "bits",
        "PEs",
        "mW",
        "GOPS",
        "TOPS/W",
        "GOPS/mm2",
        "norm EE (ours)",
        "norm EE (paper)",
        "norm AE (ours)",
        "norm AE (paper)",
    ]);
    for e in compare::sota_entries() {
        t.row(vec![
            e.name.to_owned(),
            format!("{}nm", e.point.tech_nm),
            fmt(e.point.voltage, 2),
            e.point.precision_bits.to_string(),
            e.pe_count.to_string(),
            fmt(e.power_mw, 1),
            fmt(e.throughput_gops, 1),
            fmt(e.energy_eff, 2),
            fmt(e.area_eff, 1),
            fmt(e.our_norm_ee(), 2),
            fmt(e.paper_norm_ee, 2),
            fmt(e.our_norm_ae(), 1),
            fmt(e.paper_norm_ae, 1),
        ]);
    }
    t.row(vec![
        "This Work".into(),
        "22nm".into(),
        "0.80".into(),
        "8".into(),
        "800".into(),
        fmt(ours.power_mw, 1),
        fmt(ours.throughput_gops, 2),
        fmt(ours.energy_eff, 2),
        fmt(ours.area_eff, 1),
        fmt(ours.energy_eff, 2),
        fmt(paperdata::headline::PEAK_TOPS_W, 2),
        fmt(ours.area_eff, 1),
        fmt(paperdata::headline::AREA_EFF_GOPS_MM2, 1),
    ]);
    let advantages = compare::ee_advantages(&ours, &compare::sota_entries());
    let adv: Vec<String> = advantages
        .iter()
        .map(|(n, f)| format!("{n}: {f:.2}x"))
        .collect();
    format!(
        "== Table III: comparison with state-of-the-art ==\n{}\n\
         normalized-EE advantage of this work: {}\n\
         (paper quotes 1.74x / 3.11x / 1.37x / 2.65x against its own normalization)\n",
        t.render(),
        adv.join(", ")
    )
}

/// Ablation: dual-parallel + streaming vs serial-dual with round-trip.
#[must_use]
pub fn ablation() -> String {
    let layers = mobilenet_v1_cifar10();
    let (_, model) = calibrated_energy();
    let mut t = Table::new(vec![
        "layer",
        "EDEA cyc",
        "serial cyc",
        "speedup",
        "roundtrip bytes",
    ]);
    let mut edea_c = 0u64;
    let mut serial_c = 0u64;
    let mut extra = 0u64;
    for l in &layers {
        let e = timing::layer_cycles(l, &cfg()).total();
        let s = serial_dual(l, &cfg());
        edea_c += e;
        serial_c += s.cycles;
        extra += roundtrip_external_traffic(l);
        t.row(vec![
            l.index.to_string(),
            e.to_string(),
            s.cycles.to_string(),
            fmt(s.cycles as f64 / e as f64, 3),
            s.extra_external_bytes.to_string(),
        ]);
    }
    // Energy cost of the round-trip at the calibrated external energy:
    let extra_mj = extra as f64 * model.e_ext_pj_byte;
    format!(
        "== Ablation: what the dual parallel engines + direct transfer buy ==\n{}\n\
         network latency: {} vs {} cycles ({:.1}% saved by overlap);\n\
         external round-trip avoided: {} bytes ≈ {:.1} nJ per inference at the\n\
         calibrated interface energy ({} pJ/B)\n",
        t.render(),
        edea_c,
        serial_c,
        100.0 * (serial_c - edea_c) as f64 / serial_c as f64,
        extra,
        extra_mj / 1000.0,
        model.e_ext_pj_byte
    )
}

/// Extension study: scaling the PE arrays (the paper: "PE arrays are
/// friendly to scaling to enhance parallelism without reducing utilization
/// — in DWC the number of channels can be scaled, while in PWC both the
/// number of channels and kernels").
///
/// Sweeps `(Td, Tk)`, reporting PE count, area (from the calibrated unit
/// areas), network latency from both the analytic model and the clocked
/// pipeline (which exposes the stall regime Eq. 1 misses once `K/Tk < 3`),
/// and the resulting efficiency metrics.
#[must_use]
pub fn scale_study() -> String {
    use edea::core::area::{AreaBreakdown, UnitAreas};
    use edea::dse::TileConfig;
    let layers = mobilenet_v1_cifar10();
    let unit = UnitAreas::calibrated_22nm();
    let mut t = Table::new(vec![
        "Td",
        "Tk",
        "PEs",
        "area mm2",
        "analytic cyc",
        "clocked cyc",
        "stalls",
        "avg GOPS",
        "GOPS/mm2",
    ]);
    for (td, tk) in [(8, 16), (8, 32), (16, 16), (16, 32), (8, 64), (16, 64)] {
        let mut c = cfg();
        c.tile = TileConfig::new(2, 2, td, tk, 3);
        c.intermediate_buf_bytes = 2 * 4 * td;
        let area = AreaBreakdown::from_unit_areas(&c, &unit);
        let mut analytic = 0u64;
        let mut clocked = 0u64;
        let mut ops = 0u64;
        let mut stalled_layers = 0u32;
        for l in &layers {
            let a = timing::layer_cycles(l, &c).total();
            let p = pipeline::simulate_layer(l, &c, 0).total_cycles;
            analytic += a;
            clocked += p;
            ops += l.total_ops();
            if p > a {
                stalled_layers += 1;
            }
        }
        let gops = ops as f64 / (clocked as f64 * c.period_ns());
        t.row(vec![
            td.to_string(),
            tk.to_string(),
            c.pe_count().to_string(),
            fmt(area.total_mm2(), 3),
            analytic.to_string(),
            clocked.to_string(),
            stalled_layers.to_string(),
            fmt(gops, 1),
            fmt(gops / area.total_mm2(), 1),
        ]);
    }
    format!(
        "== Extension: scaling the PE arrays ==\n{}\n\
         Tk=64 configurations hit the Kt<3 stall regime on wide layers (the\n\
         clocked pipeline exceeds Eq. 1) — scaling Td instead keeps the\n\
         bubble-free schedule, confirming the paper's scaling guidance.\n",
        t.render()
    )
}

/// Extension study: sensitivity to the ifmap-buffer portion limit (Eq. 2's
/// "number of tiled ifmaps"). Larger portions amortize the 9-cycle
/// initiation but quadratically grow the psum SRAM residency.
#[must_use]
pub fn portion_study() -> String {
    let layers = mobilenet_v1_cifar10();
    let mut t = Table::new(vec![
        "portion",
        "init cycles",
        "total cycles",
        "avg GOPS",
        "max psum KiB",
    ]);
    for limit in [2usize, 4, 8, 16, 32] {
        let mut c = cfg();
        c.portion_limit = limit;
        let mut total = 0u64;
        let mut init = 0u64;
        let mut ops = 0u64;
        let mut max_psum = 0usize;
        for l in &layers {
            let b = timing::layer_cycles(l, &c);
            total += b.total();
            init += b.init;
            ops += l.total_ops();
            let edge = l.out_spatial().min(limit);
            max_psum = max_psum.max(edge * edge * l.k_out * 4);
        }
        t.row(vec![
            format!("{limit}x{limit}"),
            init.to_string(),
            total.to_string(),
            fmt(ops as f64 / (total as f64 * c.period_ns()), 1),
            fmt(max_psum as f64 / 1024.0, 0),
        ]);
    }
    format!(
        "== Extension: portion-limit sensitivity (Eq. 2) ==\n{}\n\
         8x8 is the knee: 98.7% of the no-portioning throughput at a quarter\n\
         of its psum SRAM — consistent with the silicon's choice.\n",
        t.render()
    )
}

/// Extension study: batched multi-image inference with weight residency.
///
/// The same argument that motivates the intermediate buffer — avoid
/// re-paying external transfers the datapath does not need — extends
/// across a batch: weight tiles and offline parameters fetched once can
/// serve every image, so external weight traffic per image falls as `1/N`
/// while ifmap reads, ofmap writes and cycles stay per-image (the 9-cycle
/// initiation is bound by the ifmap-slice fetch). The cost is psum SRAM:
/// one bank per in-flight image. The `N = 1` column **is** the per-image
/// baseline — bit-for-bit the same accounting as every other experiment.
#[must_use]
pub fn batch_sweep() -> String {
    use edea::core::power::{paper_batch_layer_stats, paper_layer_stats};
    use edea::core::schedule::WeightResidency;
    use edea::core::stats::NetworkStats;

    let c = cfg();
    let layers = mobilenet_v1_cifar10();
    let (_, model) = calibrated_energy();

    // The per-image baseline this sweep amortizes against.
    let baseline = NetworkStats {
        layers: paper_layer_stats(&c),
    };
    let base_ext = baseline.external_total();
    let base_weights = baseline.external_weight_total();
    // Peak-efficiency point (layer 10), as in Table III.
    let stats10 = &baseline.layers[10];
    let lat10_ns = stats10.cycles as f64 * c.period_ns();
    let power10 = model.layer_power_mw(stats10, &c);
    let tp10 = timing::layer_throughput_gops(&layers[10], &c);
    let weights10 = (stats10.external.weight_reads + stats10.external.param_reads) as f64;

    // Worst single-image portion psum residency over the network (layer 3).
    let bank_bytes = layers
        .iter()
        .map(|l| l.out_spatial().min(c.portion_limit).pow(2) * l.k_out * 4)
        .max()
        .expect("non-empty workload");

    let mut t = Table::new(vec![
        "N",
        "wgt B/img",
        "DRAM B/img",
        "cyc/img",
        "psum KiB",
        "IO nJ/img",
        "TOPS/W @L10",
    ]);
    let mut ee_rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let net = paper_batch_layer_stats(&c, n, WeightResidency::PerBatch);
        let bt = timing::batch_network_timing(&layers, &c, n);
        // Layer-10 power with the interface's weight stream amortized.
        let io_saving_mw = model.e_ext_pj_byte * weights10 * (1.0 - 1.0 / n as f64) / lat10_ns;
        let row = edea::core::compare::this_work_batched(n, power10 - io_saving_mw, tp10, 0.58);
        t.row(vec![
            n.to_string(),
            fmt(net.weight_bytes_per_image(), 1),
            fmt(net.external_per_image(), 1),
            bt.cycles_per_image.to_string(),
            fmt((n * bank_bytes) as f64 / 1024.0, 0),
            fmt(model.e_ext_pj_byte * net.external_per_image() / 1000.0, 2),
            fmt(row.energy_eff, 3),
        ]);
        ee_rows.push(format!("{}: {:.3} TOPS/W", row.name, row.energy_eff));
    }
    let one = paper_batch_layer_stats(&c, 1, WeightResidency::PerBatch);
    format!(
        "== Extension: batched inference with weight residency ==\n{}\n\
         N=1 column vs per-image baseline: {} vs {} DRAM bytes \
         ({} vs {} weight bytes) — identical by construction;\n\
         weight traffic/image falls as 1/N while cycles/image stay \
         initiation-bound; the cost is one psum bank per in-flight image.\n\
         Table III extension rows: {}\n",
        t.render(),
        one.external_total(),
        base_ext,
        one.external_weight_total(),
        base_weights,
        ee_rows.join(", ")
    )
}

/// Extension study: the serving layer under offered load.
///
/// Drives seeded Poisson request streams through the batch-forming
/// [`Scheduler`](edea::serve::Scheduler) on the analytic backend (same
/// service/traffic accounting as the simulator, equality-tested in the
/// serving suite) and sweeps the offered load from well under to well over
/// capacity. As queues deepen, the scheduler forms larger batches and the
/// per-image external weight traffic falls toward `1/max_batch` of the
/// single-image figure — the batch-residency amortization of `batch_sweep`
/// emerging *dynamically* from arrival statistics instead of a fixed `N`.
/// Latency buys the batching: the p99 climbs with load while throughput
/// approaches the initiation-bound service rate.
#[must_use]
pub fn serve_sweep() -> String {
    use edea::serve::{arrivals, AnalyticBackend, Backend, Policy, Request, Scheduler};
    use edea::tensor::Tensor3;

    let c = cfg();
    let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &c).expect("paper workload maps");
    let service = backend.cost().per_image_cycles();
    let single_weights = backend.cost().weight_bytes();
    let n = 64;
    let policy = Policy::new(8, service).expect("policy");
    let scheduler = Scheduler::new(policy);
    let (d, h, w) = backend.input_shape();
    let slo = 4 * service;

    let mut t = Table::new(vec![
        "load x",
        "batches",
        "mean N",
        "wgt B/img",
        "p50 lat",
        "p99 lat",
        "img/s",
        "SLO %",
    ]);
    for (i, load) in [0.25, 0.5, 1.0, 2.0, 4.0].iter().enumerate() {
        let ticks = arrivals::poisson(n, service as f64 / load, 7000 + i as u64);
        let inputs = (0..n).map(|_| Tensor3::<i8>::zeros(d, h, w)).collect();
        let report = scheduler
            .serve(&backend, Request::stream(&ticks, inputs).expect("stream"))
            .expect("serve");
        t.row(vec![
            fmt(*load, 2),
            report.batches.len().to_string(),
            fmt(report.mean_batch_size(), 2),
            fmt(report.weight_bytes_per_image(), 1),
            report.p50().to_string(),
            report.p99().to_string(),
            fmt(report.throughput_images_per_second(&c), 0),
            fmt(100.0 * report.slo_attainment(slo), 1),
        ]);
    }
    format!(
        "== Extension: serving under offered load (scheduler over run_batch) ==\n\
         {n} Poisson requests per load point; policy max_batch = {}, \
         max_wait = {service} ticks; SLO = {slo} ticks; \
         service = {service} cycles/img, {single_weights} weight B/img unbatched.\n{}\n\
         under light load batches stay small and weight B/img sits near the\n\
         unbatched figure; as load crosses capacity queues deepen, batches fill\n\
         toward max_batch and weight B/img falls toward 1/{} of it — the\n\
         run_batch amortization formed dynamically by arrival statistics.\n\
         Outputs stay bit-identical to the per-image path (asserted against\n\
         run_network and the golden executor in tests/serving.rs).\n",
        policy.max_batch,
        t.render(),
        policy.max_batch,
    )
}

/// Renders the pool sweep table for the given `(load, seed)` points and
/// replica counts (the body of [`pool_sweep`]; the smoke variant reuses it
/// with a reduced grid).
fn pool_sweep_table(points: &[(f64, u64)], replicas: &[usize]) -> String {
    use edea::pool::{DispatchPolicy, Dispatcher, Pool};
    use edea::serve::{arrivals, AnalyticBackend, Backend, Policy, Request};
    use edea::tensor::Tensor3;

    let c = cfg();
    let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &c).expect("paper workload maps");
    let service = backend.cost().per_image_cycles();
    let n = 64;
    let policy = Policy::new(8, service).expect("policy");
    let (d, h, w) = backend.input_shape();
    let slo = 4 * service;

    let mut t = Table::new(vec![
        "load x",
        "N",
        "batches",
        "mean B",
        "wgt B/img",
        "p50 lat",
        "p95 lat",
        "p99 lat",
        "img/s",
        "SLO %",
        "util",
    ]);
    for &(load, seed) in points {
        let ticks = arrivals::poisson(n, service as f64 / load, seed);
        for &workers in replicas {
            let pool = Pool::replicate(backend.clone(), workers).expect("pool");
            let inputs = (0..n).map(|_| Tensor3::<i8>::zeros(d, h, w)).collect();
            let report = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
                .serve(&pool, Request::stream(&ticks, inputs).expect("stream"))
                .expect("serve");
            let s = &report.serve;
            t.row(vec![
                fmt(load, 2),
                workers.to_string(),
                s.batches.len().to_string(),
                fmt(s.mean_batch_size(), 2),
                fmt(s.weight_bytes_per_image(), 1),
                s.p50().to_string(),
                s.p95().to_string(),
                s.p99().to_string(),
                fmt(s.throughput_images_per_second(&c), 0),
                fmt(100.0 * s.slo_attainment(slo), 1),
                fmt(report.mean_utilization(), 2),
            ]);
        }
    }
    t.render()
}

/// Extension study: the serving scheduler sharded across an accelerator
/// pool.
///
/// Replays the `serve_sweep` Poisson streams (same seeds, same
/// `max_batch = 8` / `max_wait = one service time` policy) against pools
/// of N = 1–8 analytic workers behind the least-loaded dispatcher. The
/// N = 1 rows are **bit-identical** to the single-backend `serve_sweep`
/// baseline (the scheduler is the pool's N = 1 case). Two system-level
/// effects the single-instance model cannot show:
///
/// * **Throughput scales with N until arrival-rate saturation** — under
///   4× overload, doubling the pool roughly doubles served images/s
///   until the pool capacity crosses the offered load, where the curve
///   knees and extra workers only idle (utilization falls).
/// * **Replication costs weight DRAM traffic** — each worker fetches its
///   own resident weights per dispatch, and spreading a fixed stream
///   shortens queues, so batches shrink and the aggregate weight bytes
///   per image *rise* with N — the inverse of `batch_sweep`'s 1/N curve.
#[must_use]
pub fn pool_sweep() -> String {
    use edea::pool::{DispatchPolicy, Dispatcher, Pool};
    use edea::serve::{arrivals, AnalyticBackend, Backend, Policy, Request};
    use edea::tensor::Tensor3;

    let c = cfg();
    let backend = AnalyticBackend::new(&mobilenet_v1_cifar10(), &c).expect("paper workload maps");
    let service = backend.cost().per_image_cycles();
    let single_weights = backend.cost().weight_bytes();
    let policy = Policy::new(8, service).expect("policy");
    // The serve_sweep (load, seed) pairs for 0.5×, 2× and 4× capacity —
    // reusing the seeds keeps the N = 1 rows bit-identical to that
    // baseline fixture.
    let points = [(0.5, 7001), (2.0, 7003), (4.0, 7004)];
    let table = pool_sweep_table(&points, &[1, 2, 3, 4, 5, 6, 7, 8]);

    // Dispatch-policy face-off at 4× load on a pool of 4.
    let n = 64;
    let (d, h, w) = backend.input_shape();
    let ticks = arrivals::poisson(n, service as f64 / 4.0, 7004);
    let mut pt = Table::new(vec![
        "policy",
        "makespan",
        "mean B",
        "wgt B/img",
        "p99 lat",
        "img/s",
        "util min-max",
    ]);
    for dp in [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::JoinShortestQueue,
    ] {
        let pool = Pool::replicate(backend.clone(), 4).expect("pool");
        let inputs = (0..n).map(|_| Tensor3::<i8>::zeros(d, h, w)).collect();
        let report = Dispatcher::new(policy, dp)
            .serve(&pool, Request::stream(&ticks, inputs).expect("stream"))
            .expect("serve");
        let (lo, hi) = report.utilization_range();
        pt.row(vec![
            dp.to_string(),
            report.serve.makespan().to_string(),
            fmt(report.serve.mean_batch_size(), 2),
            fmt(report.serve.weight_bytes_per_image(), 1),
            report.serve.p99().to_string(),
            fmt(report.serve.throughput_images_per_second(&c), 0),
            format!("{}-{}", fmt(lo, 2), fmt(hi, 2)),
        ]);
    }

    format!(
        "== Extension: multi-accelerator pool (scheduler sharded over N instances) ==\n\
         {n} Poisson requests per load point (serve_sweep seeds); policy max_batch = {}, \
         max_wait = {service} ticks; least-loaded dispatch; SLO = {} ticks; \
         service = {service} cycles/img, {single_weights} weight B/img unbatched.\n{}\n\
         throughput scales with N until pool capacity crosses the offered load\n\
         (the knee: beyond it extra workers only dilute utilization), while\n\
         weight B/img *rises* with N at fixed load — shorter queues form smaller\n\
         batches and every replica pays its own per-dispatch weight fetch: the\n\
         replication cost of horizontal scaling, the inverse of batch_sweep's 1/N\n\
         amortization. N = 1 rows are bit-identical to the serve_sweep baseline\n\
         (the single-backend scheduler is the pool's N = 1 case, pinned in\n\
         tests/pool.rs).\n\n\
         Dispatch policies at 4.00x load, N = 4:\n{}\n\
         round-robin is state-blind, so consecutive requests can queue behind a\n\
         busy worker while another idles; join-shortest-queue sees only queued\n\
         work; least-loaded counts queued + in-service requests and edges both\n\
         out on makespan while forming the largest batches (least weight\n\
         traffic) — the policies trade DRAM amortization against latency.\n",
        policy.max_batch,
        4 * service,
        table,
        pt.render(),
    )
}

/// Extension: the Fig.-11 sparsity profile vs a near-dense control,
/// through the serving stack — the activation landscape the zero-skipping
/// engine kernels exploit.
///
/// Two deployments are built from the *same* synthetic model and
/// calibration set, differing only in the shaped sparsity profile; the
/// same image batch runs through [`edea::Deployment::run_batch`] on each. The
/// table reports, per layer, the measured intermediate-map zero fraction
/// and the gated-slot fraction of both engines. Everything printed is
/// deterministic (modeled slots, not wall-clock), so the output is pinned
/// as a golden fixture; the wall-clock effect of the skip kernels on the
/// same shaped workload is measured by `benches/sim_profile.rs` and
/// recorded in EXPERIMENTS.md.
#[must_use]
pub fn sparsity_sweep() -> String {
    format!(
        "== Extension: Fig.-11 sparsity vs near-dense control (zero-skipping kernels) ==\n{}",
        sparsity_sweep_table(0.5, 4, 8484)
    )
}

/// Reduced [`sparsity_sweep`] for CI smoke runs (`EDEA_BENCH_SMOKE=1`):
/// width 0.25, batch of 2 — exercises both deployments and the skip
/// kernels end to end in a fraction of the time.
#[must_use]
pub fn sparsity_sweep_smoke() -> String {
    format!(
        "== Extension: Fig.-11 sparsity vs near-dense control (smoke: width 0.25, batch 2) ==\n{}",
        sparsity_sweep_table(0.25, 2, 8484)
    )
}

/// Renders the sparse-vs-dense comparison for one model width and batch
/// size (the body of [`sparsity_sweep`]; the smoke variant reuses it with
/// a reduced workload).
fn sparsity_sweep_table(width: f64, batch: usize, seed: u64) -> String {
    use edea::nn::mobilenet::MobileNetV1;
    use edea::nn::sparsity::SparsityProfile;
    use edea::tensor::{rng, Batch};
    use edea::Deployment;

    let calib = rng::synthetic_batch(2, 3, 32, 32, seed + 1);
    let images = rng::synthetic_batch(batch, 3, 32, 32, seed + 2);
    let deploy = |profile: SparsityProfile| {
        Deployment::builder()
            .model(MobileNetV1::synthetic(width, seed))
            .calibration(calib.clone())
            .sparsity(profile)
            .build()
            .expect("deployment builds")
    };
    let run = |d: &Deployment| {
        let inputs: Vec<_> = images.iter().map(|img| d.prepare(img)).collect();
        d.run_batch(&Batch::new(inputs).expect("non-empty batch"))
            .expect("batch runs")
    };
    let layers = MobileNetV1::synthetic(width, seed).blocks().len();
    let dense = run(&deploy(SparsityProfile::near_dense(layers)));
    let paper = run(&deploy(SparsityProfile::paper()));

    let mut t = Table::new(vec![
        "layer",
        "mid z% dn",
        "mid z% fig11",
        "DWC gate% dn",
        "DWC gate% fig11",
        "PWC gate% dn",
        "PWC gate% fig11",
    ]);
    for (d, p) in dense.stats.layers.iter().zip(&paper.stats.layers) {
        t.row(vec![
            p.shape.index.to_string(),
            fmt(100.0 * d.mid_zero, 1),
            fmt(100.0 * p.mid_zero, 1),
            fmt(100.0 * d.dwc_activity.gating_fraction(), 1),
            fmt(100.0 * p.dwc_activity.gating_fraction(), 1),
            fmt(100.0 * d.pwc_activity.gating_fraction(), 1),
            fmt(100.0 * p.pwc_activity.gating_fraction(), 1),
        ]);
    }
    let gated = |run: &edea::core::accelerator::BatchRun| {
        let (mut slots, mut zero) = (0u64, 0u64);
        for l in &run.stats.layers {
            slots += l.dwc_activity.mac_slots + l.pwc_activity.mac_slots;
            zero += l.dwc_activity.zero_act_slots + l.pwc_activity.zero_act_slots;
        }
        100.0 * zero as f64 / slots as f64
    };
    format!(
        "width {width}, batch {batch}, same model/calibration seeds; near-dense (dn) \
         control = 5% zeros/layer, fig11 = the paper profile.\n{}\n\
         network gated-slot fraction: {}% near-dense vs {}% fig11 \
         (modeled cycles identical: {} vs {} per image — the hardware never \
         skips a cycle, it clock-gates the slot; the *simulator* skips the \
         multiply, which is where the wall-clock win in EXPERIMENTS.md comes \
         from).\n",
        t.render(),
        fmt(gated(&dense), 1),
        fmt(gated(&paper), 1),
        dense.stats.cycles_per_image(),
        paper.stats.cycles_per_image(),
    )
}

/// Extension: the plan-time race audit ([`edea::core::plan::audit`]) over
/// the width-scaled MobileNets.
///
/// For every layer of the width-{0.25, 0.5, 0.75, 1.0} networks, the audit
/// lowers each lane's write set (portion paste windows, per-`(portion,
/// image)` slot windows) to row-major index intervals and proves — before
/// any thread runs — pairwise disjointness across lanes, exact ofmap
/// coverage, a total slot partition, and every buffer residency within its
/// configured capacity, at 1/2/4/8 lanes with 4 images in flight. The
/// table is pure plan math (no weights, no inputs, no wall clock), so the
/// output is pinned as a golden fixture.
///
/// # Panics
///
/// Panics if any layer fails its audit — this artifact *is* the proof.
#[must_use]
pub fn plan_audit() -> String {
    use edea::core::par::Parallelism;
    use edea::core::plan::audit::audit_network;
    use edea::nn::workload::scale_width;

    let c = cfg();
    let lane_counts = [1usize, 2, 4, 8];
    let batch = 4usize;
    let mut t = Table::new(vec![
        "width",
        "layers",
        "portions",
        "intervals",
        "batch-4 psum KiB",
        "lanes proven",
    ]);
    for width in [0.25, 0.5, 0.75, 1.0] {
        let shapes = scale_width(&mobilenet_v1_cifar10(), width, 8).expect("valid width");
        let mut portions = 0usize;
        let mut intervals = 0usize;
        let mut psum_peak = 0usize;
        for &n in &lane_counts {
            let par = Parallelism::new(n).expect("lane counts are in range");
            let audits = audit_network(&shapes, &c, par, batch)
                .unwrap_or_else(|e| panic!("width {width}, {n} lanes: audit failed: {e}"));
            portions = audits.iter().map(|a| a.portions).sum();
            intervals = audits.iter().map(|a| a.intervals).sum();
            psum_peak = audits
                .iter()
                .fold(psum_peak, |acc, a| acc.max(a.psum_peak_bytes));
        }
        t.row(vec![
            fmt(width, 2),
            shapes.len().to_string(),
            portions.to_string(),
            intervals.to_string(),
            fmt(psum_peak as f64 / 1024.0, 0),
            lane_counts
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    format!(
        "== Extension: plan-time race audit (determinism contract proven statically) ==\n{}\n\
         Every layer of every width: lane write sets pairwise disjoint, portions\n\
         cover the ofmap exactly, the (portion, image) slot partition is total,\n\
         and all buffer residencies fit — proven from the plan alone, before any\n\
         thread runs.\n",
        t.render()
    )
}

/// Reduced [`pool_sweep`] for CI smoke runs (`EDEA_BENCH_SMOKE=1`): one
/// load point, N ∈ {1, 2} — exercises the full pool dispatch path in a
/// fraction of the time.
#[must_use]
pub fn pool_sweep_smoke() -> String {
    format!(
        "== Extension: multi-accelerator pool (smoke: 1x load, N = 1..2) ==\n{}",
        pool_sweep_table(&[(1.0, 7002)], &[1, 2])
    )
}

/// Extension: mixed-model serving — MobileNetV1 and MobileNetV2 traffic
/// interleaved over one accelerator pool.
///
/// One deployment holds both networks (v1 at width 0.5 as the primary,
/// v2 at width 0.25 sharing its stem shape as `net1`); a Poisson stream
/// dials the v2 share from none to all. Per-request routing keeps batches
/// single-network (a worker's batch is the longest same-network queue
/// prefix), and dispatching a batch to a worker whose resident weights
/// belong to the *other* network pays that network's full weight refetch
/// as **model-switch traffic** — a distinct external-traffic category the
/// single-model serving stack has no analogue for. The pure-v1 row is the
/// control: zero switch traffic, identical to single-model serving.
/// Everything printed is deterministic (seeded streams, simulated clock),
/// so the output is pinned as a golden fixture.
#[must_use]
pub fn mixed_serve() -> String {
    format!(
        "== Extension: mixed-model serving (v1 + v2 over one pool, model-switch traffic) ==\n{}",
        mixed_serve_table(
            48,
            2,
            &[("none", 0), ("1/4", 4), ("1/2", 2), ("all", 1)],
            9101
        )
    )
}

/// Reduced [`mixed_serve`] for CI smoke runs (`EDEA_BENCH_SMOKE=1`):
/// 8 requests, one v2 share — exercises the mixed dispatch, per-network
/// planning and switch accounting end to end in a fraction of the time.
#[must_use]
pub fn mixed_serve_smoke() -> String {
    format!(
        "== Extension: mixed-model serving (smoke: 8 requests, 1/2 v2 share) ==\n{}",
        mixed_serve_table(8, 2, &[("1/2", 2)], 9101)
    )
}

/// Renders the mixed-model serving study for one stream size and replica
/// count (the body of [`mixed_serve`]; the smoke variant reuses it
/// reduced). `shares` are `(label, period)` pairs: every `period`-th
/// request targets the v2 network (`0` = pure v1).
fn mixed_serve_table(n: usize, replicas: usize, shares: &[(&str, usize)], seed: u64) -> String {
    use edea::nn::mobilenet::{MobileNetV1, MobileNetV2};
    use edea::nn::workload::NetworkId;
    use edea::pool::DispatchPolicy;
    use edea::serve::{arrivals, Backend, Policy, Request};
    use edea::tensor::rng;
    use edea::Deployment;

    // v1 at width 0.5 and v2 at width 0.25 share the (16, 32, 32) stem
    // output shape — the mixed-model precondition.
    let d = Deployment::builder()
        .model(MobileNetV1::synthetic(0.5, seed))
        .model_v2(MobileNetV2::synthetic(0.25, seed + 10))
        .calibration(rng::synthetic_batch(2, 3, 32, 32, seed + 1))
        .replicas(replicas)
        .build()
        .expect("mixed deployment builds");
    let backend = d.simulator_backend();
    let v1_service = backend.dispatch_cycles(1).expect("simulator predicts");
    let v2_service = backend
        .dispatch_cycles_for(NetworkId(1), 1)
        .expect("v2 registered");
    let v1_switch = backend.switch_bytes(NetworkId::PRIMARY);
    let v2_switch = backend.switch_bytes(NetworkId(1));
    let policy = Policy::new(4, v1_service).expect("policy");
    let ticks = arrivals::poisson(n, v1_service as f64 / 1.5, seed + 2);
    let images = rng::synthetic_batch(n, 3, 32, 32, seed + 3);

    let mut t = Table::new(vec![
        "v2 share",
        "batches",
        "mean B",
        "v1 lat",
        "v2 lat",
        "switch B",
        "switch B/img",
        "wgt B/img",
    ]);
    for &(label, period) in shares {
        let nets: Vec<NetworkId> = (0..n)
            .map(|i| {
                if period > 0 && i % period == period - 1 {
                    NetworkId(1)
                } else {
                    NetworkId::PRIMARY
                }
            })
            .collect();
        let inputs = images
            .iter()
            .zip(&nets)
            .map(|(img, &net)| d.prepare_for(net, img).expect("registered network"))
            .collect();
        let requests = Request::stream_mixed(&ticks, &nets, inputs).expect("stream");
        let report = d
            .serve_pool(policy, DispatchPolicy::LeastLoaded, requests)
            .expect("mixed serve");
        let s = &report.serve;
        let lat = |net: NetworkId| {
            s.mean_latency_for(net)
                .map_or_else(|| "-".to_owned(), |l| fmt(l, 0))
        };
        t.row(vec![
            label.to_owned(),
            s.batches.len().to_string(),
            fmt(s.mean_batch_size(), 2),
            lat(NetworkId::PRIMARY),
            lat(NetworkId(1)),
            s.switch_bytes_total().to_string(),
            fmt(s.switch_bytes_total() as f64 / n as f64, 1),
            fmt(s.weight_bytes_per_image(), 1),
        ]);
    }
    format!(
        "{n} Poisson requests over {replicas} workers, least-loaded dispatch; \
         policy max_batch = {}, max_wait = {v1_service} ticks; every k-th request \
         targets v2.\n\
         service: v1 {v1_service} / v2 {v2_service} cycles per image; \
         switch refetch: v1 {v1_switch} / v2 {v2_switch} B.\n{}\n\
         batches never mix networks (a worker dispatches the longest\n\
         same-network prefix of its queue), so raising the v2 share fragments\n\
         batches and every residency flip pays the incoming network's full\n\
         weight refetch — switch B/img is the price of model diversity on a\n\
         weight-resident accelerator, a traffic category the per-batch weight\n\
         fetch does not contain. The pure-v1 row is the single-model control:\n\
         zero switch traffic, bit-identical to the single-model serving path.\n",
        policy.max_batch,
        t.render(),
    )
}

/// Observability export: a seeded 64-request mixed-model pool run rendered
/// as a Chrome trace-event JSON (opens in Perfetto / `chrome://tracing`)
/// and a Prometheus text exposition of the metrics registry.
///
/// Every timestamp is a simulated tick and every event is derived from the
/// run's assembled outcome, so both renderings are bit-identical at every
/// `EDEA_THREADS` setting (pinned by `telemetry_identical_across_threads`
/// below) and pinned character for character as a golden fixture.
#[must_use]
pub fn trace_export() -> String {
    trace_export_run(64, 9301)
}

/// Reduced [`trace_export`] for CI smoke runs (`EDEA_BENCH_SMOKE=1`):
/// 8 requests — exercises the recorder, both exporters and the registry
/// cross-check end to end in a fraction of the time.
#[must_use]
pub fn trace_export_smoke() -> String {
    trace_export_run(8, 9301)
}

/// The body of [`trace_export`]: an `n`-request mixed pool run observed by
/// a ring-buffer recorder, rendered in both export formats.
fn trace_export_run(n: usize, seed: u64) -> String {
    use edea::nn::mobilenet::{MobileNetV1, MobileNetV2};
    use edea::nn::workload::NetworkId;
    use edea::pool::DispatchPolicy;
    use edea::serve::{arrivals, Backend, Policy, Request};
    use edea::telemetry::{derive, export, metrics::Registry, Recorder};
    use edea::tensor::rng;
    use edea::Deployment;
    use std::sync::Arc;

    // The mixed-serve deployment shape: v1 at width 0.5 as the primary,
    // v2 at width 0.25 sharing its stem shape, two replicas — plus a
    // telemetry recorder observing every serve.
    let recorder = Arc::new(Recorder::new());
    let d = Deployment::builder()
        .model(MobileNetV1::synthetic(0.5, seed))
        .model_v2(MobileNetV2::synthetic(0.25, seed + 10))
        .calibration(rng::synthetic_batch(2, 3, 32, 32, seed + 1))
        .replicas(2)
        .telemetry(recorder.clone())
        .build()
        .expect("mixed deployment builds");
    let service = d
        .simulator_backend()
        .dispatch_cycles(1)
        .expect("simulator predicts");
    let policy = Policy::new(4, service).expect("policy");
    let ticks = arrivals::poisson(n, service as f64 / 1.5, seed + 2);
    let images = rng::synthetic_batch(n, 3, 32, 32, seed + 3);
    // Every third request targets v2, so the run switches models.
    let nets: Vec<NetworkId> = (0..n)
        .map(|i| {
            if i % 3 == 2 {
                NetworkId(1)
            } else {
                NetworkId::PRIMARY
            }
        })
        .collect();
    let inputs = images
        .iter()
        .zip(&nets)
        .map(|(img, &net)| d.prepare_for(net, img).expect("registered network"))
        .collect();
    let requests = Request::stream_mixed(&ticks, &nets, inputs).expect("stream");
    let report = d
        .serve_pool(policy, DispatchPolicy::LeastLoaded, requests)
        .expect("observed mixed serve");

    let events = recorder.events();
    assert_eq!(recorder.dropped(), 0, "recorder sized for the run");
    derive::check_well_formed(&events).expect("well-formed span tree");
    let registry = Registry::from_events(&events);
    // The two accounting paths must agree before anything is exported.
    assert_eq!(
        registry.counter("requests_total"),
        Some(n as u64),
        "registry vs request stream"
    );
    assert_eq!(
        registry.counter("switch_bytes_total"),
        Some(report.serve.switch_bytes_total()),
        "registry vs ServeReport switch traffic"
    );
    assert_eq!(
        registry.gauge("makespan_ticks"),
        Some(report.serve.makespan()),
        "registry vs ServeReport makespan"
    );

    format!(
        "== Observability: telemetry export ({n} mixed requests, 2 workers) ==\n\
         {} events; {} batches; makespan {} ticks; switch traffic {} B.\n\
         \n\
         -- Chrome trace-event JSON (Perfetto / chrome://tracing; ts in simulated ticks) --\n\
         {}\n\
         -- Prometheus text exposition --\n\
         {}",
        events.len(),
        report.serve.batches.len(),
        report.serve.makespan(),
        report.serve.switch_bytes_total(),
        export::chrome_trace(&events),
        export::prometheus(&registry),
    )
}

/// Heavyweight verification: runs the real width-1.0 functional simulation
/// and cross-checks analytic timing, golden-executor equivalence, and the
/// sparsity anchors. Takes a few seconds in release mode.
#[must_use]
pub fn verify_sim() -> String {
    use edea::nn::mobilenet::MobileNetV1;
    use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
    use edea::nn::sparsity::SparsityProfile;
    use edea::tensor::rng;
    use edea::Edea;

    let mut model = MobileNetV1::synthetic(1.0, 4242);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 4243);
    let (qnet, report) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .expect("calibration");
    let edea = Edea::new(cfg()).unwrap();
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_network(&qnet, &input).expect("run");
    let golden = edea::nn::executor::run_network(&qnet, &input);
    assert_eq!(run.output, golden.output, "bit-exactness at width 1.0");
    let mut t = Table::new(vec![
        "layer",
        "cycles",
        "analytic",
        "GOPS",
        "DWC zero %",
        "target %",
    ]);
    let profile = SparsityProfile::paper();
    for s in &run.stats.layers {
        t.row(vec![
            s.shape.index.to_string(),
            s.cycles.to_string(),
            timing::layer_cycles(&s.shape, &cfg()).total().to_string(),
            fmt(s.throughput_gops(&cfg()), 1),
            fmt(100.0 * s.mid_zero, 1),
            fmt(100.0 * profile.dwc_zero[s.shape.index], 1),
        ]);
    }
    format!(
        "== width-1.0 functional simulation (bit-exact vs golden executor) ==\n{}\n\
         calibration-time layer-12 zeros: DWC {:.1}% PWC {:.1}% (paper 97.4/95.3)\n",
        t.render(),
        100.0 * report.dwc_zero[12],
        100.0 * report.pwc_zero[12]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_cases() {
        let s = table1();
        for case in ["Case1", "Case6"] {
            assert!(s.contains(case));
        }
    }

    #[test]
    fn fig2a_contains_800() {
        assert!(fig2a().contains("800"));
    }

    #[test]
    fn fig2b_selects_case6() {
        let s = fig2b();
        assert!(s.contains("optimum: La Tn=Tm=2 Case6"));
    }

    #[test]
    fn fig3_reports_total() {
        let s = fig3();
        assert!(s.contains("total"));
        assert!(s.contains("34.7"));
    }

    #[test]
    fn fig7_has_gantt() {
        let s = fig7();
        assert!(s.contains("PWC Engine Process"));
        assert!(s.contains('█'));
    }

    #[test]
    fn fig8_svg_is_valid() {
        let (report, svg) = fig8();
        assert!(report.contains("825.032"));
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn fig9_lists_components() {
        let s = fig9();
        assert!(s.contains("pwc") && s.contains("47.90"));
    }

    #[test]
    fn fig10_has_13_layers() {
        let s = fig10();
        assert!(s.contains("9344"));
    }

    #[test]
    fn fig11_and_12_and_13() {
        assert!(fig11().contains("117.7"));
        assert!(fig12().contains("13.43"));
        assert!(fig13().contains("905.6"));
    }

    #[test]
    fn table3_contains_all_designs() {
        let s = table3();
        for d in ["[16]", "[17]", "[18]", "[4] DWC", "This Work", "1678.5"] {
            assert!(s.contains(d), "missing {d}");
        }
    }

    #[test]
    fn ablation_shows_speedup() {
        assert!(ablation().contains("speedup"));
    }

    #[test]
    fn scale_study_flags_stall_regime() {
        let s = scale_study();
        assert!(s.contains("stalls"));
        // The paper configuration is bubble-free; Tk=64 variants are not.
        assert!(s.contains("800"));
    }

    #[test]
    fn portion_study_covers_silicon_choice() {
        let s = portion_study();
        assert!(s.contains("8x8"));
        assert!(s.contains("92784")); // the paper config's network cycles
    }

    #[test]
    fn batch_sweep_pins_baseline_and_amortizes() {
        let s = batch_sweep();
        // The N=1 column is the per-image baseline, bit-for-bit.
        assert!(s.contains("identical by construction"));
        assert!(s.contains("92784")); // cycles/image, batch-invariant
                                      // All five sweep points and the Table III extension rows render.
        for n in [1, 2, 4, 8, 16] {
            assert!(s.contains(&format!("This Work (N={n})")), "missing N={n}");
        }
    }

    #[test]
    fn serve_sweep_amortizes_under_load() {
        let s = serve_sweep();
        // Parse the table body: load → (mean batch size, weight B/img).
        let mut rows = std::collections::BTreeMap::new();
        for line in s.lines() {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            if cols.len() == 8 {
                if let (Ok(load), Ok(mean_n), Ok(wgt)) = (
                    cols[0].parse::<f64>(),
                    cols[2].parse::<f64>(),
                    cols[3].parse::<f64>(),
                ) {
                    rows.insert((load * 100.0).round() as u64, (mean_n, wgt));
                }
            }
        }
        let loads: Vec<u64> = rows.keys().copied().collect();
        assert_eq!(loads, vec![25, 50, 100, 200, 400], "load points in:\n{s}");
        // Over-capacity load must actually form batches, and weight bytes
        // per image must fall from the light-load figure as they do.
        let (light_n, light_wgt) = rows[&25];
        let (heavy_n, heavy_wgt) = rows[&400];
        assert!(light_n >= 1.0);
        assert!(heavy_n > 2.0, "4x load should batch: mean N {heavy_n}");
        assert!(
            heavy_wgt < light_wgt / 2.0,
            "weight B/img must fall with load: {heavy_wgt} vs {light_wgt}"
        );
        assert!(s.contains("max_batch = 8"));
    }

    #[test]
    fn pool_sweep_scales_and_shows_replication_cost() {
        let s = pool_sweep();
        // Parse the sweep body: (load, N) → (batches, mean B, wgt B/img,
        // p50, p99, img/s, SLO %).
        let mut rows = std::collections::BTreeMap::new();
        for line in s.lines() {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            if cols.len() == 11 {
                if let (Ok(load), Ok(n)) = (cols[0].parse::<f64>(), cols[1].parse::<usize>()) {
                    rows.insert(
                        ((load * 100.0).round() as u64, n),
                        (
                            cols[2].to_string(), // batches
                            cols[3].to_string(), // mean B
                            cols[4].to_string(), // wgt B/img
                            cols[5].to_string(), // p50
                            cols[7].to_string(), // p99
                            cols[8].to_string(), // img/s
                            cols[9].to_string(), // SLO %
                        ),
                    );
                }
            }
        }
        for load in [50u64, 200, 400] {
            for n in 1..=8usize {
                assert!(rows.contains_key(&(load, n)), "missing row ({load}, {n})");
            }
        }

        // The N = 1 rows are bit-identical to the serve_sweep baseline:
        // same batches, mean batch, weight B/img, p50, p99, img/s, SLO %.
        let serve = serve_sweep();
        for line in serve.lines() {
            let cols: Vec<&str> = line.split('|').map(str::trim).collect();
            if cols.len() == 8 {
                if let Ok(load) = cols[0].parse::<f64>() {
                    let key = ((load * 100.0).round() as u64, 1);
                    if let Some(row) = rows.get(&key) {
                        let want = (
                            cols[1].to_string(),
                            cols[2].to_string(),
                            cols[3].to_string(),
                            cols[4].to_string(),
                            cols[5].to_string(),
                            cols[6].to_string(),
                            cols[7].to_string(),
                        );
                        assert_eq!(row, &want, "N=1 row drifted from serve_sweep at {load}x");
                    }
                }
            }
        }

        let tput = |load: u64, n: usize| rows[&(load, n)].5.parse::<f64>().unwrap();
        let wgt = |load: u64, n: usize| rows[&(load, n)].2.parse::<f64>().unwrap();
        // Throughput scales with N under 4x overload until the pool
        // capacity crosses the offered load…
        assert!(tput(400, 2) > 1.5 * tput(400, 1));
        assert!(tput(400, 4) > 2.5 * tput(400, 1));
        // …then knees: the last doubling buys little.
        assert!(
            tput(400, 8) < 1.2 * tput(400, 4),
            "no saturation knee: {} vs {}",
            tput(400, 8),
            tput(400, 4)
        );
        // Replication cost: weight DRAM per image rises with N at fixed
        // load (up to a small queueing wiggle near the knee), toward the
        // unbatched single-image figure.
        for load in [50u64, 200, 400] {
            for n in 2..=8usize {
                assert!(
                    wgt(load, n) >= 0.95 * wgt(load, n - 1),
                    "weight B/img fell at load {load} N {n}"
                );
            }
            assert!(wgt(load, 8) > wgt(load, 1));
            assert!(wgt(load, 8) <= 3_354_144.0);
        }
        assert!(wgt(400, 8) > 4.0 * wgt(400, 1));
    }

    #[test]
    fn pool_sweep_smoke_is_reduced_but_well_formed() {
        let s = pool_sweep_smoke();
        assert!(s.contains("smoke"));
        // One load point, N = 1 and 2: exactly two data rows.
        let rows = s
            .lines()
            .filter(|l| l.split('|').count() == 11 && l.starts_with("1.00"))
            .count();
        assert_eq!(rows, 2, "smoke table:\n{s}");
    }
}
