//! Minimal aligned-text table rendering for the experiment reports.

/// A simple column-aligned table builder.
///
/// ```
/// use edea_bench::report::Table;
///
/// let mut t = Table::new(vec!["layer", "GOPS"]);
/// t.row(vec!["0".into(), "1024.0".into()]);
/// let s = t.render();
/// assert!(s.contains("layer"));
/// assert!(s.contains("1024.0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&'static str>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (c, (h, w)) in self.headers.iter().zip(&widths).enumerate() {
            out.push_str(&format!("{h:<w$}"));
            out.push_str(if c + 1 == cols { "\n" } else { " | " });
        }
        for (c, w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(*w));
            out.push_str(if c + 1 == cols { "\n" } else { "-+-" });
        }
        for row in &self.rows {
            for (c, (cell, w)) in row.iter().zip(&widths).enumerate() {
                out.push_str(&format!("{cell:<w$}"));
                out.push_str(if c + 1 == cols { "\n" } else { " | " });
            }
        }
        out
    }
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines are the same width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(1.0, 0), "1");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
