//! Benchmark harness for the EDEA reproduction.
//!
//! One function per table/figure of the paper's evaluation plus the
//! extension studies (ablation, PE scaling, portion sensitivity, and the
//! batched-inference weight-residency sweep); each returns the rendered
//! rows/series the paper reports (plus the paper's published values side by
//! side). The binaries in `src/bin` print them; the Criterion benches in
//! `benches/` time their regeneration; EXPERIMENTS.md records the
//! paper-vs-measured comparison. Every rendered artifact is pinned
//! character-for-character under `tests/golden/` — see this crate's
//! README.md for the `UPDATE_GOLDEN=1` workflow and why the vendored RNG
//! streams are load-bearing.
//!
//! ```
//! let out = edea_bench::experiments::fig13();
//! assert!(out.contains("973.5"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
