//! Observability export: renders a seeded 64-request mixed-model pool run
//! as a Chrome trace-event JSON (open it in Perfetto or
//! `chrome://tracing`) and a Prometheus text exposition of the telemetry
//! metrics registry. Every timestamp is a simulated tick; the output is
//! bit-identical at every `EDEA_THREADS` setting.
//! Run with: `cargo run -p edea-bench --bin trace_export --release`
//!
//! Set `EDEA_BENCH_SMOKE=1` for a reduced smoke pass (8 requests) — used
//! by CI to keep the recorder and both exporters executing without paying
//! the full run.

fn main() {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    if smoke {
        println!("{}", edea_bench::experiments::trace_export_smoke());
    } else {
        println!("{}", edea_bench::experiments::trace_export());
    }
}
