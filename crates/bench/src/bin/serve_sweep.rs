//! Extension: the serving layer under offered load — batch formation and
//! weight-traffic amortization from Poisson arrival statistics.
//! Run with: `cargo run -p edea-bench --bin serve_sweep --release`

fn main() {
    println!("{}", edea_bench::experiments::serve_sweep());
}
