//! Regenerates the paper's fig13 artifact. Run with:
//! `cargo run -p edea-bench --bin fig13 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig13());
}
