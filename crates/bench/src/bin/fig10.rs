//! Regenerates the paper's fig10 artifact. Run with:
//! `cargo run -p edea-bench --bin fig10 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig10());
}
