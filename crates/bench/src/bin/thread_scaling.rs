//! Host-thread scaling measurement: wall-clock of the *simulator itself*
//! (not the simulated machine — every simulated number is bit-identical
//! at every thread count, enforced by `parallel_identity`) as the scoped
//! thread pool fans out over portion lanes and pool workers.
//! Run with: `cargo run -p edea-bench --bin thread_scaling --release`
//!
//! Unlike the paper-artifact bins this one is **not** golden-snapshotted:
//! wall-clock depends on the host. Results belong in EXPERIMENTS.md with
//! the host's core count (`std::thread::available_parallelism`) recorded
//! next to them — on a single-core host the parallel path can only show
//! its overhead, and the speedup materializes on multi-core CI.
//!
//! Set `EDEA_BENCH_SMOKE=1` for a reduced smoke pass (tiny stream, 2
//! workers, threads ∈ {1, 2}, one rep) — used by CI to keep both parallel
//! seams executing end to end.

// edea-lint: allow(wall-clock-in-sim): wall-clock bench of the simulator host itself, the one sanctioned use
use std::time::Instant;

use edea::core::par::Parallelism;
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::pool::{DispatchPolicy, Dispatcher, Pool};
use edea::serve::{arrivals, Policy, Request, SimulatorBackend};
use edea::tensor::{rng, Batch};
use edea::{Edea, EdeaConfig};

struct Setup {
    qnet: QuantizedDscNetwork,
    inputs: Vec<edea::tensor::Tensor3<i8>>,
}

fn setup(width: f64, n_inputs: usize) -> Setup {
    let mut model = MobileNetV1::synthetic(width, 9001);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 9002);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .expect("synthetic calibration succeeds");
    let inputs = (0..n_inputs)
        .map(|i| {
            qnet.quantize_input(&model.forward_stem(&rng::synthetic_image(
                3,
                32,
                32,
                9100 + i as u64,
            )))
        })
        .collect();
    Setup { qnet, inputs }
}

fn backend(s: &Setup, threads: usize) -> SimulatorBackend {
    let edea = Edea::new(EdeaConfig::paper())
        .expect("paper config")
        .with_parallelism(Parallelism::new(threads).expect("thread count"));
    SimulatorBackend::new(edea, s.qnet.clone()).expect("backend builds")
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now(); // edea-lint: allow(wall-clock-in-sim): wall-clock bench of the simulator host itself, the one sanctioned use
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    let (thread_counts, pool_workers, n_requests, batch, reps): (
        &[usize],
        usize,
        usize,
        usize,
        usize,
    ) = if smoke {
        (&[1, 2], 2, 4, 2, 1)
    } else {
        (&[1, 2, 4], 8, 64, 4, 5)
    };
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    println!("== Host-thread scaling (host cores: {cores}) ==");
    println!("simulated results are bit-identical at every thread count;");
    println!("this measures the simulator's own wall-clock only.\n");

    let s = setup(0.25, n_requests.max(batch));
    // (path, threads, median ms) samples for the machine-readable line.
    let mut samples: Vec<(&str, usize, f64)> = Vec::new();

    // Seam 1: the per-portion tile lanes inside one planned batched
    // forward (one backend, one scratch, portions fanned across lanes).
    println!("-- batched forward (width 0.25, batch {batch}) --");
    println!("{:>7}  {:>10}  {:>8}", "threads", "median ms", "speedup");
    let mut base = 0.0f64;
    for &t in thread_counts {
        let b = backend(&s, t);
        let inputs = Batch::new(s.inputs[..batch].to_vec()).expect("batch");
        let _ = b.run_batch(&inputs).expect("warm-up");
        let ms = median_ms(reps, || {
            let _ = b.run_batch(&inputs).expect("batched forward");
        });
        if t == 1 {
            base = ms;
        }
        println!("{:>7}  {:>10.2}  {:>7.2}x", t, ms, base / ms);
        samples.push(("batched_forward", t, ms));
    }

    // Seam 2: the pool-worker fan-out — N workers serve a burst of
    // batch-of-1 requests; dispatch stays serial on the simulated clock,
    // execution runs on the lanes (oracle mode).
    println!("\n-- pool serve ({pool_workers} workers, {n_requests} batch-of-1 requests) --");
    println!("{:>7}  {:>10}  {:>8}", "threads", "median ms", "speedup");
    let ticks = arrivals::uniform(n_requests, 1_000);
    let dispatcher = Dispatcher::new(
        Policy::new(1, 0).expect("policy"),
        DispatchPolicy::LeastLoaded,
    );
    let mut base = 0.0f64;
    for &t in thread_counts {
        let pool = Pool::replicate(backend(&s, 1), pool_workers)
            .expect("pool builds")
            .with_parallelism(Parallelism::new(t).expect("thread count"));
        let requests = || Request::stream(&ticks, s.inputs[..n_requests].to_vec()).expect("stream");
        let _ = dispatcher.serve(&pool, requests()).expect("warm-up");
        let ms = median_ms(reps, || {
            let _ = dispatcher.serve(&pool, requests()).expect("pool serve");
        });
        if t == 1 {
            base = ms;
        }
        println!("{:>7}  {:>10.2}  {:>7.2}x", t, ms, base / ms);
        samples.push(("pool_serve", t, ms));
    }

    // One machine-readable JSON line so the perf trajectory is scrapeable
    // across CI runs. Deliberately NOT golden-snapshotted: wall-clock
    // depends on the host (the `host_cores` field records it).
    let results: Vec<String> = samples
        .iter()
        .map(|(path, t, ms)| {
            format!("{{\"path\":\"{path}\",\"threads\":{t},\"median_ms\":{ms:.3}}}")
        })
        .collect();
    println!(
        "\nJSON: {{\"bench\":\"thread_scaling\",\"host_cores\":{cores},\"smoke\":{smoke},\"results\":[{}]}}",
        results.join(",")
    );
}
