//! Extension study: the Fig.-11 sparsity profile vs a near-dense control
//! through the serving stack — the activation landscape the zero-skipping
//! engine kernels exploit.
//! Run with: `cargo run -p edea-bench --bin sparsity_sweep --release`
//!
//! Set `EDEA_BENCH_SMOKE=1` for a reduced smoke pass (width 0.25, batch
//! of 2) — used by CI to keep the sparse and dense deployment paths
//! executing without paying the full comparison.

fn main() {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    if smoke {
        println!("{}", edea_bench::experiments::sparsity_sweep_smoke());
    } else {
        println!("{}", edea_bench::experiments::sparsity_sweep());
    }
}
