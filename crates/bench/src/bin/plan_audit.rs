//! Plan-time race audit over the width-scaled MobileNets. Run with:
//! `cargo run -p edea-bench --bin plan_audit --release`

fn main() {
    print!("{}", edea_bench::experiments::plan_audit());
}
