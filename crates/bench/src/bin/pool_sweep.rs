//! Extension study: the serving scheduler sharded across a pool of N
//! simulated EDEA instances.
//! Run with: `cargo run -p edea-bench --bin pool_sweep --release`
//!
//! Set `EDEA_BENCH_SMOKE=1` for a reduced smoke pass (one load point,
//! N ∈ {1, 2}) — used by CI to keep the pool dispatch path executing
//! without paying the full sweep.

fn main() {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    if smoke {
        println!("{}", edea_bench::experiments::pool_sweep_smoke());
    } else {
        println!("{}", edea_bench::experiments::pool_sweep());
    }
}
