//! Extension study beyond the paper's evaluation. Run with:
//! `cargo run -p edea-bench --bin portion_study --release`

fn main() {
    print!("{}", edea_bench::experiments::portion_study());
}
