//! Regenerates the paper's table1 artifact. Run with:
//! `cargo run -p edea-bench --bin table1 --release`

fn main() {
    print!("{}", edea_bench::experiments::table1());
}
