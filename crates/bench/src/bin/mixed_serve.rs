//! Extension study: mixed-model serving — MobileNetV1 and MobileNetV2
//! traffic interleaved over one accelerator pool, with model-switch
//! weight traffic accounted as its own external-traffic category.
//! Run with: `cargo run -p edea-bench --bin mixed_serve --release`
//!
//! Set `EDEA_BENCH_SMOKE=1` for a reduced smoke pass (8 requests, one v2
//! share) — used by CI to keep the mixed dispatch path executing without
//! paying the full sweep.

fn main() {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    if smoke {
        println!("{}", edea_bench::experiments::mixed_serve_smoke());
    } else {
        println!("{}", edea_bench::experiments::mixed_serve());
    }
}
