//! Regenerates the paper's table2 artifact. Run with:
//! `cargo run -p edea-bench --bin table2 --release`

fn main() {
    print!("{}", edea_bench::experiments::table2());
}
