//! Regenerates every table and figure in one run.
//! Run with: `cargo run -p edea-bench --bin all --release`

fn main() {
    use edea_bench::experiments as e;
    for section in [
        e::table1(),
        e::table2(),
        e::fig2a(),
        e::fig2b(),
        e::fig3(),
        e::fig7(),
        e::fig8().0,
        e::fig9(),
        e::fig10(),
        e::fig11(),
        e::fig12(),
        e::fig13(),
        e::table3(),
        e::ablation(),
        e::scale_study(),
        e::portion_study(),
        e::batch_sweep(),
        e::serve_sweep(),
        e::pool_sweep(),
        e::mixed_serve(),
    ] {
        println!("{section}");
    }
}
