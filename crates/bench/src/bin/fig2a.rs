//! Regenerates the paper's fig2a artifact. Run with:
//! `cargo run -p edea-bench --bin fig2a --release`

fn main() {
    print!("{}", edea_bench::experiments::fig2a());
}
