//! Regenerates the paper's table3 artifact. Run with:
//! `cargo run -p edea-bench --bin table3 --release`

fn main() {
    print!("{}", edea_bench::experiments::table3());
}
