//! Heavyweight cross-check: full-width functional simulation vs the golden
//! executor and the analytic timing model (takes a few seconds).
//! Run with: `cargo run -p edea-bench --bin verify_sim --release`

fn main() {
    print!("{}", edea_bench::experiments::verify_sim());
}
