//! Regenerates the paper's fig9 artifact. Run with:
//! `cargo run -p edea-bench --bin fig9 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig9());
}
