//! Prints the batched-inference weight-residency sweep (N = 1, 2, 4, 8, 16).
//! Run with: `cargo run -p edea-bench --bin batch_sweep --release`

fn main() {
    println!("{}", edea_bench::experiments::batch_sweep());
}
