//! Regenerates the paper's Fig. 8 (layout view): prints the floorplan table
//! and writes `fig8_layout.svg` (or the path given as the first argument).
//! Run with: `cargo run -p edea-bench --bin fig8 --release`

fn main() {
    let (report, svg) = edea_bench::experiments::fig8();
    print!("{report}");
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fig8_layout.svg".to_owned());
    match std::fs::write(&path, svg) {
        Ok(()) => println!("\nSVG written to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
