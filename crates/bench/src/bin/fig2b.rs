//! Regenerates the paper's fig2b artifact. Run with:
//! `cargo run -p edea-bench --bin fig2b --release`

fn main() {
    print!("{}", edea_bench::experiments::fig2b());
}
