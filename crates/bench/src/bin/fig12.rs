//! Regenerates the paper's fig12 artifact. Run with:
//! `cargo run -p edea-bench --bin fig12 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig12());
}
