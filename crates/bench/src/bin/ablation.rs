//! Regenerates the paper's ablation artifact. Run with:
//! `cargo run -p edea-bench --bin ablation --release`

fn main() {
    print!("{}", edea_bench::experiments::ablation());
}
