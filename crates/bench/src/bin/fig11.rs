//! Regenerates the paper's fig11 artifact. Run with:
//! `cargo run -p edea-bench --bin fig11 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig11());
}
