//! Dumps the cycle-accurate pipeline trace of a layer as a VCD waveform
//! (openable in GTKWave) — the reproduction's QuestaSim-equivalent artifact.
//!
//! Usage: `cargo run -p edea-bench --bin vcd --release [layer] [out.vcd]`

use edea::core::{pipeline, trace};
use edea::{mobilenet_v1_cifar10, EdeaConfig};

fn main() {
    let layer: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| format!("edea_layer{layer}.vcd"));
    let layers = mobilenet_v1_cifar10();
    assert!(layer < layers.len(), "layer must be 0..13");
    let cfg = EdeaConfig::paper();
    let sim = pipeline::simulate_layer(&layers[layer], &cfg, 2_000_000);
    let vcd = trace::to_vcd(&sim.events, cfg.clock_mhz);
    match std::fs::write(&path, &vcd) {
        Ok(()) => println!(
            "layer {layer}: {} cycles, {} events -> {path} ({} bytes)",
            sim.total_cycles,
            sim.events.len(),
            vcd.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
