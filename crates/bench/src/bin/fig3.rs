//! Regenerates the paper's fig3 artifact. Run with:
//! `cargo run -p edea-bench --bin fig3 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig3());
}
