//! Extension study beyond the paper's evaluation. Run with:
//! `cargo run -p edea-bench --bin scale_study --release`

fn main() {
    print!("{}", edea_bench::experiments::scale_study());
}
