//! Regenerates the paper's fig7 artifact. Run with:
//! `cargo run -p edea-bench --bin fig7 --release`

fn main() {
    print!("{}", edea_bench::experiments::fig7());
}
