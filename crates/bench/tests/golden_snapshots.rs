//! Golden snapshot regression tests for every rendered paper artifact
//! (Tables I–III, Figs. 2, 3, 7–13, and the three studies).
//!
//! The paper-number tests in `tests/paper_numbers.rs` pin a handful of
//! headline values; these snapshots pin **every character** of every
//! rendered artifact, so any drift in the timing, power, area, DSE or
//! comparison models is caught immediately and reviewed as a fixture diff.
//!
//! To regenerate after an intentional model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p edea-bench --test golden_snapshots
//! git diff crates/bench/tests/golden/   # review the drift, then commit
//! ```

use edea_bench::experiments as e;
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, rendered).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {}; run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "artifact `{name}` drifted from its golden fixture.\n\
         If the change is intentional, regenerate with:\n\
         UPDATE_GOLDEN=1 cargo test -p edea-bench --test golden_snapshots"
    );
}

macro_rules! golden {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            check(stringify!($name), &e::$name());
        }
    )*};
}

golden!(
    table1,
    table2,
    table3,
    fig2a,
    fig2b,
    fig3,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    ablation,
    scale_study,
    portion_study,
    batch_sweep,
    serve_sweep,
    pool_sweep,
    mixed_serve,
    sparsity_sweep,
    plan_audit,
    trace_export,
);

#[test]
fn fig8() {
    let (layout, dims) = e::fig8();
    check("fig8_layout", &layout);
    check("fig8_dims", &dims);
}
