//! Tight-loop microbenchmarks of the engine tile kernels, isolating the
//! zero-skipping fast paths from the full simulator (whose end-to-end
//! timings on a shared host carry several percent of scheduler noise).
//! Each case streams 256 pre-built tiles through a reused accumulator,
//! exactly as the accelerator's tile pipeline does.
//!
//! Cases:
//!  - `dwc_dense`   — no zero planes: the branch-free MAC loop plus the
//!    per-plane `all_zero` probe (the probe cost is the dense overhead).
//!  - `dwc_allzero` — every plane zero: the plane-skip path, the common
//!    case at the Fig.-11 late layers (97.4 % element zeros).
//!  - `pwc_dense`   — dense activations: the vectorized lane kernel plus
//!    the occupancy scan (again, the scan is the dense overhead).
//!  - `pwc_sparse`  — 6 of 8 channel rows zero: the masked lane walk.
//!  - `pwc_sparse_gated` — same, with a 50 %-sparse weight occupancy
//!    AND-ed in (the planned serving path).

use criterion::{criterion_group, criterion_main, Criterion};
use edea::core::engine::{DwcEngine, LaneOccupancy, PwcEngine};
use edea::tensor::{rng, Tensor3};
use edea::EdeaConfig;
use std::hint::black_box;

const TILES: usize = 256;

fn bench_tile_kernels(c: &mut Criterion) {
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    let cfg = EdeaConfig::paper();
    let dwc = DwcEngine::new(&cfg);
    let pwc = PwcEngine::new(&cfg);

    let dw_weights = rng::uniform_i8_tensor4(8, 1, 3, 3, -128, 127, 11);
    let dw_dense: Vec<Tensor3<i8>> = (0..TILES)
        .map(|i| rng::uniform_i8_tensor3(8, 4, 4, 1, 127, 100 + i as u64))
        .collect();
    let dw_zero: Vec<Tensor3<i8>> = (0..TILES).map(|_| Tensor3::zeros(8, 4, 4)).collect();

    let pw_weights = rng::uniform_i8_tensor4(16, 8, 1, 1, -128, 127, 12);
    // Half the weight entries zeroed: a realistic gated occupancy.
    let mut pw_weights_sparse = pw_weights.clone();
    for (i, w) in pw_weights_sparse.as_mut_slice().iter_mut().enumerate() {
        if i % 2 == 0 {
            *w = 0;
        }
    }
    let occ = LaneOccupancy::of_weights(&pw_weights_sparse).expect("occupancy");
    let pw_dense: Vec<Tensor3<i8>> = (0..TILES)
        .map(|i| rng::uniform_i8_tensor3(8, 2, 2, 1, 127, 500 + i as u64))
        .collect();
    // Channels 0..6 entirely zero: act mask popcount 2 ≤ Td/2 = 4, so the
    // masked path fires — the shape of a Fig.-11 late-layer tile.
    let pw_sparse: Vec<Tensor3<i8>> = pw_dense
        .iter()
        .map(|t| {
            let mut s = t.clone();
            s.as_mut_slice()[..6 * 4].fill(0);
            s
        })
        .collect();

    let mut g = c.benchmark_group("tile_kernels");
    g.sample_size(if smoke { 10 } else { 60 });

    let mut acc = Tensor3::<i32>::zeros(8, 2, 2);
    g.bench_function("dwc_dense_256_tiles", |b| {
        b.iter(|| {
            for t in &dw_dense {
                black_box(dwc.compute_tile_into(t, &dw_weights, 1, &mut acc).unwrap());
            }
        });
    });
    g.bench_function("dwc_allzero_256_tiles", |b| {
        b.iter(|| {
            for t in &dw_zero {
                black_box(dwc.compute_tile_into(t, &dw_weights, 1, &mut acc).unwrap());
            }
        });
    });

    let mut partial = Tensor3::<i32>::zeros(16, 2, 2);
    g.bench_function("pwc_dense_256_tiles", |b| {
        b.iter(|| {
            for t in &pw_dense {
                black_box(pwc.compute_tile_into(t, &pw_weights, &mut partial).unwrap());
            }
        });
    });
    g.bench_function("pwc_sparse_256_tiles", |b| {
        b.iter(|| {
            for t in &pw_sparse {
                black_box(pwc.compute_tile_into(t, &pw_weights, &mut partial).unwrap());
            }
        });
    });
    g.bench_function("pwc_sparse_gated_256_tiles", |b| {
        b.iter(|| {
            for t in &pw_sparse {
                black_box(
                    pwc.compute_tile_gated_into(t, &pw_weights_sparse, Some(&occ), &mut partial)
                        .unwrap(),
                );
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tile_kernels);
criterion_main!(benches);
