//! Hot-path profile of the functional simulator: the `verify_sim`-shaped
//! workload (width-1.0 MobileNetV1 forward) that dominates serving
//! wall-clock time. Run with `cargo bench -p edea-bench --bench
//! sim_profile`.
//!
//! Set `EDEA_BENCH_SMOKE=1` to run a reduced-width, two-sample smoke pass
//! (used by CI to keep the bench compiling *and* executing without paying
//! the full measurement cost).

use criterion::{criterion_group, criterion_main, Criterion};
use edea::core::serve::SimulatorBackend;
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::tensor::rng;
use edea::{Edea, EdeaConfig};
use std::hint::black_box;

struct Workload {
    edea: Edea,
    qnet: QuantizedDscNetwork,
    input: edea::tensor::Tensor3<i8>,
}

fn workload(width: f64, profile: &SparsityProfile) -> Workload {
    // Same seeds as the `verify_sim` experiment, so the profile measures
    // exactly the workload the verification binary spends its time in.
    let mut model = MobileNetV1::synthetic(width, 4242);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 4243);
    let (qnet, _) =
        QuantizedDscNetwork::calibrate_shaped(&mut model, &calib, profile, QuantStrategy::paper())
            .expect("calibration");
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    Workload { edea, qnet, input }
}

fn bench_sim_profile(c: &mut Criterion) {
    // Smoke only when set to something truthy: `EDEA_BENCH_SMOKE=0` (or
    // empty) still runs the full profile.
    let smoke = matches!(
        std::env::var("EDEA_BENCH_SMOKE").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    let (width, samples) = if smoke { (0.25, 2) } else { (1.0, 10) };
    let w = workload(width, &SparsityProfile::paper());
    // The serving session: plan sliced once, scratch reused across calls —
    // exactly the state a Deployment / Scheduler dispatch runs in.
    let backend = SimulatorBackend::new(w.edea.clone(), w.qnet.clone()).expect("backend");

    let mut g = c.benchmark_group("sim_profile");
    g.sample_size(samples);
    // The one-shot path: builds a throwaway weight plan per call.
    g.bench_function("network_forward", |b| {
        b.iter(|| black_box(w.edea.run_network(&w.qnet, &w.input).expect("run")));
    });
    // The serving steady state.
    g.bench_function("network_forward_planned", |b| {
        b.iter(|| black_box(backend.run_network(&w.input).expect("run")));
    });
    // One batched dispatch as the scheduler issues it.
    let batch = edea::tensor::Batch::new(vec![w.input.clone(); 2]).expect("batch");
    g.bench_function("batch2_planned", |b| {
        b.iter(|| black_box(backend.run_batch(&batch).expect("run")));
    });

    // The same workload shaped near-dense (5 % zeros/layer): the control
    // for the zero-skipping kernels. The Fig.-11 profile above should run
    // markedly faster than this; the dense regression bound in
    // EXPERIMENTS.md comes from comparing these against the pre-skip
    // baseline.
    let dn = workload(width, &SparsityProfile::near_dense(13));
    let dn_backend = SimulatorBackend::new(dn.edea.clone(), dn.qnet.clone()).expect("backend");
    g.bench_function("network_forward_planned_dense", |b| {
        b.iter(|| black_box(dn_backend.run_network(&dn.input).expect("run")));
    });
    g.finish();
}

criterion_group!(benches, bench_sim_profile);
criterion_main!(benches);
