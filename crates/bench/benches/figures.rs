//! Criterion benches — one per table/figure of the paper — timing the
//! regeneration of each artifact from the models. Run with
//! `cargo bench -p edea-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use edea_bench::experiments as e;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(20);
    g.bench_function("table1", |b| b.iter(|| black_box(e::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(e::table2())));
    g.bench_function("fig2a", |b| b.iter(|| black_box(e::fig2a())));
    g.bench_function("fig2b", |b| b.iter(|| black_box(e::fig2b())));
    g.bench_function("fig3", |b| b.iter(|| black_box(e::fig3())));
    g.bench_function("fig7", |b| b.iter(|| black_box(e::fig7())));
    g.bench_function("fig8", |b| b.iter(|| black_box(e::fig8())));
    g.bench_function("fig9", |b| b.iter(|| black_box(e::fig9())));
    g.bench_function("fig10", |b| b.iter(|| black_box(e::fig10())));
    g.bench_function("fig11", |b| b.iter(|| black_box(e::fig11())));
    g.bench_function("fig12", |b| b.iter(|| black_box(e::fig12())));
    g.bench_function("fig13", |b| b.iter(|| black_box(e::fig13())));
    g.bench_function("table3", |b| b.iter(|| black_box(e::table3())));
    g.bench_function("ablation", |b| b.iter(|| black_box(e::ablation())));
    g.bench_function("scale_study", |b| b.iter(|| black_box(e::scale_study())));
    g.bench_function("portion_study", |b| {
        b.iter(|| black_box(e::portion_study()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
