//! Criterion benches of the simulator itself: how fast the reproduction
//! simulates the hardware. Run with `cargo bench -p edea-bench --bench
//! simulator`.

use criterion::{criterion_group, criterion_main, Criterion};
use edea::core::{pipeline, timing};
use edea::mobilenet_v1_cifar10;
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::tensor::rng;
use edea::{Edea, EdeaConfig};
use std::hint::black_box;

fn bench_analytic(c: &mut Criterion) {
    let cfg = EdeaConfig::paper();
    let layers = mobilenet_v1_cifar10();
    c.bench_function("analytic_timing_13_layers", |b| {
        b.iter(|| {
            for l in &layers {
                black_box(timing::layer_cycles(l, &cfg));
            }
        });
    });
    c.bench_function("clocked_pipeline_layer0", |b| {
        b.iter(|| black_box(pipeline::simulate_layer(&layers[0], &cfg, 0)));
    });
    c.bench_function("dse_full_sweep", |b| {
        b.iter(|| black_box(edea::dse::sweep::full_sweep(&layers)));
    });
}

fn bench_functional(c: &mut Criterion) {
    // Width-0.25 model keeps a single layer in the microsecond-to-
    // millisecond range.
    let mut model = MobileNetV1::synthetic(0.25, 1);
    let calib = rng::synthetic_batch(1, 3, 32, 32, 2);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .expect("calibration");
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));

    let mut g = c.benchmark_group("functional_sim");
    g.sample_size(20);
    g.bench_function("layer0_width025", |b| {
        b.iter(|| black_box(edea.run_layer(&qnet.layers()[0], &input).expect("run")));
    });
    g.bench_function("network_width025", |b| {
        b.iter(|| black_box(edea.run_network(&qnet, &input).expect("run")));
    });
    g.bench_function("golden_executor_width025", |b| {
        b.iter(|| black_box(edea::nn::executor::run_network(&qnet, &input)));
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("deploy_flow");
    g.sample_size(10);
    g.bench_function("calibrate_shaped_width025", |b| {
        b.iter(|| {
            let mut model = MobileNetV1::synthetic(0.25, 3);
            let calib = rng::synthetic_batch(1, 3, 32, 32, 4);
            black_box(
                QuantizedDscNetwork::calibrate_shaped(
                    &mut model,
                    &calib,
                    &SparsityProfile::paper(),
                    QuantStrategy::paper(),
                )
                .expect("calibration"),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_analytic, bench_functional, bench_calibration);
criterion_main!(benches);
