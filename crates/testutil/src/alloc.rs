//! A test-only counting allocator for allocation-regression guards.
//!
//! The simulator's tile pipeline promises **zero heap allocations per tile
//! in steady state** (see `edea_core::scratch::TileScratch`). That claim
//! is only as good as the test enforcing it, and enforcing it needs an
//! allocator that can be interrogated. [`CountingAllocator`] wraps the
//! system allocator and counts every `alloc`/`realloc` call in a process-
//! wide atomic; a regression test installs it as the `#[global_allocator]`
//! and asserts on the count delta around the code under guard:
//!
//! ```ignore
//! use edea_testutil::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = CountingAllocator::allocations();
//! hot_path();
//! assert_eq!(CountingAllocator::allocations() - before, 0);
//! ```
//!
//! The counter is process-wide, so a binary using it should run its
//! measurements from a single `#[test]` (the default test harness runs
//! tests of one binary concurrently, which would interleave counts).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper around [`System`] that counts allocation
/// events (`alloc` and `realloc` calls; frees are not counted — the guard
/// cares about acquisition, not churn).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        Self
    }

    /// Allocation events since process start (monotonic).
    #[must_use]
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
