//! Shared test support for the EDEA workspace.
//!
//! Integration tests across the workspace repeat the same deploy-time
//! choreography: build a synthetic MobileNetV1, calibrate a quantized DSC
//! network against a deterministic batch, quantize the stem output, and run
//! the accelerator. This crate centralizes that choreography behind seeded,
//! deterministic builders, plus the tolerance assertion macros the
//! paper-number tests use.
//!
//! Everything here is deterministic: the same `(width, seed)` pair always
//! yields bit-identical networks, inputs and accelerator traces, on every
//! platform — and the same holds for the batched flow
//! ([`batch_inputs`] / [`deploy_and_run_batch`]). The determinism guard in
//! `tests/determinism.rs` enforces both.
//!
//! # Example
//!
//! ```
//! use edea_testutil::{deploy, TestDeployment};
//!
//! let TestDeployment { qnet, input, .. } = deploy(0.25, 42);
//! assert_eq!(qnet.layers().len(), 13);
//! assert!(input.len() > 0);
//! ```

// `deny`, not `forbid`: the counting allocator in [`alloc`] needs one
// `unsafe impl GlobalAlloc` (explicitly allowed there); everything else
// stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;

use edea_core::accelerator::{BatchRun, Edea, NetworkRun};
use edea_core::config::EdeaConfig;
use edea_core::par::Parallelism;
use edea_core::serve::Request;
use edea_nn::mobilenet::{MobileNetV1, MobileNetV2};
use edea_nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea_nn::sparsity::SparsityProfile;
use edea_nn::workload::NetworkId;
use edea_tensor::{rng, Batch, Tensor3};

/// A fully deployed network ready to run on the accelerator: the float
/// model, its quantization, and the quantized stem activation for the first
/// calibration image.
///
/// (The production session type is `edea::Deployment`, built with
/// `Deployment::builder()`; this test fixture predates it and keeps the
/// seeded `(width, seed)` choreography the golden baselines depend on.)
#[derive(Debug, Clone)]
pub struct TestDeployment {
    /// The float MobileNetV1 the quantization was derived from.
    pub model: MobileNetV1,
    /// The quantized DSC network.
    pub qnet: QuantizedDscNetwork,
    /// Quantized input to DSC layer 0 (the stem output of the first
    /// calibration image).
    pub input: Tensor3<i8>,
}

/// Runs the paper's deploy-time flow deterministically: synthetic
/// MobileNetV1 at `width`, a two-image calibration batch, sparsity-shaped
/// calibration with the paper's quantization strategy.
///
/// The RNG streams are derived from `seed` exactly as the integration tests
/// have always done (`seed` for the model, `seed + 1` for the batch), so
/// existing tests can migrate without changing their data.
///
/// # Panics
///
/// Panics if calibration fails — synthetic networks at the widths used in
/// tests always calibrate.
#[must_use]
pub fn deploy(width: f64, seed: u64) -> TestDeployment {
    let mut model = MobileNetV1::synthetic(width, seed);
    let calib = rng::synthetic_batch(2, 3, 32, 32, seed + 1);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .expect("synthetic calibration succeeds");
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    TestDeployment { model, qnet, input }
}

/// A deployed MobileNetV2 ready for the accelerator: the float model, its
/// quantization (17 flattened inverted-residual stages), and the quantized
/// stem output of the first calibration image — the v2 counterpart of
/// [`TestDeployment`].
#[derive(Debug, Clone)]
pub struct TestDeploymentV2 {
    /// The float MobileNetV2 the quantization was derived from.
    pub model: MobileNetV2,
    /// The quantized DSC network (PwcOnly expand + Dsc project stages).
    pub qnet: QuantizedDscNetwork,
    /// Quantized input to stage 0 (the stem output of the first
    /// calibration image).
    pub input: Tensor3<i8>,
}

/// Deterministic MobileNetV2 deploy-time flow, mirroring [`deploy`]'s
/// seeded stream layout (`seed` for the model, `seed + 1` for the
/// calibration batch).
///
/// # Panics
///
/// Panics if calibration fails — synthetic v2 networks at the widths used
/// in tests always calibrate.
#[must_use]
pub fn deploy_v2(width: f64, seed: u64) -> TestDeploymentV2 {
    let model = MobileNetV2::synthetic(width, seed);
    let calib = rng::synthetic_batch(2, 3, 32, 32, seed + 1);
    let qnet = QuantizedDscNetwork::calibrate_v2(&model, &calib, QuantStrategy::paper())
        .expect("synthetic v2 calibration succeeds");
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    TestDeploymentV2 { model, qnet, input }
}

/// A paper-configuration accelerator (thread count from `EDEA_THREADS`,
/// defaulting to the serial path).
#[must_use]
pub fn paper_edea() -> Edea {
    Edea::new(EdeaConfig::paper()).expect("paper configuration is valid")
}

/// A paper-configuration accelerator pinned to an explicit host-thread
/// count — the building block of the parallel bit-identity suite.
///
/// # Panics
///
/// Panics if `threads` is zero or above the `edea_core::par` cap.
#[must_use]
pub fn paper_edea_threads(threads: usize) -> Edea {
    paper_edea()
        .with_parallelism(Parallelism::new(threads).expect("test thread counts are in range"))
}

/// Deploys at `(width, seed)` and runs the whole network on the paper
/// configuration, returning the deployment and the run.
///
/// # Panics
///
/// Panics if the run fails; the paper configuration accepts every layer of
/// the synthetic MobileNetV1 at the widths used in tests.
#[must_use]
pub fn deploy_and_run(width: f64, seed: u64) -> (TestDeployment, NetworkRun) {
    let d = deploy(width, seed);
    let run = paper_edea()
        .run_network(&d.qnet, &d.input)
        .expect("network runs");
    (d, run)
}

/// [`deploy_and_run`] pinned to an explicit host-thread count. Every
/// `threads` value yields bit-identical runs — the determinism guard and
/// the parallel bit-identity suite both lean on this.
///
/// # Panics
///
/// Panics if the run fails or `threads` is out of range.
#[must_use]
pub fn deploy_and_run_threads(
    width: f64,
    seed: u64,
    threads: usize,
) -> (TestDeployment, NetworkRun) {
    let d = deploy(width, seed);
    let run = paper_edea_threads(threads)
        .run_network(&d.qnet, &d.input)
        .expect("network runs");
    (d, run)
}

/// Builds a quantized layer-0 input batch of `n` deterministic images for
/// an existing deployment: fresh synthetic images seeded from `seed`, run
/// through the float stem and quantized exactly as [`deploy`]'s single
/// input is.
///
/// # Panics
///
/// Panics if `n` is zero (a [`Batch`] is non-empty by construction).
#[must_use]
pub fn batch_inputs(d: &TestDeployment, n: usize, seed: u64) -> Batch<i8> {
    let images = rng::synthetic_batch(n, 3, 32, 32, seed);
    Batch::new(
        images
            .iter()
            .map(|img| d.qnet.quantize_input(&d.model.forward_stem(img)))
            .collect(),
    )
    .expect("stem outputs are uniformly shaped")
}

/// Deploys at `(width, seed)` and runs a batch of `n` images (seeded from
/// `seed + 2`, continuing [`deploy`]'s stream layout) through the batched
/// accelerator schedule on the paper configuration.
///
/// # Panics
///
/// Panics if the run fails; the paper configuration accepts every layer of
/// the synthetic MobileNetV1 at the widths used in tests.
#[must_use]
pub fn deploy_and_run_batch(
    width: f64,
    seed: u64,
    n: usize,
) -> (TestDeployment, Batch<i8>, BatchRun) {
    let d = deploy(width, seed);
    let inputs = batch_inputs(&d, n, seed + 2);
    let run = paper_edea()
        .run_batch(&d.qnet, &inputs)
        .expect("batched network runs");
    (d, inputs, run)
}

/// [`deploy_and_run_batch`] pinned to an explicit host-thread count.
///
/// # Panics
///
/// Panics if the run fails or `threads` is out of range.
#[must_use]
pub fn deploy_and_run_batch_threads(
    width: f64,
    seed: u64,
    n: usize,
    threads: usize,
) -> (TestDeployment, Batch<i8>, BatchRun) {
    let d = deploy(width, seed);
    let inputs = batch_inputs(&d, n, seed + 2);
    let run = paper_edea_threads(threads)
        .run_batch(&d.qnet, &inputs)
        .expect("batched network runs");
    (d, inputs, run)
}

/// Builds a deterministic serving request stream for a deployment: one
/// synthetic image per arrival tick, seeded from `seed`, run through the
/// float stem and quantized, stamped with ids `0..arrivals.len()`.
#[must_use]
pub fn serve_requests(d: &TestDeployment, arrivals: &[u64], seed: u64) -> Vec<Request> {
    let images = rng::synthetic_batch(arrivals.len(), 3, 32, 32, seed);
    let inputs = images
        .iter()
        .map(|img| d.qnet.quantize_input(&d.model.forward_stem(img)))
        .collect();
    Request::stream(arrivals, inputs).expect("one arrival tick per input")
}

/// Builds a deterministic **mixed-model** request stream: arrival `i`
/// targets `networks[i % networks.len()]`, with the image prepared through
/// that network's own float stem and quantizer ([`NetworkId::PRIMARY`] →
/// `v1`, anything else → `v2`). Ids are `0..arrivals.len()`; images are
/// seeded from `seed` exactly as [`serve_requests`] seeds them.
///
/// The two deployments must share a stem output shape (e.g. v1 at width
/// 0.5 with v2 at width 0.25) — the same precondition the multi-model
/// backend enforces.
///
/// # Panics
///
/// Panics if `networks` is empty.
#[must_use]
pub fn mixed_requests(
    v1: &TestDeployment,
    v2: &TestDeploymentV2,
    networks: &[NetworkId],
    arrivals: &[u64],
    seed: u64,
) -> Vec<Request> {
    assert!(!networks.is_empty(), "at least one network id is required");
    let images = rng::synthetic_batch(arrivals.len().max(1), 3, 32, 32, seed);
    let nets: Vec<NetworkId> = (0..arrivals.len())
        .map(|i| networks[i % networks.len()])
        .collect();
    let inputs = images
        .iter()
        .take(arrivals.len())
        .zip(&nets)
        .map(|(img, &n)| {
            if n == NetworkId::PRIMARY {
                v1.qnet.quantize_input(&v1.model.forward_stem(img))
            } else {
                v2.qnet.quantize_input(&v2.model.forward_stem(img))
            }
        })
        .collect();
    Request::stream_mixed(arrivals, &nets, inputs).expect("one arrival tick per input")
}

/// Builds a serving request stream of all-zero inputs of `shape`
/// (`(channels, height, width)`), one per arrival tick, ids
/// `0..arrivals.len()` — the cheap stream for scheduler and pool tests
/// where only timing and accounting matter, not pixel values.
#[must_use]
pub fn zero_requests(shape: (usize, usize, usize), arrivals: &[u64]) -> Vec<Request> {
    let (d, h, w) = shape;
    Request::stream(
        arrivals,
        arrivals.iter().map(|_| Tensor3::zeros(d, h, w)).collect(),
    )
    .expect("one arrival tick per input")
}

/// Asserts two floats are within an absolute tolerance.
///
/// ```
/// edea_testutil::assert_close!(1.0, 1.004, 0.01);
/// ```
#[macro_export]
macro_rules! assert_close {
    ($left:expr, $right:expr, $tol:expr $(,)?) => {{
        let (l, r, tol) = (f64::from($left), f64::from($right), f64::from($tol));
        assert!(
            (l - r).abs() <= tol,
            "assert_close failed: |{} - {}| = {} > {} (left: `{}`, right: `{}`)",
            l,
            r,
            (l - r).abs(),
            tol,
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Asserts two floats agree to a relative tolerance (scaled by the larger
/// magnitude, so it is symmetric in its arguments).
///
/// ```
/// edea_testutil::assert_rel_close!(973.5, 973.6, 1e-3);
/// ```
#[macro_export]
macro_rules! assert_rel_close {
    ($left:expr, $right:expr, $rel:expr $(,)?) => {{
        let (l, r, rel) = (f64::from($left), f64::from($right), f64::from($rel));
        let scale = l.abs().max(r.abs()).max(f64::MIN_POSITIVE);
        assert!(
            (l - r).abs() <= rel * scale,
            "assert_rel_close failed: |{} - {}| = {} > {} × {} (left: `{}`, right: `{}`)",
            l,
            r,
            (l - r).abs(),
            rel,
            scale,
            stringify!($left),
            stringify!($right),
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_is_deterministic() {
        let a = deploy(0.25, 7);
        let b = deploy(0.25, 7);
        assert_eq!(a.input, b.input);
        assert_eq!(a.qnet.layers().len(), b.qnet.layers().len());
        for (x, y) in a.qnet.layers().iter().zip(b.qnet.layers()) {
            assert_eq!(x.dw_weights().values(), y.dw_weights().values());
            assert_eq!(x.pw_weights().values(), y.pw_weights().values());
        }
    }

    #[test]
    fn deploy_v2_is_deterministic_and_mixed_requests_alternate() {
        let a = deploy_v2(0.25, 7);
        let b = deploy_v2(0.25, 7);
        assert_eq!(a.input, b.input);
        assert_eq!(a.qnet.layers().len(), b.qnet.layers().len());

        let v1 = deploy(0.5, 7);
        let reqs = mixed_requests(
            &v1,
            &a,
            &[NetworkId::PRIMARY, NetworkId(1)],
            &[0, 10, 20, 30],
            9,
        );
        assert_eq!(reqs.len(), 4);
        let nets: Vec<u32> = reqs.iter().map(|r| r.network.0).collect();
        assert_eq!(nets, vec![0, 1, 0, 1]);
        // Inputs route through the right stem: both models share the
        // input shape, and the pixel values differ between the stems.
        assert_eq!(reqs[0].input.shape(), reqs[1].input.shape());
        assert_ne!(reqs[0].input, reqs[1].input);
        // Seeded determinism extends to the mixed stream.
        let again = mixed_requests(
            &v1,
            &a,
            &[NetworkId::PRIMARY, NetworkId(1)],
            &[0, 10, 20, 30],
            9,
        );
        for (x, y) in reqs.iter().zip(&again) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.network, y.network);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = deploy(0.25, 1);
        let b = deploy(0.25, 2);
        assert_ne!(a.input, b.input);
    }

    #[test]
    fn close_macros_accept_and_reject() {
        assert_close!(1.0, 1.0009, 0.001);
        assert_rel_close!(1000.0, 1000.9, 1e-3);
        let caught = std::panic::catch_unwind(|| assert_close!(1.0, 1.1, 0.01));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| assert_rel_close!(1.0, 1.1, 1e-3));
        assert!(caught.is_err());
    }
}
