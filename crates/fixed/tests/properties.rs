//! Property-based tests for the fixed-point substrate.

use edea_fixed::sat::{accumulator_bits, clamp_to_bits, fits_in_bits, min_signed_bits};
use edea_fixed::{Fx, Q8x16, QFormat, Round};
use proptest::prelude::*;

const ALL_MODES: [Round; 4] = [
    Round::Truncate,
    Round::Floor,
    Round::HalfAwayFromZero,
    Round::HalfToEven,
];

proptest! {
    /// Converting any in-range f64 to Q8.16 commits at most half an LSB of error.
    #[test]
    fn q8_16_from_f64_error_bounded(x in -127.9f64..127.9) {
        let err = Q8x16::quantization_error(x);
        prop_assert!(err <= 0.5 / 65536.0 + 1e-12, "x={x} err={err}");
    }

    /// Q8.16 raw round-trip: from_raw(raw()).raw() == raw().
    #[test]
    fn q8_16_raw_round_trip(raw in -(1i32 << 23)..(1i32 << 23)) {
        let v = Q8x16::from_raw(raw);
        prop_assert_eq!(Q8x16::from_raw(v.raw()).raw(), raw);
    }

    /// to_f64 then from_f64 is the identity on representable values.
    #[test]
    fn q8_16_f64_round_trip(raw in -(1i32 << 23)..(1i32 << 23)) {
        let v = Q8x16::from_raw(raw);
        prop_assert_eq!(Q8x16::from_f64(v.to_f64()), v);
    }

    /// mul_int_add is exact: matches wide integer reference arithmetic.
    #[test]
    fn mul_int_add_exact(k in -(1i32 << 23)..(1i32 << 23),
                         x in -1_000_000i32..1_000_000,
                         b in -(1i32 << 23)..(1i32 << 23)) {
        let w = Q8x16::from_raw(k).mul_int_add(x, Q8x16::from_raw(b));
        prop_assert_eq!(w.raw(), i64::from(k) * i64::from(x) + i64::from(b));
    }

    /// Rounding a wide value to int differs from the f64 reference by at most
    /// one LSB caused by f64 representation — for exact inputs it is equal.
    #[test]
    fn wide_round_matches_f64(k in -(1i32 << 20)..(1i32 << 20), x in -10_000i32..10_000) {
        let w = Q8x16::from_raw(k).mul_int_add(x, Q8x16::ZERO);
        let f = w.to_f64();
        for mode in ALL_MODES {
            prop_assert_eq!(w.round_to_int(mode) as i128, mode.round_f64(f), "mode={:?}", mode);
        }
    }

    /// round_clip_i8 always lands inside the clip range.
    #[test]
    fn clip_stays_in_range(k in -(1i32 << 23)..(1i32 << 23),
                           x in i32::MIN/65536..i32::MAX/65536,
                           lo in -128i8..0, hi in 0i8..=127) {
        let w = Q8x16::from_raw(k).mul_int_add(x, Q8x16::ZERO);
        let y = w.round_clip_i8(Round::HalfAwayFromZero, lo, hi);
        prop_assert!(y >= lo && y <= hi);
    }

    /// All rounding modes agree within one unit, and exactly when the value
    /// is already an integer.
    #[test]
    fn rounding_modes_within_one_unit(v in any::<i64>(), bits in 1u32..40) {
        let results: Vec<i128> =
            ALL_MODES.iter().map(|m| m.shift_right(v as i128, bits)).collect();
        let min = results.iter().min().unwrap();
        let max = results.iter().max().unwrap();
        prop_assert!(max - min <= 1, "v={v} bits={bits} results={results:?}");
        if v % (1i64 << bits.min(62)) == 0 {
            prop_assert_eq!(max, min);
        }
    }

    /// shift_right never differs from the true quotient by more than 1,
    /// and HalfAwayFromZero minimizes |error| among integers.
    #[test]
    fn half_away_is_nearest(v in -(1i64 << 40)..(1i64 << 40), bits in 1u32..20) {
        let r = Round::HalfAwayFromZero.shift_right(v as i128, bits);
        let scale = 1i128 << bits;
        let err = (v as i128 - r * scale).abs();
        prop_assert!(err * 2 <= scale, "not nearest: v={v} bits={bits} r={r}");
    }

    /// Fx: f64 -> Fx -> f64 commits at most half a resolution step.
    #[test]
    fn fx_from_f64_error_bounded(x in -100.0f64..100.0, frac in 0u8..20) {
        let fmt = QFormat::new(32, frac).unwrap();
        let v = Fx::from_f64(x, fmt, Round::HalfAwayFromZero).unwrap();
        prop_assert!((v.to_f64() - x).abs() <= fmt.resolution() / 2.0 + 1e-12);
    }

    /// Fx addition matches rational arithmetic when in range.
    #[test]
    fn fx_add_matches_reference(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let fmt = QFormat::new(32, 8).unwrap();
        let x = Fx::from_raw(a, fmt).unwrap();
        let y = Fx::from_raw(b, fmt).unwrap();
        prop_assert_eq!(x.checked_add(y).unwrap().raw(), a + b);
    }

    /// Saturating conversion is monotone: x <= y implies sat(x) <= sat(y).
    #[test]
    fn fx_saturating_monotone(x in -1e6f64..1e6, d in 0.0f64..1e5) {
        let fmt = QFormat::new(16, 4).unwrap();
        let lo = Fx::from_f64_saturating(x, fmt, Round::HalfAwayFromZero);
        let hi = Fx::from_f64_saturating(x + d, fmt, Round::HalfAwayFromZero);
        prop_assert!(lo <= hi);
    }

    /// Format conversion: widening then narrowing returns the original value.
    #[test]
    fn fx_convert_round_trip(raw in -30_000i64..30_000) {
        let narrow = QFormat::new(24, 8).unwrap();
        let wide = QFormat::new(48, 24).unwrap();
        let v = Fx::from_raw(raw, narrow).unwrap();
        let back = v.convert(wide, Round::Floor).convert(narrow, Round::Floor);
        prop_assert_eq!(back.raw(), raw);
    }

    /// clamp_to_bits output always fits; fits_in_bits consistent with clamp.
    #[test]
    fn clamp_fits(v in any::<i64>(), bits in 2u32..63) {
        let c = clamp_to_bits(v, bits);
        prop_assert!(fits_in_bits(c, bits));
        prop_assert_eq!(fits_in_bits(v, bits), c == v);
    }

    /// min_signed_bits is exact: value fits in that width but not one less.
    #[test]
    fn min_signed_bits_tight(v in -(1i64 << 40)..(1i64 << 40)) {
        let bits = min_signed_bits(v).max(2);
        prop_assert!(fits_in_bits(v, bits));
        if bits > 2 {
            prop_assert!(!fits_in_bits(v, bits - 1) || min_signed_bits(v) <= 2);
        }
    }

    /// The accumulator sizing bound is safe for random operand sets.
    #[test]
    fn accumulator_bound_safe(values in prop::collection::vec(-128i64..=127, 1..64)) {
        let n = values.len() as u64;
        let bits = accumulator_bits(8, 8, n);
        let worst: i64 = values.iter().map(|v| v * 127).sum::<i64>().abs();
        prop_assert!(fits_in_bits(worst, bits));
    }
}
